"""Deterministic discrete-event engine with thread-backed simulated processes.

The engine implements classic process-oriented discrete-event simulation.
Each simulated processor runs ordinary imperative Python (the application
programs, the DSM protocol handlers, the message-passing library) on its own
OS thread, but the *conductor* guarantees that exactly one thread executes at
any instant: a thread runs until it blocks on a simulation primitive
(:meth:`Process.hold`, :meth:`Process.park`), at which point control returns
to the conductor, which pops the next event in ``(time, priority, seq)``
order.  The ``seq`` tie-break makes scheduling — and therefore every result
in the repository — fully deterministic.

A :class:`Simulator` built with ``schedule_seed=N`` inserts a seeded random
jitter key between ``priority`` and ``seq``, permuting the pop order of
events that share ``(time, priority)``.  Same-time events are exactly the
ones the simulated platform leaves unordered (causally-ordered events always
differ in time because every message and every hold advances the clock), so
each seed explores a distinct *legal* interleaving of the same run — the
schedule fuzzer underneath ``python -m repro racecheck``.  ``None`` keeps
the historical FIFO order bit-for-bit.

Virtual time is a ``float`` in seconds.  Nothing in the engine depends on
wall-clock time; Python's execution speed never leaks into reported numbers.

Two wall-clock (never virtual-time) optimizations keep the conductor cheap:

* **hold elision** — when a process calls :meth:`Process.hold` and its wakeup
  would be the very next event the conductor pops (strictly earlier than the
  current queue head under the full ``(time, priority, jitter)`` key), the
  engine advances the clock inline and lets the thread keep running.  No
  other process could have run in between, so the event order — and, because
  the jitter draw still happens, even the seeded random stream — is
  bit-identical to the blocking path.  ``HOLD_ELISION = False`` restores the
  literal block-and-resume behaviour (the equivalence tests compare both).
* **raw-lock handoffs** — the conductor⇄process baton is passed through bare
  ``_thread`` locks used as binary semaphores rather than
  ``threading.Event`` (whose ``Condition`` machinery allocates a lock and
  takes several more on every wait).
"""

from __future__ import annotations

import heapq
import random
import threading
import traceback
from _thread import allocate_lock
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Process", "SimError", "Deadlock", "HOLD_ELISION"]

HOLD_ELISION = True
"""Fast-path uncontended holds without a conductor round-trip (exact)."""


class SimError(RuntimeError):
    """An error raised inside a simulated process, re-raised by :meth:`Simulator.run`."""


class Deadlock(RuntimeError):
    """Raised when every live process is parked and no events remain."""


class Process:
    """A simulated process: a cooperatively-scheduled thread with a virtual clock.

    Application code never constructs these directly; use
    :meth:`Simulator.add_process`.  The public surface relevant to programs is
    :meth:`hold` (advance virtual time / model computation), :meth:`park`
    (block until another process calls :meth:`Simulator.unpark`), and the
    :attr:`now` property.
    """

    def __init__(self, sim: "Simulator", pid: int, name: str,
                 fn: Callable[..., Any], args: tuple, kwargs: dict,
                 daemon: bool = False):
        self.sim = sim
        self.pid = pid
        self.name = name
        self.daemon = daemon
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        # baton lock: held (locked) while the process must stay blocked;
        # the conductor releases it to hand over a slice
        self._resume = allocate_lock()
        self._resume.acquire()
        self.finished = False
        self.finish_time: Optional[float] = None
        self.result: Any = None
        self.parked = False
        self.park_token: Any = None
        self._started = False
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"simproc-{name}", daemon=True)

    # ------------------------------------------------------------------ #
    # thread plumbing (conductor side)

    def _start(self) -> None:
        self._started = True
        self._thread.start()

    def _bootstrap(self) -> None:
        # Wait for the conductor to give us our first slice.
        self._resume.acquire()
        try:
            self.result = self._fn(*self._args, **self._kwargs)
        except _Killed:
            pass
        except BaseException:  # noqa: BLE001 - report any failure to conductor
            self.sim._fail(self, traceback.format_exc())
        finally:
            self.finished = True
            self.finish_time = self.sim.now
            if not self.daemon:
                self.sim._pending_nondaemon -= 1
            self.sim._switch_to_conductor()

    def _run_slice(self) -> None:
        """Conductor hands the CPU to this process and waits for it to block."""
        self._resume.release()
        self.sim._conductor_wait()

    # ------------------------------------------------------------------ #
    # primitives (called from the process's own thread)

    @property
    def now(self) -> float:
        return self.sim.now

    def hold(self, dt: float) -> None:
        """Advance this process's virtual clock by ``dt`` seconds.

        Models local computation or fixed software overheads.  ``dt`` may be
        zero (a pure yield, which still gives deterministically-ordered
        scheduling to same-time events).

        When this process's wakeup would be the next event popped anyway
        (strictly earlier than the queue head under the full
        ``(time, priority, jitter)`` key — on a tie the already-queued event
        has the smaller ``seq`` and wins), the conductor round-trip is
        elided: no other process could have run in between, so advancing the
        clock inline is observationally identical.  The jitter draw happens
        either way, keeping seeded schedules bit-for-bit.
        """
        if dt < 0:
            raise ValueError(f"negative hold: {dt}")
        sim = self.sim
        at = sim.now + dt
        if HOLD_ELISION and sim._until is None:
            jit = sim._jitter()
            q = sim._queue
            if not q or (at, 0, jit) < (q[0][0], q[0][1], q[0][2]):
                sim.now = at
                sim.events += 1
                sim.elided_holds += 1
                return
            sim._seq += 1
            heapq.heappush(q, (at, 0, jit, sim._seq, self))
            self._block()
            return
        sim._schedule_wakeup(self, at)
        self._block()

    def park(self, token: Any = None) -> None:
        """Block until another process calls :meth:`Simulator.unpark` on us."""
        self.parked = True
        self.park_token = token
        self._block()

    def _block(self) -> None:
        self.sim._switch_to_conductor()
        self._resume.acquire()
        if self.sim._dead:
            raise _Killed()


class _Killed(BaseException):
    """Internal: unwinds a process thread when the simulation is torn down."""


class Simulator:
    """The conductor: owns the event queue and the global virtual clock."""

    def __init__(self, schedule_seed: Optional[int] = None) -> None:
        self.now: float = 0.0
        self.schedule_seed = schedule_seed
        self._rng = (random.Random(schedule_seed)
                     if schedule_seed is not None else None)
        self._queue: list[tuple[float, int, float, int, Any]] = []
        self._seq = 0
        self._procs: list[Process] = []
        # conductor baton: held (locked) while a process has the CPU
        self._conductor_baton = allocate_lock()
        self._conductor_baton.acquire()
        self._error: Optional[str] = None
        self._dead = False
        self._running = False
        self._current: Optional[Process] = None
        self._until: Optional[float] = None
        self._pending_nondaemon = 0
        self.events = 0            # conductor pops + elided holds
        self.elided_holds = 0
        # zero-arg callables returning a diagnostic string, appended to the
        # Deadlock message (the Network registers its mailbox/waiter report)
        self.diagnostics: list[Callable[[], str]] = []

    # ------------------------------------------------------------------ #
    # construction

    def add_process(self, name: str, fn: Callable[..., Any],
                    *args: Any, daemon: bool = False, **kwargs: Any) -> Process:
        """Register a simulated process.

        ``daemon`` processes (protocol servers) do not keep the simulation
        alive: once every non-daemon process has finished, :meth:`run`
        returns, and parked daemons are not a deadlock.
        """
        proc = Process(self, len(self._procs), name, fn, args, kwargs,
                       daemon=daemon)
        self._procs.append(proc)
        if not daemon:
            self._pending_nondaemon += 1
        self._schedule_wakeup(proc, self.now)
        if self._running and not proc._started:
            proc._start()
        return proc

    # ------------------------------------------------------------------ #
    # scheduling internals

    def _jitter(self) -> float:
        """Tie-break key between ``priority`` and ``seq``: 0.0 (FIFO) without
        a seed, seeded-random with one, so only same-``(time, priority)``
        events ever reorder."""
        return self._rng.random() if self._rng is not None else 0.0

    def _schedule_wakeup(self, proc: Process, at: float, priority: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._queue,
                       (at, priority, self._jitter(), self._seq, proc))

    def schedule_call(self, delay: float, fn: Callable[[], None],
                      priority: int = 0) -> None:
        """Run ``fn`` on the conductor at ``now + delay`` (no process context)."""
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority,
                                     self._jitter(), self._seq, fn))

    def unpark(self, proc: Process, delay: float = 0.0, priority: int = 0) -> None:
        """Make a parked process runnable again at ``now + delay``."""
        if not proc.parked:
            raise SimError(f"unpark of non-parked process {proc.name}")
        proc.parked = False
        proc.park_token = None
        self._schedule_wakeup(proc, self.now + delay, priority)

    # ------------------------------------------------------------------ #
    # conductor <-> process handoff

    def _conductor_wait(self) -> None:
        self._conductor_baton.acquire()

    def _switch_to_conductor(self) -> None:
        if self._dead:
            # teardown: the conductor is joining threads, not waiting on the
            # baton; a second release would be an error
            return
        self._conductor_baton.release()

    def _fail(self, proc: Process, tb: str) -> None:
        if self._error is None:
            self._error = f"process {proc.name!r} raised:\n{tb}"

    # ------------------------------------------------------------------ #
    # main loop

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation until all processes finish (or ``until``).

        Returns the final virtual time.  Raises :class:`SimError` if any
        process raised, and :class:`Deadlock` if live processes remain but no
        event can ever wake them.
        """
        self._running = True
        self._until = until
        for proc in self._procs:
            if not proc._started:
                proc._start()
        try:
            while self._queue:
                if self._pending_nondaemon == 0:
                    break
                at, _pri, _jit, _seq, target = heapq.heappop(self._queue)
                if until is not None and at > until:
                    self.now = until
                    break
                self.now = at
                self.events += 1
                if isinstance(target, Process):
                    if target.finished:
                        continue
                    self._current = target
                    target._run_slice()
                    self._current = None
                else:
                    target()
                if self._error is not None:
                    raise SimError(self._error)
            live = [p for p in self._procs if not p.finished and not p.daemon]
            if live and until is None:
                sites = []
                for p in live:
                    if p.parked:
                        sites.append(f"{p.name} parked at {p.park_token!r}")
                    else:
                        sites.append(f"{p.name} blocked (no park site)")
                detail = (f"no events remain but {len(live)} process(es) "
                          f"still blocked: " + "; ".join(sites))
                for diag in self.diagnostics:
                    try:
                        detail += "\n" + diag()
                    except Exception as exc:  # noqa: BLE001 - best effort
                        detail += f"\n(diagnostic failed: {exc!r})"
                raise Deadlock(detail)
            return self.now
        finally:
            self._teardown()

    def _teardown(self) -> None:
        """Unblock any still-parked threads so they exit (daemon hygiene)."""
        self._dead = True
        for proc in self._procs:
            if proc._started and not proc.finished:
                proc._resume.release()
        for proc in self._procs:
            if proc._started:
                proc._thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Process:
        """The process currently executing (valid only from process context)."""
        cur = self._current
        if cur is None:
            raise SimError("no process is currently executing")
        return cur

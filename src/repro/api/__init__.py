"""``repro.api`` — the unified, typed run API.

The one surface between "what to run" and "how it ran":

* :class:`RunRequest` / :class:`RunResult` / :class:`BatchResult` —
  frozen, serializable (``repro-run/1``) value types
  (:mod:`repro.api.types`),
* :func:`execute` / :func:`run` and :class:`ProgramCache` — the single
  execution path with compiled-program caching
  (:mod:`repro.api.execute`),
* :mod:`repro.api.registry` — the consolidated app/variant registry the
  CLI, harnesses and validators all share.

Quick start::

    from repro.api import RunRequest, run
    print(run(RunRequest("jacobi", "spf", nprocs=8, preset="test")).row())

For batches, prefer the worker-pool service (:mod:`repro.serve`)::

    from repro.api import RunRequest
    from repro.serve import RunService
    with RunService(workers=4) as svc:
        batch = svc.run_batch([RunRequest("jacobi", "spf", preset="test"),
                               RunRequest("igrid", "spf", preset="test")])

See ``docs/API.md`` for the full type and wire-protocol reference.
"""

from repro.api import registry
from repro.api.execute import (ProgramCache, execute, run,
                               run_batch_inprocess)
from repro.api.registry import (APPS, BENCH_MATRIX, DSM_VARIANTS,
                                FIGURE_VARIANTS, IRREGULAR_APPS,
                                MODELED_VARIANTS, MP_VARIANTS, PRESETS,
                                RACECHECK_VARIANTS, REGULAR_APPS, VARIANTS,
                                AppInfo, VariantInfo)
from repro.api.types import (RUN_SCHEMA, BatchResult, RunRequest, RunResult,
                             dsm_stats_from_doc, dsm_stats_to_doc,
                             fault_plan_from_doc, fault_plan_to_doc,
                             machine_from_doc, machine_to_doc)

__all__ = [
    "RUN_SCHEMA",
    "RunRequest",
    "RunResult",
    "BatchResult",
    "ProgramCache",
    "execute",
    "run",
    "run_batch_inprocess",
    "registry",
    "APPS",
    "REGULAR_APPS",
    "IRREGULAR_APPS",
    "VARIANTS",
    "DSM_VARIANTS",
    "MP_VARIANTS",
    "MODELED_VARIANTS",
    "FIGURE_VARIANTS",
    "RACECHECK_VARIANTS",
    "PRESETS",
    "BENCH_MATRIX",
    "AppInfo",
    "VariantInfo",
    "dsm_stats_to_doc",
    "dsm_stats_from_doc",
    "fault_plan_to_doc",
    "fault_plan_from_doc",
    "machine_to_doc",
    "machine_from_doc",
]

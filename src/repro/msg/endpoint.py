"""Tagged point-to-point messaging over the simulated interconnect.

Semantics mirror the user-level libraries of the paper (MPL, PVMe): sends
are buffered and asynchronous, receives block and match on (source, tag).
Payloads are real Python/numpy objects; their wire size is computed from
the data (``payload_nbytes``) unless the caller declares it.

Large transfers can optionally be segmented into fixed-size packets
(``packet_bytes``) — the XHPF run-time system moves array sections through
a bounded transfer buffer, which is visible in the paper's Table 3 as a
~4 KB data/message ratio for XHPF programs.  Hand-coded PVMe programs send
unsegmented messages.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.sim.cluster import ProcEnv
from repro.sim.network import ANY_SOURCE, ANY_TAG

__all__ = ["Comm", "payload_nbytes", "ANY_SOURCE", "ANY_TAG"]


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload: numpy data verbatim, scalars as words.

    Object-dtype arrays are rejected: ``.nbytes`` would report pointer
    bytes, silently undercounting the wire size.  Numpy scalars — 0-d
    arrays included — are sized like the Python scalars they box (8 bytes,
    16 for complex), not by their in-memory itemsize.
    """
    if isinstance(payload, np.ndarray):
        if payload.dtype.kind == "O":
            raise TypeError("cannot size object-dtype ndarray (.nbytes "
                            "reports pointer bytes, not wire size); pass "
                            "nbytes explicitly")
        if payload.ndim == 0:
            return 16 if payload.dtype.kind == "c" else 8
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (complex, np.complexfloating)):
        return 16
    if isinstance(payload, (bool, int, float, np.generic)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload) + 8
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v)
                   for k, v in payload.items()) + 8
    if payload is None:
        return 0
    raise TypeError(f"cannot size payload of type {type(payload).__name__}; "
                    f"pass nbytes explicitly")


class _Carrier:
    """Marker payload of a header-only segment packet.

    Segmented sends split one logical transfer into fixed-size packets; the
    real payload rides the last packet and the earlier ones carry only
    their share of the bytes.  They used to carry ``None`` — making a
    transported payload that is legitimately ``None`` indistinguishable
    from a carrier and looping the receiver forever — so carriers are now
    explicit objects, tagged with their position for debuggability.
    """

    __slots__ = ("index", "total")

    def __init__(self, index: int, total: int):
        self.index = index
        self.total = total

    def __repr__(self) -> str:
        return f"_Carrier({self.index + 1}/{self.total})"


class Comm:
    """A processor's handle to the message-passing library."""

    def __init__(self, env: ProcEnv, category: str = "data",
                 packet_bytes: Optional[int] = None):
        self.env = env
        self.rank = env.pid
        self.size = env.nprocs
        self.net = env.net
        self.category = category
        self.packet_bytes = packet_bytes
        self._seq = 0

    # ------------------------------------------------------------------ #

    def send(self, dst: int, payload: Any, tag: int = 0,
             nbytes: Optional[int] = None, category: Optional[str] = None) -> None:
        """Buffered asynchronous send."""
        size = payload_nbytes(payload) if nbytes is None else nbytes
        cat = category or self.category
        if self.packet_bytes and size > self.packet_bytes:
            # segment: payload rides the last packet, earlier packets are
            # header-only carriers of their share of the bytes
            full, last = divmod(size, self.packet_bytes)
            sizes = [self.packet_bytes] * full + ([last] if last else [])
            total = len(sizes)
            for i, part in enumerate(sizes[:-1]):
                self.net.send(self.env.proc, self.rank, dst,
                              _Carrier(i, total), tag=tag,
                              nbytes=part, category=cat)
            self.net.send(self.env.proc, self.rank, dst, payload, tag=tag,
                          nbytes=sizes[-1], category=cat)
        else:
            self.net.send(self.env.proc, self.rank, dst, payload, tag=tag,
                          nbytes=size, category=cat)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        if self.packet_bytes:
            if src == ANY_SOURCE:
                raise ValueError("segmented transfers require an explicit "
                                 "source (packets must not interleave)")
            if tag == ANY_TAG:
                # two concurrent segmented sends from the same source with
                # different tags would misassemble under ANY_TAG matching
                raise ValueError("segmented transfers require an explicit "
                                 "tag (packets must not interleave)")
            # consume header-only carrier packets until the payload packet
            while True:
                msg = self.net.recv(self.env.proc, self.rank, src=src, tag=tag)
                if not isinstance(msg.payload, _Carrier):
                    return msg.payload
        msg = self.net.recv(self.env.proc, self.rank, src=src, tag=tag)
        if isinstance(msg.payload, _Carrier):
            raise RuntimeError(
                f"unsegmented recv matched a segment carrier {msg.payload!r} "
                f"(src={msg.src}, tag={msg.tag}); sender used packet_bytes "
                f"but this endpoint does not")
        return msg.payload

    def recv_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the full Message (src/tag visible)."""
        return self.net.recv(self.env.proc, self.rank, src=src, tag=tag)

    def sendrecv(self, dst: int, payload: Any, src: int,
                 tag: int = 0) -> Any:
        """Exchange: buffered send then blocking receive (deadlock-free)."""
        self.send(dst, payload, tag=tag)
        return self.recv(src=src, tag=tag)

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self.net.probe(self.rank, src=src, tag=tag)

    def next_tag(self, base: int = 500_000) -> int:
        """A fresh tag for internal phases (collectives use these)."""
        self._seq += 1
        return base + self._seq

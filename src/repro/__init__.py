"""repro — Software DSM as a target for parallelizing compilers.

A from-scratch reproduction of Cox, Dwarkadas, Lu & Zwaenepoel,
"Evaluating the Performance of Software Distributed Shared Memory as a
Target for Parallelizing Compilers" (IPPS 1997).

The package provides:

* :mod:`repro.sim` — a deterministic discrete-event simulated cluster
  (the stand-in for the paper's 8-node IBM SP/2),
* :mod:`repro.msg` — MPL/PVMe-style message passing (point-to-point +
  collectives),
* :mod:`repro.tmk` — a TreadMarks-style software DSM (lazy invalidate
  release consistency, multiple-writer diffs, barriers, locks, the
  Section 2.3 fork-join interface, and the enhanced interface used by the
  paper's hand optimizations),
* :mod:`repro.compiler` — the SPF (shared-memory) and XHPF (message-
  passing) parallelizing-compiler analogs over a shared loop-nest IR,
* :mod:`repro.apps` — the six applications (Jacobi, Shallow, MGS, 3-D
  FFT, IGrid, NBF), each in four variants,
* :mod:`repro.eval` — the harness regenerating every table and figure.

Quick start::

    from repro.api import RunRequest, run
    print(run(RunRequest("jacobi", "tmk", nprocs=8, preset="bench")).row())

Batches go through the persistent worker pool::

    from repro.serve import RunService
    with RunService(workers=4) as svc:
        batch = svc.run_batch([RunRequest("jacobi", "spf"), ...])

(``run_variant`` remains as a deprecated shim over the same API.)
"""

from repro.api import BatchResult, RunRequest, RunResult, run
from repro.eval.experiments import run_all_variants, run_variant
from repro.sim import Cluster, MachineModel, SP2_MODEL
from repro.tmk import Tmk, tmk_run

__version__ = "1.1.0"

__all__ = [
    "RunRequest",
    "RunResult",
    "BatchResult",
    "run",
    "run_variant",
    "run_all_variants",
    "Cluster",
    "MachineModel",
    "SP2_MODEL",
    "Tmk",
    "tmk_run",
    "__version__",
]

"""Uniform parsing of boolean environment toggles.

Every on/off switch the runtime reads from the environment
(``TMK_FASTPATH``, ``TMK_FAULTS``) goes through :func:`env_flag`, so the
accepted spellings are identical everywhere: ``0 / false / off / no``
disable, ``1 / true / on / yes`` enable, case-insensitively.  An empty or
unset variable keeps the caller's default; anything else is an error —
``TMK_FASTPATH=flase`` silently enabling the fast path is exactly the kind
of typo this helper exists to catch.
"""

from __future__ import annotations

import os

__all__ = ["env_flag"]

_FALSY = frozenset({"0", "false", "off", "no"})
_TRUTHY = frozenset({"1", "true", "on", "yes"})


def env_flag(name: str, default: bool = False) -> bool:
    """Parse the boolean environment variable ``name``.

    Unset or empty keeps ``default``; unrecognized spellings raise
    ``ValueError`` rather than silently coercing.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default
    if value in _FALSY:
        return False
    if value in _TRUTHY:
        return True
    raise ValueError(
        f"{name}={raw!r}: expected one of "
        f"{sorted(_TRUTHY)} / {sorted(_FALSY)}")

"""E11 — Section 7 / abstract: the paper's summary claims.

* Regular applications: compiler-generated and hand-coded message passing
  outperform SPF/TreadMarks (paper: by 5.5-40% and 7.5-49%).
* Irregular applications: SPF/TreadMarks outperforms compiler-generated
  message passing (paper: by 38% and 89%) and underperforms hand-coded
  message passing only slightly (paper: 4.4% and 16%).
* Hand-coded TreadMarks outperforms SPF/TreadMarks on every application
  (paper: by 2-20%).
"""

from repro.eval.constants import APPS, IRREGULAR_APPS, REGULAR_APPS

from conftest import all_variants, archive, runner  # noqa: F401


def test_summary_claims(runner):
    results = runner(lambda: {app: all_variants(app) for app in APPS})

    lines = ["Section 7 — summary ratios (ours vs the paper's ranges)"]
    regular_x, regular_p, irregular_x, irregular_p, tmk_gap = [], [], [], [], []
    for app in APPS:
        r = {v: results[app][v].speedup for v in ("spf", "tmk", "xhpf",
                                                  "pvme")}
        if app in REGULAR_APPS:
            regular_x.append(r["xhpf"] / r["spf"])
            regular_p.append(r["pvme"] / r["spf"])
        else:
            irregular_x.append(r["spf"] / r["xhpf"])
            irregular_p.append(r["pvme"] / r["spf"])
        tmk_gap.append(r["tmk"] / r["spf"])

    lines.append(f"regular: XHPF over SPF/Tmk   "
                 f"{min(regular_x):.2f}x..{max(regular_x):.2f}x "
                 f"(paper 1.055..1.40)")
    lines.append(f"regular: PVMe over SPF/Tmk   "
                 f"{min(regular_p):.2f}x..{max(regular_p):.2f}x "
                 f"(paper 1.075..1.49)")
    lines.append(f"irregular: SPF/Tmk over XHPF "
                 f"{min(irregular_x):.2f}x..{max(irregular_x):.2f}x "
                 f"(paper 1.38..1.89)")
    lines.append(f"irregular: PVMe over SPF/Tmk "
                 f"{min(irregular_p):.2f}x..{max(irregular_p):.2f}x "
                 f"(paper 1.044..1.16)")
    lines.append(f"hand Tmk over SPF/Tmk        "
                 f"{min(tmk_gap):.2f}x..{max(tmk_gap):.2f}x "
                 f"(paper 1.02..1.20)")
    archive("sec7_summary", "\n".join(lines))

    assert all(x > 1.0 for x in regular_x), "MP wins on regular codes"
    assert all(x > 1.0 for x in regular_p)
    assert all(x > 1.1 for x in irregular_x), "DSM wins on irregular codes"
    assert all(x < 1.25 for x in irregular_p), \
        "DSM stays close to hand-coded MP on irregular codes"
    assert all(x > 0.98 for x in tmk_gap), \
        "hand-coded DSM never loses to compiler-generated"

"""Tests for the symbolic dependence engine (repro.compiler.depend)."""

import numpy as np
import pytest

from repro.apps.common import get_app
from repro.compiler import depend
from repro.compiler.depend import (PROVEN_PARALLEL, PROVEN_SERIAL, UNKNOWN,
                                   Interval, Strided, analyze_loop,
                                   analyze_program, chunk_sets,
                                   dim_sets_intersect,
                                   eligible_mutation_targets,
                                   inject_dependence, loops_fusable_exact,
                                   mhp_pairs, pair_dependence, tag_family)
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular,
                               ParallelLoop, Point, Program, Reduction,
                               Span)

APPS = ("jacobi", "mgs", "fft3d", "shallow", "igrid", "nbf")


def make_prog(loops, shape=(64, 16)):
    return Program("p", arrays=[ArrayDecl("a", shape), ArrayDecl("b", shape)],
                   body=list(loops))


def kern(v, lo, hi):
    return None


def app_program(app, preset="test"):
    spec = get_app(app)
    return spec.build_program(spec.params(preset))


# ---------------------------------------------------------------------- #
# pair_dependence: the exact subscript test

def test_self_span_write_pair_proves_disjoint():
    """Span() x Span(): d confined to [0, 0], excluded by d != 0."""
    loop = ParallelLoop("l", 64, kern,
                        writes=[Access("a", (Span(), Full()))])
    w = loop.writes[0]
    assert pair_dependence(w, w, loop, (64, 16)) == ("none", None)


def test_halo_read_vs_write_confirmed_with_witness():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(-1, 1), Full()))],
                        writes=[Access("a", (Span(), Full()))])
    status, info = pair_dependence(loop.writes[0], loop.reads[0],
                                   loop, (64, 16))
    assert status == "dep"
    assert info["confirmed"]
    assert info["distance"] in (-1, 1)
    i, j = info["witness"]
    assert 0 <= i < 64 and 0 <= j < 64 and i != j


def test_distinct_point_constants_prove_disjoint():
    loop = ParallelLoop("l", 64, kern,
                        writes=[Access("a", (Point(3), Full()))],
                        reads=[Access("a", (Point(7), Full()))])
    assert pair_dependence(loop.writes[0], loop.reads[0],
                           loop, (64, 16)) == ("none", None)


def test_same_point_constant_is_a_real_output_dependence():
    """Every iteration writes row 5: a confirmed cross-iteration
    output dependence (and the loop is PROVEN-SERIAL)."""
    loop = ParallelLoop("l", 64, kern,
                        writes=[Access("a", (Point(5), Full()))])
    status, info = pair_dependence(loop.writes[0], loop.writes[0],
                                   loop, (64, 16))
    assert status == "dep" and info["confirmed"]
    prog = make_prog([loop])
    assert analyze_loop(loop, prog).verdict == PROVEN_SERIAL


def test_callable_point_is_unknown():
    loop = ParallelLoop("l", 64, kern,
                        writes=[Access("a", (Point(lambda lo, hi: lo),
                                             Full()))])
    status, _reason = pair_dependence(loop.writes[0], loop.writes[0],
                                      loop, (64, 16))
    assert status == "unknown"
    prog = make_prog([loop])
    assert analyze_loop(loop, prog).verdict == UNKNOWN


def test_flow_dependence_direction_and_kind():
    """a[i] written, a[i-1] read: distance +1 flow dependence."""
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(-1, -1), Full()))],
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    verdict = analyze_loop(loop, prog)
    assert verdict.verdict == PROVEN_SERIAL
    assert any(d.kind == "flow" and d.confirmed
               for d in verdict.dependences)


# ---------------------------------------------------------------------- #
# analyze_loop composition rules

def test_distinct_arrays_never_conflict():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(-2, 2), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    prog = make_prog([loop])
    assert analyze_loop(loop, prog).verdict == PROVEN_PARALLEL


def test_reduction_only_loop_is_parallel():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(), Full()))],
                        reductions=[Reduction("s")])
    prog = make_prog([loop])
    assert analyze_loop(loop, prog).verdict == PROVEN_PARALLEL


def test_irregular_dominates_even_with_affine_disjoint_dims():
    """UNKNOWN dominates: an Irregular access can never be promoted."""
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", Irregular(lambda v, lo, hi:
                                                     np.array([0])))],
                        writes=[Access("b", (Span(), Full()))])
    prog = make_prog([loop])
    verdict = analyze_loop(loop, prog)
    assert verdict.verdict == UNKNOWN
    assert verdict.unknowns


def test_accumulate_array_excluded_from_pairs():
    """Accumulate staging is per-processor private by construction."""
    loop = ParallelLoop("l", 64, kern,
                        writes=[Access("a", (Full(), Full()))],
                        accumulate=["a"])
    prog = make_prog([loop])
    assert analyze_loop(loop, prog).verdict == PROVEN_PARALLEL


# ---------------------------------------------------------------------- #
# satellite: Irregular resolver edge cases degrade, never crash/claim

@pytest.mark.parametrize("footprint", [
    lambda v, lo, hi: np.array([], dtype=np.int64),          # empty
    lambda v, lo, hi: np.array([3, 3, 3], dtype=np.int64),   # duplicated
    lambda v, lo, hi: np.array([9, 1, 5], dtype=np.int64),   # out of order
    lambda v, lo, hi: None,                                  # degenerate
])
def test_irregular_resolver_edge_cases_stay_unknown(footprint):
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", Irregular(footprint))],
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    verdict = analyze_loop(loop, prog)
    assert verdict.verdict == UNKNOWN
    report = analyze_program(prog)
    assert report.verdicts["l"].verdict == UNKNOWN
    # the whole-program explain path must not crash either
    assert "UNKNOWN" in report.explain("l")


@pytest.mark.parametrize("footprint", [
    lambda v, lo, hi: np.array([], dtype=np.int64),
    lambda v, lo, hi: np.array([3, 3, 3], dtype=np.int64),
    lambda v, lo, hi: np.array([9, 1, 5], dtype=np.int64),
])
def test_irregular_resolver_edge_cases_lint_path(footprint):
    """The lint consumers (fusion, chunk sets) degrade conservatively."""
    irr = ParallelLoop("irr", 64, kern,
                       reads=[Access("a", Irregular(footprint))],
                       writes=[Access("b", (Span(), Full()))])
    aff = ParallelLoop("aff", 64, kern,
                       writes=[Access("a", (Span(), Full()))])
    prog = make_prog([irr, aff])
    assert not loops_fusable_exact(irr, aff, 4, prog)
    assert not loops_fusable_exact(aff, irr, 4, prog)
    assert chunk_sets(irr, "reads", 0, 4, prog) is None


# ---------------------------------------------------------------------- #
# exact chunk sets

def test_dim_sets_intersect_intervals():
    assert dim_sets_intersect(Interval(0, 4), Interval(3, 8))
    assert not dim_sets_intersect(Interval(0, 4), Interval(4, 8))
    assert not dim_sets_intersect(Interval(4, 4), Interval(0, 64))


def test_dim_sets_intersect_strided_disjoint_residues():
    """pid 0 and pid 1 of a width-1 cyclic distribution never collide."""
    p0 = Strided(start=0, step=4, count=16, width=1)
    p1 = Strided(start=1, step=4, count=16, width=1)
    assert not dim_sets_intersect(p0, p1)
    assert dim_sets_intersect(p0, p0)


def test_dim_sets_intersect_strided_width_reaches_neighbour():
    """Width 2 blocks starting one apart do overlap."""
    p0 = Strided(start=0, step=4, count=16, width=2)
    p1 = Strided(start=1, step=4, count=16, width=1)
    assert dim_sets_intersect(p0, p1)


def test_dim_sets_intersect_strided_diophantine_steps():
    """Different steps: 3k vs 2m+1 — 3k is odd for odd k, so they meet."""
    a = Strided(start=0, step=3, count=10, width=1)   # 0,3,6,...
    b = Strided(start=1, step=2, count=10, width=1)   # 1,3,5,...
    assert dim_sets_intersect(a, b)
    # 4k vs 4m+2: residues mod 2 coincide... but mod 4 they never do
    c = Strided(start=0, step=4, count=10, width=1)
    d = Strided(start=2, step=4, count=10, width=1)
    assert not dim_sets_intersect(c, d)


def test_dim_sets_strided_vs_interval():
    s = Strided(start=1, step=4, count=8, width=1)    # 1,5,9,...
    assert dim_sets_intersect(s, Interval(4, 6))      # contains 5
    assert not dim_sets_intersect(s, Interval(2, 5))  # 2,3,4: none owned
    assert not dim_sets_intersect(s, Interval(6, 6))


def test_exact_fusion_beats_bounding_rectangles_on_cyclic():
    """Two identical cyclic loops interleave rows per-processor; the
    rectangle test refuses (bounding intervals overlap), the exact
    residue sets prove fusable."""
    from repro.compiler.analysis import loops_fusable
    l1 = ParallelLoop("l1", 64, kern, schedule="cyclic",
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern, schedule="cyclic",
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)        # conservative rect
    assert loops_fusable_exact(l1, l2, 4, prog)      # exact: disjoint


def test_exact_fusion_matches_rect_on_block():
    fuse_a = ParallelLoop("fa", 64, kern,
                          writes=[Access("a", (Span(), Full()))])
    fuse_b = ParallelLoop("fb", 64, kern,
                          reads=[Access("a", (Span(), Full()))],
                          writes=[Access("b", (Span(), Full()))])
    halo_b = ParallelLoop("hb", 64, kern,
                          reads=[Access("a", (Span(-1, 1), Full()))],
                          writes=[Access("b", (Span(), Full()))])
    prog = make_prog([fuse_a, fuse_b, halo_b])
    assert loops_fusable_exact(fuse_a, fuse_b, 4, prog)
    assert not loops_fusable_exact(fuse_a, halo_b, 4, prog)


def test_exact_fusion_refuses_cyclic_halo():
    """A cyclic halo write really does reach neighbour processors."""
    l1 = ParallelLoop("l1", 64, kern, schedule="cyclic",
                      writes=[Access("a", (Span(0, 1), Full()))])
    l2 = ParallelLoop("l2", 64, kern, schedule="cyclic",
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable_exact(l1, l2, 4, prog)


# ---------------------------------------------------------------------- #
# MHP

def test_mhp_self_pairs_for_every_family():
    program = app_program("jacobi")
    pairs = mhp_pairs(program)
    fams = {p.a for p in pairs if p.a == p.b}
    assert {"stencil", "copy"} <= fams


def test_mhp_fused_pairs_under_fuse_loops():
    from repro.compiler.spf import SpfOptions
    program = app_program("shallow")
    base = mhp_pairs(program, 8)
    fused = mhp_pairs(program, 8, SpfOptions(fuse_loops=True))
    cross_base = {(p.a, p.b) for p in base if p.a != p.b}
    cross_fused = {(p.a, p.b) for p in fused if p.a != p.b}
    assert not cross_base
    assert ("step1", "colwrap1") in cross_fused


# ---------------------------------------------------------------------- #
# whole-app verdicts (the acceptance matrix)

EXPECTED_UNKNOWN = {"igrid": {"update"}, "nbf": {"forces"}}


@pytest.mark.parametrize("app", APPS)
def test_app_verdicts(app):
    report = analyze_program(app_program(app))
    expected_unknown = EXPECTED_UNKNOWN.get(app, set())
    for fam, verdict in report.verdicts.items():
        if fam in expected_unknown:
            assert verdict.verdict == UNKNOWN, fam
        else:
            assert verdict.verdict == PROVEN_PARALLEL, \
                f"{app}/{fam}: {verdict.explain()}"


@pytest.mark.parametrize("app", APPS)
def test_app_report_doc_round_trips_to_json(app):
    import json
    doc = analyze_program(app_program(app)).as_doc()
    assert doc["schema"] == "repro-depend/1"
    assert json.loads(json.dumps(doc)) == doc


# ---------------------------------------------------------------------- #
# mutations: injected dependences flip verdicts (>= 3 per app)

@pytest.mark.parametrize("app", APPS)
def test_injected_dependences_flip_verdicts(app):
    program = app_program(app)
    assert eligible_mutation_targets(program)
    flips = 0
    for seed in range(3):
        mutated, mut = inject_dependence(program, seed=seed)
        verdict = analyze_program(mutated).verdicts[mut.family].verdict
        assert verdict != PROVEN_PARALLEL, \
            f"{app} seed {seed}: {mut.describe()} did not flip"
        flips += 1
    assert flips >= 3


def test_mutation_is_declaration_only():
    """The kernels are untouched: the mutated program still computes
    the same numbers (mutations must stay shadow-lint-safe)."""
    from repro.compiler.seq import run_sequential
    program = app_program("jacobi")
    _v0, scalars0, _t = run_sequential(app_program("jacobi"))
    mutated, _mut = inject_dependence(program, seed=1)
    _v1, scalars1, _t = run_sequential(mutated)
    assert scalars0 == scalars1


def test_tag_family_strips_instance_and_array():
    assert tag_family("update[1]:g0") == "update"
    assert tag_family("stencil:u") == "stencil"
    assert tag_family("stats") == "stats"


# ---------------------------------------------------------------------- #
# cross-validation harness

def test_cross_check_app_jacobi_ok():
    from repro.eval.racecheck import cross_check_app
    rep = cross_check_app("jacobi", seeds=1, nprocs=4, mutations=1)
    assert rep.ok
    assert not rep.violations
    assert rep.flips == 1
    doc = rep.as_doc()
    assert doc["schema"] == "repro-crosscheck/1"
    assert "jacobi" in rep.format()

"""Message-passing runtimes: the MPL/PVMe analogs.

The paper's message-passing programs run on two libraries: the XHPF
compiler's runtime and TreadMarks both sit on *MPL* (IBM's user-level
messaging), while the hand-coded programs use *PVMe* (IBM's optimized PVM).
Both are buffered-send / blocking-receive libraries; we provide one
:class:`~repro.msg.endpoint.Comm` abstraction with tagged point-to-point
operations plus the usual collectives, and a thin PVMe-flavoured facade.

Payload sizes are computed from the actual numpy data transferred, so the
message/byte totals of Tables 2 and 3 come out of real traffic.
"""

from repro.msg.endpoint import Comm, payload_nbytes
from repro.msg.collectives import (bcast, reduce, allreduce, gather,
                                   allgather, alltoall, mp_barrier, scatter)
from repro.msg.pvme import Pvme

__all__ = [
    "Comm",
    "payload_nbytes",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "alltoall",
    "scatter",
    "mp_barrier",
    "Pvme",
]

"""DSM-level event counters (complementing the network's message counters).

The paper explains performance gaps in terms of shared-memory implementation
overheads — "twinning, diffing, and page faults".  These counters let the
evaluation harness report those events directly, and let tests assert
protocol behaviour (e.g. that Jacobi's interior pages never generate diff
traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DsmStats"]


@dataclass
class DsmStats:
    """Aggregate DSM protocol events, cluster-wide."""

    read_faults: int = 0
    write_faults: int = 0          # write traps on valid pages (twin creation)
    fetches: int = 0               # remote fetch round-trips (a fault may need several)
    twins_created: int = 0
    diffs_created: int = 0
    diffs_applied: int = 0
    diff_bytes_created: int = 0
    diff_bytes_applied: int = 0
    full_page_fetches: int = 0     # GC fallback whole-page transfers
    barriers: int = 0
    lock_acquires: int = 0
    lock_remote_acquires: int = 0
    invalidations: int = 0
    pushes: int = 0                # enhanced-interface data pushes
    aggregated_validates: int = 0  # enhanced-interface bulk fetches
    tree_reductions: int = 0       # §8 extension: tree reduction operations
    retransmissions: int = 0       # reliable-delivery re-sends (fault runs)
    # fast-path observability (wall-clock only; no virtual-time effect)
    fastpath_hits: int = 0         # ensure_* calls satisfied by mask/verdict
    fastpath_misses: int = 0       # ensure_* calls that walked the slow path
    region_cache_hits: int = 0     # region->pages memo hits
    epoch_bumps: int = 0           # acquire edges (apply_records calls)

    def snapshot(self) -> "DsmStats":
        return DsmStats(**vars(self))

    def delta(self, earlier: "DsmStats") -> "DsmStats":
        return DsmStats(**{k: getattr(self, k) - getattr(earlier, k)
                           for k in vars(self)})

    def summary(self) -> str:
        parts = [f"{k}={v}" for k, v in vars(self).items() if v]
        return "DsmStats(" + ", ".join(parts) + ")"

"""Enhanced compiler–DSM interface (Dwarkadas, Cox & Zwaenepoel, ASPLOS'96).

Section 8 of the paper credits three hand-applied optimizations to this
interface and shows they could be automated: *aggregating* data
communication, *merging* synchronization and data, and *pushing* data
instead of the DSM's default request–response.  The evaluation's
"Results of Hand Optimizations" paragraphs (Sections 5.1–5.4) all use them.

* :func:`validate` — aggregated fetch: bring a whole region up to date with
  **one** request/reply round-trip per writer instead of one per page, and
  without per-page fault overhead (requests are issued before the access).
  This is the "data aggregation" fix for Jacobi, Shallow and 3-D FFT.
* :class:`PushPayload` / :func:`push_regions` — at a release, send one's
  modifications of the pages under a region directly to the consumers
  (whole-page diffs, i.e. eager rather than lazy propagation).
* :func:`broadcast` — one-to-all propagation of a region from a processor
  that holds its current contents (MGS's ith-vector broadcast).  Combined
  with fork-message piggybacking this merges synchronization and data.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sim.machine import PAGE_SIZE
from repro.tmk.diffs import apply_diff, diff_nbytes
from repro.tmk.pagespace import ArrayHandle
from repro.tmk.protocol import (TAG_FETCH_REP, TAG_PUSH, TAG_TMK_REQ,
                                DiffRequest, TmkNode)

__all__ = ["validate", "push_regions", "broadcast", "PushPayload",
           "BcastPayload", "drain_pushes", "expect_pushes"]


def validate(node: TmkNode, handle: ArrayHandle, region=None,
             flat_indices=None, source=None) -> None:
    """Aggregated fetch of every invalid page under ``region``.

    Equivalent in outcome to faulting each page one at a time, but with one
    round-trip per *writer* (all that writer's needed pages batched) and no
    per-page fault traps.
    """
    if flat_indices is not None:
        node._note_access(handle, False, source, flat_indices=flat_indices)
        pages = handle.element_pages(flat_indices)
    elif region is not None:
        node._note_access(handle, False, source, region=region)
        pages = handle.region_pages(region)
    else:
        node._note_access(handle, False, source,
                          region=tuple(slice(None) for _ in handle.shape))
        pages = np.asarray(list(handle.pages()))
    fs = node.fast
    if fs.enabled:
        # mask-True pages are guaranteed valid; only the rest need a look
        pages = pages[~fs.valid[pages]]
    by_writer: dict[int, list] = {}
    metas = {}
    for page in pages.tolist():
        m = node.meta(page)
        if m.valid:
            continue
        metas[page] = m
        for w, from_id in m.missing_writers():
            by_writer.setdefault(w, []).append((page, from_id))
    if not metas:
        return
    node.world.dsm_stats.aggregated_validates += 1
    proc = node.env.proc
    for w, batch in sorted(by_writer.items()):
        req = DiffRequest(reply_to=node.pid, batch=batch)
        node.net.send(proc, node.pid, w, req, tag=TAG_TMK_REQ,
                      nbytes=req.nbytes(), category="diff_req")
    replies_by_page: dict[int, list] = {p: [] for p in metas}
    for w in sorted(by_writer):
        msg = node.net.recv(proc, node.pid, src=w, tag=TAG_FETCH_REP)
        for page, diffs, full_page, full_label, full_applied in msg.payload.batch:
            replies_by_page[page].append(
                (w, _Part(diffs, full_page, full_label, full_applied)))
    for page, m in metas.items():
        node._apply_replies(page, m, replies_by_page[page])
        m.valid = True
        fs.valid[page] = True


class _Part:
    """Adapter: one page's slice of a batched reply, shaped like DiffReply."""

    __slots__ = ("diffs", "full_page", "full_label", "full_applied")

    def __init__(self, diffs, full_page, full_label, full_applied):
        self.diffs = diffs
        self.full_page = full_page
        self.full_label = full_label
        self.full_applied = full_applied


# ---------------------------------------------------------------------- #
# push: eager propagation of one's own modifications at a release point

def push_regions(node: TmkNode, regions: Sequence, dests: Iterable[int]) -> None:
    """Send this node's modifications of the pages under ``regions`` to
    ``dests``, ahead of (instead of) their demand fetches.

    Must be called at a release point *before* the synchronization that
    would otherwise invalidate the consumers (the barrier/fork still runs;
    consumers simply find the pages already current).  Pushes whole-page
    diffs, so receivers hold exactly what a demand fetch would have built.
    """
    payload = PushPayload.build(node, regions)
    if payload is None:
        return
    proc = node.env.proc
    mon = getattr(node.world, "race_monitor", None)
    snap = mon.release(node.pid) if mon is not None else None
    for dst in dests:
        if dst == node.pid:
            continue
        node.net.send(proc, node.pid, dst, payload, tag=TAG_PUSH,
                      nbytes=payload.nbytes_on_wire, category="data")
        if mon is not None:
            mon.channel_put(node.pid, dst, "push", snap)
        node.world.dsm_stats.pushes += 1


def drain_pushes(node: TmkNode) -> None:
    """Install any pushed data that has arrived (call right after the
    synchronization operation that follows the producers' pushes)."""
    proc = node.env.proc
    mon = getattr(node.world, "race_monitor", None)
    while node.net.probe(node.pid, tag=TAG_PUSH):
        msg = node.net.recv(proc, node.pid, tag=TAG_PUSH)
        msg.payload.install(node)
        if mon is not None:
            mon.channel_acquire(node.pid, msg.src, "push")


def expect_pushes(node: TmkNode, count: int) -> None:
    """Blockingly install exactly ``count`` pushed messages."""
    proc = node.env.proc
    mon = getattr(node.world, "race_monitor", None)
    for _ in range(count):
        msg = node.net.recv(proc, node.pid, tag=TAG_PUSH)
        msg.payload.install(node)
        if mon is not None:
            mon.channel_acquire(node.pid, msg.src, "push")


class PushPayload:
    """Diffs of the sender's dirty pages under some regions.

    Also serves as the fork-message piggyback payload ("merging
    synchronization and data"): :meth:`install` applies the diffs and
    advances the receiver's applied watermarks so the accompanying write
    notices do not re-invalidate the pages.
    """

    def __init__(self, sender: int, entries: list, nbytes_on_wire: int):
        self.sender = sender
        self.entries = entries      # [(page, top, wm, okey, diff)]
        self.nbytes_on_wire = nbytes_on_wire

    @classmethod
    def build(cls, node: TmkNode, regions: Sequence) -> "PushPayload | None":
        """Build from the sender's current modifications.

        Pushing is an (eager) release of the sender's writes, so the open
        interval is closed here: the entries' watermarks then cover it and
        the accompanying synchronization's write notices do not
        re-invalidate the receivers.  The release/fork that follows simply
        finds the interval already closed.
        """
        node.close_interval()
        entries = []
        total = 16
        seen_pages = set()
        for handle, region in regions:
            for page in handle.region_pages(region).tolist():
                if page in seen_pages:
                    continue
                seen_pages.add(page)
                m = node.meta(page)
                if m.dirty:
                    node._create_diff(page, m, charge=node.env.proc)
                cached = node.diff_cache.get(page, [])
                if not cached:
                    continue
                entry = cached[-1]
                entries.append((page, entry.top, entry.wm, entry.okey,
                                entry.diff))
                total += diff_nbytes(entry.diff) + 16
        if not entries:
            return None
        return cls(node.pid, entries, total)

    def install(self, node: TmkNode) -> None:
        model = node.model
        proc = node.env.sim.current
        for page, top, wm, okey, diff in self.entries:
            m = node.meta(page)
            if top <= m.applied.get(self.sender, 0):
                continue
            if any(w != self.sender for w, _f in m.missing_writers()):
                # content from other writers with possibly *older* intervals
                # is still outstanding; applying this (newer) diff first
                # would let the later demand fetch regress its words.  Drop
                # the push — the demand path merges everything in order.
                continue
            if m.dirty:
                node._create_diff(page, m, charge=proc)
            apply_diff(node.page_bytes(page), diff)
            proc.hold(model.diff_apply_time(diff_nbytes(diff)))
            node.world.dsm_stats.diffs_applied += 1
            node.world.dsm_stats.diff_bytes_applied += diff_nbytes(diff)
            m.applied[self.sender] = max(m.applied.get(self.sender, 0), wm)
            if not m.missing_writers():
                m.valid = True
                node.fast.valid[page] = True


class BcastPayload:
    """Full page images from a holder of the *current* contents.

    The sync+data merge the paper applies to MGS: the master, having just
    normalized the ith vector (and therefore holding the complete newest
    page), attaches the page images to the fork message; receivers install
    them and mark every pending notice satisfied — no faults, no separate
    broadcast messages.  Unlike :class:`PushPayload` (diffs of the sender's
    own writes), an image subsumes all writers, so ordering is moot.
    """

    def __init__(self, sender: int, images: list, nbytes_on_wire: int):
        self.sender = sender
        self.images = images      # [(page, bytes, applied, wm, okey)]
        self.nbytes_on_wire = nbytes_on_wire

    @classmethod
    def build(cls, node: TmkNode, regions: Sequence) -> "BcastPayload | None":
        node.close_interval()
        images = []
        nbytes = 16
        proc = node.env.proc
        for handle, region in regions:
            for page in handle.region_pages(region).tolist():
                m = node.meta(page)
                if m.missing_writers():
                    raise RuntimeError(
                        f"BcastPayload from a stale holder (page {page}); "
                        f"the sender must fault the region in first")
                if m.dirty:
                    node._create_diff(page, m, charge=proc)
                wm = m.last_closed if page in node.open_writes \
                    else m.last_written
                images.append((page, node.page_bytes(page).tobytes(),
                               dict(m.applied), wm,
                               m.last_okey or (0, node.pid)))
                nbytes += PAGE_SIZE + 16
        if not images:
            return None
        return cls(node.pid, images, nbytes)

    def install(self, node: TmkNode) -> None:
        proc = node.env.sim.current
        model = node.model
        for page, image, sender_applied, wm, _okey in self.images:
            m = node.meta(page)
            if m.dirty:
                node._create_diff(page, m, charge=proc)
            node.page_bytes(page)[:] = np.frombuffer(image, dtype=np.uint8)
            proc.hold(model.diff_apply_time(len(image)))
            for w, lbl in sender_applied.items():
                m.applied[w] = max(m.applied.get(w, 0), lbl)
            m.applied[self.sender] = max(m.applied.get(self.sender, 0), wm)
            for w in list(m.pending):
                m.applied[w] = max(m.applied.get(w, 0), m.pending[w])
            m.valid = True
            node.fast.valid[page] = True
            node.world.dsm_stats.pushes += 1


# ---------------------------------------------------------------------- #
# broadcast: one-to-all region propagation from an up-to-date holder

def broadcast(node: TmkNode, handle: ArrayHandle, region, root: int) -> None:
    """Propagate ``region``'s pages from ``root`` to every processor.

    The root must hold the current contents of those pages (it typically
    just wrote or faulted them).  Receivers install full page images and
    mark every pending notice satisfied.  Used for MGS's ith vector, where
    the paper modified TreadMarks to use a broadcast.
    """
    proc = node.env.proc
    mon = getattr(node.world, "race_monitor", None)
    pages = handle.region_pages(region).tolist()
    if node.pid == root:
        images = []
        nbytes = 16
        for page in pages:
            m = node.meta(page)
            if m.dirty:
                node._create_diff(page, m, charge=proc)
            # claimable watermark: only closed intervals (see protocol.py)
            root_wm = m.last_closed if page in node.open_writes \
                else m.last_written
            images.append((page, node.page_bytes(page).tobytes(),
                           dict(m.applied),
                           root_wm, (m.last_okey or (0, root))))
            nbytes += PAGE_SIZE + 16
        snap = mon.release(node.pid) if mon is not None else None
        for dst in range(node.nprocs):
            if dst == root:
                continue
            node.net.send(proc, node.pid, dst, images, tag=TAG_PUSH,
                          nbytes=nbytes, category="data")
            if mon is not None:
                mon.channel_put(node.pid, dst, "bcast", snap)
    else:
        msg = node.net.recv(proc, node.pid, src=root, tag=TAG_PUSH)
        if mon is not None:
            mon.channel_acquire(node.pid, root, "bcast")
        for page, image, root_applied, root_last, _okey in msg.payload:
            m = node.meta(page)
            if m.dirty:
                node._create_diff(page, m, charge=proc)
            node.page_bytes(page)[:] = np.frombuffer(image, dtype=np.uint8)
            # our own preserved modifications survive only if the root had
            # them; the usage contract (root up to date) guarantees it
            for w, lbl in root_applied.items():
                m.applied[w] = max(m.applied.get(w, 0), lbl)
            m.applied[root] = max(m.applied.get(root, 0), root_last,
                                  m.pending.get(root, 0))
            for w in list(m.pending):
                m.applied[w] = max(m.applied.get(w, 0), m.pending[w])
            m.valid = True
            node.fast.valid[page] = True

"""Wall-clock benchmark harness: ``python -m repro bench``.

Everything else in the repository measures *virtual* time — the simulated
platform's behaviour, independent of Python's speed.  This package measures
the one thing virtual time deliberately hides: how fast the simulator
itself runs.  The ROADMAP's "as fast as the hardware allows" north star
needs a measured trajectory, and perf work needs a regression gate.

See :mod:`repro.bench.wallclock` for the kernels, the calibration scheme
that makes wall-clock gating portable across machines, and the JSON result
format (``benchmarks/results/BENCH_wallclock.json``);
:mod:`repro.bench.throughput` measures runs/min through the
:mod:`repro.serve` worker pool against a serial baseline and gates on a
host-calibrated SLO.
"""

from repro.bench.throughput import (check_throughput, default_slo,
                                    run_throughput)
from repro.bench.wallclock import (BENCH_KERNELS, calibrate, check_regression,
                                   load_baseline, run_bench)

__all__ = ["BENCH_KERNELS", "calibrate", "check_regression", "load_baseline",
           "run_bench", "run_throughput", "check_throughput", "default_slo"]

"""Cost model for the simulated machine.

The paper's platform is an 8-node IBM SP/2 (thin nodes, AIX 3.2.5) with the
high-performance two-level crossbar switch, using the user-level MPL
communication library.  We model it with a small set of constants:

* a message costs ``send_overhead`` CPU seconds at the sender, then arrives
  ``latency + nbytes * byte_time`` later, and costs ``recv_overhead`` CPU
  seconds at the receiver when consumed (a LogGP-flavoured model);
* DSM-specific software costs: page-fault handling (the SIGSEGV/mprotect
  analog), twin creation, diff creation and application (with per-byte
  terms) — these match the overheads Section 5 of the paper attributes to
  "detecting modifications to shared memory (twinning, diffing, and page
  faults)";
* computation is charged explicitly by the applications through
  per-element costs calibrated so that single-processor virtual times
  reproduce Table 1 of the paper (see :mod:`repro.eval.constants`).

The defaults below are taken from published SP/2 / TreadMarks measurements
of the era: ~60 us small-message one-way latency through MPL, ~35 MB/s
point-to-point bandwidth, and page-fault + protocol handling on the order of
a hundred microseconds.  Absolute fidelity is not the goal (the paper itself
warns results are platform-specific); preserving the *ratios* that drive the
paper's conclusions is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineModel", "SP2_MODEL"]

PAGE_SIZE = 4096
"""Shared-memory page size in bytes (AIX used 4 KB pages)."""


@dataclass(frozen=True)
class MachineModel:
    """All tunable costs of the simulated platform, in seconds (or bytes)."""

    nprocs: int = 8

    # --- network (MPL user-level messaging over the SP/2 switch) ---------
    latency: float = 150e-6
    """One-way latency for a message through user-level MPL (the paper's
    era reported 100-200 us small-message latencies)."""
    byte_time: float = 1.0 / 25e6
    """Transfer time per payload byte (~25 MB/s effective point-to-point
    through the user-level library)."""
    send_overhead: float = 60e-6
    """CPU time at the sender per message (user-level MPL send path)."""
    recv_overhead: float = 60e-6
    """CPU time at the receiver per message consumed."""

    # --- DSM software costs (TreadMarks) ----------------------------------
    page_size: int = PAGE_SIZE
    fault_overhead: float = 300e-6
    """Kernel trap + signal delivery + handler dispatch per simulated page
    fault (SIGSEGV + mprotect on AIX 3.2.5).  The resulting end-to-end
    remote miss is ~1.5 ms, the upper range of published TreadMarks
    microbenchmarks on networks of this class."""
    twin_overhead: float = 100e-6
    """Copying a page to create a twin (4 KB bcopy plus mprotect)."""
    diff_create_overhead: float = 150e-6
    diff_create_byte_time: float = 25e-9
    """Word-compare of page against twin: fixed + per-byte-scanned cost."""
    diff_apply_overhead: float = 60e-6
    diff_apply_byte_time: float = 15e-9
    """Patching a page with a received diff."""
    protocol_overhead: float = 60e-6
    """Misc. protocol bookkeeping per remote request served."""
    write_notice_bytes: int = 8
    """Wire size of one write-notice *run* (first page + count); notices for
    consecutive pages are run-length encoded."""
    interval_header_bytes: int = 16
    """Wire size of an interval record header (proc, id, vtsum, run count)."""
    message_header_bytes: int = 32
    """Envelope bytes added to every message's transfer time (not payload
    accounting; Tables 2/3 in the paper report payload kilobytes)."""

    # --- message-passing runtime buffering ---------------------------------
    mp_packet_bytes: int = 4096
    """The XHPF run-time system transfers array sections through a bounded
    internal buffer; large broadcasts are segmented into packets of this
    size.  (This reproduces the per-message granularity visible in the
    paper's Table 3, where the XHPF data/message ratio is ~4 KB.)
    Hand-coded PVMe sends are *not* segmented."""

    def message_time(self, nbytes: int) -> float:
        """Wire time from end-of-send to delivery for an ``nbytes`` payload."""
        return self.latency + (nbytes + self.message_header_bytes) * self.byte_time

    def diff_create_time(self, page_bytes: int) -> float:
        return self.diff_create_overhead + page_bytes * self.diff_create_byte_time

    def diff_apply_time(self, diff_bytes: int) -> float:
        return self.diff_apply_overhead + diff_bytes * self.diff_apply_byte_time

    def with_(self, **kw) -> "MachineModel":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kw)


SP2_MODEL = MachineModel()
"""Default calibration: the 8-node SP/2 of the paper."""

"""Tests for the protocol tracer — and the protocol invariants it exposes."""

import numpy as np
import pytest

from repro.tmk.api import tmk_run
from repro.tmk.trace import ProtocolTrace, TraceEvent


def setup(space):
    space.alloc("x", (4, 1024), np.float32)


def traced_run(prog, nprocs=3, **kw):
    return tmk_run(nprocs, prog, setup, trace=True, **kw)


def _exchange(tmk):
    x = tmk.array("x")
    lo, hi = tmk.block_range(4)
    for it in range(3):
        if hi > lo:
            cur = x.read((slice(lo, hi),)).copy()
            x.write((slice(lo, hi),), cur + 1.0)
        tmk.barrier()
        nxt = (tmk.pid + 1) % tmk.nprocs
        x.read((slice(nxt, nxt + 1),))
        tmk.barrier()
    return True


def test_trace_records_events():
    r = traced_run(_exchange)
    assert len(r.trace) > 0
    counts = r.trace.counts()
    assert counts.get("barrier", 0) == 6 * 3
    assert counts.get("fault", 0) > 0
    assert counts.get("twin", 0) > 0
    assert counts.get("interval-close", 0) > 0


def test_trace_query_filters():
    r = traced_run(_exchange)
    for ev in r.trace.query(kind="fault", pid=1):
        assert ev.kind == "fault" and ev.pid == 1
    pages = {ev.page for ev in r.trace.query(kind="fetch")}
    assert pages <= {0, 1, 2, 3}


def test_trace_page_history_readable():
    r = traced_run(_exchange)
    hist = r.trace.page_history(0)
    assert "p" in hist and "ms]" in hist
    assert r.trace.page_history(999).startswith("(no events")


def test_trace_event_str():
    ev = TraceEvent(0.001, 2, "fetch", 5, {"writers": [0]})
    s = str(ev)
    assert "p2" in s and "fetch" in s and "page=5" in s


def test_trace_capacity_bound():
    trace = ProtocolTrace(capacity=2)
    for i in range(5):
        trace.record(TraceEvent(0.0, 0, "fault", i))
    assert len(trace) == 2 and trace.dropped == 3


def test_untraced_run_has_no_overhead_hooks():
    r = tmk_run(2, _exchange, setup)
    assert not hasattr(r, "trace")


# ---------------------------------------------------------------------- #
# protocol invariants checked over the trace

def test_invariant_every_fetch_follows_invalidation():
    """A page is only fetched after a write notice invalidated it."""
    r = traced_run(_exchange, nprocs=4)
    invalidated_at: dict = {}
    for ev in r.trace.events:
        key = (ev.pid, ev.page)
        if ev.kind == "invalidate":
            invalidated_at[key] = ev.time
        elif ev.kind == "fetch":
            assert key in invalidated_at, (
                f"fetch without prior invalidation: {ev}")
            assert invalidated_at[key] <= ev.time


def test_invariant_fetch_targets_are_writers():
    """Every fetch goes only to processors that announced writes."""
    r = traced_run(_exchange, nprocs=4)
    writers_of: dict = {}
    for ev in r.trace.events:
        if ev.kind == "invalidate":
            writers_of.setdefault((ev.pid, ev.page), set()).add(
                ev.detail["writer"])
        elif ev.kind == "fetch":
            expected = writers_of.get((ev.pid, ev.page), set())
            assert set(ev.detail["writers"]) <= expected | {ev.pid}, ev


def test_invariant_trace_times_monotone():
    r = traced_run(_exchange)
    times = [ev.time for ev in r.trace.events]
    assert times == sorted(times)


def test_traced_and_untraced_runs_agree():
    """Tracing must not perturb the simulation."""
    a = tmk_run(3, _exchange, setup)
    b = traced_run(_exchange)
    assert a.time == b.time
    assert a.messages == b.messages

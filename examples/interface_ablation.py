#!/usr/bin/env python
"""Section 2.3's improved compiler-runtime interface, measured.

The SPF compiler needs fork-join semantics.  Implemented naively over the
existing TreadMarks interface, each parallel loop costs two barriers plus
two control-variable page faults per worker: 8(n-1) messages.  The
improved interface sends the control variables *on* the one-to-all
departure: 2(n-1).  This script runs the same compiled Jacobi both ways.

Run:  python examples/interface_ablation.py
"""

from repro.apps.jacobi import SPEC
from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.seq import sequential_time

NPROCS = 8
PARAMS = dict(n=1024, iters=10, warmup=1)


def run(improved: bool):
    prog = SPEC.build_program(PARAMS)
    options = SpfOptions(improved_interface=improved)
    return run_spf(prog, nprocs=NPROCS, options=options)


def main():
    seq = sequential_time(SPEC.build_program(PARAMS))
    timed_loops = 2 * PARAMS["iters"]    # 2 parallel loops per iteration

    print(f"Jacobi {PARAMS['n']}x{PARAMS['n']}, {NPROCS} processors, "
          f"{timed_loops} timed parallel-loop dispatches\n")
    print(f"{'interface':12s} {'fork-join msgs/loop':>20s} "
          f"{'total msgs':>11s} {'time (s)':>9s} {'speedup':>8s}")
    rows = {}
    data_msgs_per_loop = None
    for improved in (True, False):
        r = run(improved)
        label = "improved" if improved else "original"
        elapsed, wtraffic = r.window()
        rows[label] = r
        # the data faults (boundary exchange) are identical under either
        # interface; the difference per loop is pure fork-join machinery
        if improved:
            data_msgs_per_loop = (wtraffic.messages
                                  - wtraffic.by_category["sync"][0]) \
                / timed_loops
        per_loop = wtraffic.messages / timed_loops - data_msgs_per_loop
        print(f"{label:12s} {per_loop:20.1f} "
              f"{r.messages:11d} {elapsed:9.3f} {seq / elapsed:8.2f}")

    print(f"\npaper: 8(n-1) = {8 * (NPROCS - 1)} -> 2(n-1) = "
          f"{2 * (NPROCS - 1)} messages per parallel loop")
    ratio = rows["original"].messages / rows["improved"].messages
    print(f"ours: {ratio:.1f}x fewer messages with the improved interface, "
          "'a significant effect on execution time'")


if __name__ == "__main__":
    main()

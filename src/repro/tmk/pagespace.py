"""The global shared address space: allocation and region→page mathematics.

The shared address space is a flat range of bytes divided into fixed-size
pages.  Allocation is static (decided before a run, as with Fortran common
blocks "loaded in a standard location"): every processor computes the same
layout, so an :class:`ArrayHandle` is meaningful cluster-wide while the
*backing bytes* are per-processor copies managed by the coherence protocol.

The page mathematics here answer the one question the DSM needs: *which
pages does this access touch?*  Regions are numpy basic-indexing tuples
(ints and slices) against a C-order array; indirect (irregular) accesses
supply explicit element indices instead.  Fast paths cover the common cases
(contiguous row blocks; per-row spans) without per-element Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

import numpy as np

from repro.sim.machine import PAGE_SIZE

__all__ = ["ArrayHandle", "SharedSpace", "normalize_region", "region_nbytes",
           "merge_spans"]

Region = tuple  # tuple of ints/slices

_PAGES_CACHE_LIMIT = 1024   # distinct footprints memoized per handle


@dataclass(frozen=True)
class ArrayHandle:
    """A statically-allocated shared array: name, placement, and shape."""

    name: str
    offset: int        # byte offset in the shared space (page aligned)
    shape: tuple
    dtype: np.dtype
    space_id: int = 0
    # region -> pages memo (pure: the layout is static, so a normalized
    # region always maps to the same pages).  Excluded from eq/hash/repr;
    # handles are shared by every node of a run, which is fine for a memo.
    _pages_cache: dict = field(default_factory=dict, compare=False,
                               repr=False)

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.itemsize

    @property
    def first_page(self) -> int:
        return self.offset // PAGE_SIZE

    @property
    def last_page(self) -> int:
        return (self.offset + self.nbytes - 1) // PAGE_SIZE

    def pages(self) -> range:
        """All pages this array touches."""
        return range(self.first_page, self.last_page + 1)

    # ------------------------------------------------------------------ #
    # region -> byte spans -> pages

    def _strides(self) -> tuple:
        """C-order strides in bytes."""
        strides = []
        acc = self.itemsize
        for dim in reversed(self.shape):
            strides.append(acc)
            acc *= dim
        return tuple(reversed(strides))

    def region_pages(self, region: Region) -> np.ndarray:
        """Sorted unique page numbers touched by ``region``.

        ``region`` is a tuple of ints/slices, one per dimension (missing
        trailing dimensions mean "all of them", as in numpy).  The result is
        memoized per normalized region (and marked read-only); repeated
        identical footprints — every time-loop iteration — skip the page
        math entirely.
        """
        pages, _cached = self.pages_of(normalize_region(region, self.shape))
        return pages

    def pages_of(self, nregion: tuple) -> tuple:
        """(pages, cache_hit) for an *already-normalized* region."""
        pages = self._pages_cache.get(nregion)
        if pages is not None:
            return pages, True
        pages = self._compute_region_pages(nregion)
        pages.setflags(write=False)
        if len(self._pages_cache) >= _PAGES_CACHE_LIMIT:
            self._pages_cache.clear()
        self._pages_cache[nregion] = pages
        return pages, False

    def _compute_region_pages(self, region: tuple) -> np.ndarray:
        strides = self._strides()
        # Determine the innermost dimension from which the region is a full
        # contiguous run; everything inside collapses into one span length.
        span = self.itemsize
        d = len(self.shape) - 1
        while d >= 0:
            lo, hi = region[d]
            if lo == 0 and hi == self.shape[d]:
                span *= self.shape[d]
                d -= 1
            else:
                span *= (hi - lo)
                # offset of this partial dim folds into the base offsets
                break
        if d < 0:
            # whole array
            return np.arange(self.first_page, self.last_page + 1)
        # Offsets of each "row" (combination of indices in dims [0, d)) plus
        # the partial dim d start.
        lo_d, _hi_d = region[d]
        base = self.offset + lo_d * strides[d]
        outer_offsets = np.array([0], dtype=np.int64)
        for k in range(d):
            lo, hi = region[k]
            idx = np.arange(lo, hi, dtype=np.int64) * strides[k]
            outer_offsets = (outer_offsets[:, None] + idx[None, :]).ravel()
        starts = base + outer_offsets
        return _pages_of_spans(starts, span)

    def element_pages(self, flat_indices: Union[np.ndarray, Sequence[int]],
                      elem_span: int = 1) -> np.ndarray:
        """Pages touched by scattered elements (irregular/indirect access).

        ``flat_indices`` are C-order flat element indices; ``elem_span``
        widens each access to that many consecutive elements.
        """
        idx = np.asarray(flat_indices, dtype=np.int64)
        starts = self.offset + idx * self.itemsize
        return _pages_of_spans(starts, elem_span * self.itemsize)

    # ------------------------------------------------------------------ #
    # region -> byte runs (exact footprints, for the race detector)

    def region_byte_runs(self, region: Region) -> np.ndarray:
        """Merged global byte intervals touched by ``region``.

        Returns a ``(k, 2)`` int64 array of ``[start, stop)`` pairs in the
        shared space, sorted and non-overlapping.  Where :meth:`region_pages`
        rounds to page granularity for the coherence protocol, this keeps
        the exact bytes — the race detector needs them to tell a true
        overlap from mere false sharing within a page.
        """
        region = normalize_region(region, self.shape)
        strides = self._strides()
        span = self.itemsize
        d = len(self.shape) - 1
        while d >= 0:
            lo, hi = region[d]
            if lo == 0 and hi == self.shape[d]:
                span *= self.shape[d]
                d -= 1
            else:
                span *= (hi - lo)
                break
        if d < 0:
            return np.array([[self.offset, self.offset + self.nbytes]],
                            dtype=np.int64)
        lo_d, _hi_d = region[d]
        base = self.offset + lo_d * strides[d]
        outer_offsets = np.array([0], dtype=np.int64)
        for k in range(d):
            lo, hi = region[k]
            idx = np.arange(lo, hi, dtype=np.int64) * strides[k]
            outer_offsets = (outer_offsets[:, None] + idx[None, :]).ravel()
        return merge_spans(base + outer_offsets, span)

    def element_byte_runs(self, flat_indices: Union[np.ndarray, Sequence[int]],
                          elem_span: int = 1) -> np.ndarray:
        """Merged ``[start, stop)`` byte intervals of scattered elements."""
        idx = np.asarray(flat_indices, dtype=np.int64)
        starts = self.offset + idx * self.itemsize
        return merge_spans(starts, elem_span * self.itemsize)


def merge_spans(starts: np.ndarray, span: int) -> np.ndarray:
    """Merge equal-length spans ``[s, s+span)`` into sorted disjoint runs.

    Returns a ``(k, 2)`` int64 array of ``[start, stop)`` intervals;
    touching spans coalesce (``[0, 4)`` + ``[4, 8)`` -> ``[0, 8)``).
    """
    if starts.size == 0 or span <= 0:
        return np.empty((0, 2), dtype=np.int64)
    s = np.sort(np.asarray(starts, dtype=np.int64))
    run_stop = np.maximum.accumulate(s + span)
    breaks = np.nonzero(s[1:] > run_stop[:-1])[0] + 1
    first = np.concatenate(([0], breaks))
    last = np.concatenate((breaks, [s.size]))
    return np.stack([s[first], run_stop[last - 1]], axis=1)


def _pages_of_spans(starts: np.ndarray, span: int) -> np.ndarray:
    """Union of pages covered by ``[s, s+span)`` for each ``s`` in ``starts``."""
    if starts.size == 0 or span <= 0:
        return np.empty(0, dtype=np.int64)
    first = starts // PAGE_SIZE
    last = (starts + span - 1) // PAGE_SIZE
    width = int((last - first).max()) + 1
    if width == 1:
        return np.unique(first)
    # Each span covers up to `width` pages; enumerate and mask the overshoot.
    grid = first[:, None] + np.arange(width, dtype=np.int64)[None, :]
    mask = grid <= last[:, None]
    return np.unique(grid[mask])


def normalize_region(region, shape: tuple) -> tuple:
    """Canonicalize a numpy-style basic index into ``((lo, hi), ...)`` per dim.

    Ints become single-element ranges; missing trailing dims become full
    ranges; negative indices wrap; steps other than 1 are rejected (the
    applications and compiler only generate unit-stride regions — cyclic
    distributions are expressed as per-row index lists instead).
    """
    if not isinstance(region, tuple):
        region = (region,)
    if len(region) > len(shape):
        raise ValueError(f"region rank {len(region)} exceeds array rank {len(shape)}")
    out = []
    for d, dim in enumerate(shape):
        if d < len(region):
            r = region[d]
        else:
            r = slice(None)
        if isinstance(r, (int, np.integer)):
            i = int(r)
            if i < 0:
                i += dim
            if not (0 <= i < dim):
                raise IndexError(f"index {r} out of bounds for dim of size {dim}")
            out.append((i, i + 1))
        elif isinstance(r, slice):
            if r.step not in (None, 1):
                raise ValueError("strided regions are not supported; "
                                 "use element_pages for scattered access")
            lo, hi, _ = r.indices(dim)
            if hi < lo:
                hi = lo
            out.append((lo, hi))
        else:
            raise TypeError(f"unsupported region component {r!r}")
    return tuple(out)


def region_nbytes(region, shape: tuple, itemsize: int) -> int:
    """Payload size of a region in bytes."""
    norm = normalize_region(region, shape)
    n = 1
    for lo, hi in norm:
        n *= (hi - lo)
    return n * itemsize


class SharedSpace:
    """Static allocator for the global shared address space.

    Allocations are page-aligned (the SPF compiler "pads shared arrays to
    page boundaries in order to reduce false sharing"; hand-coded TreadMarks
    programs get page-aligned allocations from ``Tmk_malloc`` as well).
    Optionally, ``pad_to_page=False`` packs allocations back-to-back to let
    experiments *induce* false sharing deliberately.
    """

    def __init__(self, page_size: int = PAGE_SIZE):
        if page_size != PAGE_SIZE:
            raise ValueError("page size is fixed by the machine model")
        self.page_size = page_size
        self._cursor = 0
        self.arrays: dict[str, ArrayHandle] = {}

    def alloc(self, name: str, shape, dtype, pad_to_page: bool = True) -> ArrayHandle:
        if name in self.arrays:
            raise ValueError(f"shared array {name!r} already allocated")
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in (shape if isinstance(shape, (tuple, list)) else (shape,)))
        if any(s <= 0 for s in shape):
            raise ValueError(f"bad shape {shape}")
        if pad_to_page:
            self._cursor = _round_up(self._cursor, self.page_size)
        else:
            self._cursor = _round_up(self._cursor, dtype.itemsize)
        handle = ArrayHandle(name=name, offset=self._cursor, shape=shape,
                             dtype=dtype)
        self._cursor += handle.nbytes
        self.arrays[name] = handle
        return handle

    @property
    def nbytes(self) -> int:
        """Total allocated span, rounded up to whole pages."""
        return _round_up(self._cursor, self.page_size)

    @property
    def npages(self) -> int:
        return self.nbytes // self.page_size

    def __getitem__(self, name: str) -> ArrayHandle:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    def handles(self) -> Iterable[ArrayHandle]:
        return self.arrays.values()


def _round_up(x: int, align: int) -> int:
    return (x + align - 1) // align * align

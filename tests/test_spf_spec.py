"""Tests for the speculative SPF backend (repro.compiler.spf_spec)."""

import numpy as np
import pytest

from repro.apps.common import get_app
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Program, Reduction, SeqBlock,
                               Span)
from repro.compiler.seq import run_sequential
from repro.compiler.spf import SpfOptions
from repro.compiler.spf_spec import (compile_spf_spec, run_spf_spec)
from repro.tmk.api import tmk_run
from repro.tmk.pagespace import SharedSpace


def app_program(app, preset="test"):
    spec = get_app(app)
    return spec.build_program(spec.params(preset))


# ---------------------------------------------------------------------- #
# synthetic programs

def racy_program():
    """Every iteration scatter-writes x[0]: a true race the engine cannot
    see (Irregular footprint) — the speculation must fail and fall back."""

    def init(views):
        views["x"][:] = 1.0

    def fp(views, lo, hi):
        return np.array([0], dtype=np.int64)

    def racy_kernel(views, lo, hi):
        views["x"][0] += hi - lo

    def check_kernel(views, lo, hi):
        return {"xval": float(views["x"][lo:hi].sum(dtype=np.float64))}

    return Program(
        "racy",
        arrays=[ArrayDecl("x", (32, 1), np.float64, distribute=0)],
        body=[SeqBlock("init", init,
                       writes=[Access("x", (Full(), Full()))], cost=1e-6),
              Mark("start"),
              ParallelLoop("scatter", 32, racy_kernel,
                           reads=[Access("x", Irregular(fp))],
                           writes=[Access("x", Irregular(fp))],
                           cost_per_iter=1e-6),
              ParallelLoop("check", 32, check_kernel,
                           reads=[Access("x", (Span(), Full()))],
                           reductions=[Reduction("xval")],
                           cost_per_iter=1e-6),
              Mark("stop")])


def recurrence_program():
    """x[i] depends on x[i-1]: a confirmed loop-carried flow dependence
    the engine proves serial."""

    def init(views):
        views["x"][:] = 0.0
        views["x"][0] = 1.0

    def chain_kernel(views, lo, hi):
        x = views["x"]
        for r in range(max(lo, 1), hi):
            x[r] = 0.5 * x[r - 1] + 1.0

    def check_kernel(views, lo, hi):
        return {"tot": float(views["x"][lo:hi].sum(dtype=np.float64))}

    return Program(
        "chain",
        arrays=[ArrayDecl("x", (64, 1), np.float64, distribute=0)],
        body=[SeqBlock("init", init,
                       writes=[Access("x", (Full(), Full()))], cost=1e-6),
              Mark("start"),
              ParallelLoop("chain", 64, chain_kernel,
                           reads=[Access("x", (Span(-1, 0), Full()))],
                           writes=[Access("x", (Span(), Full()))],
                           cost_per_iter=1e-6),
              ParallelLoop("check", 64, check_kernel,
                           reads=[Access("x", (Span(), Full()))],
                           reductions=[Reduction("tot")],
                           cost_per_iter=1e-6),
              Mark("stop")])


# ---------------------------------------------------------------------- #
# policies

def test_policy_summary_covers_all_three():
    exe = compile_spf_spec(racy_program(), nprocs=4)
    pol = exe.policy_summary()
    assert "scatter" in pol["speculate"]
    assert "check" in pol["parallel"]
    exe = compile_spf_spec(recurrence_program(), nprocs=4)
    pol = exe.policy_summary()
    assert "chain" in pol["serial"]
    assert "check" in pol["parallel"]


def test_proven_serial_runs_master_only_and_matches_oracle():
    _v, seq, _t = run_sequential(recurrence_program())
    r = run_spf_spec(recurrence_program(), nprocs=4)
    assert r.scalars["tot"] == seq["tot"]
    stats = r.speculation
    assert stats["verdicts"]["chain"] == "proven-serial"
    assert stats["serial_instances"] > 0
    assert stats["speculations"] == 0


def test_misspeculation_falls_back_to_sequential_semantics():
    _v, seq, _t = run_sequential(racy_program())
    r = run_spf_spec(racy_program(), nprocs=4)
    stats = r.speculation
    assert stats["verdicts"]["scatter"] == "unknown"
    assert stats["speculations"] == 1
    assert stats["misspeculations"] == 1
    assert stats["commits"] == 0
    assert stats["monitored"]
    # the re-executed result is exactly what the serial fallback computes
    assert r.scalars["xval"] == seq["xval"]


def test_no_monitor_degrades_to_serial_never_unchecked():
    exe = compile_spf_spec(racy_program(), nprocs=4)

    def setup(space: SharedSpace):
        exe.setup_space(space)

    def main(tmk):
        return exe.run_on(tmk)

    _v, seq, _t = run_sequential(racy_program())
    result = tmk_run(4, main, setup, racecheck=False)
    stats = exe.last_spec_stats
    assert not stats["monitored"]
    assert stats["speculations"] == 0
    assert stats["serial_instances"] > 0
    assert result.results[0]["xval"] == seq["xval"]


def test_push_halos_is_force_disabled():
    exe = compile_spf_spec(app_program("jacobi"), nprocs=4,
                           options=SpfOptions(push_halos=True))
    assert not exe.options.push_halos


# ---------------------------------------------------------------------- #
# the acceptance run: igrid's unproven loop speculates and commits

def test_igrid_speculates_commits_and_is_bit_identical():
    program = app_program("igrid")
    _v, seq, _t = run_sequential(app_program("igrid"))
    r = run_spf_spec(program, nprocs=8)
    stats = r.speculation
    assert stats["verdicts"]["update"] == "unknown"
    assert "update" in stats["policies"]["speculate"]
    assert stats["speculations"] > 0
    assert stats["misspeculations"] == 0
    assert stats["commits"] == stats["speculations"]
    # bit-identical to the sequential oracle (signature scalars are
    # exact sums over the final arrays)
    for key, val in seq.items():
        assert r.scalars[key] == val, key


# ---------------------------------------------------------------------- #
# the run API surface

def test_execute_surfaces_speculation_and_hides_internal_racecheck():
    from repro import RunRequest, run
    from repro.api.types import RunResult

    res = run(RunRequest("igrid", "spf_spec", nprocs=4, preset="test"))
    assert isinstance(res.speculation, dict)
    assert res.speculation["verdicts"]["update"] == "unknown"
    assert res.speculation["misspeculations"] == 0
    # racecheck was forced internally (the misspeculation detector) but
    # the caller did not ask for a race report
    assert res.races is None
    # the new field serializes
    back = RunResult.from_json(res.to_json())
    assert back.speculation == res.speculation


def test_execute_spf_spec_matches_spf_on_regular_app():
    from repro import RunRequest, run

    spec = run(RunRequest("jacobi", "spf_spec", nprocs=4, preset="test"))
    spf = run(RunRequest("jacobi", "spf", nprocs=4, preset="test"))
    assert spec.signature == spf.signature
    assert spec.speculation["speculations"] == 0
    assert spec.speculation["policies"]["serial"] == []

"""Efficient reduction support — the first §8 enhancement, implemented.

Section 8 of the paper: "These enhancements will include efficient support
for reductions ...".  The baseline SPF code (Section 2.1) reduces through a
lock-protected shared scalar: every processor acquires the lock, faults the
scalar's page across the machine, updates it, and releases — a serial chain
of lock forwards and page fetches (3 + 2 messages per processor, fully
serialized).

:func:`tmk_reduce` instead combines partial values up a binomial tree with
dedicated messages and hands the result to every processor on the way back
down: ``2(n-1)`` small messages, logarithmic depth, no page faults, no
locks.  It is a *synchronization* operation of the lazy-RC protocol exactly
like the fork-join pair: the upward combine is a release (interval records
ride along), the downward broadcast is an acquire — so shared-memory
consistency is preserved for programs that use the reduction as their only
synchronization point.

``SpfOptions(tree_reductions=True)`` makes the SPF backend emit this
primitive instead of the lock chain; ``benchmarks/test_ext_reductions.py``
measures the difference.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tmk.intervals import notice_payload_nbytes, records_unknown_to, SeenVector
from repro.tmk.protocol import TmkNode

__all__ = ["tmk_reduce", "REDUCE_OPS"]

TAG_REDUCE_UP = 1_000_006
TAG_REDUCE_DOWN = 1_000_007

REDUCE_OPS: dict = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
}


def _children(pid: int, nprocs: int) -> list:
    out = []
    lowbit = pid & -pid if pid else nprocs
    bit = 1
    while bit < nprocs and bit < lowbit:
        if pid + bit < nprocs:
            out.append(pid + bit)
        bit <<= 1
    return out


def _parent(pid: int) -> Optional[int]:
    if pid == 0:
        return None
    return pid & (pid - 1)


def tmk_reduce(node: TmkNode, value, op: Callable = None,
               op_name: str = "sum"):
    """Combine ``value`` across all processors; every processor returns the
    result.  A collective: all processors must call it together.

    Carries lazy-RC consistency information both ways, so it doubles as a
    global synchronization (like a barrier whose messages also do work).
    """
    if op is None:
        op = REDUCE_OPS[op_name]
    world = node.world
    world.dsm_stats.tree_reductions += 1
    proc = node.env.proc
    model = node.model
    nprocs = node.nprocs
    mon = getattr(world, "race_monitor", None)
    if nprocs == 1:
        node.close_interval()
        node.advance_epoch()
        return value

    node.close_interval()                     # release: our writes publish
    acc = value
    gathered: list = []
    for child in _children(node.pid, nprocs):
        msg = node.net.recv(proc, node.pid, src=child, tag=TAG_REDUCE_UP)
        child_value, records, seen = msg.payload
        acc = op(acc, child_value)
        node.apply_records(records, log=True)
        if mon is not None:
            mon.channel_acquire(node.pid, child, "reduce-up")
        gathered.append((child, seen))
    parent = _parent(node.pid)
    if parent is not None:
        records = list(node.log_current)
        payload = (acc, records, node.seen.as_tuple())
        nbytes = 16 + notice_payload_nbytes(
            records, model.interval_header_bytes, model.write_notice_bytes)
        if mon is not None:
            mon.channel_put(node.pid, parent, "reduce-up",
                            mon.release(node.pid))
        node.net.send(proc, node.pid, parent, payload, tag=TAG_REDUCE_UP,
                      nbytes=nbytes, category="sync")
        msg = node.net.recv(proc, node.pid, src=parent, tag=TAG_REDUCE_DOWN)
        result, records = msg.payload
        node.apply_records(records, log=True)
        if mon is not None:
            mon.channel_acquire(node.pid, parent, "reduce-down")
    else:
        result = acc
    # downward: result + the records each subtree is missing
    down_snap = mon.release(node.pid) if (mon is not None and gathered) \
        else None
    for child, child_seen in gathered:
        sv = SeenVector(nprocs)
        sv.v = list(child_seen)
        records = records_unknown_to(node.retained_log, sv)
        nbytes = 16 + notice_payload_nbytes(
            records, model.interval_header_bytes, model.write_notice_bytes)
        if mon is not None:
            mon.channel_put(node.pid, child, "reduce-down", down_snap)
        node.net.send(proc, node.pid, child, (result, records),
                      tag=TAG_REDUCE_DOWN, nbytes=nbytes, category="sync")
    node.prune_log()
    node.advance_epoch()
    return result

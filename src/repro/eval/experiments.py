"""Run any application in any of the paper's variants and collect metrics.

Variants
--------
``seq``      sequential oracle (Table 1 baseline; defines speedup = 1)
``spf``      compiler-generated shared memory (SPF -> TreadMarks)
``tmk``      hand-coded TreadMarks shared memory
``xhpf``     compiler-generated message passing (XHPF)
``pvme``     hand-coded message passing (PVMe)
``spf_opt``  SPF plus the paper's hand optimizations for that application
``spf_old``  SPF over the *original* (8(n-1)-message) fork-join interface
``xhpf_ie``  XHPF with CHAOS-style inspector-executor schedules (extension)

This module is now a thin facade over :mod:`repro.api` — the typed
``RunRequest``/``RunResult`` layer that the CLI, the run service
(:mod:`repro.serve`) and every harness share:

* :class:`VariantResult` is an **alias** of :class:`repro.api.RunResult`
  (same fields and semantics, plus service metadata; it gained
  ``to_json()``/``from_json()`` with the ``repro-run/1`` schema tag);
* :func:`run_variant` is a **deprecated shim**: it builds a
  :class:`~repro.api.RunRequest` and forwards to
  :func:`repro.api.execute`.  Old notebooks keep working (a
  ``DeprecationWarning`` tells them where to migrate);
* :func:`run_all_variants` drives the same path with a shared
  compiled-program cache (the sequential oracle runs once per app).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.api.execute import ProgramCache, execute
from repro.api.registry import FIGURE_VARIANTS, VARIANTS
from repro.api.types import (RunRequest, RunResult, fault_plan_to_doc,
                             machine_to_doc)
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel

__all__ = ["VariantResult", "run_variant", "run_all_variants", "VARIANTS"]

#: the historical result type — one class, one serializer, everywhere
VariantResult = RunResult


def request_from_legacy(app: str, variant: str, nprocs: int = 8,
                        preset: str = "bench",
                        model: Optional[MachineModel] = None,
                        seq_time: Optional[float] = None,
                        spf_options=None,
                        gc_epochs: Optional[int] = 8,
                        schedule_seed: Optional[int] = None,
                        racecheck: bool = False,
                        faults: Optional[FaultPlan] = None) -> RunRequest:
    """Map the historical ``run_variant`` kwargs sprawl onto a request."""
    options = None
    if spf_options is not None and variant == "spf":
        options = dict(vars(spf_options))
        if options.pop("piggyback", None) is not None:
            raise ValueError(
                "spf_options.piggyback is a callable and cannot cross the "
                "RunRequest boundary; drive repro.compiler.spf.compile_spf "
                "directly for piggybacked runs")
    return RunRequest(app=app, variant=variant, nprocs=nprocs,
                      preset=preset, machine=machine_to_doc(model),
                      options=options, gc_epochs=gc_epochs,
                      schedule_seed=schedule_seed, seq_time=seq_time,
                      racecheck=racecheck,
                      fault_plan=fault_plan_to_doc(faults))


def run_variant(app: str, variant: str, nprocs: int = 8,
                preset: str = "bench",
                model: Optional[MachineModel] = None,
                seq_time: Optional[float] = None,
                spf_options=None,
                gc_epochs: Optional[int] = 8,
                schedule_seed: Optional[int] = None,
                racecheck: bool = False,
                faults: Optional[FaultPlan] = None) -> VariantResult:
    """Deprecated shim: build a :class:`RunRequest` and execute it.

    Prefer::

        from repro.api import RunRequest, run
        run(RunRequest(app, variant, nprocs=..., preset=...))

    The semantics are unchanged: ``schedule_seed`` perturbs
    same-timestamp event ordering, ``racecheck=True`` attaches the
    happens-before monitor (DSM variants only), ``faults`` attaches a
    seeded :class:`~repro.sim.faults.FaultPlan` to the interconnect.
    """
    warnings.warn(
        "run_variant(app, variant, ...) is deprecated; build a "
        "repro.api.RunRequest and call repro.api.run() (or batch through "
        "repro.serve.RunService) instead",
        DeprecationWarning, stacklevel=2)
    return execute(request_from_legacy(
        app, variant, nprocs=nprocs, preset=preset, model=model,
        seq_time=seq_time, spf_options=spf_options, gc_epochs=gc_epochs,
        schedule_seed=schedule_seed, racecheck=racecheck, faults=faults))


def run_all_variants(app: str, nprocs: int = 8, preset: str = "bench",
                     variants: Optional[list] = None,
                     model: Optional[MachineModel] = None,
                     cache: Optional[ProgramCache] = None,
                     jobs: int = 1, service=None,
                     fleet: Optional[list] = None) -> dict:
    """Run ``variants`` (default: the four of Figures 1/2 plus seq).

    One compiled-program cache spans the batch, and the sequential
    oracle's measured time seeds every later variant's speedup — the same
    contract as before, now through the unified API.

    ``jobs > 1`` (or ``service``, or ``fleet`` — remote ``"HOST:PORT"``
    specs) retires the variants through a
    :class:`~repro.serve.RunService` pool (or a
    :class:`~repro.serve.FleetService` over the fleet hosts) in two
    phases: the sequential oracle first (alone — its measured time seeds
    the others' speedups, exactly as the serial loop threads it), then
    the remaining variants concurrently.  Results are keyed in
    ``variants`` order either way.
    """
    if variants is None:
        variants = list(FIGURE_VARIANTS)
    machine = machine_to_doc(model)
    if jobs <= 1 and service is None and not fleet:
        cache = cache if cache is not None else ProgramCache()
        out: dict = {}
        seq_time = None
        for variant in variants:
            res = execute(RunRequest(app=app, variant=variant,
                                     nprocs=nprocs, preset=preset,
                                     machine=machine, seq_time=seq_time),
                          cache)
            out[variant] = res
            if variant == "seq":
                seq_time = res.time
        return out

    from repro.eval.parallel import run_requests
    own = None
    if service is None:
        if fleet:
            from repro.serve import FleetService
            service = own = FleetService(fleet)
        else:
            from repro.serve import RunService
            service = own = RunService(workers=jobs)
    try:
        out = {}
        seq_time = None
        if "seq" in variants:
            (seq_res,) = run_requests(
                [RunRequest(app=app, variant="seq", nprocs=nprocs,
                            preset=preset, machine=machine)],
                service=service)
            out["seq"] = seq_res
            seq_time = seq_res.time
        rest = [v for v in variants if v != "seq"]
        results = run_requests(
            [RunRequest(app=app, variant=v, nprocs=nprocs, preset=preset,
                        machine=machine, seq_time=seq_time) for v in rest],
            service=service)
        for variant, res in zip(rest, results):
            out[variant] = res
        return {v: out[v] for v in variants}
    finally:
        if own is not None:
            own.close()


"""Shallow: the shallow-water benchmark from NCAR.

Section 5.2 of the paper.  Thirteen equal-sized two-dimensional arrays in
wrap-around format; each iteration has three steps, each consisting of a
main loop that updates three to four arrays from some others, followed by
wrap-around copying of the modified arrays (two separate loops: boundary
*lines along* the partitioned dimension, parallelized; boundary *lines
across* it, sequential — executed by the master under SPF, which the paper
identifies as that variant's main extra communication).

The discretization is the classic SWM scheme (Sadourny's method, the same
one the benchmark implements): step 1 computes mass fluxes ``cu``/``cv``,
potential vorticity ``z`` and height ``h``; step 2 advances ``unew``/
``vnew``/``pnew``; step 3 applies Robert-Asselin time smoothing.  The
paper's Fortran partitions by column (column-major); this C-order version
partitions by row — identical layout in memory.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, append_signature_loops,
                               partial_signature, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Program, SeqBlock, Span, TimeLoop)
from repro.compiler.spf import SpfOptions

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# physics constants of the benchmark
DX = DY = 1.0e5
DT = 90.0
ALPHA = 0.001
PCF_A = 1.0e6

# per-element costs calibrated to ~40 s sequential at 1024^2 x 50 (Table 1
# row unreadable in the OCR; see eval/constants.py)
STEP1_COST = 250e-9
STEP2_COST = 330e-9
STEP3_COST = 220e-9
WRAP_COST = 30e-9

STATE = ["u", "v", "p"]
NEW = ["unew", "vnew", "pnew"]
OLD = ["uold", "vold", "pold"]
FLUX = ["cu", "cv", "z", "h"]
ALL_ARRAYS = STATE + NEW + OLD + FLUX          # the paper's 13 arrays

PRESETS = {
    "paper": dict(n=1024, iters=50, warmup=1),
    "bench": dict(n=1024, iters=8, warmup=1),
    "test": dict(n=64, iters=3, warmup=1),
}


# ---------------------------------------------------------------------- #
# kernels

def init_fields(a: dict, n: int) -> None:
    """Initial stream-function-derived velocity field and height."""
    idx = np.arange(n, dtype=np.float64)
    el = (n - 2) * DX
    pcf = (np.pi ** 2) * (PCF_A ** 2) / (el ** 2)
    x = 2.0 * np.pi * idx / (n - 2)
    psi = PCF_A * np.sin(x[:, None] / 2.0) ** 2 * np.sin(x[None, :] / 2.0) ** 2
    a["u"][...] = 0.0
    a["v"][...] = 0.0
    a["u"][1:, :] = -(psi[1:, :] - psi[:-1, :]) / DY
    a["v"][:, 1:] = (psi[:, 1:] - psi[:, :-1]) / DX
    a["p"][...] = (pcf * (np.cos(x[:, None]) + np.cos(x[None, :]))
                   + 50000.0) / 100.0
    for s, o in zip(STATE, OLD):
        a[o][...] = a[s]


def step1_rows(a: dict, lo: int, hi: int, n: int) -> None:
    """cu, cv, z, h for rows [lo, hi) ∩ [1, n-1)."""
    lo, hi = max(lo, 1), min(hi, n - 1)
    if hi <= lo:
        return
    fsdx, fsdy = 4.0 / DX, 4.0 / DY
    u, v, p = a["u"], a["v"], a["p"]
    i = slice(lo, hi)
    im1 = slice(lo - 1, hi - 1)
    ip1 = slice(lo + 1, hi + 1)
    j = slice(1, n - 1)
    jm1 = slice(0, n - 2)
    jp1 = slice(2, n)
    a["cu"][i, j] = 0.5 * (p[i, j] + p[im1, j]) * u[i, j]
    a["cv"][i, j] = 0.5 * (p[i, j] + p[i, jm1]) * v[i, j]
    a["z"][i, j] = ((fsdx * (v[i, j] - v[im1, j])
                     - fsdy * (u[i, j] - u[i, jm1]))
                    / (p[im1, jm1] + p[i, jm1] + p[im1, j] + p[i, j]))
    a["h"][i, j] = p[i, j] + 0.25 * (u[ip1, j] ** 2 + u[i, j] ** 2
                                     + v[i, jp1] ** 2 + v[i, j] ** 2)


def step2_rows(a: dict, lo: int, hi: int, n: int, tdt: float) -> None:
    """unew, vnew, pnew for rows [lo, hi) ∩ [1, n-1)."""
    lo, hi = max(lo, 1), min(hi, n - 1)
    if hi <= lo:
        return
    tdts8 = tdt / 8.0
    tdtsdx, tdtsdy = tdt / DX, tdt / DY
    cu, cv, z, h = a["cu"], a["cv"], a["z"], a["h"]
    i = slice(lo, hi)
    im1 = slice(lo - 1, hi - 1)
    ip1 = slice(lo + 1, hi + 1)
    j = slice(1, n - 1)
    jm1 = slice(0, n - 2)
    jp1 = slice(2, n)
    a["unew"][i, j] = (a["uold"][i, j]
                       + tdts8 * (z[i, jp1] + z[i, j])
                       * (cv[i, jp1] + cv[im1, jp1] + cv[im1, j] + cv[i, j])
                       - tdtsdx * (h[i, j] - h[im1, j]))
    a["vnew"][i, j] = (a["vold"][i, j]
                       - tdts8 * (z[ip1, j] + z[i, j])
                       * (cu[ip1, j] + cu[ip1, jm1] + cu[i, jm1] + cu[i, j])
                       - tdtsdy * (h[i, j] - h[i, jm1]))
    a["pnew"][i, j] = (a["pold"][i, j]
                       - tdtsdx * (cu[ip1, j] - cu[i, j])
                       - tdtsdy * (cv[i, jp1] - cv[i, j]))


def step3_rows(a: dict, lo: int, hi: int) -> None:
    """Time smoothing over rows [lo, hi) (no halo)."""
    i = slice(lo, hi)
    for s, nw, od in zip(STATE, NEW, OLD):
        a[od][i] = (a[s][i]
                    + ALPHA * (a[nw][i] - 2.0 * a[s][i] + a[od][i]))
        a[s][i] = a[nw][i]


def col_wrap_rows(a: dict, names: list, lo: int, hi: int, n: int) -> None:
    """Wrap boundary columns of own rows (parallel, local)."""
    i = slice(lo, hi)
    for name in names:
        a[name][i, 0] = a[name][i, n - 2]
        a[name][i, n - 1] = a[name][i, 1]


def row_wrap(a: dict, names: list, n: int) -> None:
    """Wrap boundary rows (the sequential wrap loop of the paper)."""
    for name in names:
        a[name][0, :] = a[name][n - 2, :]
        a[name][n - 1, :] = a[name][1, :]


# ---------------------------------------------------------------------- #
# IR description

def build_program(params: dict) -> Program:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    tdt = 2.0 * DT

    def halo(names):
        return [Access(name, (Span(-1, 1), Full())) for name in names]

    def rows(names):
        return [Access(name, (Span(), Full())) for name in names]

    def row_access(names, row_lo):
        return [Access(name, (Span(row_lo, row_lo + 1), Full()))
                for name in names]

    def wrap_stmts(names, tag):
        return [
            ParallelLoop(f"colwrap{tag}", n,
                         lambda views, lo, hi, _ns=tuple(names):
                             col_wrap_rows(views, list(_ns), lo, hi, n),
                         reads=rows(names), writes=rows(names),
                         align=(names[0], 0),
                         cost_per_iter=WRAP_COST * len(names)),
            SeqBlock(f"rowwrap{tag}",
                     lambda views, _ns=tuple(names):
                         row_wrap(views, list(_ns), n),
                     reads=(row_access(names, n - 2) + row_access(names, 1)),
                     writes=(row_access(names, 0)
                             + row_access(names, n - 1)),
                     cost=WRAP_COST * len(names) * n),
        ]

    iteration = (
        [ParallelLoop("step1", n,
                      lambda views, lo, hi: step1_rows(views, lo, hi, n),
                      reads=halo(STATE),
                      writes=rows(FLUX),
                      align=("cu", 0), cost_per_iter=STEP1_COST * n)]
        + wrap_stmts(FLUX, 1)
        + [ParallelLoop("step2", n,
                        lambda views, lo, hi: step2_rows(views, lo, hi, n,
                                                         tdt),
                        reads=halo(FLUX) + rows(OLD),
                        writes=rows(NEW),
                        align=("unew", 0), cost_per_iter=STEP2_COST * n)]
        + wrap_stmts(NEW, 2)
        + [ParallelLoop("step3", n,
                        lambda views, lo, hi: step3_rows(views, lo, hi),
                        reads=rows(STATE) + rows(NEW) + rows(OLD),
                        writes=rows(STATE) + rows(OLD),
                        align=("u", 0), cost_per_iter=STEP3_COST * n)]
    )

    program = Program(
        name="shallow",
        arrays=[ArrayDecl(name, (n, n), np.float32, distribute=0)
                for name in ALL_ARRAYS],
        body=[SeqBlock("init",
                       lambda views: init_fields(views, n),
                       writes=[Access(name, (Full(), Full()))
                               for name in STATE + OLD],
                       cost=20e-9 * n * n),
              TimeLoop("warmup", warmup, iteration),
              Mark("start"),
              TimeLoop("iterations", iters, iteration),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, ["p", "u", "v"])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks

def hand_tmk_setup(space, params: dict) -> None:
    n = params["n"]
    for name in ALL_ARRAYS:
        space.alloc(name, (n, n), np.float32)


def hand_tmk(tmk, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    arrays = {name: tmk.array(name) for name in ALL_ARRAYS}
    views = {name: arr.raw() for name, arr in arrays.items()}
    lo, hi = tmk.block_range(n)
    tdt = 2.0 * DT
    owns_first = lo == 0
    owns_last = hi == n

    if tmk.pid == 0:
        for name in STATE + OLD:
            arrays[name].writable()
        init_fields(views, n)
        tmk.compute(20e-9 * n * n)
    tmk.barrier()

    def read_halo(names):
        rlo, rhi = max(lo - 1, 0), min(hi + 1, n)
        for name in names:
            arrays[name].read((slice(rlo, rhi), slice(None)))

    def read_rows(names):
        for name in names:
            arrays[name].read((slice(lo, hi), slice(None)))

    def write_rows(names, wlo, whi):
        for name in names:
            arrays[name].writable((slice(wlo, whi), slice(None)))

    def wraps(names):
        """Boundary-line copies, done by the owning processors."""
        col_wrap_rows(views, names, lo, hi, n)        # local columns
        tmk.compute(WRAP_COST * len(names) * (hi - lo))
        if owns_first:
            for name in names:
                arrays[name].read((slice(n - 2, n - 1), slice(None)))
                arrays[name].writable((slice(0, 1), slice(None)))
                views[name][0, :] = views[name][n - 2, :]
        if owns_last:
            for name in names:
                arrays[name].read((slice(1, 2), slice(None)))
                arrays[name].writable((slice(n - 1, n), slice(None)))
                views[name][n - 1, :] = views[name][1, :]

    def one_iteration():
        read_halo(STATE)
        write_rows(FLUX, lo, hi)
        step1_rows(views, lo, hi, n)
        tmk.compute(STEP1_COST * n * (hi - lo))
        tmk.barrier()
        wraps(FLUX)
        tmk.barrier()
        read_halo(FLUX)
        read_rows(OLD)
        write_rows(NEW, lo, hi)
        step2_rows(views, lo, hi, n, tdt)
        tmk.compute(STEP2_COST * n * (hi - lo))
        tmk.barrier()
        wraps(NEW)
        tmk.barrier()
        write_rows(STATE + OLD, lo, hi)
        step3_rows(views, lo, hi)
        tmk.compute(STEP3_COST * n * (hi - lo))
        tmk.barrier()

    for _ in range(warmup):
        one_iteration()
    tmk.env.mark("start")
    for _ in range(iters):
        one_iteration()
    tmk.env.mark("stop")
    return partial_signature({k: views[k] for k in ("p", "u", "v")}, lo, hi)


# ---------------------------------------------------------------------- #
# hand-coded PVMe: aggregated halo exchange, owner-computes wraps

TAG_UP, TAG_DOWN, TAG_WRAP = 20, 21, 22


def hand_pvme(p, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    lo, hi = p.block_range(n)
    views = {name: np.zeros((n, n), dtype=np.float32) for name in ALL_ARRAYS}
    tdt = 2.0 * DT
    init_fields(views, n)   # replicated initialization (local, free)
    up, down = p.tid - 1, p.tid + 1
    owns_first, owns_last = lo == 0, hi == n
    first_owner, last_owner = 0, p.ntasks - 1

    def exchange(names):
        """One aggregated message per neighbour carrying all halo lines."""
        if up >= 0:
            p.send(up, np.stack([views[m][lo] for m in names]), tag=TAG_UP)
        if down < p.ntasks:
            p.send(down, np.stack([views[m][hi - 1] for m in names]),
                   tag=TAG_DOWN)
        if up >= 0:
            block = p.recv(src=up, tag=TAG_DOWN)
            for k, name in enumerate(names):
                views[name][lo - 1] = block[k]
        if down < p.ntasks:
            block = p.recv(src=down, tag=TAG_UP)
            for k, name in enumerate(names):
                views[name][hi] = block[k]

    def wraps(names):
        col_wrap_rows(views, names, lo, hi, n)
        p.compute(WRAP_COST * len(names) * (hi - lo))
        # rows n-2 and 1 travel to the owners of rows 0 and n-1
        if owns_last and not owns_first:
            p.send(first_owner, np.stack([views[m][n - 2] for m in names]),
                   tag=TAG_WRAP)
        if owns_first and not owns_last:
            p.send(last_owner, np.stack([views[m][1] for m in names]),
                   tag=TAG_WRAP)
        if owns_first:
            if not owns_last:
                block = p.recv(src=last_owner, tag=TAG_WRAP)
                for k, name in enumerate(names):
                    views[name][n - 2] = block[k]
            for name in names:
                views[name][0, :] = views[name][n - 2, :]
        if owns_last:
            if not owns_first:
                block = p.recv(src=first_owner, tag=TAG_WRAP)
                for k, name in enumerate(names):
                    views[name][1] = block[k]
            for name in names:
                views[name][n - 1, :] = views[name][1, :]

    def one_iteration():
        exchange(STATE)
        step1_rows(views, lo, hi, n)
        p.compute(STEP1_COST * n * (hi - lo))
        wraps(FLUX)
        exchange(FLUX)
        step2_rows(views, lo, hi, n, tdt)
        p.compute(STEP2_COST * n * (hi - lo))
        wraps(NEW)
        step3_rows(views, lo, hi)
        p.compute(STEP3_COST * n * (hi - lo))

    for _ in range(warmup):
        one_iteration()
    p.env.mark("start")
    for _ in range(iters):
        one_iteration()
    p.env.mark("stop")
    return partial_signature({k: views[k] for k in ("p", "u", "v")}, lo, hi)


SPEC = register(AppSpec(
    name="shallow",
    regular=True,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=["p", "u", "v"],
    spf_opt_options=lambda: SpfOptions(aggregate=True, fuse_loops=True),
    notes="Section 5.2; hand optimization = loop merging + aggregation",
))

"""Unit tests for interval records and vector times (repro.tmk.intervals)."""

import pytest

from repro.tmk.intervals import (IntervalRecord, SeenVector,
                                 notice_payload_nbytes, page_runs,
                                 records_unknown_to)


def rec(proc, id_, pages=(0,), vtsum=0):
    return IntervalRecord(proc=proc, id=id_, pages=tuple(pages), vtsum=vtsum)


def test_interval_ids_one_based():
    with pytest.raises(ValueError):
        rec(0, 0)


def test_seen_observe_in_order():
    sv = SeenVector(4)
    assert sv.observe(rec(1, 1))
    assert sv.observe(rec(1, 2))
    assert sv[1] == 2
    assert sv[0] == 0


def test_seen_observe_duplicate_is_noop():
    sv = SeenVector(4)
    assert sv.observe(rec(2, 1))
    assert not sv.observe(rec(2, 1))
    assert sv[2] == 1


def test_seen_observe_gap_raises():
    sv = SeenVector(4)
    with pytest.raises(RuntimeError):
        sv.observe(rec(0, 2))


def test_seen_copy_is_independent():
    sv = SeenVector(2)
    sv.observe(rec(0, 1))
    cp = sv.copy()
    sv.observe(rec(0, 2))
    assert cp[0] == 1 and sv[0] == 2


def test_merge_max_and_dominates():
    a = SeenVector(3)
    b = SeenVector(3)
    a.v = [3, 0, 1]
    b.v = [1, 2, 1]
    a.merge_max(b)
    assert a.v == [3, 2, 1]
    assert a.dominates(b)
    assert not b.dominates(a)


def test_records_unknown_to_filters_and_orders():
    sv = SeenVector(3)
    sv.v = [1, 0, 2]
    log = [rec(0, 1), rec(0, 2), rec(1, 1), rec(2, 3), rec(2, 2)]
    out = records_unknown_to(log, sv)
    assert [(r.proc, r.id) for r in out] == [(0, 2), (1, 1), (2, 3)]


def test_records_unknown_to_sorted_per_proc():
    sv = SeenVector(2)
    log = [rec(0, 3), rec(0, 1), rec(0, 2)]
    out = records_unknown_to(log, sv)
    assert [r.id for r in out] == [1, 2, 3]


def test_page_runs_counts_maximal_runs():
    assert page_runs(()) == 0
    assert page_runs((5,)) == 1
    assert page_runs((1, 2, 3)) == 1
    assert page_runs((1, 2, 4, 5, 9)) == 3


def test_notice_payload_run_length_encoding():
    """A block partition's write set is one run — barrier payloads stay
    small (why the paper's Table 2 data totals are tiny for TreadMarks)."""
    contiguous = rec(0, 1, pages=tuple(range(100)))
    scattered = rec(0, 1, pages=tuple(range(0, 200, 2)))
    small = notice_payload_nbytes([contiguous], 16, 8)
    large = notice_payload_nbytes([scattered], 16, 8)
    assert small == 16 + 8
    assert large == 16 + 8 * 100
    assert notice_payload_nbytes([], 16, 8) == 0


def test_vtsum_orders_happens_before():
    """a happens-before b => vtsum(a) < vtsum(b): the merge-order key."""
    # a closes with seen [1,0]; b (proc 1) observed a before closing
    a_close = SeenVector(2)
    a_close.observe(rec(0, 1))
    a = rec(0, 1, vtsum=sum(a_close.v))
    b_close = a_close.copy()
    b_close.observe(rec(1, 1))
    b = rec(1, 1, vtsum=sum(b_close.v))
    assert a.vtsum < b.vtsum

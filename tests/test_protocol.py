"""Integration tests for the lazy-invalidate RC protocol (repro.tmk.protocol).

These run small programs through the full DSM (real pages, real diffs) and
assert both data values and protocol-event behaviour.
"""

import numpy as np
import pytest

from repro.tmk.api import tmk_run


def setup_two_pages(space):
    space.alloc("x", (2, 1024), np.float32)   # 2 pages, one row each
    space.alloc("y", (4, 1024), np.float32)


def test_initially_all_pages_valid_zero():
    def prog(tmk):
        x = tmk.array("x")
        assert float(x.read().sum()) == 0.0
        return True

    r = tmk_run(3, prog, setup_two_pages)
    assert all(r.results)
    assert r.stats.messages == 0   # no communication for cold zeros


def test_single_writer_propagates_through_barrier():
    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((slice(0, 1),), 42.0)
        tmk.barrier()
        return float(x.read((0, 5)))

    r = tmk_run(4, prog, setup_two_pages)
    assert r.results == [42.0] * 4


def test_unread_pages_never_fetch_diffs():
    """Laziness: modifications that nobody reads generate no data traffic."""

    def prog(tmk):
        y = tmk.array("y")
        lo, hi = tmk.block_range(4)
        if hi > lo:
            y.write((slice(lo, hi),), float(tmk.pid + 1))
        tmk.barrier()
        # nobody reads anyone else's rows
        return float(y.read((slice(lo, hi),)).sum()) if hi > lo else 0.0

    r = tmk_run(4, prog, setup_two_pages)
    assert r.dsm_stats.diffs_created == 0
    assert r.dsm_stats.read_faults == 0
    assert r.stats.by_category.get("diff_req", [0, 0])[0] == 0


def test_read_fault_fetches_exactly_touched_pages():
    def prog(tmk):
        y = tmk.array("y")
        if tmk.pid == 0:
            y.write((slice(0, 4),), 3.0)   # all four pages
        tmk.barrier()
        if tmk.pid == 1:
            y.read((slice(2, 3),))          # only page 2
        return None

    r = tmk_run(2, prog, setup_two_pages)
    assert r.dsm_stats.read_faults == 1
    assert r.dsm_stats.fetches == 1
    assert r.stats.by_category["diff_req"][0] == 1


def test_write_fault_on_invalid_page_fetches_first():
    """Writing part of an invalid page must merge the remote content."""

    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((slice(0, 1),), 7.0)
        tmk.barrier()
        if tmk.pid == 1:
            x.write((0, slice(0, 4)), 9.0)   # partial write
            row = x.read((slice(0, 1),))[0]
            assert row[0] == 9.0 and row[4] == 7.0
        tmk.barrier()
        if tmk.pid == 0:
            row = x.read((slice(0, 1),))[0]
            return (float(row[0]), float(row[4]))

    r = tmk_run(2, prog, setup_two_pages)
    assert r.results[0] == (9.0, 7.0)


def test_multiple_writer_false_sharing_merges():
    """Two processors write disjoint words of the same page concurrently."""

    def prog(tmk):
        x = tmk.array("x")
        x.write((0, slice(tmk.pid * 10, tmk.pid * 10 + 10)),
                float(tmk.pid + 1))
        tmk.barrier()
        row = x.read((slice(0, 1),))[0]
        return [float(row[i * 10]) for i in range(tmk.nprocs)]

    r = tmk_run(4, prog, setup_two_pages)
    for res in r.results:
        assert res == [1.0, 2.0, 3.0, 4.0]


def test_twins_created_once_per_write_epoch():
    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((0, 0), 1.0)
            x.write((0, 1), 2.0)    # same page, same interval: no new twin
        tmk.barrier()
        return None

    r = tmk_run(2, prog, setup_two_pages)
    assert r.dsm_stats.twins_created == 1
    assert r.dsm_stats.write_faults == 1


def test_retwin_after_serving_diff():
    """After a diff is taken the page is write-protected again."""

    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((0, 0), 1.0)
        tmk.barrier()
        if tmk.pid == 1:
            x.read((0, 0))          # forces p0's diff
        tmk.barrier()
        if tmk.pid == 0:
            x.write((0, 0), 2.0)    # new twin
        tmk.barrier()
        return float(x.read((0, 0)))

    r = tmk_run(2, prog, setup_two_pages)
    assert r.results == [2.0, 2.0]
    assert r.dsm_stats.twins_created == 2


def test_sequential_writers_last_value_wins():
    """Lock-ordered writes to one word: merge order must follow
    happens-before (regression for the vtsum ordering bug)."""

    def prog(tmk):
        x = tmk.array("x")
        tmk.lock_acquire(0)
        cur = float(x.read((0, 0)))
        x.write((0, 0), cur + 2.0 ** tmk.pid)
        tmk.lock_release(0)
        tmk.barrier()
        return float(x.read((0, 0)))

    for n in (2, 3, 4, 8):
        r = tmk_run(n, prog, setup_two_pages)
        expect = float(sum(2.0 ** p for p in range(n)))
        assert r.results == [expect] * n, f"n={n}"


def test_repeated_epochs_accumulate_correctly():
    def prog(tmk):
        x = tmk.array("x")
        lo, hi = tmk.block_range(2)
        for it in range(5):
            if hi > lo:
                cur = x.read((slice(lo, hi),)).copy()
                x.write((slice(lo, hi),), cur + 1.0)
            tmk.barrier()
        total = float(x.read().sum())
        return total

    r = tmk_run(2, prog, setup_two_pages)
    assert r.results == [5.0 * 2 * 1024] * 2


def _laggard_program(tmk):
    """p0 writes each epoch; p2 reads each epoch (forcing a diff per epoch
    into p0's cache); p1 reads only at the very end."""
    x = tmk.array("x")
    for it in range(12):
        if tmk.pid == 0:
            x.write((slice(0, 1),), float(it + 1))
        tmk.barrier()
        if tmk.pid == 2:
            assert float(x.read((0, 0))) == float(it + 1)
        tmk.barrier()
    return float(x.read((0, 0)))


def test_gc_falls_back_to_full_page():
    """A processor that lags many epochs gets a whole-page transfer once
    the diffs it would need have been collected (TreadMarks post-GC
    behaviour)."""
    r = tmk_run(3, _laggard_program, setup_two_pages, gc_epochs=3)
    assert r.results == [12.0] * 3
    assert r.dsm_stats.full_page_fetches >= 1


def test_gc_disabled_serves_diffs():
    r = tmk_run(3, _laggard_program, setup_two_pages, gc_epochs=None)
    assert r.results == [12.0] * 3
    assert r.dsm_stats.full_page_fetches == 0


def test_own_modifications_survive_full_page_fallback():
    """Concurrent writer's full-page fallback must not erase local history."""

    def prog(tmk):
        x = tmk.array("x")
        # both write disjoint words of page 0 at epoch 0
        x.write((0, tmk.pid), float(tmk.pid + 1))
        tmk.barrier()
        # p0 keeps rewriting its word for many epochs; p1 stays away
        for it in range(10):
            if tmk.pid == 0:
                x.write((0, 0), float(10 + it))
            tmk.barrier()
        row = x.read((slice(0, 1),))[0]
        return (float(row[0]), float(row[1]))

    r = tmk_run(2, prog, setup_two_pages, gc_epochs=3)
    assert r.results == [(19.0, 2.0), (19.0, 2.0)]


def test_scatter_access_faults_only_touched_pages():
    def prog(tmk):
        y = tmk.array("y")
        if tmk.pid == 0:
            y.write((slice(0, 4),), 5.0)
        tmk.barrier()
        if tmk.pid == 1:
            vals = y.gather([0, 3 * 1024])    # pages 0 and 3 only
            return [float(v) for v in vals]
        return None

    r = tmk_run(2, prog, setup_two_pages)
    assert r.results[1] == [5.0, 5.0]
    assert r.dsm_stats.read_faults == 2


def test_scatter_add_read_modify_write():
    def prog(tmk):
        y = tmk.array("y")
        tmk.lock_acquire(0)
        y.scatter_add([2 * 1024 + tmk.pid], [1.0])
        tmk.lock_release(0)
        tmk.barrier()
        return float(y.read((slice(2, 3),)).sum())

    r = tmk_run(3, prog, setup_two_pages)
    assert r.results == [3.0] * 3


def test_message_accounting_request_plus_reply():
    """A page fault is two messages, as the paper counts them."""

    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((slice(0, 1),), 1.0)
        tmk.barrier()
        if tmk.pid == 1:
            x.read((slice(0, 1),))
        return None

    r = tmk_run(2, prog, setup_two_pages)
    assert r.stats.by_category["diff_req"][0] == 1
    assert r.stats.by_category["diff_rep"][0] == 1

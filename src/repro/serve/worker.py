"""The run-service worker process: one loop, one compiled-program cache.

Workers are plain ``multiprocessing`` processes (spawn context, so the
parent's simulator threads and locks never leak into a child).  Each
worker owns a :class:`~repro.api.execute.ProgramCache`; repeated requests
landing on the same worker skip IR lowering and codegen entirely.

Protocol with the parent (:class:`~repro.serve.service.RunService`) —
two simplex pipes per worker, never a shared queue:

* task pipe (parent writes, worker reads): ``("run", seq, request_doc)``
  or ``None`` (shutdown).  The parent assigns one task at a time and
  records the assignment on its side, so a worker that dies instantly
  can never take the identity of its in-flight request with it;
* result pipe (worker writes, parent reads): ``("done", worker_id, seq,
  result_doc, cache_stats)``.

Why pipes and not one shared result queue: a ``multiprocessing.Queue``
shared by many writers serializes them through a cross-process write
lock, and a worker hard-killed (``os._exit``, segfault, OOM) while its
feeder thread holds that lock poisons the queue for every surviving
writer — the pool would hang forever.  A simplex pipe has exactly one
writer, so a crash can only ever break that worker's own channel; the
parent sees EOF on it and turns the death into a structured
``WorkerCrashed`` result.

Exceptions raised by a run are converted to structured failure results
(``ok=False`` with the exception type and message) right here; only a
hard process death escapes, and the parent's liveness monitor handles
that.

``runner`` is a dotted path (``"module:attr"``) resolved inside the
worker — the default executes through :func:`repro.api.execute`; tests
inject crashing/failing runners the same way.
"""

from __future__ import annotations

import importlib
from typing import Optional

DEFAULT_RUNNER = "repro.serve.worker:default_runner"


def resolve_runner(path: str):
    """``"pkg.mod:attr"`` -> the callable it names."""
    module, sep, attr = path.partition(":")
    if not sep:
        raise ValueError(f"runner path {path!r} is not 'module:attr'")
    return getattr(importlib.import_module(module), attr)


def default_runner(request_doc: dict, cache):
    """Deserialize, execute through the unified API, serialize back."""
    from repro.api.execute import execute
    from repro.api.types import RunRequest

    request = RunRequest.from_json(request_doc)
    return execute(request, cache).to_json()


def worker_main(worker_id: int, task_conn, result_conn,
                runner_path: str = DEFAULT_RUNNER,
                cache_entries: int = 64) -> None:
    """Entry point of one worker process (runs until shutdown)."""
    from repro.api.execute import ProgramCache

    runner = resolve_runner(runner_path)
    cache = ProgramCache(max_entries=cache_entries)
    while True:
        try:
            item = task_conn.recv()
        except EOFError:       # parent went away: nothing left to serve
            break
        if item is None:
            break
        _kind, seq, request_doc = item
        doc = _run_one(runner, request_doc, cache, worker_id)
        result_conn.send(("done", worker_id, seq, doc, cache.stats()))


def _run_one(runner, request_doc: dict, cache,
             worker_id: Optional[int]) -> dict:
    from repro.api.types import RunRequest, RunResult

    try:
        doc = runner(request_doc, cache)
    except Exception as exc:   # noqa: BLE001 — structured, not fatal
        try:
            request = RunRequest.from_json(request_doc)
        except Exception:      # noqa: BLE001 — even the doc was bad
            request = RunRequest(app=str(request_doc.get("app", "?")),
                                 variant=str(request_doc.get("variant",
                                                             "?")))
        doc = RunResult.failure(request, error=str(exc),
                                error_kind=type(exc).__name__).to_json()
    doc["worker"] = worker_id
    return doc

"""Tests for the inspector-executor extension (repro.compiler.inspector)."""

import numpy as np
import pytest

from repro.apps.common import get_app, signatures_close
from repro.compiler.inspector import (CommSchedule, ScheduleCache,
                                      footprint_fingerprint, inspect_reads)
from repro.compiler.xhpf import XhpfOptions, run_xhpf
from repro.eval.experiments import run_variant


# ---------------------------------------------------------------------- #
# schedule machinery

def test_inspect_reads_groups_by_owner():
    owner_bounds = [(0, 4), (4, 8), (8, 12), (12, 16)]
    flat = np.array([0, 1, 5, 9, 13, 14]) * 8      # rows 0,1,5,9,13,14
    out = inspect_reads(flat, 8, owned=(4, 8), owner_bounds=owner_bounds)
    assert sorted(out) == [0, 2, 3]
    assert out[0].tolist() == [0, 1]
    assert out[2].tolist() == [9]
    assert out[3].tolist() == [13, 14]


def test_inspect_reads_empty_when_local():
    out = inspect_reads(np.array([32, 33]), 8, owned=(0, 16),
                        owner_bounds=[(0, 16)])
    assert out == {}


def test_fingerprint_stable_and_discriminating():
    a = np.arange(100)
    assert footprint_fingerprint(a) == footprint_fingerprint(a.copy())
    b = a.copy()
    b[5] += 1
    assert footprint_fingerprint(a) != footprint_fingerprint(b)
    assert footprint_fingerprint(np.empty(0, np.int64)) == 0


def test_schedule_cache_reuse_and_invalidation():
    cache = ScheduleCache()
    sched = CommSchedule(fingerprint=42)
    cache.store("loop", sched)
    assert cache.lookup("loop", 42) is sched
    assert cache.lookup("loop", 43) is None
    assert cache.lookup("other", 42) is None
    assert cache.inspections == 1 and cache.reuses == 1


# ---------------------------------------------------------------------- #
# end-to-end on the irregular applications

@pytest.mark.parametrize("app", ["igrid", "nbf"])
@pytest.mark.parametrize("nprocs", [2, 4])
def test_inspector_matches_sequential(app, nprocs):
    spec = get_app(app)
    seq = run_variant(app, "seq", preset="test")
    prog = spec.build_program(spec.params("test"))
    r = run_xhpf(prog, nprocs=nprocs,
                 options=XhpfOptions(inspector_executor=True))
    assert signatures_close(seq.signature, r.scalars, rtol=1e-6), (
        f"{app}/{nprocs}: {r.scalars} vs {seq.signature}")


@pytest.mark.parametrize("app", ["igrid", "nbf"])
def test_inspector_moves_far_less_data_than_broadcast(app):
    spec = get_app(app)
    prog = spec.build_program(spec.params("test"))
    insp = run_xhpf(prog, nprocs=4,
                    options=XhpfOptions(inspector_executor=True))
    bcast = run_xhpf(spec.build_program(spec.params("test")), nprocs=4)
    _el_i, wt_i = insp.window()
    _el_b, wt_b = bcast.window()
    assert wt_i.kilobytes < wt_b.kilobytes / 5


def test_inspector_runs_once_for_static_patterns():
    """The schedule is built on the first execution and reused after."""
    spec = get_app("nbf")
    prog = spec.build_program(spec.params("test"))
    hits = {}

    from repro.compiler import xhpf as xhpf_mod
    orig = xhpf_mod.XhpfExecutable._run_irregular_inspector

    def spy(self, env, comm, loop, views, scalars, state):
        orig(self, env, comm, loop, views, scalars, state)
        cache = state["__schedules__"]
        hits[env.pid] = (cache.inspections, cache.reuses)

    xhpf_mod.XhpfExecutable._run_irregular_inspector = spy
    try:
        run_xhpf(prog, nprocs=4,
                 options=XhpfOptions(inspector_executor=True))
    finally:
        xhpf_mod.XhpfExecutable._run_irregular_inspector = orig
    for pid, (inspections, reuses) in hits.items():
        assert inspections == 1, f"p{pid} re-inspected a static pattern"
        assert reuses >= 1


def test_inspector_deterministic():
    spec = get_app("igrid")
    runs = [run_xhpf(spec.build_program(spec.params("test")), nprocs=4,
                     options=XhpfOptions(inspector_executor=True))
            for _ in range(2)]
    assert runs[0].time == runs[1].time
    assert runs[0].stats.messages == runs[1].stats.messages

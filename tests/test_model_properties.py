"""Edge-case and property tests for the analytic model.

Structural invariants that must hold for *any* inputs, independent of
the agreement bounds in test_model_validation.py: one node means no
communication, predictions are pure functions of their inputs, message
counts for the message-passing variants cannot shrink as nodes are
added, and no machine parameterization can produce negative costs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.model import model_variant
from repro.eval.constants import APPS
from repro.sim.machine import SP2_MODEL

PRESET = "test"
MODELED = ["spf", "spf_old", "xhpf", "xhpf_ie"]


@pytest.mark.parametrize("variant", MODELED)
@pytest.mark.parametrize("app", APPS)
def test_one_node_degenerates_to_sequential(app, variant):
    res = model_variant(app, variant, nprocs=1, preset=PRESET)
    assert res.messages == 0 and res.kilobytes == 0.0
    assert res.total_messages == 0 and res.total_kilobytes == 0.0
    assert res.time > 0


@pytest.mark.parametrize("variant", MODELED)
def test_predictions_are_deterministic(variant):
    a = model_variant("mgs", variant, nprocs=4, preset=PRESET)
    b = model_variant("mgs", variant, nprocs=4, preset=PRESET)
    assert (a.time, a.messages, a.kilobytes) \
        == (b.time, b.messages, b.kilobytes)
    assert (a.total_messages, a.total_kilobytes) \
        == (b.total_messages, b.total_kilobytes)
    assert a.signature == b.signature


@pytest.mark.parametrize("variant", ["xhpf", "xhpf_ie"])
@pytest.mark.parametrize("app", APPS)
def test_mp_messages_grow_with_nodes(app, variant):
    counts = [model_variant(app, variant, nprocs=n,
                            preset=PRESET).total_messages
              for n in (2, 4, 8, 16)]
    assert counts == sorted(counts), counts
    assert counts[0] > 0


_positive = st.floats(min_value=1e-9, max_value=1e-2,
                      allow_nan=False, allow_infinity=False)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(latency=_positive, byte_time=_positive, send=_positive,
       recv=_positive, fault=_positive, twin=_positive, proto=_positive)
@pytest.mark.parametrize("variant", ["spf", "xhpf_ie"])
def test_random_machines_never_go_negative(variant, latency, byte_time,
                                           send, recv, fault, twin, proto):
    mach = SP2_MODEL.with_(latency=latency, byte_time=byte_time,
                           send_overhead=send, recv_overhead=recv,
                           fault_overhead=fault, twin_overhead=twin,
                           protocol_overhead=proto)
    res = model_variant("igrid", variant, nprocs=4, preset=PRESET,
                        machine=mach)
    assert res.time >= 0
    assert res.messages >= 0 and res.kilobytes >= 0.0
    assert res.total_messages >= res.messages
    assert res.total_kilobytes >= res.kilobytes - 1e-9

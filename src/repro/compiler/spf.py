"""The SPF analog: shared-memory code generation onto TreadMarks.

Reproduces the Forge SPF policies of Section 2.1:

* every array accessed in a parallel loop is allocated in shared memory,
  padded to page boundaries (including scratch arrays — the paper's Jacobi
  loses 2% exactly because of this),
* fork-join execution: the master runs all sequential code; each parallel
  loop (or fused group, see below) is dispatched to workers through the
  Section 2.3 interface — improved (2(n-1) messages) by default, original
  (8(n-1)) for the ablation,
* block or cyclic loop scheduling,
* scalar reductions through a private partial plus a lock-protected shared
  variable.

:class:`SpfOptions` exposes the paper's hand optimizations as compiler
flags, so the "Results of Hand Optimizations" experiments are one option
away from the baseline:

* ``aggregate`` — fetch each chunk footprint with the enhanced interface's
  aggregated validate instead of page-by-page faults (Jacobi 6.99→7.23,
  FFT 2.65→5.05),
* ``fuse_loops`` — merge adjacent parallel loops when the dependence test
  of :mod:`repro.compiler.analysis` allows, eliminating the redundant
  barrier pairs (Tseng [17]; Shallow 5.71→5.96 together with aggregation),
* ``piggyback`` — an application hint that attaches freshly-written data to
  the fork message, merging synchronization and data (MGS's ith-vector
  broadcast, 3.35→~5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.compiler import analysis
from repro.compiler.ir import Mark, ParallelLoop, Program, SeqBlock
from repro.compiler.partition import block_range, cyclic_indices
from repro.sim.cluster import RunResult
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel
from repro.tmk import enhanced
from repro.tmk.api import Tmk, tmk_run
from repro.tmk.forkjoin import (ImprovedForkJoin, OldForkJoin,
                                alloc_old_interface_control)
from repro.tmk.pagespace import SharedSpace

__all__ = ["SpfOptions", "SpfExecutable", "compile_spf", "run_spf"]

REDUCTION_PREFIX = "__red_"
STAGING_PREFIX = "__acc_"


@dataclass
class SpfOptions:
    """Code-generation switches.

    Defaults are the unoptimized compiler of the paper's evaluation.
    ``aggregate``/``fuse_loops``/``piggyback`` are the paper's hand
    optimizations (Sections 5 and 8); ``tree_reductions``,
    ``balance_loops`` and ``push_halos`` implement the enhancements
    Section 8 proposes as future work:

    * ``tree_reductions`` — replace the lock-protected shared scalar with
      the dedicated combining-tree primitive (:mod:`repro.tmk.reduction`),
    * ``balance_loops`` — weighted block scheduling: when a loop declares a
      per-iteration cost function, chunk boundaries equalize cumulative
      cost instead of iteration counts ("dynamic load balancing support"),
    * ``push_halos`` — producers push partition-boundary regions to the
      neighbours that will read them, at the join, instead of the default
      request-response ("pushing data instead of pulling").
    """

    improved_interface: bool = True
    aggregate: bool = False
    fuse_loops: bool = False
    piggyback: Optional[Callable] = None   # (stmt) -> [(array, region)] | None
    tree_reductions: bool = False
    balance_loops: bool = False
    push_halos: bool = False

    def describe(self) -> str:
        bits = ["improved" if self.improved_interface else "original"]
        for flag, label in [(self.aggregate, "aggregate"),
                            (self.fuse_loops, "fuse"),
                            (self.piggyback, "piggyback"),
                            (self.tree_reductions, "tree-red"),
                            (self.balance_loops, "balance"),
                            (self.push_halos, "push")]:
            if flag:
                bits.append(label)
        return "+".join(bits)


@dataclass
class _Unit:
    """One fork-join dispatch: a master-only block, loop group, or mark."""

    seq: Optional[SeqBlock] = None
    loops: list = field(default_factory=list)
    mark: Optional[str] = None


def _ensure_order(accesses, accumulate) -> list:
    """Affine accesses first, then irregular ones.

    Irregular footprints are evaluated *at run time* against the local
    views (e.g. IGrid's footprint reads the shared indirection map), so the
    affine data they depend on must be faulted in first.  Accesses to
    accumulation buffers are redirected to private memory and need no
    coherence."""
    kept = [acc for acc in accesses if acc.array not in accumulate]
    return ([acc for acc in kept if not acc.irregular]
            + [acc for acc in kept if acc.irregular])


class SpfExecutable:
    """A compiled shared-memory program, runnable on a simulated cluster."""

    def __init__(self, program: Program, options: SpfOptions, nprocs: int):
        program.validate()
        self.program = program
        self.options = options
        self.nprocs = nprocs
        self.schedule = list(program.flat_statements())
        self.units = self._plan_units()
        self.reductions = self._collect_reductions()
        self.push_plan, self.expect_plan = (
            self._plan_halo_pushes() if options.push_halos else ({}, {}))

    # ------------------------------------------------------------------ #
    # compilation

    def _plan_units(self) -> list:
        """Group the schedule into dispatch units (fusing when enabled).

        A loop with accumulation buffers is followed by a synthetic *merge*
        loop: the buffer-per-processor + add-after-the-loop structure the
        paper describes for NBF ("Each processor accumulates the force
        updates in a local buffer, and adds the buffers together after the
        force computation loop").
        """
        units: list[_Unit] = []
        for stmt in self.schedule:
            if isinstance(stmt, Mark):
                units.append(_Unit(mark=stmt.label))
                continue
            if isinstance(stmt, SeqBlock):
                units.append(_Unit(seq=stmt))
                continue
            if (self.options.fuse_loops and units and units[-1].loops
                    and not stmt.accumulate
                    and analysis.loops_fusable(units[-1].loops[-1], stmt,
                                               self.nprocs, self.program)):
                units[-1].loops.append(stmt)
            else:
                units.append(_Unit(loops=[stmt]))
            for name in stmt.accumulate:
                units.append(_Unit(loops=[self._merge_loop(stmt, name)]))
        return units

    def _merge_loop(self, loop: ParallelLoop, name: str) -> ParallelLoop:
        """forces[own rows] = sum over processors of staging[p][own rows]."""
        from repro.compiler.ir import Access, Full, Span
        decl = self.program.decl(name)
        staging = STAGING_PREFIX + name

        def kernel(views, lo, hi):
            views[name][lo:hi] = views[staging][:, lo:hi].sum(axis=0)
            return None

        return ParallelLoop(
            name=f"{loop.name}.merge[{name}]",
            extent=decl.shape[0],
            kernel=kernel,
            reads=[Access(staging, (Full(), Span()))],
            writes=[Access(name, (Span(),))],
            cost_per_iter=getattr(loop, "merge_cost_per_iter", 0.0) or 0.0,
        )

    def _plan_halo_pushes(self):
        """Compile-time producer->consumer halo analysis (§8: push data).

        For each loop that reads an array with a ``Span`` halo, find the
        most recent earlier loop that writes that array chunk-aligned; the
        producers then push their boundary rows to the neighbours that will
        read them, at the end of their chunk.  Returns

        * ``push_plan[unit_idx] -> [(array, lo_off, hi_off, extent, start)]``
        * ``expect_plan[unit_idx] -> per-pid expected push count`` (callable)
        """
        from repro.compiler.ir import Span

        def block_writer_of(array, before_idx):
            for j in range(before_idx - 1, -1, -1):
                unit = self.units[j]
                for loop in unit.loops:
                    if loop.schedule != "block":
                        continue
                    for acc in loop.writes:
                        if acc.array != array or acc.irregular:
                            continue
                        lead = acc.region[0] if acc.region else None
                        if isinstance(lead, Span) and lead.lo_off == 0 \
                                and lead.hi_off == 0:
                            return j, loop
            return None, None

        push_plan: dict = {}
        expect_plan: dict = {}
        for i, unit in enumerate(self.units):
            for loop in unit.loops:
                if loop.schedule != "block":
                    continue
                for acc in loop.reads:
                    if acc.irregular or not acc.region:
                        continue
                    lead = acc.region[0]
                    if not (isinstance(lead, Span)
                            and (lead.lo_off < 0 or lead.hi_off > 0)):
                        continue
                    j, producer = block_writer_of(acc.array, i)
                    if producer is None:
                        continue
                    if (producer.extent, producer.start) != (loop.extent,
                                                             loop.start):
                        continue
                    push_plan.setdefault(j, []).append(
                        (acc.array, lead.lo_off, lead.hi_off,
                         loop.extent, loop.start))
                    expect_plan.setdefault(i, []).append(
                        (lead.lo_off, lead.hi_off))
        return push_plan, expect_plan

    def _expected_pushes(self, unit_idx: int, pid: int) -> int:
        count = 0
        for lo_off, hi_off in self.expect_plan.get(unit_idx, ()):
            if lo_off < 0 and pid > 0:
                count += 1          # the upper neighbour pushes down
            if hi_off > 0 and pid < self.nprocs - 1:
                count += 1          # the lower neighbour pushes up
        return count

    def _do_halo_pushes(self, tmk: Tmk, unit_idx: int) -> None:
        from repro.tmk.enhanced import push_regions
        for array, lo_off, hi_off, extent, start in self.push_plan.get(
                unit_idx, ()):
            span = extent - start
            lo, hi = block_range(span, self.nprocs, tmk.pid)
            lo += start
            hi += start
            if hi <= lo:
                continue
            handle = tmk.world.space[array]
            if lo_off < 0 and tmk.pid < self.nprocs - 1:
                # our bottom rows are the lower neighbour's upper halo
                push_regions(tmk.node,
                             [(handle, (slice(hi + lo_off, hi),))],
                             dests=[tmk.pid + 1])
            if hi_off > 0 and tmk.pid > 0:
                push_regions(tmk.node,
                             [(handle, (slice(lo, lo + hi_off),))],
                             dests=[tmk.pid - 1])

    def _collect_reductions(self) -> dict:
        """name -> (Reduction, lock id); stable ids across the program."""
        out: dict = {}
        for loop in self.schedule:
            if isinstance(loop, ParallelLoop):
                for red in loop.reductions:
                    if red.name not in out:
                        out[red.name] = (red, len(out))
        return out

    def setup_space(self, space: SharedSpace) -> None:
        """SPF's allocation policy: everything shared, page padded."""
        for decl in self.program.arrays:
            space.alloc(decl.name, decl.shape, decl.dtype, pad_to_page=True)
        if not self.options.tree_reductions:
            for name in self.reductions:
                space.alloc(REDUCTION_PREFIX + name, (1,), np.float64)
        staged = set()
        for loop in self.schedule:
            if isinstance(loop, ParallelLoop):
                for name in loop.accumulate:
                    if name not in staged:
                        staged.add(name)
                        decl = self.program.decl(name)
                        space.alloc(STAGING_PREFIX + name,
                                    (self.nprocs,) + decl.shape, decl.dtype)
        if not self.options.improved_interface:
            alloc_old_interface_control(space)

    # ------------------------------------------------------------------ #
    # execution

    def run_on(self, tmk: Tmk) -> dict:
        views = {handle.name: tmk.array(handle.name).raw()
                 for handle in tmk.world.space.handles()}
        fj = (ImprovedForkJoin(tmk.node) if self.options.improved_interface
              else OldForkJoin(tmk.node))
        if tmk.pid == 0:
            return self._run_master(tmk, fj, views)
        self._run_worker(tmk, fj, views)
        return {}

    def _run_master(self, tmk: Tmk, fj, views: dict) -> dict:
        from repro.tmk.enhanced import expect_pushes
        tmk._spf_scalars = {}
        for idx, unit in enumerate(self.units):
            if unit.mark is not None:
                tmk.env.mark(unit.mark)
                continue
            if unit.seq is not None:
                self._run_seq(tmk, unit.seq, views)
                continue
            if not self.options.tree_reductions:
                # each loop instance's reduction restarts from the identity
                for loop in unit.loops:
                    for red in loop.reductions:
                        shared = tmk.array(REDUCTION_PREFIX + red.name)
                        shared.write((slice(0, 1),), red.identity)
            payload = self._build_piggyback(tmk, unit)
            # the loop control variables of Section 2.3: subroutine index
            # plus the loop bounds (workers recompute their chunk from them)
            head = unit.loops[0]
            fj.fork(idx, (float(head.start), float(head.extent)),
                    payload=payload)
            expected = self._expected_pushes(idx, tmk.pid)
            if expected:
                expect_pushes(tmk.node, expected)
            for loop in unit.loops:
                self._run_chunk(tmk, loop, views)
            self._do_halo_pushes(tmk, idx)
            fj.join()
        fj.shutdown()
        return self._read_scalars(tmk)

    def _run_worker(self, tmk: Tmk, fj, views: dict) -> None:
        from repro.tmk.enhanced import expect_pushes
        while True:
            work = fj.wait_for_work()
            if work is None:
                return
            idx = int(work[0])
            expected = self._expected_pushes(idx, tmk.pid)
            if expected:
                expect_pushes(tmk.node, expected)
            for loop in self.units[idx].loops:
                self._run_chunk(tmk, loop, views)
            self._do_halo_pushes(tmk, idx)
            fj.work_done()

    def _build_piggyback(self, tmk: Tmk, unit: _Unit):
        hook = self.options.piggyback
        if hook is None or not unit.loops:
            return None
        regions = hook(unit.loops[0])
        if not regions:
            return None
        pairs = [(tmk.world.space[name], region) for name, region in regions]
        # sync+data merging sends the *current page images* (the master
        # just wrote or faulted them), exactly the broadcast the paper
        # added to TreadMarks for MGS's ith vector
        return enhanced.BcastPayload.build(tmk.node, pairs)

    # ---- sequential code (master only) ----------------------------------

    def _run_seq(self, tmk: Tmk, stmt: SeqBlock, views: dict) -> None:
        for acc in stmt.reads:
            self._ensure(tmk, acc, 0, 0, views, write=False, tag=stmt.name)
        for acc in stmt.writes:
            self._ensure(tmk, acc, 0, 0, views, write=True, tag=stmt.name)
        stmt.kernel(views)
        cost = stmt.cost(self.program.params) if callable(stmt.cost) \
            else float(stmt.cost)
        if cost:
            tmk.compute(cost)

    # ---- parallel chunks (all processors) --------------------------------

    def _run_chunk(self, tmk: Tmk, loop: ParallelLoop, views: dict) -> None:
        if loop.accumulate:
            # kernel contributions go to a private buffer; the buffer is
            # then written into this processor's row of the shared staging
            # array (the merge loop unit sums the rows afterwards)
            views = dict(views)
            privates = {}
            for name in loop.accumulate:
                decl = self.program.decl(name)
                privates[name] = views[name] = np.zeros(decl.shape,
                                                        dtype=decl.dtype)
        pid, nprocs = tmk.pid, tmk.nprocs
        if loop.schedule == "cyclic":
            indices = cyclic_indices(loop.extent, nprocs, pid, loop.start)
            if indices.size == 0:
                partials = None
                cost = 0.0
            else:
                for acc in _ensure_order(loop.reads, loop.accumulate):
                    self._ensure_cyclic(tmk, acc, indices, views,
                                        write=False, tag=loop.name)
                for acc in _ensure_order(loop.writes, loop.accumulate):
                    self._ensure_cyclic(tmk, acc, indices, views,
                                        write=True, tag=loop.name)
                partials = loop.kernel(views, indices)
                cost = (sum(loop.cost_per_iter(int(i)) for i in indices)
                        if callable(loop.cost_per_iter)
                        else loop.cost_per_iter * indices.size)
        else:
            lo, hi = self._block_chunk(loop, pid, nprocs)
            if hi <= lo:
                partials = None
                cost = 0.0
            else:
                for acc in _ensure_order(loop.reads, loop.accumulate):
                    self._ensure(tmk, acc, lo, hi, views,
                                 write=False, tag=loop.name)
                for acc in _ensure_order(loop.writes, loop.accumulate):
                    self._ensure(tmk, acc, lo, hi, views,
                                 write=True, tag=loop.name)
                partials = loop.kernel(views, lo, hi)
                cost = loop.chunk_cost(lo, hi)
        if cost:
            tmk.compute(cost)
        if loop.accumulate:
            self._stage_contributions(tmk, loop, privates)
        if loop.reductions:
            self._fold_reductions(tmk, loop, partials)

    def _block_chunk(self, loop: ParallelLoop, pid: int,
                     nprocs: int) -> tuple:
        """Block chunk; under ``balance_loops`` a loop that declares a
        per-iteration cost function gets cost-equalized boundaries instead
        of count-equalized ones (§8: "dynamic load balancing support")."""
        span = loop.extent - loop.start
        if not (self.options.balance_loops
                and callable(loop.cost_per_iter)) or span <= 0:
            lo, hi = block_range(span, nprocs, pid)
            return lo + loop.start, hi + loop.start
        costs = np.array([loop.cost_per_iter(i)
                          for i in range(loop.start, loop.extent)],
                         dtype=np.float64)
        cumulative = np.concatenate(([0.0], np.cumsum(costs)))
        targets = cumulative[-1] * np.arange(1, nprocs) / nprocs
        cuts = np.searchsorted(cumulative, targets, side="left")
        bounds = np.concatenate(([0], cuts, [span]))
        return (int(bounds[pid]) + loop.start,
                int(bounds[pid + 1]) + loop.start)

    def _stage_contributions(self, tmk: Tmk, loop: ParallelLoop,
                             privates: dict) -> None:
        """Write this processor's private buffer into staging[pid].

        Only rows actually touched are written (the source writes
        ``buffer(i)`` for each interacting index ``i``); the previously
        touched rows are rewritten too, so stale contributions from an
        earlier instance can never survive in the shared row.
        """
        for name, buf in privates.items():
            handle = tmk.world.space[STAGING_PREFIX + name]
            flat = buf.reshape(buf.shape[0], -1)
            touched = np.flatnonzero(np.any(flat != 0, axis=1))
            prev_key = (loop.name, name)
            prev = self._prev_touched(tmk).get(prev_key)
            if prev is not None and (len(prev) != len(touched)
                                     or not np.array_equal(prev, touched)):
                touched = np.union1d(prev, touched)
            self._prev_touched(tmk)[prev_key] = touched
            if touched.size == 0:
                continue
            row_elems = int(np.prod(buf.shape[1:])) if buf.ndim > 1 else 1
            base = tmk.pid * buf.shape[0]
            tmk.node.ensure_write_elements(
                handle, (base + touched) * row_elems, elem_span=row_elems,
                source=f"{loop.name}:{STAGING_PREFIX}{name}")
            staging_view = tmk.array(STAGING_PREFIX + name).raw()
            staging_view[tmk.pid, touched] = buf[touched]

    def _prev_touched(self, tmk: Tmk) -> dict:
        if not hasattr(tmk, "_spf_prev_touched"):
            tmk._spf_prev_touched = {}
        return tmk._spf_prev_touched

    def _ensure(self, tmk: Tmk, acc, lo: int, hi: int, views: dict,
                write: bool, tag: str = "?") -> None:
        handle = tmk.world.space[acc.array]
        node = tmk.node
        source = f"{tag}:{acc.array}"
        if acc.irregular:
            idx = acc.region.footprint(views, lo, hi)
            if write:
                node.ensure_write_elements(handle, idx, source=source)
            else:
                node.ensure_read_elements(handle, idx, source=source)
            return
        region = acc.resolve(lo, hi, handle.shape)
        if self.options.aggregate and not write:
            enhanced.validate(node, handle, region, source=source)
        elif write:
            node.ensure_write(handle, region, source=source)
        else:
            node.ensure_read(handle, region, source=source)

    def _ensure_cyclic(self, tmk: Tmk, acc, indices: np.ndarray, views: dict,
                       write: bool, tag: str = "?") -> None:
        handle = tmk.world.space[acc.array]
        node = tmk.node
        source = f"{tag}:{acc.array}"
        if acc.irregular:
            idx = acc.region.footprint(views, indices, None)
            if write:
                node.ensure_write_elements(handle, idx, source=source)
            else:
                node.ensure_read_elements(handle, idx, source=source)
            return
        dims = acc.region
        lead = dims[0] if dims else None
        from repro.compiler.ir import Span
        if isinstance(lead, Span) and lead.lo_off == 0 and lead.hi_off == 0:
            # rows given by the cyclic index set; trailing dims must be full
            row_elems = int(np.prod(handle.shape[1:])) if len(handle.shape) > 1 else 1
            flat = indices * row_elems
            if write:
                node.ensure_write_elements(handle, flat, elem_span=row_elems,
                                           source=source)
            else:
                node.ensure_read_elements(handle, flat, elem_span=row_elems,
                                          source=source)
        else:
            # Point/Full leading dims behave like a regular region
            region = acc.resolve(int(indices.min()), int(indices.max()) + 1,
                                 handle.shape)
            if write:
                node.ensure_write(handle, region, source=source)
            else:
                node.ensure_read(handle, region, source=source)

    def _fold_reductions(self, tmk: Tmk, loop: ParallelLoop,
                         partials) -> None:
        if self.options.tree_reductions:
            from repro.tmk.reduction import tmk_reduce
            for red in loop.reductions:
                val = (partials or {}).get(red.name, red.identity)
                final = tmk_reduce(tmk.node, val, op=red.combine)
                if tmk.pid == 0:
                    tmk._spf_scalars[red.name] = float(final)
            return
        for red in loop.reductions:
            val = (partials or {}).get(red.name, red.identity)
            _red, lock_id = self.reductions[red.name]
            shared = tmk.array(REDUCTION_PREFIX + red.name)
            source = f"{loop.name}:{REDUCTION_PREFIX}{red.name}"
            tmk.lock_acquire(lock_id)
            cur = float(shared.read((slice(0, 1),), source=source)[0])
            shared.write((slice(0, 1),), red.combine(cur, val),
                         source=source)
            tmk.lock_release(lock_id)

    def _read_scalars(self, tmk: Tmk) -> dict:
        if self.options.tree_reductions:
            return dict(tmk._spf_scalars)
        out = {}
        for name in self.reductions:
            shared = tmk.array(REDUCTION_PREFIX + name)
            out[name] = float(shared.read((slice(0, 1),))[0])
        return out


def compile_spf(program: Program, nprocs: int = 8,
                options: Optional[SpfOptions] = None) -> SpfExecutable:
    return SpfExecutable(program, options or SpfOptions(), nprocs)


def run_spf(program: Program, nprocs: int = 8,
            options: Optional[SpfOptions] = None,
            model: Optional[MachineModel] = None,
            gc_epochs: Optional[int] = 8,
            schedule_seed: Optional[int] = None,
            racecheck: bool = False,
            faults: Optional[FaultPlan] = None) -> RunResult:
    """Compile and run; scalars land in ``result.scalars``."""
    exe = compile_spf(program, nprocs, options)

    def setup(space: SharedSpace) -> None:
        exe.setup_space(space)

    def main(tmk: Tmk):
        return exe.run_on(tmk)

    result = tmk_run(nprocs, main, setup, model=model, gc_epochs=gc_epochs,
                     schedule_seed=schedule_seed, racecheck=racecheck,
                     faults=faults)
    result.scalars = result.results[0]
    return result

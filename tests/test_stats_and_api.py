"""Tests for DSM statistics, the Tmk facade, and the request server."""

import numpy as np
import pytest

from repro.sim.engine import Deadlock
from repro.tmk.api import Tmk, TmkWorld, tmk_run
from repro.tmk.stats import DsmStats


# ---------------------------------------------------------------------- #
# DsmStats

def test_stats_snapshot_is_independent():
    s = DsmStats()
    s.read_faults = 3
    snap = s.snapshot()
    s.read_faults = 10
    assert snap.read_faults == 3


def test_stats_delta():
    a = DsmStats(read_faults=10, barriers=4)
    b = DsmStats(read_faults=3, barriers=1)
    d = a.delta(b)
    assert d.read_faults == 7 and d.barriers == 3 and d.twins_created == 0


def test_stats_summary_omits_zeros():
    s = DsmStats(read_faults=2)
    out = s.summary()
    assert "read_faults=2" in out
    assert "twins_created" not in out


# ---------------------------------------------------------------------- #
# Tmk facade

def _setup(space):
    space.alloc("a", (8, 512), np.float32)


def test_block_range_helper():
    def prog(tmk):
        return tmk.block_range(10)

    r = tmk_run(3, prog, _setup)
    assert r.results == [(0, 4), (4, 7), (7, 10)]


def test_compute_charges_time():
    def prog(tmk):
        tmk.compute(0.25)
        return tmk.now

    r = tmk_run(2, prog, _setup)
    assert all(t >= 0.25 for t in r.results)


def test_unknown_array_raises():
    def prog(tmk):
        with pytest.raises(KeyError):
            tmk.array("nope")

    tmk_run(1, prog, _setup)


def test_world_carries_configuration():
    def prog(tmk):
        assert tmk.world.gc_epochs == 5
        assert tmk.world.nprocs == tmk.nprocs
        assert tmk.world.nodes[tmk.pid] is tmk.node
        return True

    r = tmk_run(2, prog, _setup, gc_epochs=5)
    assert all(r.results)


def test_run_result_carries_dsm_stats():
    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((slice(0, 1),), 1.0)
        tmk.barrier()
        if tmk.pid == 1:
            a.read((slice(0, 1),))

    r = tmk_run(2, prog, _setup)
    assert r.dsm_stats.barriers == 2
    assert r.dsm_stats.read_faults == 1


def test_args_forwarded_to_program():
    def prog(tmk, factor):
        return tmk.pid * factor

    r = tmk_run(3, prog, _setup, args=(10,))
    assert r.results == [0, 10, 20]


# ---------------------------------------------------------------------- #
# failure behaviour

def test_mismatched_barriers_deadlock():
    """A program where one processor skips a barrier must deadlock loudly,
    not hang or silently proceed."""

    def prog(tmk):
        if tmk.pid == 0:
            tmk.barrier()
        # pid 1 never arrives

    with pytest.raises(Deadlock):
        tmk_run(2, prog, _setup)


def test_lock_never_granted_deadlocks():
    def prog(tmk):
        if tmk.pid == 1:
            tmk.lock_acquire(0)
            # never released; pid 0 then waits forever
        tmk.barrier()
        if tmk.pid == 0:
            tmk.lock_acquire(0)

    with pytest.raises(Deadlock):
        tmk_run(2, prog, _setup)


def test_program_exception_reports_processor():
    def prog(tmk):
        if tmk.pid == 2:
            raise RuntimeError("kaboom on cpu2")

    from repro.sim.engine import SimError
    with pytest.raises(SimError, match="kaboom"):
        tmk_run(4, prog, _setup)

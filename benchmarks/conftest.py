"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Several experiments share the same runs (Figure 1 and
Table 2 both need the regular applications' four variants), so runs are
memoized per (app, variant, nprocs, preset) for the session.  Every
benchmark prints its paper-vs-measured table and archives it under
``benchmarks/results/``.

Problem sizes are the ``bench`` presets: the paper's array shapes with
reduced iteration counts (virtual time is measured, so fewer iterations
change absolute numbers, not comparisons).  Pass ``--paper-size`` via the
REPRO_PRESET environment variable to run the full Table 1 sizes.
"""

import os
import pathlib

import pytest

from repro.eval.experiments import run_all_variants, run_variant

PRESET = os.environ.get("REPRO_PRESET", "bench")
NPROCS = int(os.environ.get("REPRO_NPROCS", "8"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_cache: dict = {}


def all_variants(app, variants=None):
    key = (app, tuple(variants) if variants else None, NPROCS, PRESET)
    if key not in _cache:
        _cache[key] = run_all_variants(app, nprocs=NPROCS, preset=PRESET,
                                       variants=variants)
    return _cache[key]


def one_variant(app, variant, **kw):
    key = (app, variant, NPROCS, PRESET,
           tuple(sorted((k, repr(v)) for k, v in kw.items())))
    if key not in _cache:
        seq = all_variants(app, ["seq"])["seq"]
        _cache[key] = run_variant(app, variant, nprocs=NPROCS, preset=PRESET,
                                  seq_time=seq.time, **kw)
    return _cache[key]


def archive(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture
def runner(benchmark):
    """Run ``fn`` once under pytest-benchmark (a reproduction run is a
    deterministic simulation — repeating it would measure the same thing)."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return run

"""The parallelizing-compiler analogs: Forge SPF and Forge XHPF.

The paper compiles annotated Fortran 77.  Here, applications are written
once in a loop-nest intermediate representation (:mod:`repro.compiler.ir`):
sequential blocks and parallel loops whose array accesses are declared as
affine regions of the loop bounds (or marked irregular/indirect), with the
numeric work itself supplied as numpy kernels — the black-box-with-footprint
model a directive compiler works with.

Two backends consume the same IR:

* :mod:`repro.compiler.spf` — the shared-memory parallelizer: every array
  touched in a parallel loop is placed in (page-padded) DSM shared memory,
  loops run under the fork-join runtime of Section 2.3, scalar reductions
  use a lock, and the master executes all sequential code.  Compiler
  options reproduce the paper's hand optimizations (communication
  aggregation, loop fusion/barrier elimination, data push, broadcast).
* :mod:`repro.compiler.xhpf` — the message-passing parallelizer: SPMD
  owner-computes from HPF-style distribution directives, exact neighbour
  exchanges for affine access patterns, and the paper's
  broadcast-everything fallback when an indirection array defeats the
  analysis.

:mod:`repro.compiler.analysis` provides the region algebra both backends
share (footprints, intersections, cross-processor dependence tests), and
:mod:`repro.compiler.seq` executes the IR sequentially as the correctness
oracle and Table 1 baseline.
"""

from repro.compiler.ir import (Access, ArrayDecl, Dim, Full, Irregular, Mark,
                               ParallelLoop, Point, Program, Reduction,
                               SeqBlock, Span, TimeLoop)
from repro.compiler.seq import run_sequential, sequential_time
from repro.compiler.spf import SpfOptions, compile_spf, run_spf
from repro.compiler.xhpf import XhpfOptions, compile_xhpf, run_xhpf

__all__ = [
    "Access", "ArrayDecl", "Dim", "Full", "Irregular", "Mark",
    "ParallelLoop", "Point", "Program", "Reduction", "SeqBlock", "Span",
    "TimeLoop",
    "run_sequential", "sequential_time",
    "SpfOptions", "compile_spf", "run_spf",
    "XhpfOptions", "compile_xhpf", "run_xhpf",
]

"""`repro.serve` — the persistent worker-pool run service.

Library entry point::

    from repro.serve import RunService
    with RunService(workers=4) as svc:
        batch = svc.run_batch(requests)       # BatchResult, request order
        for idx, res in svc.stream(requests): # completion order
            ...

CLI entry point: ``python -m repro serve`` (stdio or TCP JSON-lines —
see :mod:`repro.serve.wire` for the protocol).
"""

from repro.serve.service import DEFAULT_WORKERS, RunService
from repro.serve.wire import WIRE_SCHEMA, WireClient, WireServer, serve_stdio
from repro.serve.worker import DEFAULT_RUNNER

__all__ = [
    "RunService",
    "DEFAULT_WORKERS",
    "DEFAULT_RUNNER",
    "WIRE_SCHEMA",
    "WireClient",
    "WireServer",
    "serve_stdio",
]

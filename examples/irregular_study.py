#!/usr/bin/env python
"""The paper's headline experiment, in miniature: irregular access.

Runs IGrid (the 9-point stencil through a run-time indirection map) in all
four variants and shows *why* software DSM is a good compiler target for
irregular codes: the XHPF-style compiler cannot analyze the indirection,
so it broadcasts every processor's whole partition each step, while
TreadMarks fetches on demand exactly the pages that are touched — and
caches them.

Run:  python examples/irregular_study.py        (~1 minute, simulated SP/2)
"""

from repro.eval.constants import PAPER
from repro.eval.experiments import run_all_variants

APP = "igrid"
NPROCS = 8
PRESET = "bench"     # the paper's 500x500 grid, fewer iterations


def main():
    print(f"IGrid ({PAPER[APP].problem_size}) on {NPROCS} simulated "
          f"processors\n")
    results = run_all_variants(APP, nprocs=NPROCS, preset=PRESET)

    print(f"{'variant':28s} {'speedup':>8s} {'msgs':>8s} {'data KB':>10s}")
    labels = {
        "spf": "SPF -> TreadMarks",
        "tmk": "hand-coded TreadMarks",
        "xhpf": "XHPF message passing",
        "pvme": "hand-coded PVMe",
    }
    for variant in ("spf", "tmk", "xhpf", "pvme"):
        r = results[variant]
        paper_s = PAPER[APP].speedups.get(variant)
        note = f"(paper {paper_s})" if paper_s else ""
        print(f"{labels[variant]:28s} {r.speedup:8.2f} {r.messages:8d} "
              f"{r.kilobytes:10.0f}  {note}")

    xhpf, tmk, spf = results["xhpf"], results["tmk"], results["spf"]
    print(f"\nXHPF moved {xhpf.kilobytes / tmk.kilobytes:.0f}x the data of "
          f"hand-coded TreadMarks")
    print(f"(the paper's Table 3: 140,001 KB vs 131 KB — about 1000x)")
    print(f"compiled DSM vs compiled message passing: "
          f"{spf.speedup / xhpf.speedup:.2f}x faster")
    print("\nThe DSM wins because the paper's reasoning holds: 'The shared "
          "memory versions fetch data\non-demand, and the run-time system "
          "automatically caches previously accessed shared data.'")


if __name__ == "__main__":
    main()

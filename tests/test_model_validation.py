"""Model-vs-sim agreement: the analytic model's contract, as code.

The analytic mode (:mod:`repro.compiler.model`) is only trustworthy at
16-1024 nodes because it is *validated* here at N <= 8 against the event
simulator, app by app and variant by variant — the validate-small /
trust-large protocol of docs/MODEL.md.  The tolerances below ARE the
model's contract: tight for the statically-regular applications (the
protocol replica tracks the simulator message-for-message), documented
looser bounds for ``mgs`` (lock-chain ordering differs from the
simulated schedule) and ``igrid`` (a page of diff traffic can land on
either side of the measured-window boundary; whole-run totals stay
tight).  Widening one is an API change and should be treated as such.
"""

import pytest

from repro.compiler.model import (MODELED_VARIANTS, ModelUnsupportedVariant,
                                  model_variant)
from repro.eval.constants import APPS
from repro.eval.experiments import VARIANTS, run_variant

PRESET = "test"
NODES = [1, 2, 4, 8]

# (relative, absolute) slack per metric: |model - sim| <= rel*sim + abs.
# msgs/kb are the measured window (the paper's tables); tmsgs/tkb are
# whole-run totals.
DSM_TOLERANCES = {
    "jacobi":  dict(msgs=(0.02, 4), kb=(0.02, 1.0),
                    tmsgs=(0.02, 4), tkb=(0.02, 1.0)),
    "shallow": dict(msgs=(0.02, 4), kb=(0.02, 1.0),
                    tmsgs=(0.02, 4), tkb=(0.02, 1.0)),
    "fft3d":   dict(msgs=(0.02, 4), kb=(0.02, 1.0),
                    tmsgs=(0.02, 4), tkb=(0.02, 1.0)),
    "nbf":     dict(msgs=(0.02, 4), kb=(0.02, 1.0),
                    tmsgs=(0.02, 4), tkb=(0.02, 1.0)),
    # mgs folds a reduction under a lock every iteration; the model's
    # pid-order lock chain differs from the simulated arrival order, so
    # grant piggyback sizes drift a little.
    "mgs":     dict(msgs=(0.12, 4), kb=(0.06, 1.0),
                    tmsgs=(0.12, 4), tkb=(0.06, 1.0)),
    # igrid's measured window is a few KB; one 4 KB page of diff traffic
    # landing on the other side of the start mark dominates the relative
    # window error.  Whole-run totals are the binding bound.
    "igrid":   dict(msgs=(0.08, 6), kb=(0.45, 8.0),
                    tmsgs=(0.08, 6), tkb=(0.10, 2.0)),
}
# Message-passing variants: whole-run totals are exact (the exchange
# schedule is deterministic); window splits differ slightly because the
# model charges prologue broadcasts before the mark.
MP_TOLERANCES = dict(msgs=(0.10, 6), kb=(0.13, 1.0),
                     tmsgs=(0.01, 2), tkb=(0.01, 2.0))

_sim_cache: dict = {}


def _sim(app, variant, n):
    key = (app, variant, n)
    if key not in _sim_cache:
        _sim_cache[key] = run_variant(app, variant, nprocs=n, preset=PRESET)
    return _sim_cache[key]


def _check(label, modeled, simulated, rel, abs_):
    slack = rel * simulated + abs_
    assert abs(modeled - simulated) <= slack, (
        f"{label}: model={modeled} sim={simulated} "
        f"(tolerance {rel:.0%} + {abs_})")


@pytest.mark.parametrize("n", NODES)
@pytest.mark.parametrize("variant", ["spf", "spf_old", "xhpf", "xhpf_ie"])
@pytest.mark.parametrize("app", APPS)
def test_model_matches_simulator(app, variant, n):
    tol = DSM_TOLERANCES[app] if variant.startswith("spf") \
        else MP_TOLERANCES
    mod = model_variant(app, variant, nprocs=n, preset=PRESET)
    sim = _sim(app, variant, n)
    assert mod.mode == "model" and sim.mode == "sim"
    _check(f"{app}/{variant}/n={n} window msgs",
           mod.messages, sim.messages, *tol["msgs"])
    _check(f"{app}/{variant}/n={n} window KB",
           mod.kilobytes, sim.kilobytes, *tol["kb"])
    _check(f"{app}/{variant}/n={n} total msgs",
           mod.total_messages, sim.total_messages, *tol["tmsgs"])
    _check(f"{app}/{variant}/n={n} total KB",
           mod.total_kilobytes, sim.total_kilobytes, *tol["tkb"])
    # The model is a replica, not a curve fit: it must compute the same
    # answer, not just the same traffic (1e-6 covers float accumulation
    # order, e.g. nbf's force reduction).
    assert mod.signature.keys() == sim.signature.keys()
    for name, value in sim.signature.items():
        assert mod.signature[name] == pytest.approx(value, rel=1e-6), name


@pytest.mark.parametrize("variant",
                         [v for v in VARIANTS if v not in MODELED_VARIANTS])
def test_unmodeled_variants_refuse(variant):
    with pytest.raises(ModelUnsupportedVariant):
        model_variant("jacobi", variant, nprocs=8, preset=PRESET)


def test_seq_is_modeled_as_the_oracle():
    mod = model_variant("jacobi", "seq", preset=PRESET)
    sim = run_variant("jacobi", "seq", preset=PRESET)
    assert mod.mode == "model"
    assert mod.time == sim.time
    assert mod.messages == 0 and mod.kilobytes == 0.0

"""Seeded mutation tests: break a shipped program, assert lint catches it.

Each test injects one class of bug — a footprint lie, a superfluous
barrier pair, a page-straddling partition — at a seed-chosen location and
asserts the *intended* rule fires with the right statement and array
attribution.  The shipped apps lint clean (tests/test_lint.py), so any
finding here is caused by the mutation.
"""

import random

import numpy as np
import pytest

from repro.apps.common import get_app
from repro.compiler.ir import (Access, ArrayDecl, Full, ParallelLoop,
                               Program, Span, TimeLoop)
from repro.compiler.lint import lint_program

SEEDS = [11, 23, 47]


def _family(name):
    return name.split("[")[0]


def _build(app):
    spec = get_app(app)
    return spec.build_program(spec.params("test"))


def _parallel_loops(program):
    """Unique ParallelLoop objects (instances shared across TimeLoops)."""
    out, seen = [], set()
    for stmt, _w in program.flat_statements_with_window():
        if isinstance(stmt, ParallelLoop) and id(stmt) not in seen:
            seen.add(id(stmt))
            out.append(stmt)
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_footprint_lie_is_caught(seed):
    """Narrow a halo read Span(-1,1) -> Span(): the shadow sanitizer must
    attribute the undeclared read to the mutated loop and array."""
    rng = random.Random(seed)
    app = rng.choice(["jacobi", "shallow"])
    program = _build(app)
    victims = []
    for loop in _parallel_loops(program):
        for i, acc in enumerate(loop.reads):
            if acc.irregular or not acc.region:
                continue
            lead = acc.region[0]
            if isinstance(lead, Span) and (lead.lo_off < 0
                                           or lead.hi_off > 0):
                victims.append((loop, i))
    assert victims, f"{app} has no halo reads to mutate"
    loop, i = rng.choice(victims)
    acc = loop.reads[i]
    loop.reads[i] = Access(acc.array, (Span(),) + tuple(acc.region[1:]))

    rep = lint_program(program, 4, backends=("spf",))
    hits = [f for f in rep.findings if f.rule == "footprint"
            and f.severity == "error"]
    assert hits, rep.format()
    assert any(f.array == acc.array
               and _family(f.stmt) == _family(loop.name) for f in hits), \
        rep.format()


@pytest.mark.parametrize("seed", SEEDS)
def test_extra_barrier_pair_is_caught(seed):
    """Append a no-op loop that only re-touches a victim loop's output,
    chunk-aligned: the barrier between them is provably eliminable."""
    rng = random.Random(seed)
    program = _build("jacobi")
    victim = rng.choice([loop for loop in _parallel_loops(program)
                         if loop.name in ("stencil", "copy")])
    out = victim.writes[0].array

    def noop_kernel(views, lo, hi):
        return None

    extra = ParallelLoop("redundant", victim.extent, noop_kernel,
                         reads=[Access(out, (Span(), Full()))],
                         writes=[Access(out, (Span(), Full()))],
                         align=(out, 0))
    for stmt in program.body:
        if isinstance(stmt, TimeLoop) and not callable(stmt.body):
            idx = stmt.body.index(victim)
            stmt.body.insert(idx + 1, extra)
            break

    rep = lint_program(program, 4, backends=("spf",))
    pairs = {(f.details["pred"], f.stmt) for f in rep.findings
             if f.rule == "redundant-barrier"}
    assert (victim.name, "redundant") in pairs, rep.format()


@pytest.mark.parametrize("seed", SEEDS)
def test_page_straddling_partition_is_caught(seed):
    """Shrink rows off the page-size grid: chunk boundaries land inside
    pages and the false-sharing rule names the straddled array."""
    rng = random.Random(seed)
    n = 32

    def build(cols):
        def kernel(views, lo, hi):
            views["g"][lo:hi] = 1.0

        loop = ParallelLoop("write", n, kernel,
                            writes=[Access("g", (Span(), Full()))],
                            align=("g", 0))
        return Program("straddle",
                       arrays=[ArrayDecl("g", (n, cols), np.float32,
                                         distribute=0)],
                       body=[loop])

    # clean baseline: 8 rows x 128 cols x 4 B = exactly one page per chunk
    clean = lint_program(build(128), 4, backends=("spf",))
    assert not [f for f in clean.findings if f.rule == "false-sharing"], \
        clean.format()

    cols = rng.choice([96, 160, 200])       # 32*cols not a page multiple
    rep = lint_program(build(cols), 4, backends=("spf",))
    hits = [f for f in rep.findings if f.rule == "false-sharing"]
    assert hits and hits[0].stmt == "write", rep.format()
    assert "g" in hits[0].details

"""E2e tests of the cache-affine scheduler and admission control.

The contract under test (see docs/API.md "Scheduling"):

* a repeat ``cache_key`` routes back to the worker that already
  compiled it (``affinity_hits`` counts it, and the result's ``worker``
  field proves the landing spot);
* affinity never serializes a batch — an idle worker steals the oldest
  backlog entry once the queue reaches ``steal_threshold``;
* ``max_backlog`` refuses overflow requests immediately with structured
  ``error_kind="Rejected"`` results, and the verdict round-trips the
  JSON-lines wire protocol (``BatchResult.rejected``);
* ``BatchResult.workers`` reports *live* workers, not the configured
  pool size, after a crash with ``respawn=False``;
* the parallel evaluation harnesses produce documents bit-identical to
  their serial twins (``repro sweep --jobs N`` contract).
"""

from repro.api import RunRequest
from repro.serve import RunService, WireClient, WireServer

ECHO = "tests.serve_helpers:echo_runner"


def _req(app="jacobi", variant="spf", nprocs=2, tag=None):
    return RunRequest(app, variant, nprocs=nprocs, preset="test",
                      seq_time=1.0, tag=tag)


def test_repeat_keys_route_to_their_warm_worker():
    a, b = _req(app="jacobi"), _req(app="mgs")
    with RunService(workers=2, runner=ECHO) as svc:
        warm = svc.run_batch([a, b])
        assert warm.ok and warm.affinity_hits == 0
        home = {r.app: r.worker for r in warm.results}
        again = svc.run_batch([a, b])
        assert again.ok
        # both repeat keys landed on the worker that compiled them
        assert {r.app: r.worker for r in again.results} == home
        assert again.affinity_hits == 2
        stats = svc.stats()["scheduler"]
        assert stats["affinity_hits"] == 2
        labels = [k for keys in stats["warm_keys"].values() for k in keys]
        assert any(lbl.startswith("jacobi:spf:test:") for lbl in labels)


def test_affinity_never_serializes_a_batch():
    # six copies of ONE key through two workers: only one worker is ever
    # warm, so without stealing the other would idle the batch away
    batch_requests = [_req(tag=f"r{i}") for i in range(6)]
    with RunService(workers=2, runner=ECHO) as svc:
        batch = svc.run_batch(batch_requests)
        assert batch.ok
        assert batch.steals >= 1            # the cold worker took work
        assert batch.affinity_hits >= 1     # the warm worker kept some
        assert len({r.worker for r in batch.results}) == 2
        assert svc.stats()["scheduler"]["steals"] == batch.steals


def test_admission_control_rejects_overflow_structured():
    requests = [_req(tag=f"r{i}") for i in range(4)]
    with RunService(workers=1, runner=ECHO, max_backlog=2) as svc:
        batch = svc.run_batch(requests)
        assert not batch.ok and batch.runs == 4
        assert batch.rejected == 2
        verdicts = [r.error_kind for r in batch.results]
        assert verdicts.count("Rejected") == 2
        rejected = [r for r in batch.results if not r.ok]
        assert all("max_backlog" in r.error for r in rejected)
        # refusal is backpressure, not a failure: the pool keeps serving
        assert svc.run_batch(requests[:2]).ok
        assert svc.stats()["scheduler"]["rejections"] == 2


def test_rejection_round_trips_the_wire():
    with RunService(workers=1, runner=ECHO, max_backlog=2) as svc:
        server = WireServer(svc)
        server.serve_in_thread()
        try:
            with WireClient(server.host, server.port) as client:
                events = list(client.stream_batch(
                    [_req(tag=f"r{i}") for i in range(4)]))
                results = [p for k, _i, p in events if k == "result"]
                assert len(results) == 4
                batch = events[-1][2]
                assert batch.rejected == 2 and not batch.ok
                assert sum(1 for r in results
                           if r.error_kind == "Rejected") == 2
                assert client.stats()["scheduler"]["rejections"] == 2
        finally:
            server.close()


def test_batch_reports_live_workers_after_unreplaced_crash():
    with RunService(workers=2, runner=ECHO, respawn=False) as svc:
        before = svc.run_batch([_req(tag="warm")])
        assert before.workers == 2
        batch = svc.run_batch([_req(tag="crash"), _req(tag="ok")])
        assert batch.crashes == 1
        assert batch.workers == 1      # live count, not configured size
        after = svc.run_batch([_req(tag="still-serving")])
        assert after.ok and after.workers == 1


def test_dead_worker_send_failure_requeues_not_fails():
    # kill the only worker behind the service's back: dispatch hits the
    # broken task pipe, and the failed send must requeue the request
    # (never blame it as WorkerCrashed — the worker never received it),
    # reap the corpse and respawn, so the batch still succeeds
    with RunService(workers=1, runner=ECHO) as svc:
        proc = next(iter(svc._procs.values()))
        proc.terminate()
        proc.join(timeout=5.0)
        batch = svc.run_batch([_req(tag="revived")])
        assert batch.ok and batch.results[0].ok
        assert batch.crashes == 1


def test_parallel_sweep_document_is_bit_identical():
    from repro.eval.sweep import run_sweep

    kwargs = dict(apps=["jacobi"], variants=["spf", "xhpf"],
                  nodes=(8, 16))
    serial = run_sweep(**kwargs)
    parallel = run_sweep(jobs=2, **kwargs)
    assert serial == parallel
    assert serial["schema"] == "repro-sweep/3"

"""Service throughput benchmark: runs/min through the pool vs serial.

``python -m repro bench --throughput`` runs the canonical 5-kernel bench
matrix (:data:`repro.api.registry.BENCH_MATRIX`), ``repeats`` times over,
twice:

1. **serial baseline** — in-process, one request after another through
   :func:`repro.api.execute` with a single shared
   :class:`~repro.api.execute.ProgramCache` (the fairest serial
   opponent: it too compiles each kernel once);
2. **service** — the same requests batched through a
   :class:`~repro.serve.RunService` worker pool.

Both sides are measured *warm*: one uncounted pass populates the
compiled-program caches (and, on the service side, finishes worker
spawn/imports) before the timed pass.  The service under test is a
persistent pool — its steady-state throughput is the claim; folding
one-time process spawn into a seconds-long batch would measure startup,
not service.  The cold (first-pass) wall times are still recorded in
the artifact for the curious.

It then checks the gates:

* **bit identity** — every service result's ``fingerprint()`` must equal
  its serial twin's; a worker pool that changes answers is not an
  optimization, it is a bug;
* **throughput SLO** — service runs/min must be at least ``slo`` times
  the serial runs/min.  Wall-clock ratios do not travel between
  machines, so the default SLO is *calibrated to the host*:
  ``0.75 x min(workers, cpu_count)`` — 3.0 for a 4-worker pool on the
  4-core CI runner (the acceptance floor), and proportionally less on
  smaller hosts where perfect scaling is physically impossible;
* **affinity** — the timed (warm) batch repeats keys the pool has
  already compiled, so the cache-affine scheduler must report a nonzero
  affinity hit-rate; zero means dispatch has stopped honouring the
  per-worker caches;
* **sweep wall-clock** — a small model-mode ``repro sweep`` grid is run
  serially and again through the (already warm) pool; the parallel
  document must be bit-identical to the serial one, and the speedup must
  clear the test-preset calibrated SLO (2.0 on the 4-core CI runner —
  the "parallel sweep is at least 2x faster" acceptance floor).

With ``--fleet HOST:PORT`` (repeatable), the same warm batch is also
measured through a :class:`~repro.serve.FleetService` over those remote
``repro serve --tcp`` hosts: fleet runs/min vs the single-host pool,
per-host affinity hit rates from the cache-affine host router, and —
the non-negotiable — bit-identical fingerprints against the serial
baseline.  The fleet gates check identity, zero host loss, and a
nonzero warm-batch affinity hit rate; runs/min vs a *local* pool is
recorded but not gated (remote hosts' hardware is not the bench
host's).

The JSON artifact (``repro-throughput/3``) carries both measurements,
the affinity, sweep and (when requested) fleet sections, the per-run
documents, and the gate verdict — CI uploads it.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

from repro.api.execute import ProgramCache, execute
from repro.api.registry import BENCH_MATRIX
from repro.api.types import RunRequest

__all__ = ["THROUGHPUT_SCHEMA", "DEFAULT_REPEATS", "default_slo",
           "build_matrix", "run_throughput", "check_throughput",
           "write_results", "DEFAULT_RESULT_PATH"]

THROUGHPUT_SCHEMA = "repro-throughput/3"
DEFAULT_REPEATS = 3

#: the small model-mode grid for the sweep wall-clock measurement —
#: test-preset model cells are ~0.1-1.5s each, so this stays CI-sized
#: while leaving enough work for parallelism to show
SWEEP_APPS = ("jacobi", "mgs")
SWEEP_NODES = (64, 128)
DEFAULT_RESULT_PATH = os.path.join("benchmarks", "results",
                                   "BENCH_throughput.json")

#: fraction of ideal (one-core-per-worker) scaling the gate demands
_SLO_FRACTION = 0.75

#: relaxed fraction for the ``test`` preset: its runs are milliseconds,
#: so per-run IPC overhead is a big fraction and the smoke gate only
#: checks the service is not pathologically serializing
_SMOKE_SLO_FRACTION = 0.5

#: extra allowance when the pool has more workers than the host has
#: cores: the surplus processes buy no parallelism, only scheduler churn
_OVERSUBSCRIPTION_DISCOUNT = 0.8


def default_slo(workers: int, preset: str = "bench") -> float:
    """Calibrated SLO: a fraction of the host's achievable parallelism.

    ``min(workers, cpu_count)`` is the ceiling on concurrent simulator
    processes; demanding 75% of it (bench preset — 3.0 for a 4-worker
    pool on a 4-core runner) tolerates pool overhead and skewed kernel
    durations while still failing a service that serializes.  The tiny
    ``test`` preset gates at 50% — its runs finish in milliseconds, where
    queue/pickle overhead legitimately eats a larger share.  An
    oversubscribed pool (more workers than cores) pays context-switch
    overhead for zero extra parallelism, so the gate concedes a further
    20% there.
    """
    cores = os.cpu_count() or 1
    fraction = _SMOKE_SLO_FRACTION if preset == "test" else _SLO_FRACTION
    if workers > cores:
        fraction *= _OVERSUBSCRIPTION_DISCOUNT
    return round(fraction * min(workers, cores), 3)


def build_matrix(preset: str = "test", nprocs: int = 8,
                 repeats: int = DEFAULT_REPEATS) -> list:
    """``repeats`` copies of the bench matrix as tagged RunRequests.

    ``seq_time=1.0`` skips the sequential oracle (this benchmark times
    the harness, not speedups); the tag records kernel name and round.
    """
    return [RunRequest(app=app, variant=variant, nprocs=nprocs,
                       preset=preset, seq_time=1.0,
                       tag=f"{name}#r{rep}")
            for rep in range(repeats)
            for name, app, variant in BENCH_MATRIX]


def _measure_fleet(hosts: list, requests: list, serial: list,
                   service_rpm: float, progress=None) -> dict:
    """The ``--fleet`` section: the warm batch across remote hosts."""
    from repro.serve import FleetService

    if progress:
        progress(f"fleet: same batch across {len(hosts)} remote host(s) "
                 f"(warm batch + timed batch)")
    with FleetService(hosts) as fleet:
        cold = fleet.run_batch(requests)      # warm the remote caches
        batch = fleet.run_batch(requests)
        stats = fleet.stats()["fleet"]
        live_workers = fleet.live_workers()

    mismatches = [r.tag for s, r in zip(serial, batch.results)
                  if s.fingerprint() != r.fingerprint()]
    rpm = batch.runs_per_min
    per_host = {}
    for label, snap in stats["hosts"].items():
        per_host[label] = {
            "runs": snap["runs"],
            "affinity_hits": snap["affinity_hits"],
            "hit_rate": (round(snap["affinity_hits"] / snap["runs"], 3)
                         if snap["runs"] else 0.0),
        }
    return {
        "hosts": list(stats["hosts"]),
        "live_workers": live_workers,
        "wall_s": batch.wall_s,
        "cold_wall_s": cold.wall_s,
        "runs_per_min": round(rpm, 2),
        "vs_service": round(rpm / service_rpm, 3) if service_rpm else 0.0,
        "affinity_hits": batch.affinity_hits,
        "steals": batch.steals,
        "hit_rate": (round(batch.affinity_hits / len(requests), 3)
                     if requests else 0.0),
        "per_host": per_host,
        "requeues": stats["requeues"],
        "hosts_lost": stats["hosts_lost"],
        "ok": batch.ok and cold.ok,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
    }


def run_throughput(workers: int = 4, repeats: int = DEFAULT_REPEATS,
                   nprocs: int = 8, preset: str = "test",
                   slo: Optional[float] = None,
                   fleet: Optional[list] = None,
                   progress=None) -> dict:
    """Measure serial vs service runs/min; returns the result document.

    ``fleet`` (``"HOST:PORT"`` specs of running ``repro serve --tcp``
    hosts) adds the multi-host section — see the module docstring.
    """
    from repro.serve import RunService

    requests = build_matrix(preset=preset, nprocs=nprocs, repeats=repeats)
    slo = default_slo(workers, preset) if slo is None else float(slo)

    if progress:
        progress(f"serial baseline: {len(requests)} run(s) in-process "
                 f"(warm pass + timed pass)")
    cache = ProgramCache()
    t0 = time.perf_counter()
    for r in requests:                       # warm: compile each kernel once
        execute(r, cache)
    serial_cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    serial = [execute(r, cache) for r in requests]
    serial_wall = time.perf_counter() - t0

    if progress:
        progress(f"service: same batch through {workers} worker(s) "
                 f"(warm batch + timed batch)")
    with RunService(workers=workers) as svc:
        cold = svc.run_batch(requests)       # warm: spawn, import, compile
        batch = svc.run_batch(requests)

        if progress:
            progress(f"sweep wall-clock: {len(SWEEP_APPS)} app(s) x "
                     f"{len(SWEEP_NODES)} node count(s), serial then "
                     f"through the warm pool")
        from repro.eval.sweep import run_sweep
        t0 = time.perf_counter()
        sweep_serial = run_sweep(apps=list(SWEEP_APPS), nodes=SWEEP_NODES,
                                 preset="test")
        sweep_serial_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        sweep_service = run_sweep(apps=list(SWEEP_APPS), nodes=SWEEP_NODES,
                                  preset="test", service=svc)
        sweep_service_wall = time.perf_counter() - t0

    mismatches = [r.tag for s, r in zip(serial, batch.results)
                  if s.fingerprint() != r.fingerprint()]
    serial_rpm = 60.0 * len(requests) / serial_wall if serial_wall else 0.0
    ratio = (batch.runs_per_min / serial_rpm) if serial_rpm else 0.0
    sweep_slo = default_slo(workers, "test")
    sweep_ratio = (sweep_serial_wall / sweep_service_wall
                   if sweep_service_wall else 0.0)

    doc = {
        "schema": THROUGHPUT_SCHEMA,
        "preset": preset,
        "nprocs": nprocs,
        "repeats": repeats,
        "runs": len(requests),
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "serial": {
            "wall_s": round(serial_wall, 4),
            "cold_wall_s": round(serial_cold_wall, 4),
            "runs_per_min": round(serial_rpm, 2),
        },
        "service": {
            "wall_s": batch.wall_s,
            "cold_wall_s": cold.wall_s,
            "runs_per_min": round(batch.runs_per_min, 2),
            "cache_hits": batch.cache_hits,
            "cache_misses": batch.cache_misses,
            "crashes": batch.crashes + cold.crashes,
            "ok": batch.ok and cold.ok,
        },
        "affinity": {
            # the timed batch repeats keys the cold batch compiled, so a
            # cache-affine scheduler lands a measurable share of them on
            # their warm worker
            "hits": batch.affinity_hits,
            "steals": batch.steals,
            "hit_rate": round(batch.affinity_hits / len(requests), 3)
            if requests else 0.0,
        },
        "sweep": {
            "apps": list(SWEEP_APPS),
            "nodes": list(SWEEP_NODES),
            "cells": sum(len(e["variants"]) * len(SWEEP_NODES)
                         for e in sweep_serial["apps"].values()),
            "serial_wall_s": round(sweep_serial_wall, 4),
            "service_wall_s": round(sweep_service_wall, 4),
            "speedup": round(sweep_ratio, 3),
            "slo": sweep_slo,
            "bit_identical": sweep_serial == sweep_service,
        },
        "speedup": round(ratio, 3),
        "slo": slo,
        "bit_identical": not mismatches,
        "mismatches": mismatches,
        "results": [r.to_json() for r in batch.results],
    }
    if fleet:
        doc["fleet"] = _measure_fleet(list(fleet), requests, serial,
                                      batch.runs_per_min, progress)
    doc["failures"] = check_throughput(doc)
    doc["ok"] = not doc["failures"]
    return doc


def check_throughput(doc: dict) -> list:
    """Gate verdicts for a throughput document; returns failure strings."""
    failures = []
    if not doc["service"]["ok"]:
        failures.append("service batch contains failed run(s)")
    if not doc["bit_identical"]:
        failures.append(
            f"service results diverged from the serial baseline for "
            f"{doc['mismatches']} — a worker pool must not change answers")
    if doc["speedup"] < doc["slo"]:
        failures.append(
            f"throughput {doc['speedup']:.2f}x serial is below the "
            f"calibrated SLO {doc['slo']:.2f}x "
            f"({doc['workers']} worker(s), {doc['cpu_count']} core(s))")
    if doc["affinity"]["hit_rate"] <= 0.0:
        failures.append(
            "affinity hit-rate is zero on a repeat-key batch — the "
            "scheduler is not routing warm keys back to their workers")
    if not doc["sweep"]["bit_identical"]:
        failures.append(
            "parallel sweep document diverged from the serial sweep — "
            "a worker pool must not change answers")
    if doc["sweep"]["speedup"] < doc["sweep"]["slo"]:
        failures.append(
            f"parallel sweep {doc['sweep']['speedup']:.2f}x serial "
            f"wall-clock is below the calibrated SLO "
            f"{doc['sweep']['slo']:.2f}x "
            f"({doc['workers']} worker(s), {doc['cpu_count']} core(s))")
    fl = doc.get("fleet")
    if fl is not None:
        if not fl["ok"]:
            failures.append("fleet batch contains failed run(s)")
        if not fl["bit_identical"]:
            failures.append(
                f"fleet results diverged from the serial baseline for "
                f"{fl['mismatches']} — a host fleet must not change "
                f"answers")
        if fl["hosts_lost"]:
            failures.append(
                f"fleet lost {fl['hosts_lost']} host(s) during the bench")
        if fl["hit_rate"] <= 0.0:
            failures.append(
                "fleet affinity hit-rate is zero on a repeat-key batch — "
                "the host router is not honouring warm caches")
    return failures


def write_results(doc: dict, path: str = DEFAULT_RESULT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path

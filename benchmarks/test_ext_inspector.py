"""E16 (extension) — inspector-executor vs DSM on the irregular codes.

Section 8's related work: Mukherjee et al. found plain shared memory not
competitive with the CHAOS inspector-executor runtime, and Lu et al. [12]
found that TreadMarks *with simple compiler support* "achieves similar
performance to the inspector-executor method".  With the inspector-executor
implemented as an XHPF option (`repro.compiler.inspector`), that comparison
can be rerun here:

* the inspector-executor rescues compiler-generated message passing from
  the broadcast-everything collapse (its data volume drops by orders of
  magnitude),
* and the resulting performance is *comparable to* the compiler+DSM
  combination — consistent with Lu et al., and with this paper's argument
  that the DSM delivers that class of performance without the complex
  compiler.
"""

from repro.compiler.xhpf import XhpfOptions

from conftest import all_variants, archive, one_variant, runner  # noqa: F401


def test_inspector_executor_comparison(runner):
    def experiment_direct():
        from repro.apps.common import get_app
        from repro.compiler.xhpf import run_xhpf
        from conftest import NPROCS, PRESET, all_variants as av
        out = {}
        for app in ("igrid", "nbf"):
            base = av(app)
            spec = get_app(app)
            prog = spec.build_program(spec.params(PRESET))
            r = run_xhpf(prog, nprocs=NPROCS,
                         options=XhpfOptions(inspector_executor=True))
            elapsed, wtraffic = r.window()
            out[app] = dict(
                spf=base["spf"], xhpf=base["xhpf"], pvme=base["pvme"],
                insp_speedup=base["seq"].time / elapsed,
                insp_msgs=wtraffic.messages,
                insp_kb=wtraffic.kilobytes)
        return out

    res = runner(experiment_direct)
    lines = ["Extension — inspector-executor (CHAOS-style) vs the DSM"]
    for app, r in res.items():
        lines.append(
            f"{app:6s} speedups: XHPF bcast-all {r['xhpf'].speedup:5.2f}, "
            f"XHPF+inspector {r['insp_speedup']:5.2f}, "
            f"SPF/Tmk {r['spf'].speedup:5.2f}, PVMe {r['pvme'].speedup:5.2f}")
        lines.append(
            f"       window data: bcast-all {r['xhpf'].kilobytes:9.0f} KB "
            f"-> inspector {r['insp_kb']:9.0f} KB")
    archive("ext_inspector", "\n".join(lines))

    for app, r in res.items():
        assert r["insp_speedup"] > r["xhpf"].speedup, (
            f"{app}: the inspector must beat broadcast-everything")
        assert r["insp_kb"] < r["xhpf"].kilobytes / 5, app
        # Lu et al.: DSM ~ inspector-executor (within ~15% either way)
        ratio = r["insp_speedup"] / r["spf"].speedup
        assert 0.8 < ratio < 1.25, (
            f"{app}: inspector/DSM ratio {ratio:.2f} — expected comparable")

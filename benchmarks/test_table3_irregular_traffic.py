"""E5 — Table 3: message totals and data totals, irregular applications.

The orders-of-magnitude structure the paper reports:

* XHPF's broadcast-everything dwarfs everything else (140 MB / 164 MB in
  the paper vs 131 KB / 228 KB for hand-coded TreadMarks),
* the DSM variants move only what is actually touched,
* SPF carries extra data versus hand-coded TreadMarks because the
  indirection structures live in shared memory (IGrid's map, NBF's
  partner-adjacent staging).
"""

from repro.eval.constants import IRREGULAR_APPS, PAPER
from repro.eval.tables import format_traffic_table

from conftest import all_variants, archive, runner  # noqa: F401


def test_table3(runner):
    results = runner(lambda: {app: all_variants(app)
                              for app in IRREGULAR_APPS})
    text = format_traffic_table(
        results, IRREGULAR_APPS,
        "Table 3 — Message Totals and Data Totals (KB), Irregular "
        "Applications")
    archive("table3_irregular_traffic", text)

    for app in IRREGULAR_APPS:
        kb = {v: results[app][v].kilobytes
              for v in ("spf", "tmk", "xhpf", "pvme")}
        msgs = {v: results[app][v].messages
                for v in ("spf", "tmk", "xhpf", "pvme")}
        assert kb["xhpf"] > 5 * kb["tmk"], (
            f"{app}: XHPF data must dwarf hand-Tmk "
            f"({kb['xhpf']:.0f} vs {kb['tmk']:.0f} KB)")
        assert kb["xhpf"] > kb["spf"], app
        assert msgs["xhpf"] > msgs["tmk"], app
        assert kb["spf"] >= kb["tmk"], app


def test_igrid_xhpf_per_iteration_volume_matches_paper(runner):
    """IGrid XHPF: each processor broadcasts its whole block every step
    — per-iteration data should match the paper's 140 MB / 19 iterations."""
    results = runner(lambda: all_variants("igrid"))
    from repro.apps.igrid import PRESETS
    from conftest import PRESET
    iters = PRESETS[PRESET]["iters"]       # the measured window
    per_iter_kb = results["xhpf"].kilobytes / iters
    paper_per_iter = PAPER["igrid"].data_kb["xhpf"] / 19
    assert 0.7 * paper_per_iter < per_iter_kb < 1.3 * paper_per_iter, (
        f"{per_iter_kb:.0f} KB/iter vs paper {paper_per_iter:.0f}")

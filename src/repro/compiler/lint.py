"""Static IR verifier: ``python -m repro lint``.

The dynamic race detector (PR 1) needs a full simulated run to fire; this
module finds the same families of defects *statically*, before any
simulation, by analyzing the :class:`~repro.compiler.ir.Program` the way
the paper's compilers do.  Five rule families:

* **well-formedness** (``wf-*``) — undeclared arrays, region rank
  mismatches, out-of-bounds ``Point`` indices, empty iteration spaces,
  ``Span`` halos on cyclic schedules, reductions a kernel never produces,
  plus the XHPF backend's hard distribution constraints (``xhpf-*``);
* **footprint soundness** (``footprint``) — a shadow-execution sanitizer:
  each kernel runs once, single-process, chunk by chunk on recording array
  wrappers, and every element touched outside the declared read/write
  regions is reported with source attribution.  Today a footprint lie only
  surfaces as a numeric mismatch against the sequential oracle at some
  processor count;
* **redundant synchronization** (``redundant-barrier``) — adjacent
  parallel loops that pass :func:`depend.loops_fusable_exact` (the
  symbolic chunk-set test, exact where the older bounding-rectangle
  :func:`analysis.loops_fusable` over-approximates cyclic chunks) but are
  compiled unfused: an eliminable barrier pair (Tseng [17], Section 5 of
  the paper);
* **false sharing** (``false-sharing``) — from dtype, shape, page size and
  the block/cyclic partition, the chunk boundaries that straddle pages,
  predicting write-write false sharing and the diff traffic it causes
  (the paper's Jacobi loses 2% exactly here);
* **traffic prediction** (:func:`estimate_spf_traffic`) — a static
  page-level LRC model over the SPF dispatch schedule predicting
  ``DsmStats`` counters (faults, fetches, twins/diffs, lock traffic) and a
  diff-byte upper bound.  Irregular programs report "unanalyzable" exactly
  where the paper's compilers give up.

Suppression: patterns of the form ``rule`` or ``rule:stmt`` (fnmatch
globs, matched against the statement family — ``orthogonalize[5]``
matches ``orthogonalize``).  See docs/LINT.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from fnmatch import fnmatch
from typing import Optional

import numpy as np

from repro.compiler import analysis, depend
from repro.compiler.ir import (FootprintError, Mark, ParallelLoop,
                               Program, SeqBlock, Span)
from repro.sim.machine import PAGE_SIZE
from repro.tmk.pagespace import SharedSpace

__all__ = ["Finding", "LintReport", "TrafficEstimate", "ShadowArray",
           "lint_program", "estimate_spf_traffic", "compare_traffic",
           "TRAFFIC_TOLERANCES"]

SEVERITIES = ("error", "warning", "info")


def _family(stmt_name: str) -> str:
    """Statement family: ``orthogonalize[5]`` -> ``orthogonalize``.

    TimeLoop factories stamp the outer index into statement names; rules
    dedupe (and suppressions match) per family, not per instance.
    """
    return stmt_name.split("[")[0]


# ---------------------------------------------------------------------- #
# findings

@dataclass
class Finding:
    """One lint diagnostic with source attribution."""

    rule: str
    severity: str
    program: str
    stmt: str                       # statement name ("" for program-level)
    message: str
    array: Optional[str] = None
    window: str = "setup"           # setup | measured | epilogue
    hint: str = ""
    details: dict = field(default_factory=dict)

    def key(self) -> tuple:
        return (self.rule, _family(self.stmt), self.array)

    def where(self) -> str:
        loc = self.program
        if self.stmt:
            loc += f"/{self.stmt}"
        loc += f" [{self.window}]"
        if self.array:
            loc += f" array {self.array!r}"
        return loc

    def format(self) -> str:
        lines = [f"{self.severity:7s} {self.rule:18s} {self.where()}: "
                 f"{self.message}"]
        if self.hint:
            lines.append(f"{'':26s} hint: {self.hint}")
        return "\n".join(lines)

    def as_doc(self) -> dict:
        return asdict(self)


@dataclass
class TrafficEstimate:
    """Static prediction of the SPF variant's whole-run DSM counters."""

    analyzable: bool
    reason: str = ""                # why not, when analyzable is False
    nprocs: int = 0
    loop_units: int = 0             # fork-join dispatches
    seq_units: int = 0
    red_instances: int = 0          # reduction-loop instances
    read_faults: int = 0
    write_faults: int = 0
    fetches: int = 0
    fetch_requests: int = 0         # (fetch, missing-writer) pairs
    diffs_applied: int = 0
    twins_created: int = 0
    diffs_created: int = 0          # == twins (every twin yields one diff)
    lock_acquires: int = 0
    lock_remote: int = 0
    est_messages: int = 0
    est_diff_kb: float = 0.0        # approx. payload bound (run headers
                                    # and word-level contents not modeled)
    shared_write_pages: int = 0     # (epoch, page) pairs with >= 2 writers

    def format(self) -> str:
        if not self.analyzable:
            return f"traffic: unanalyzable ({self.reason})"
        return (f"traffic (spf, n={self.nprocs}): "
                f"~{self.fetches} fetches, ~{self.twins_created} twins/"
                f"diffs, {self.lock_acquires} lock acquires, "
                f"~{self.est_messages} messages, "
                f"~{self.est_diff_kb:.0f} KB diff data")

    def as_doc(self) -> dict:
        return asdict(self)


# Declared cross-check tolerances (relative error vs. simulated DsmStats)
# for regular applications; the estimator is a page-granularity epoch model
# (it cannot see word-level diff contents), so the byte count approximates
# the payload from above — encoded diffs add small run headers, so it is
# not a strict bound.  tests/test_lint_traffic.py asserts these against
# the simulator.
TRAFFIC_TOLERANCES = {
    "read_faults": 0.20,
    "write_faults": 0.15,
    "fetches": 0.20,
    "twins_created": 0.15,
    "diffs_created": 0.15,
    "lock_acquires": 0.0,           # exact: nprocs per reduction instance
    "est_messages": 0.25,
}


def compare_traffic(est: "TrafficEstimate", dsm, messages: int) -> list:
    """``[(metric, predicted, actual, tolerance, ok)]`` per cross-checked
    counter.  ``messages`` is the whole-run network message count."""
    rows = []
    for metric, tol in TRAFFIC_TOLERANCES.items():
        predicted = getattr(est, metric)
        actual = messages if metric == "est_messages" \
            else getattr(dsm, metric)
        if tol == 0.0:
            ok = predicted == actual
        else:
            ok = abs(predicted - actual) <= tol * max(actual, 1)
        rows.append((metric, predicted, actual, tol, ok))
    return rows


@dataclass
class LintReport:
    """All findings for one program, plus the optional traffic estimate."""

    program: str
    nprocs: int
    findings: list = field(default_factory=list)
    traffic: Optional[TrafficEstimate] = None
    suppressed: int = 0

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> tuple:
        sev = [f.severity for f in self.findings]
        return (sev.count("error"), sev.count("warning"), sev.count("info"))

    def format(self) -> str:
        e, w, i = self.counts()
        head = (f"lint {self.program} (n={self.nprocs}): "
                f"{e} error(s), {w} warning(s), {i} info")
        if self.suppressed:
            head += f", {self.suppressed} suppressed"
        lines = [head]
        order = {"error": 0, "warning": 1, "info": 2}
        for f in sorted(self.findings, key=lambda f: (order[f.severity],
                                                      f.rule, f.stmt)):
            lines.append("  " + f.format().replace("\n", "\n  "))
        if self.traffic is not None:
            lines.append("  " + self.traffic.format())
        lines.append(f"  {'CLEAN' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def as_doc(self) -> dict:
        e, w, i = self.counts()
        return {"program": self.program, "nprocs": self.nprocs,
                "errors": e, "warnings": w, "infos": i, "ok": self.ok,
                "suppressed": self.suppressed,
                "findings": [f.as_doc() for f in self.findings],
                "traffic": (self.traffic.as_doc()
                            if self.traffic is not None else None)}


# ---------------------------------------------------------------------- #
# rule 1: well-formedness

def _stmt_chunks(stmt, nprocs: int) -> list:
    """Representative (lo, hi) bounds to resolve a statement's regions at."""
    if isinstance(stmt, SeqBlock):
        return [(0, 0)]
    chunks = []
    for pid in range(nprocs):
        chunk = analysis.loop_chunk(stmt, pid, nprocs)
        if isinstance(chunk, np.ndarray):
            if chunk.size:
                chunks.append((int(chunk[0]), int(chunk[-1]) + 1))
        elif chunk[1] > chunk[0]:
            chunks.append(chunk)
    return chunks


def _check_wellformed(program: Program, nprocs: int,
                      backends: tuple) -> list:
    findings = []
    names = {a.name for a in program.arrays}
    seen = set()

    def emit(rule, severity, stmt, window, message, array=None, hint="",
             **details):
        f = Finding(rule=rule, severity=severity, program=program.name,
                    stmt=stmt, message=message, array=array, window=window,
                    hint=hint, details=details)
        if f.key() not in seen:
            seen.add(f.key())
            findings.append(f)

    families = set()
    for stmt, window in program.flat_statements_with_window():
        if isinstance(stmt, Mark):
            continue
        fam = _family(stmt.name)
        if fam in families:
            continue
        families.add(fam)
        if isinstance(stmt, ParallelLoop):
            if stmt.extent <= 0:
                emit("wf-extent", "error", stmt.name, window,
                     f"bad loop extent {stmt.extent}",
                     hint="extent must be positive")
                continue
            if stmt.extent - stmt.start <= 0:
                emit("wf-empty", "warning", stmt.name, window,
                     f"empty iteration space [{stmt.start}, {stmt.extent})",
                     hint="drop the loop or fix start/extent")
            for name in stmt.accumulate:
                if name not in names:
                    emit("wf-undeclared", "error", stmt.name, window,
                         f"accumulate of undeclared array {name!r}",
                         array=name)
            if stmt.align is not None and stmt.align[0] not in names:
                emit("wf-undeclared", "error", stmt.name, window,
                     f"align references undeclared array "
                     f"{stmt.align[0]!r}", array=stmt.align[0])
        for which in ("reads", "writes"):
            for acc in getattr(stmt, which):
                if acc.array not in names:
                    emit("wf-undeclared", "error", stmt.name, window,
                         f"{which[:-1]} of undeclared array {acc.array!r}",
                         array=acc.array)
                    continue
                if acc.irregular:
                    continue
                shape = program.decl(acc.array).shape
                for lo, hi in _stmt_chunks(stmt, nprocs):
                    try:
                        acc.resolve(lo, hi, shape)
                    except FootprintError as err:
                        rule = "wf-rank" if err.kind == "rank" \
                            else "wf-bounds"
                        emit(rule, "error", stmt.name, window,
                             f"{which[:-1]} region: {err.args[0]}",
                             array=acc.array,
                             hint=("match the region's rank to the "
                                   "array declaration"
                                   if err.kind == "rank" else
                                   "keep Point indices inside the array"),
                             kind=err.kind, region_rank=err.region_rank,
                             array_rank=err.array_rank, dim=err.dim,
                             index=err.index, extent=err.extent)
                        break
                if (isinstance(stmt, ParallelLoop)
                        and stmt.schedule == "cyclic" and acc.region):
                    lead = acc.region[0]
                    if isinstance(lead, Span) and (lead.lo_off < 0
                                                   or lead.hi_off > 0):
                        emit("wf-halo-cyclic", "warning", stmt.name,
                             window,
                             f"Span halo ({lead.lo_off:+d}, "
                             f"{lead.hi_off:+d}) on a cyclic schedule: "
                             f"the bounding-interval footprint covers "
                             f"nearly the whole array",
                             array=acc.array,
                             hint="use a block schedule for halo "
                                  "exchanges, or declare Full()")

    if "xhpf" in backends:
        for decl in program.arrays:
            if decl.distribute is not None and decl.distribute != 0:
                emit("xhpf-dist-dim", "error", "", "setup",
                     f"distribute={decl.distribute}: the XHPF backend "
                     f"implements only dim-0 distribution",
                     array=decl.name,
                     hint="distribute dimension 0 or replicate")
        for stmt, window in program.flat_statements_with_window():
            if not isinstance(stmt, SeqBlock) \
                    or _family(stmt.name) + ":xhpf" in families:
                continue
            families.add(_family(stmt.name) + ":xhpf")
            for acc in stmt.reads:
                if acc.irregular or acc.array not in names:
                    continue
                decl = program.decl(acc.array)
                if decl.distribute is None or decl.dist_kind != "cyclic":
                    continue
                region = acc.resolve(0, 0, decl.shape)
                rows = region[0]
                row_lo, row_hi = (rows, rows + 1) if isinstance(rows, int) \
                    else (rows.start, rows.stop)
                if row_hi - row_lo > 1:
                    emit("xhpf-cyclic-seq", "error", stmt.name, window,
                         f"sequential read of {row_hi - row_lo} rows of a "
                         f"CYCLIC-distributed array (the backend "
                         f"broadcasts single rows only)",
                         array=acc.array,
                         hint="read one row at a time, or distribute "
                              "BLOCK-wise")
    return findings


# ---------------------------------------------------------------------- #
# rule 2: footprint soundness (shadow execution)

class ShadowArray:
    """A recording array wrapper: reads and writes mark element masks.

    Not an ndarray subclass — every access funnels through ``__getitem__``
    / ``__setitem__`` (or ``__array__`` for whole-array conversions), so a
    kernel cannot touch an element without the sanitizer seeing it.
    ``reshape`` returns a wrapper over reshaped *views* of the same data
    and masks (FFT's flat checksum indexing stays exact).
    """

    __slots__ = ("data", "read_mask", "write_mask")

    def __init__(self, data: np.ndarray,
                 read_mask: Optional[np.ndarray] = None,
                 write_mask: Optional[np.ndarray] = None):
        self.data = data
        self.read_mask = (np.zeros(data.shape, bool)
                          if read_mask is None else read_mask)
        self.write_mask = (np.zeros(data.shape, bool)
                           if write_mask is None else write_mask)

    # ---- shape protocol -------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def __len__(self):
        return len(self.data)

    # ---- recorded accesses ---------------------------------------------
    def __getitem__(self, idx):
        self.read_mask[idx] = True
        return np.array(self.data[idx], copy=True)

    def __setitem__(self, idx, value):
        if isinstance(value, ShadowArray):
            value.read_mask[...] = True
            value = value.data
        self.write_mask[idx] = True
        self.data[idx] = value

    def __array__(self, dtype=None, copy=None):
        self.read_mask[...] = True
        data = self.data
        return data.astype(dtype) if dtype is not None else np.array(data)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ShadowArray(self.data.reshape(shape),
                           self.read_mask.reshape(shape),
                           self.write_mask.reshape(shape))

    def astype(self, dtype):
        self.read_mask[...] = True
        return self.data.astype(dtype)

    def copy(self):
        self.read_mask[...] = True
        return self.data.copy()

    # arithmetic on the whole wrapper counts as a full read
    def _full(self):
        self.read_mask[...] = True
        return self.data

    def __add__(self, other):
        return self._full() + other

    def __radd__(self, other):
        return other + self._full()

    def __sub__(self, other):
        return self._full() - other

    def __rsub__(self, other):
        return other - self._full()

    def __mul__(self, other):
        return self._full() * other

    def __rmul__(self, other):
        return other * self._full()

    def __truediv__(self, other):
        return self._full() / other

    def __rtruediv__(self, other):
        return other / self._full()

    def __matmul__(self, other):
        return self._full() @ other

    def __neg__(self):
        return -self._full()


def _declared_masks(stmt, chunk, raw: dict, program: Program) -> tuple:
    """(read_masks, write_masks) granted to this chunk by the declarations,
    mirroring exactly what the SPF backend would make coherent."""
    reads = {name: np.zeros(arr.shape, bool) for name, arr in raw.items()}
    writes = {name: np.zeros(arr.shape, bool) for name, arr in raw.items()}
    for which, masks in (("reads", reads), ("writes", writes)):
        for acc in getattr(stmt, which):
            arr = raw[acc.array]
            if acc.irregular:
                if isinstance(chunk, np.ndarray):
                    idx = acc.region.footprint(raw, chunk, None)
                else:
                    idx = acc.region.footprint(raw, chunk[0], chunk[1])
                masks[acc.array].reshape(-1)[
                    np.asarray(idx, dtype=np.int64)] = True
            elif isinstance(chunk, np.ndarray):
                lead = acc.region[0] if acc.region else None
                if isinstance(lead, Span) and lead.lo_off == 0 \
                        and lead.hi_off == 0:
                    # the backend ensures exactly the owned rows
                    masks[acc.array][chunk] = True
                else:
                    region = acc.resolve(int(chunk[0]),
                                         int(chunk[-1]) + 1, arr.shape)
                    masks[acc.array][region] = True
            else:
                region = acc.resolve(chunk[0], chunk[1], arr.shape)
                masks[acc.array][region] = True
    return reads, writes


def _sample_coords(extra: np.ndarray, limit: int = 3) -> str:
    coords = np.argwhere(extra)[:limit]
    return ", ".join(str(tuple(int(x) for x in c)) for c in coords)


def _check_footprints(program: Program, nprocs: int) -> list:
    findings = []
    seen = set()
    shadow = {d.name: ShadowArray(np.zeros(d.shape, dtype=d.dtype))
              for d in program.arrays}
    raw = {name: s.data for name, s in shadow.items()}

    def emit(rule, stmt, window, array, mode, count, sample, hint):
        key = (rule, _family(stmt.name), array, mode)
        if key in seen:
            return
        seen.add(key)
        findings.append(Finding(
            rule=rule, severity="error", program=program.name,
            stmt=stmt.name, array=array, window=window,
            message=f"kernel {mode} {count} element(s) outside the "
                    f"declared {mode[:-1]} region, e.g. at {sample}",
            hint=hint, details={"mode": mode, "count": int(count)}))

    def reset_masks():
        for s in shadow.values():
            if s.read_mask.any():
                s.read_mask[...] = False
            if s.write_mask.any():
                s.write_mask[...] = False

    for stmt, window in program.flat_statements_with_window():
        if isinstance(stmt, Mark):
            continue
        accumulate = list(getattr(stmt, "accumulate", ()))
        if isinstance(stmt, SeqBlock):
            chunks = [(0, 0)]
        else:
            chunks = [analysis.loop_chunk(stmt, pid, nprocs)
                      for pid in range(nprocs)]
            for name in accumulate:
                raw[name][...] = 0      # sequential accumulate semantics
        for chunk in chunks:
            if isinstance(chunk, np.ndarray):
                if chunk.size == 0:
                    continue
            elif not isinstance(stmt, SeqBlock) and chunk[1] <= chunk[0]:
                continue
            reset_masks()
            decl_r, decl_w = _declared_masks(stmt, chunk, raw, program)
            views = dict(shadow)
            buffers = {}
            for name in accumulate:
                # the backend redirects accumulation to a private buffer
                # and merges afterwards; only nonzero contributions are
                # observable, exactly like _stage_contributions
                buffers[name] = views[name] = np.zeros(
                    raw[name].shape, dtype=raw[name].dtype)
            if isinstance(stmt, SeqBlock):
                partials = stmt.kernel(views)
            elif isinstance(chunk, np.ndarray):
                partials = stmt.kernel(views, chunk)
            else:
                partials = stmt.kernel(views, chunk[0], chunk[1])
            for name, s in shadow.items():
                extra_w = s.write_mask & ~decl_w[name]
                if extra_w.any():
                    emit("footprint", stmt, window, name, "writes",
                         extra_w.sum(), _sample_coords(extra_w),
                         "widen the declared write Access or fix the "
                         "kernel")
                granted = decl_r[name] | decl_w[name]
                extra_r = s.read_mask & ~granted
                if extra_r.any():
                    emit("footprint", stmt, window, name, "reads",
                         extra_r.sum(), _sample_coords(extra_r),
                         "widen the declared read Access or fix the "
                         "kernel")
            for name, buf in buffers.items():
                contrib = buf != 0
                extra = contrib & ~decl_w[name]
                if extra.any():
                    emit("footprint", stmt, window, name, "writes",
                         extra.sum(), _sample_coords(extra),
                         "widen the declared accumulate footprint or fix "
                         "the kernel")
                raw[name] += buf        # merge, like the synthetic loop
            if isinstance(stmt, ParallelLoop) and stmt.reductions:
                for red in stmt.reductions:
                    if not isinstance(partials, dict) \
                            or red.name not in partials:
                        key = ("wf-reduction", _family(stmt.name),
                               red.name, "red")
                        if key not in seen:
                            seen.add(key)
                            findings.append(Finding(
                                rule="wf-reduction", severity="error",
                                program=program.name, stmt=stmt.name,
                                array=None, window=window,
                                message=f"reduction {red.name!r} declared "
                                        f"but the kernel returned no "
                                        f"partial for it",
                                hint="return {name: value} from the "
                                     "kernel or drop the Reduction"))
    return findings


# ---------------------------------------------------------------------- #
# rule 3: redundant synchronization

def _check_redundant_barriers(program: Program, nprocs: int,
                              options) -> list:
    if options is not None and getattr(options, "fuse_loops", False):
        return []                   # the compiler already fuses
    findings = []
    seen = set()
    prev = None
    for stmt, window in program.flat_statements_with_window():
        if not isinstance(stmt, ParallelLoop):
            prev = None             # SeqBlock / Mark breaks the unit chain
            continue
        if (prev is not None and not stmt.accumulate
                and depend.loops_fusable_exact(prev, stmt, nprocs,
                                               program)):
            key = (_family(prev.name), _family(stmt.name))
            if key not in seen:
                seen.add(key)
                findings.append(Finding(
                    rule="redundant-barrier", severity="warning",
                    program=program.name, stmt=stmt.name, window=window,
                    message=f"the barrier pair between {prev.name!r} and "
                            f"{stmt.name!r} is eliminable: no "
                            f"cross-processor dependence at n={nprocs} "
                            f"(exact symbolic chunk sets)",
                    hint="compile with SpfOptions(fuse_loops=True) to "
                         "fuse the dispatch (Tseng barrier elimination)",
                    details={"pred": prev.name}))
        prev = stmt if not stmt.accumulate else None
    return findings


# ---------------------------------------------------------------------- #
# rule 4: false sharing

def _loop_write_pages(exe, loop: ParallelLoop, space: SharedSpace,
                      pid: int) -> dict:
    """{array: page ndarray} written by pid's chunk, per the SPF layout."""
    from repro.compiler.spf import STAGING_PREFIX
    out = {}
    chunk = analysis.loop_chunk(loop, pid, exe.nprocs)
    if isinstance(chunk, np.ndarray):
        if chunk.size == 0:
            return out
    elif chunk[1] <= chunk[0]:
        return out
    for acc in loop.writes:
        if acc.array in loop.accumulate:
            continue                # redirected to the staging array
        handle = space[acc.array]
        if acc.irregular:
            continue                # data-dependent: not statically known
        if isinstance(chunk, np.ndarray):
            lead = acc.region[0] if acc.region else None
            if isinstance(lead, Span):
                # exact per-owned-index rows (iteration i touches rows
                # [i+lo_off, i+hi_off]) instead of the bounding interval
                # of the whole cyclic chunk, which would sweep in every
                # other processor's rows and report phantom sharing
                rows = np.unique(np.concatenate(
                    [chunk + off
                     for off in range(lead.lo_off, lead.hi_off + 1)]))
                rows = rows[(rows >= 0) & (rows < handle.shape[0])]
                row_elems = (int(np.prod(handle.shape[1:]))
                             if len(handle.shape) > 1 else 1)
                pages = handle.element_pages(rows * row_elems,
                                             elem_span=row_elems)
            else:
                region = acc.resolve(int(chunk[0]), int(chunk[-1]) + 1,
                                     handle.shape)
                pages = handle.region_pages(region)
        else:
            region = acc.resolve(chunk[0], chunk[1], handle.shape)
            pages = handle.region_pages(region)
        out.setdefault(acc.array, []).append(pages)
    for name in loop.accumulate:
        # each pid writes its own staging row; rows are not page padded
        handle = space[STAGING_PREFIX + name]
        pages = handle.region_pages((slice(pid, pid + 1),))
        out.setdefault(STAGING_PREFIX + name, []).append(pages)
    return {name: np.unique(np.concatenate(page_sets))
            for name, page_sets in out.items()}


def _check_false_sharing(program: Program, nprocs: int, options) -> list:
    from repro.compiler.spf import compile_spf
    exe = compile_spf(program, nprocs, options)
    space = SharedSpace()
    exe.setup_space(space)
    findings = []
    seen = set()
    for stmt, window in program.flat_statements_with_window():
        if not isinstance(stmt, ParallelLoop):
            continue
        fam = _family(stmt.name)
        if fam in seen:
            continue
        seen.add(fam)
        writers: dict = {}          # (array, page) -> set of pids
        for pid in range(nprocs):
            for name, pages in _loop_write_pages(exe, stmt, space,
                                                 pid).items():
                for page in pages.tolist():
                    writers.setdefault((name, page), set()).add(pid)
        by_array: dict = {}
        for (name, page), pids in writers.items():
            if len(pids) >= 2:
                by_array.setdefault(name, []).append((page, len(pids)))
        if not by_array:
            continue
        total_pages = sum(len(v) for v in by_array.values())
        extra_diffs = sum(w for v in by_array.values() for _, w in v)
        arrays = ", ".join(sorted(by_array))
        findings.append(Finding(
            rule="false-sharing", severity="warning",
            program=program.name, stmt=stmt.name, window=window,
            message=f"chunk boundaries straddle pages: {total_pages} "
                    f"page(s) of {arrays} written by >= 2 processors "
                    f"(page size {PAGE_SIZE}); expect ~{extra_diffs} "
                    f"extra twin/diff pairs per instance",
            hint="page-align the partition (rows x itemsize a multiple "
                 "of the page size) or pad rows",
            details={name: sorted(pages) for name, pages in
                     by_array.items()}))
    return findings


# ---------------------------------------------------------------------- #
# rule 5: traffic prediction (static LRC epoch model)

class _Record:
    """One writer interval's write notice for one page."""

    __slots__ = ("writer", "nbytes", "diffed")

    def __init__(self, writer: int, nbytes: int):
        self.writer = writer
        self.nbytes = min(int(nbytes), PAGE_SIZE)
        self.diffed = False


class _PageModel:
    """Page-level lazy-release-consistency bookkeeping.

    Per page a chronological log of write records (writer, byte count);
    per (pid, page) the index into that log up to which the copy is
    current.  Pending records from *other* writers mean the copy is
    invalid: the next access faults, fetches one diff per distinct missing
    writer, and applies every pending record.

    Twins are lazy, like the protocol's: a write to a page the writer
    already holds dirty (its previous diff was never requested) extends
    the open record instead of creating a new twin, and the diff is
    created — and the twin discarded — when some other processor first
    requests that record *or* when a write notice from another writer
    arrives for the dirty page (the protocol must preserve the local
    modifications before invalidating, ``_apply_notice``), so falsely
    shared pages re-twin every epoch.  This mirrors repro.tmk.protocol
    minus the word-level diff contents, so byte counts approximate the
    payload from above.
    """

    def __init__(self, nprocs: int, npages: int):
        self.nprocs = nprocs
        self.logs = [[] for _ in range(npages)]      # page -> [_Record]
        self.applied = np.zeros((nprocs, npages), dtype=np.int64)
        self.open: dict = {}        # (pid, page) -> open (undiffed) _Record
        self.read_faults = 0
        self.write_faults = 0
        self.fetches = 0
        self.fetch_requests = 0
        self.diffs_applied = 0
        self.twins = 0
        self.diffs_created = 0
        self.diff_bytes = 0         # upper bound on applied diff payload

    def access(self, pid: int, page: int) -> None:
        log = self.logs[page]
        start = int(self.applied[pid, page])
        missing = [r for r in log[start:] if r.writer != pid]
        if missing:
            self.read_faults += 1
            self.fetches += 1
            self.fetch_requests += len({r.writer for r in missing})
            self.diffs_applied += len(missing)
            for rec in missing:
                if not rec.diffed:
                    # first request: the writer diffs against its twin and
                    # discards it; later requests hit the diff cache
                    rec.diffed = True
                    self.diffs_created += 1
                    if self.open.get((rec.writer, page)) is rec:
                        del self.open[(rec.writer, page)]
                self.diff_bytes += rec.nbytes
        self.applied[pid, page] = len(log)

    def write(self, pid: int, page: int, nbytes: int,
              pending_records: list) -> None:
        self.access(pid, page)
        rec = self.open.get((pid, page))
        if rec is not None:
            # still dirty from an earlier interval: no fault, the eventual
            # diff absorbs this interval's changes too
            rec.nbytes = min(rec.nbytes + int(nbytes), PAGE_SIZE)
            return
        self.write_faults += 1
        self.twins += 1
        rec = _Record(pid, nbytes)
        self.open[(pid, page)] = rec
        pending_records.append((page, rec))

    def close_epoch(self, pending_records: list) -> None:
        for page, rec in pending_records:
            self.logs[page].append(rec)
        # Write-notice propagation: a notice for a locally dirty page
        # forces the holder to diff before invalidation, dropping the
        # twin — the next write re-twins.  Falsely shared pages therefore
        # pay a twin/diff pair per writer per epoch even when nobody
        # fetches them.
        new_writers: dict = {}
        for page, rec in pending_records:
            new_writers.setdefault(page, set()).add(rec.writer)
        for page, writers in new_writers.items():
            for pid in range(self.nprocs):
                rec = self.open.get((pid, page))
                if rec is None or not (writers - {pid}):
                    continue
                rec.diffed = True
                self.diffs_created += 1
                del self.open[(pid, page)]


def _page_bytes(handle, region=None, flat=None, elem_span=1) -> dict:
    """{page: byte count} a write to the region/elements covers."""
    if flat is not None:
        runs = handle.element_byte_runs(flat, elem_span=elem_span)
    else:
        runs = handle.region_byte_runs(region)
    out: dict = {}
    for start, stop in np.asarray(runs, dtype=np.int64).tolist():
        page = start // PAGE_SIZE
        while page * PAGE_SIZE < stop:
            plo = max(start, page * PAGE_SIZE)
            phi = min(stop, (page + 1) * PAGE_SIZE)
            out[page] = out.get(page, 0) + (phi - plo)
            page += 1
    return out


def _chunk_page_bytes(exe, loop, space, pid: int, which: str) -> dict:
    """{page: bytes} of pid's chunk for the given access direction."""
    out: dict = {}
    chunk = analysis.loop_chunk(loop, pid, exe.nprocs)
    if isinstance(chunk, np.ndarray):
        if chunk.size == 0:
            return out
    elif chunk[1] <= chunk[0]:
        return out
    for acc in getattr(loop, which):
        handle = space[acc.array]
        if isinstance(chunk, np.ndarray):
            lead = acc.region[0] if acc.region else None
            if isinstance(lead, Span) and lead.lo_off == 0 \
                    and lead.hi_off == 0:
                row_elems = (int(np.prod(handle.shape[1:]))
                             if len(handle.shape) > 1 else 1)
                pages = _page_bytes(handle, flat=chunk * row_elems,
                                    elem_span=row_elems)
            else:
                region = acc.resolve(int(chunk[0]), int(chunk[-1]) + 1,
                                     handle.shape)
                pages = _page_bytes(handle, region=region)
        else:
            region = acc.resolve(chunk[0], chunk[1], handle.shape)
            pages = _page_bytes(handle, region=region)
        for page, nbytes in pages.items():
            out[page] = out.get(page, 0) + nbytes
    return out


def _seq_page_bytes(stmt: SeqBlock, space, which: str) -> dict:
    out: dict = {}
    for acc in getattr(stmt, which):
        handle = space[acc.array]
        region = acc.resolve(0, 0, handle.shape)
        for page, nbytes in _page_bytes(handle, region=region).items():
            out[page] = out.get(page, 0) + nbytes
    return out


def estimate_spf_traffic(program: Program, nprocs: int = 8,
                         options=None) -> TrafficEstimate:
    """Predict the SPF variant's whole-run DSM counters statically.

    Walks the compiled dispatch schedule with a page-granularity LRC
    model.  Programs with irregular or accumulate loops are reported
    unanalyzable — their footprints exist only at run time, which is
    exactly where the paper's compilers fall back to on-demand fetching
    (SPF) or broadcast-everything (XHPF).
    """
    from repro.compiler.spf import REDUCTION_PREFIX, compile_spf
    exe = compile_spf(program, nprocs, options)
    for flag in ("aggregate", "piggyback", "tree_reductions",
                 "balance_loops", "push_halos"):
        if options is not None and getattr(options, flag, None):
            return TrafficEstimate(
                analyzable=False, nprocs=nprocs,
                reason=f"hand-optimized code generation ({flag}) is not "
                       f"modeled")
    for unit in exe.units:
        for loop in unit.loops:
            if loop.irregular:
                return TrafficEstimate(
                    analyzable=False, nprocs=nprocs,
                    reason=f"irregular access in loop {loop.name!r}")
            if loop.accumulate:
                return TrafficEstimate(
                    analyzable=False, nprocs=nprocs,
                    reason=f"run-time accumulate footprint in loop "
                           f"{loop.name!r}")
    space = SharedSpace()
    exe.setup_space(space)
    model = _PageModel(nprocs, space.npages)
    est = TrafficEstimate(analyzable=True, nprocs=nprocs)
    shared_pages = 0

    def scalar_page(name: str) -> int:
        return space[REDUCTION_PREFIX + name].first_page

    for unit in exe.units:
        if unit.mark is not None:
            continue
        if unit.seq is not None:
            est.seq_units += 1
            pending: list = []
            for page in _seq_page_bytes(unit.seq, space, "reads"):
                model.access(0, page)
            for page, nbytes in _seq_page_bytes(unit.seq, space,
                                                "writes").items():
                model.write(0, page, nbytes, pending)
            model.close_epoch(pending)
            continue
        est.loop_units += 1
        reductions = [red for loop in unit.loops for red in loop.reductions]
        for red in reductions:
            # the master resets the shared scalar before forking; the
            # fork's release makes the write visible to every worker
            est.red_instances += 1
            pending = []
            model.write(0, scalar_page(red.name), 8, pending)
            model.close_epoch(pending)
        pending = []
        for pid in range(nprocs):
            read_pages: dict = {}
            write_pages: dict = {}
            for loop in unit.loops:
                for page, nb in _chunk_page_bytes(exe, loop, space, pid,
                                                  "reads").items():
                    read_pages[page] = read_pages.get(page, 0) + nb
                for page, nb in _chunk_page_bytes(exe, loop, space, pid,
                                                  "writes").items():
                    write_pages[page] = write_pages.get(page, 0) + nb
            for page in sorted(read_pages):
                model.access(pid, page)
            for page in sorted(write_pages):
                model.write(pid, page, write_pages[page], pending)
        writer_count: dict = {}
        for page, _rec in pending:
            writer_count[page] = writer_count.get(page, 0) + 1
        shared_pages += sum(1 for c in writer_count.values() if c >= 2)
        model.close_epoch(pending)
        # lock-ordered folds: each processor pulls the previous holder's
        # notices (visible immediately), twins the scalar page, releases
        for red in reductions:
            page = scalar_page(red.name)
            for pid in range(nprocs):
                est.lock_acquires += 1
                if pid != 0:
                    est.lock_remote += 1
                fold_pending: list = []
                model.write(pid, page, 8, fold_pending)
                model.close_epoch(fold_pending)
    for name in exe.reductions:
        model.access(0, scalar_page(name))

    est.read_faults = model.read_faults
    est.write_faults = model.write_faults
    est.fetches = model.fetches
    est.fetch_requests = model.fetch_requests
    est.diffs_applied = model.diffs_applied
    est.twins_created = model.twins
    est.diffs_created = model.diffs_created
    est.est_diff_kb = model.diff_bytes / 1024.0
    est.shared_write_pages = shared_pages
    # message model: 2 per diff request/response pair, 2(n-1) per fork-join
    # dispatch (improved interface), ~3 per remote lock acquire (request,
    # forward, grant) and n-1 shutdown notices
    per_dispatch = 2 * (nprocs - 1)
    if options is not None and not getattr(options, "improved_interface",
                                           True):
        per_dispatch = 8 * (nprocs - 1)
    est.est_messages = (2 * est.fetch_requests
                        + per_dispatch * est.loop_units
                        + 3 * est.lock_remote
                        + (nprocs - 1))
    return est


# ---------------------------------------------------------------------- #
# driver

def _apply_suppressions(findings: list, suppress) -> tuple:
    if not suppress:
        return findings, 0
    kept = []
    dropped = 0
    for f in findings:
        probe = (f.rule, f"{f.rule}:{_family(f.stmt)}")
        if any(fnmatch(p, pat) for p in probe for pat in suppress):
            dropped += 1
        else:
            kept.append(f)
    return kept, dropped


def lint_program(program: Program, nprocs: int = 8, *, options=None,
                 backends: tuple = ("spf", "xhpf"), shadow: bool = True,
                 traffic: bool = False, suppress=()) -> LintReport:
    """Run every lint rule over one program instance.

    ``options`` are the :class:`~repro.compiler.spf.SpfOptions` the
    program would be compiled with (fused loops silence the
    redundant-barrier rule); ``backends`` selects which backend-specific
    rule sets apply; ``shadow`` enables the footprint sanitizer (it
    executes every kernel once); ``traffic`` attaches the static DSM
    traffic estimate.
    """
    findings = _check_wellformed(program, nprocs, backends)
    fatal = any(f.severity == "error" for f in findings)
    if not fatal:
        # later rules resolve regions and run kernels: only sound on a
        # well-formed program
        if shadow:
            findings += _check_footprints(program, nprocs)
        if "spf" in backends:
            findings += _check_redundant_barriers(program, nprocs, options)
            findings += _check_false_sharing(program, nprocs, options)
    estimate = None
    if traffic and not fatal and "spf" in backends:
        estimate = estimate_spf_traffic(program, nprocs, options)
    findings, suppressed = _apply_suppressions(findings, suppress)
    return LintReport(program=program.name, nprocs=nprocs,
                      findings=findings, traffic=estimate,
                      suppressed=suppressed)

"""E1 — Table 1: data set sizes and sequential execution times.

The sequential oracle's virtual time at the paper's problem sizes should
match Table 1 (that is what the per-application compute costs were
calibrated against); at the default ``bench`` preset the iteration counts
are reduced, so times scale accordingly.
"""

from repro.apps.common import get_app
from repro.compiler.seq import sequential_time
from repro.eval.constants import APPS, PAPER
from repro.eval.tables import format_table1

from conftest import PRESET, archive, runner  # noqa: F401


def paper_size_seq_seconds(app: str) -> float:
    spec = get_app(app)
    return sequential_time(spec.build_program(spec.params("paper")))


def test_table1(runner):
    def experiment():
        return {app: (PAPER[app].problem_size, paper_size_seq_seconds(app))
                for app in APPS}

    rows = runner(experiment)
    text = format_table1(rows)
    archive("table1_sequential", text)

    for app in APPS:
        measured = rows[app][1]
        expect = PAPER[app].seq_time
        # calibration target: within 20% of Table 1 at paper sizes
        assert 0.8 * expect < measured < 1.2 * expect, (
            f"{app}: {measured:.1f}s vs Table 1 {expect}s")

"""Tests for the evaluation harness and table formatters (repro.eval)."""

import pytest

from repro.eval.constants import (APPS, IRREGULAR_APPS, PAPER, REGULAR_APPS,
                                  VARIANT_NAMES)
from repro.eval.experiments import VariantResult, run_all_variants, run_variant
from repro.eval.tables import (format_comparison, format_speedup_figure,
                               format_table1, format_traffic_table)


def test_paper_constants_complete():
    assert set(PAPER) == set(APPS)
    assert set(REGULAR_APPS) | set(IRREGULAR_APPS) == set(APPS)
    for app, nums in PAPER.items():
        assert nums.seq_time > 0
        for v in VARIANT_NAMES:
            assert v in nums.messages and v in nums.data_kb
            assert v in nums.speedups


def test_paper_headline_ratios_hold_in_constants():
    """The abstract's claims are consistent with the tabulated numbers."""
    for app in REGULAR_APPS:
        s = PAPER[app].speedups
        assert s["xhpf"] > s["spf"]
        assert s["pvme"] > s["spf"]
        assert s["tmk"] > s["spf"]
    for app in IRREGULAR_APPS:
        s = PAPER[app].speedups
        assert s["spf"] > s["xhpf"]
        assert s["pvme"] >= s["spf"]


def test_run_variant_seq():
    res = run_variant("jacobi", "seq", preset="test")
    assert res.variant == "seq"
    assert res.nprocs == 1
    assert res.messages == 0
    assert res.speedup == 1.0
    assert "sig_u" in res.signature


def test_run_variant_rejects_unknown():
    with pytest.raises(ValueError):
        run_variant("jacobi", "mystery", preset="test")


def test_run_variant_spf_opt_requires_recipe():
    with pytest.raises(ValueError):
        run_variant("igrid", "spf_opt", preset="test")


def test_run_all_variants_shares_seq_time():
    out = run_all_variants("jacobi", nprocs=2, preset="test",
                           variants=["seq", "pvme"])
    assert out["pvme"].seq_time == out["seq"].time
    assert out["pvme"].speedup > 0


def test_variant_result_row_is_one_line():
    res = run_variant("jacobi", "pvme", nprocs=2, preset="test")
    row = res.row()
    assert "\n" not in row
    assert "jacobi" in row and "pvme" in row


def test_speedup_uses_measured_window():
    res = run_variant("jacobi", "pvme", nprocs=2, preset="test")
    # at this tiny size communication may outweigh compute; the point is
    # that the metrics are window-based and self-consistent
    assert res.speedup == pytest.approx(res.seq_time / res.time)
    assert res.messages <= res.total_messages


def test_format_table1():
    rows = {app: (PAPER[app].problem_size, PAPER[app].seq_time)
            for app in APPS}
    text = format_table1(rows)
    assert "Table 1" in text
    for app in APPS:
        assert app in text
    assert "~" in text    # estimated rows flagged


def test_format_speedup_figure():
    out = run_all_variants("jacobi", nprocs=2, preset="test")
    text = format_speedup_figure({"jacobi": out}, ["jacobi"], "Figure 1")
    assert "Figure 1" in text and "jacobi" in text
    assert "spf(paper)" in text


def test_format_speedup_figure_handles_missing_paper_value():
    out = run_all_variants("igrid", nprocs=2, preset="test")
    text = format_speedup_figure({"igrid": out}, ["igrid"], "Figure 2")
    assert "n/a" in text     # the unquoted hand-Tmk IGrid bar


def test_format_traffic_table():
    out = run_all_variants("jacobi", nprocs=2, preset="test")
    text = format_traffic_table({"jacobi": out}, ["jacobi"], "Table 2")
    assert "msgs paper" in text and "KB ours" in text


def test_format_comparison():
    line = format_comparison("jacobi spf speedup", 6.99, 7.01, "close")
    assert "6.99" in line and "7.01" in line and "close" in line


def test_xhpf_ie_variant():
    """The inspector-executor extension is addressable as a variant."""
    seq = run_variant("igrid", "seq", preset="test")
    ie = run_variant("igrid", "xhpf_ie", nprocs=4, preset="test",
                     seq_time=seq.time)
    bc = run_variant("igrid", "xhpf", nprocs=4, preset="test",
                     seq_time=seq.time)
    assert ie.kilobytes < bc.kilobytes
    assert ie.variant == "xhpf_ie"

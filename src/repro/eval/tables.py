"""Text renderings of the paper's tables and figures, paper-vs-measured.

The benchmark harness prints these; EXPERIMENTS.md archives them.  We do
not expect absolute agreement (our substrate is a calibrated simulator and
the benchmark presets are scaled down) — the comparisons that matter are
the *orderings* and *ratios* the paper's conclusions rest on.
"""

from __future__ import annotations


from repro.eval.constants import PAPER, VARIANT_NAMES

__all__ = ["format_table1", "format_speedup_figure", "format_traffic_table",
           "format_comparison"]


def _fmt(val, width=9, prec=2) -> str:
    if val is None:
        return " " * (width - 3) + "n/a"
    if isinstance(val, float):
        return f"{val:{width}.{prec}f}"
    return f"{val:{width}d}"


def format_table1(rows: dict) -> str:
    """Table 1: data set sizes and sequential times.

    ``rows``: app -> (size_str, measured_seconds).
    """
    out = ["Table 1 — Data Set Sizes and Sequential Execution Time",
           f"{'Program':10s} {'Problem Size':34s} {'Paper(s)':>9s} "
           f"{'Ours(s)':>9s}"]
    for app, (size, seconds) in rows.items():
        paper = PAPER[app]
        mark = "~" if paper.seq_time_estimated else " "
        out.append(f"{app:10s} {size:34s} {mark}{paper.seq_time:8.1f} "
                   f"{seconds:9.2f}")
    out.append("(~ marks sequential seconds unreadable in the source scan; "
               "estimated)")
    return "\n".join(out)


def format_speedup_figure(results: dict, apps: list, title: str) -> str:
    """Figures 1/2: 8-processor speedups, four variants per application.

    ``results``: app -> {variant: VariantResult}.
    """
    out = [title,
           f"{'Program':10s}" + "".join(
               f" {v + '(paper)':>13s} {v + '(ours)':>12s}"
               for v in VARIANT_NAMES)]
    for app in apps:
        paper = PAPER[app]
        row = f"{app:10s}"
        for v in VARIANT_NAMES:
            pval = paper.speedups.get(v)
            mval = results[app][v].speedup if v in results[app] else None
            row += f" {_fmt(pval, 13)} {_fmt(mval, 12)}"
        out.append(row)
    return "\n".join(out)


def format_traffic_table(results: dict, apps: list, title: str) -> str:
    """Tables 2/3: message totals and kilobyte totals."""
    out = [title]
    out.append(f"{'':10s}{'':10s}" + "".join(f" {v:>12s}" for v in VARIANT_NAMES))
    for app in apps:
        paper = PAPER[app]
        row_pm = f"{app:10s}{'msgs paper':>10s}"
        row_mm = f"{'':10s}{'msgs ours':>10s}"
        row_pd = f"{'':10s}{'KB paper':>10s}"
        row_md = f"{'':10s}{'KB ours':>10s}"
        for v in VARIANT_NAMES:
            row_pm += f" {_fmt(paper.messages.get(v), 12)}"
            row_pd += f" {_fmt(paper.data_kb.get(v), 12)}"
            res = results[app].get(v)
            row_mm += f" {_fmt(res.messages if res else None, 12)}"
            row_md += (f" {_fmt(round(res.kilobytes) if res else None, 12)}")
        out += [row_pm, row_mm, row_pd, row_md]
    return "\n".join(out)


def format_comparison(label: str, paper_value, measured_value,
                      note: str = "") -> str:
    return (f"{label:44s} paper={_fmt(paper_value)}  "
            f"ours={_fmt(measured_value)}  {note}")

"""`RunService` — the persistent multi-process worker pool.

The simulator executes one run's virtual processors as parked Python
threads inside a single process, so a process can only retire one run at
a time no matter how many cores the host has.  Runs are embarrassingly
parallel at the *request* level, though: a :class:`RunService` keeps
``workers`` spawned processes alive across batches, hands each idle
worker the next queued :class:`~repro.api.RunRequest`, and streams
results back **as they complete**.  Each worker holds its own compiled-
program cache, so repeated requests skip IR lowering/codegen (see
:mod:`repro.api.execute`).

Scheduling is parent-side pull: every worker is connected by two simplex
pipes (tasks down, results up) and has at most one assigned request,
recorded in the parent *before* the task is sent.  Per-worker pipes —
rather than one queue shared by all writers — are what make crash
recovery airtight: a shared ``multiprocessing.Queue`` funnels every
writer through one cross-process write lock, and a worker hard-killed
while holding it would poison the queue for the whole pool.  A simplex
pipe has a single writer, so a death can only sever that worker's own
channel; the parent observes EOF on it the moment the process is gone.

Dispatch is **cache-affine**: each worker's compiled-program cache is
mirrored parent-side as a warm-key set keyed on
:meth:`RunRequest.cache_key`, a repeat key prefers the worker that
already compiled it (counted as an ``affinity_hit``), and an idle worker
facing only warm-elsewhere work steals the oldest backlog entry once the
queue reaches ``steal_threshold`` — affinity never serializes a batch.
``max_backlog`` caps admitted work: overflow requests come back at once
as structured ``error_kind="Rejected"`` results instead of queueing
without bound.

Failure surface — the contract the e2e tests pin:

* an exception inside a run returns a structured ``ok=False``
  :class:`~repro.api.RunResult` (``error``/``error_kind``), never kills
  the worker;
* a hard worker death (``os._exit``, segfault, OOM) is detected by EOF
  on its result pipe (with an ``is_alive`` poll as backstop): the
  assigned request is failed with ``error_kind="WorkerCrashed"``, the
  pool respawns a replacement (when ``respawn=True``, the default), and
  the rest of the batch completes — a crash mid-batch is a result, not
  a hang.

Use it as a context manager::

    with RunService(workers=4) as svc:
        for idx, res in svc.stream(requests):
            ...                       # completion order
        batch = svc.run_batch(requests)   # request order + counters
"""

from __future__ import annotations

import multiprocessing as mp
import time as _time
from collections import OrderedDict, deque
from multiprocessing import connection as _mpc
from typing import Iterable, Optional

from repro.api.types import BatchResult, RunRequest, RunResult
from repro.serve.worker import DEFAULT_RUNNER, worker_main

__all__ = ["RunService", "DEFAULT_WORKERS", "DEFAULT_STEAL_THRESHOLD"]

DEFAULT_WORKERS = 4

#: backlog depth at which an idle worker takes work that is warm on a
#: *busy* worker rather than waiting for it — bounds queue imbalance
DEFAULT_STEAL_THRESHOLD = 2

_POLL_S = 0.1      # fallback liveness-poll period (EOF is the fast path)


class RunService:
    """A persistent pool of spawn-context worker processes.

    ``runner`` is a ``"module:attr"`` dotted path resolved inside each
    worker (tests inject failing/crashing runners through it); the
    default executes through :func:`repro.api.execute`.

    Dispatch is **cache-affine**: the parent mirrors each worker's
    compiled-program cache as a warm-key set (keyed on
    :meth:`RunRequest.cache_key`, LRU-capped at ``cache_entries`` like
    the worker's own cache) and prefers routing a repeat key back to the
    worker that already compiled it.  Affinity never serializes a batch:
    an idle worker facing only warm-elsewhere work steals the oldest
    entry once the backlog reaches ``steal_threshold``.  Routing
    verdicts are counted (``affinity_hits``, ``steals``) and surfaced on
    :meth:`stats` and every :class:`BatchResult`.

    ``max_backlog`` adds admission control: when set, requests beyond
    that many in flight (queued + assigned) are refused immediately with
    a structured ``ok=False`` result (``error_kind="Rejected"``) instead
    of queueing without bound.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 runner: str = DEFAULT_RUNNER,
                 respawn: bool = True,
                 cache_entries: int = 64,
                 start_method: str = "spawn",
                 max_backlog: Optional[int] = None,
                 steal_threshold: int = DEFAULT_STEAL_THRESHOLD):
        if workers < 1:
            raise ValueError("RunService needs at least one worker")
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be at least 1")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be at least 1 (or None "
                             "for unbounded admission)")
        self.workers = workers
        self.runner = runner
        self.respawn = respawn
        self.cache_entries = cache_entries
        self.max_backlog = max_backlog
        self.steal_threshold = steal_threshold
        self._ctx = mp.get_context(start_method)
        self._procs: dict = {}           # worker_id -> Process
        self._task_conns: dict = {}      # worker_id -> parent write end
        self._result_conns: dict = {}    # worker_id -> parent read end
        self._assigned: dict = {}        # worker_id -> seq it is running
        self._cache_stats: dict = {}     # worker_id -> last-seen stats
        self._warm: dict = {}            # worker_id -> OrderedDict of keys
        self._keys: dict = {}            # seq -> RunRequest.cache_key()
        self._next_worker = 0
        self._next_seq = 0
        self._crashes = 0
        self._affinity_hits = 0
        self._steals = 0
        self._rejections = 0
        self._closed = False
        for _ in range(workers):
            self._spawn()

    # ------------------------------------------------------------------ #
    # pool plumbing

    def _spawn(self) -> int:
        wid = self._next_worker
        self._next_worker += 1
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, task_r, result_w, self.runner, self.cache_entries),
            name=f"repro-serve-{wid}", daemon=True)
        proc.start()
        # close the child's ends in the parent so a worker death turns
        # into EOF on our read end instead of an eternally-open pipe
        task_r.close()
        result_w.close()
        self._procs[wid] = proc
        self._task_conns[wid] = task_w
        self._result_conns[wid] = result_r
        return wid

    def _discard(self, wid: int) -> None:
        """Forget a dead worker's process, pipes and warm-key set."""
        self._procs.pop(wid, None)
        self._warm.pop(wid, None)
        for conns in (self._task_conns, self._result_conns):
            conn = conns.pop(wid, None)
            if conn is not None:
                conn.close()

    def _idle_workers(self) -> list:
        return [wid for wid in self._procs if wid not in self._assigned]

    def _note_warm(self, wid: int, key) -> None:
        """Record that ``wid``'s cache now holds ``key`` (LRU, mirroring
        the worker's own ``cache_entries``-bounded ProgramCache)."""
        if key is None:
            return
        warm = self._warm.setdefault(wid, OrderedDict())
        warm[key] = None
        warm.move_to_end(key)
        while len(warm) > self.cache_entries:
            warm.popitem(last=False)

    def _pick(self, idle: list, backlog: deque):
        """Choose ``(worker, seq, verdict)`` honouring cache affinity.

        Scanning the backlog oldest-first:

        1. a queued key warm on an idle worker -> that worker (``hit``);
        2. a queued key warm on *no* live worker -> the idle worker with
           the fewest warm keys (``cold`` — spreads the key space);
        3. everything queued is warm on busy workers only: take the
           oldest entry anyway once the backlog has reached
           ``steal_threshold`` (``steal``), else ``None`` — defer, and
           let the warm worker come back for it.  Deferral cannot stall:
           the warm worker is live and busy, so its completion (or its
           death, which clears its warm set) re-triggers dispatch.
        """
        for seq in backlog:
            key = self._keys.get(seq)
            if key is None:
                continue
            for wid in idle:
                if key in self._warm.get(wid, ()):
                    return wid, seq, "hit"
        for seq in backlog:
            key = self._keys.get(seq)
            if key is None or not any(key in warm
                                      for warm in self._warm.values()):
                wid = min(idle, key=lambda w: len(self._warm.get(w, ())))
                return wid, seq, "cold"
        if len(backlog) >= self.steal_threshold:
            return idle[0], backlog[0], "steal"
        return None

    def _dispatch(self, backlog: deque, pending: dict) -> None:
        """Hand queued work to idle workers (assignment recorded first)."""
        while backlog:
            idle = self._idle_workers()
            if not idle:
                return
            pick = self._pick(idle, backlog)
            if pick is None:
                return         # all queued keys warm on busy workers
            wid, seq, verdict = pick
            backlog.remove(seq)
            if verdict == "hit":
                self._affinity_hits += 1
            elif verdict == "steal":
                self._steals += 1
            self._assigned[wid] = seq
            # record the key optimistically: the worker compiles it on
            # arrival, and duplicate cold keys later in the backlog now
            # route to this worker instead of compiling twice
            self._note_warm(wid, self._keys.get(seq))
            try:
                self._task_conns[wid].send(("run", seq, pending[seq]))
            except (BrokenPipeError, OSError):
                # the worker died before it ever saw this request: put
                # the request back at the head of the queue and reap the
                # corpse now — waiting for the liveness poll would park
                # the request on a dead worker for a whole poll period,
                # and failing it as WorkerCrashed would blame a request
                # the worker never received
                del self._assigned[wid]
                backlog.appendleft(seq)
                self._reap_worker(wid, pending)   # respawns if enabled

    def _fail_assignment(self, wid: int, proc, pending: dict) -> list:
        seq = self._assigned.pop(wid, None)
        if seq is None or seq not in pending:
            return []
        request = RunRequest.from_json(pending[seq])
        exitcode = proc.exitcode if proc is not None else None
        return [(seq, RunResult.failure(
            request,
            error=(f"worker {wid} died (exit code {exitcode}) "
                   "while running this request"),
            error_kind="WorkerCrashed", worker=wid))]

    def _reap_worker(self, wid: int, pending: dict) -> list:
        """One worker is dead: fail its assignment, respawn a stand-in."""
        proc = self._procs.get(wid)
        if proc is not None:
            proc.join(timeout=1.0)
        self._discard(wid)
        self._crashes += 1
        failed = self._fail_assignment(wid, proc, pending)
        if self.respawn and not self._closed:
            self._spawn()
        return failed

    def _reap(self, pending: dict, backlog: deque) -> list:
        """Poll liveness (backstop to pipe EOF); fail dead assignments."""
        failed = []
        for wid, proc in list(self._procs.items()):
            if not proc.is_alive():
                failed.extend(self._reap_worker(wid, pending))
        if not self._procs:
            # pool exhausted (respawn disabled): fail everything left
            for seq in list(backlog):
                request = RunRequest.from_json(pending[seq])
                failed.append((seq, RunResult.failure(
                    request, error="no live workers remain in the pool",
                    error_kind="WorkerCrashed")))
            backlog.clear()
        return failed

    # ------------------------------------------------------------------ #
    # submitting work

    @staticmethod
    def _as_doc(request) -> dict:
        if isinstance(request, RunRequest):
            return request.to_json()
        return dict(request)

    def stream(self, requests: Iterable):
        """Yield ``(index, RunResult)`` in completion order.

        ``index`` is the request's position in this call's batch.
        Accepts :class:`RunRequest` objects or already-serialized docs.
        Single-consumer: concurrent ``stream`` calls must be serialized
        by the caller (the wire layer holds a lock around this).

        When ``max_backlog`` is set, requests beyond that many in flight
        are not queued: they yield immediately as structured rejections
        (``ok=False``, ``error_kind="Rejected"``).
        """
        if self._closed:
            raise RuntimeError("RunService is closed")
        index_of: dict = {}
        pending: dict = {}
        backlog: deque = deque()
        rejected: list = []
        for request in requests:
            doc = self._as_doc(request)
            seq = self._next_seq
            self._next_seq += 1
            index_of[seq] = len(index_of)
            if self.max_backlog is not None and \
                    len(backlog) + len(self._assigned) >= self.max_backlog:
                self._rejections += 1
                rejected.append((seq, RunResult.failure(
                    RunRequest.from_json(doc),
                    error=(f"admission refused: {self.max_backlog} "
                           f"request(s) already in flight "
                           f"(the service's max_backlog cap)"),
                    error_kind="Rejected")))
                continue
            pending[seq] = doc
            self._keys[seq] = RunRequest.from_json(doc).cache_key()
            backlog.append(seq)
        for seq, result in rejected:
            yield index_of[seq], result
        self._dispatch(backlog, pending)
        while pending:
            wid_of = {conn: wid
                      for wid, conn in self._result_conns.items()}
            ready = _mpc.wait(list(wid_of), timeout=_POLL_S) \
                if wid_of else []
            failed = []
            for conn in ready:
                wid = wid_of[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    failed.extend(self._reap_worker(wid, pending))
                    continue
                _kind, _wid, seq, doc, cache_stats = msg
                if self._assigned.get(wid) == seq:
                    del self._assigned[wid]
                self._cache_stats[wid] = cache_stats
                if seq in pending:
                    pending.pop(seq)
                    self._keys.pop(seq, None)
                    yield index_of[seq], RunResult.from_json(doc)
            if not ready:
                failed.extend(self._reap(pending, backlog))
            for seq, result in failed:
                pending.pop(seq, None)
                self._keys.pop(seq, None)
                yield index_of[seq], result
            self._dispatch(backlog, pending)

    def counters(self) -> dict:
        """Snapshot of the monotonic scheduling counters (for deltas).

        Part of the service surface the wire layer dispatches against
        (shared with :class:`~repro.serve.fleet.FleetService`): at the
        pool level ``crashes`` counts worker deaths; at the fleet level
        it counts host losses.
        """
        return {"crashes": self._crashes,
                "affinity_hits": self._affinity_hits,
                "steals": self._steals,
                "rejections": self._rejections}

    def live_workers(self) -> int:
        """Workers alive right now (not the configured pool size)."""
        return len(self._procs)

    def run_batch(self, requests: Iterable) -> BatchResult:
        """Run a batch; return ordered results plus service counters."""
        docs = [self._as_doc(r) for r in requests]
        t0 = _time.perf_counter()
        before = self.counters()
        results: list = [None] * len(docs)
        for idx, result in self.stream(docs):
            results[idx] = result
        wall = _time.perf_counter() - t0
        delta = {k: v - before[k] for k, v in self.counters().items()}
        return BatchResult(
            results=tuple(results),
            wall_s=round(wall, 6),
            workers=self.live_workers(),
            cache_hits=sum(1 for r in results if r.cache_hit),
            cache_misses=sum(1 for r in results if r.cache_hit is False),
            crashes=delta["crashes"],
            affinity_hits=delta["affinity_hits"],
            steals=delta["steals"],
            rejected=delta["rejections"])

    def submit(self, requests: Iterable) -> BatchResult:
        """Alias of :meth:`run_batch` (symmetry with the wire protocol)."""
        return self.run_batch(requests)

    # ------------------------------------------------------------------ #
    # observability / lifecycle

    @staticmethod
    def _key_label(key: tuple) -> str:
        """Compact JSON-safe label of a cache key for stats()."""
        app, variant, preset, nprocs, mode = key[:5]
        return f"{app}:{variant}:{preset}:n{nprocs}:{mode}"

    def stats(self) -> dict:
        per_worker = {str(wid): stats
                      for wid, stats in sorted(self._cache_stats.items())}
        return {
            "workers": len(self._procs),
            "crashes": self._crashes,
            "cache": {
                "hits": sum(s["hits"] for s in per_worker.values()),
                "misses": sum(s["misses"] for s in per_worker.values()),
                "per_worker": per_worker,
            },
            "scheduler": {
                "affinity_hits": self._affinity_hits,
                "steals": self._steals,
                "rejections": self._rejections,
                "max_backlog": self.max_backlog,
                "steal_threshold": self.steal_threshold,
                "warm_keys": {str(wid): [self._key_label(k) for k in warm]
                              for wid, warm in sorted(self._warm.items())},
            },
        }

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._task_conns.values():
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = _time.monotonic() + timeout
        for proc in self._procs.values():
            proc.join(timeout=max(0.0, deadline - _time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        for conns in (self._task_conns, self._result_conns):
            for conn in conns.values():
                conn.close()
            conns.clear()

    def __enter__(self) -> "RunService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

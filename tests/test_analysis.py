"""Tests for region algebra and dependence analysis (repro.compiler.analysis)."""

import numpy as np
import pytest

from repro.compiler.analysis import (access_rect, chunk_rects, loops_fusable,
                                     rects_overlap, stmt_footprints)
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular,
                               ParallelLoop, Point, Program, Reduction, Span)


def make_prog(loops, shape=(64, 16)):
    return Program("p", arrays=[ArrayDecl("a", shape), ArrayDecl("b", shape)],
                   body=list(loops))


def kern(v, lo, hi):
    return None


def test_access_rect_affine():
    acc = Access("a", (Span(-1, 1), Full()))
    assert access_rect(acc, 8, 16, (64, 16)) == ((7, 17), (0, 16))


def test_access_rect_point():
    acc = Access("a", (Point(5),))
    assert access_rect(acc, 0, 0, (64, 16)) == ((5, 6), (0, 16))


def test_access_rect_irregular_is_none():
    acc = Access("a", Irregular(lambda v, lo, hi: None))
    assert access_rect(acc, 0, 8, (64,)) is None


def test_rects_overlap_cases():
    assert rects_overlap(((0, 4), (0, 4)), ((3, 8), (0, 4)))
    assert not rects_overlap(((0, 4), (0, 4)), ((4, 8), (0, 4)))
    assert not rects_overlap(((0, 4), (0, 2)), ((0, 4), (2, 4)))
    # empty rects never overlap
    assert not rects_overlap(((2, 2), (0, 4)), ((0, 4), (0, 4)))


def test_chunk_rects_block():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(-1, 1), Full()))])
    prog = make_prog([loop])
    rects = chunk_rects(loop, "reads", 1, 4, prog)
    assert rects == {"a": [((15, 33), (0, 16))]}


def test_chunk_rects_cyclic_bounding_interval():
    loop = ParallelLoop("l", 64, kern, schedule="cyclic", start=10,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    rects = chunk_rects(loop, "writes", 2, 4, prog)
    (row_range, _cols), = rects["a"]
    lo, hi = row_range
    # proc 2 owns {10, 14, ..} offset: first index >= 10 with idx%4==2
    assert lo % 4 == 2 and lo >= 10
    assert hi <= 64


def test_chunk_rects_irregular_returns_none():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", Irregular(lambda v, lo, hi: None))])
    prog = make_prog([loop])
    assert chunk_rects(loop, "reads", 0, 4, prog) is None


def test_stmt_footprints_parallel_loop():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    prog = make_prog([loop])
    fp = stmt_footprints(loop, prog)
    assert fp == {"a": [((0, 64), (0, 16))], "b": [((0, 64), (0, 16))]}


def test_fusable_independent_loops():
    """Loop writing a, loop writing b, chunk-aligned: fusable."""
    l1 = ParallelLoop("l1", 64, kern,
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("b", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 4, prog)


def test_fusable_same_chunks_same_array():
    """Producer/consumer on identical chunks: no cross-processor edge."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern, reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 4, prog)


def test_not_fusable_halo_consumer():
    """The second loop reads a halo: neighbours' writes flow in."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("a", (Span(-1, 1), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_anti_dependence():
    """Jacobi's two phases: the copy writes what neighbours still read."""
    stencil = ParallelLoop("stencil", 64, kern,
                           reads=[Access("a", (Span(-1, 1), Full()))],
                           writes=[Access("b", (Span(), Full()))])
    copy = ParallelLoop("copy", 64, kern,
                        reads=[Access("b", (Span(), Full()))],
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([stencil, copy])
    assert not loops_fusable(stencil, copy, 4, prog)


def test_not_fusable_with_reductions():
    l1 = ParallelLoop("l1", 64, kern, reductions=[Reduction("r")])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_with_irregular():
    l1 = ParallelLoop("l1", 64, kern,
                      reads=[Access("a", Irregular(lambda v, lo, hi: None))])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_with_accumulate():
    l1 = ParallelLoop("l1", 64, kern, accumulate=["a"])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_fusable_single_processor_always():
    """With one processor there are no cross-processor edges."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("a", (Span(-2, 2), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 1, prog)


# ---------------------------------------------------------------------- #
# partition edge cases (shared by backends and the lint pass)

def test_loop_chunk_block_covers_iteration_space():
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 13, kern, start=2)
    covered = []
    for pid in range(4):
        lo, hi = loop_chunk(loop, pid, 4)
        covered.extend(range(lo, hi))
    assert covered == list(range(2, 13))


def test_loop_chunk_cyclic_partitions_exactly():
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 14, kern, schedule="cyclic", start=3)
    owned = np.concatenate([loop_chunk(loop, pid, 4) for pid in range(4)])
    assert sorted(owned.tolist()) == list(range(3, 14))


def test_loop_chunk_empty_cyclic_tail():
    """More processors than remaining iterations: some own nothing."""
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 4, kern, schedule="cyclic", start=2)
    sizes = [loop_chunk(loop, pid, 4).size for pid in range(4)]
    assert sorted(sizes, reverse=True) == [1, 1, 0, 0]


def test_chunk_rects_empty_cyclic_chunk_is_empty_dict():
    loop = ParallelLoop("l", 4, kern, schedule="cyclic", start=3,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    # only one iteration remains; the other three processors touch nothing
    nonempty = [pid for pid in range(4)
                if chunk_rects(loop, "writes", pid, 4, prog)]
    assert len(nonempty) == 1


def test_chunk_rects_zero_extent_block_chunks():
    """start == extent: every processor's block chunk is empty."""
    loop = ParallelLoop("l", 8, kern, start=8,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    assert all(chunk_rects(loop, "writes", pid, 4, prog) == {}
               for pid in range(4))


def test_access_rect_negative_point_wraps_once():
    acc = Access("a", (Point(-1),))
    assert access_rect(acc, 0, 0, (64, 16)) == ((63, 64), (0, 16))


def test_cyclic_bounding_interval_is_conservative():
    """Two identical cyclic loops never cross processors in reality, but
    the bounding-interval over-approximation must refuse to fuse them
    (intervals of different pids overlap) — conservative, never unsafe."""
    l1 = ParallelLoop("l1", 64, kern, schedule="cyclic",
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern, schedule="cyclic",
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)

"""Tests for region algebra and dependence analysis (repro.compiler.analysis)."""

import numpy as np
import pytest

from repro.compiler.analysis import (access_rect, chunk_rects, loops_fusable,
                                     rects_overlap, stmt_footprints)
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular,
                               ParallelLoop, Point, Program, Reduction, Span)


def make_prog(loops, shape=(64, 16)):
    return Program("p", arrays=[ArrayDecl("a", shape), ArrayDecl("b", shape)],
                   body=list(loops))


def kern(v, lo, hi):
    return None


def test_access_rect_affine():
    acc = Access("a", (Span(-1, 1), Full()))
    assert access_rect(acc, 8, 16, (64, 16)) == ((7, 17), (0, 16))


def test_access_rect_point():
    acc = Access("a", (Point(5),))
    assert access_rect(acc, 0, 0, (64, 16)) == ((5, 6), (0, 16))


def test_access_rect_irregular_is_none():
    acc = Access("a", Irregular(lambda v, lo, hi: None))
    assert access_rect(acc, 0, 8, (64,)) is None


def test_rects_overlap_cases():
    assert rects_overlap(((0, 4), (0, 4)), ((3, 8), (0, 4)))
    assert not rects_overlap(((0, 4), (0, 4)), ((4, 8), (0, 4)))
    assert not rects_overlap(((0, 4), (0, 2)), ((0, 4), (2, 4)))
    # empty rects never overlap
    assert not rects_overlap(((2, 2), (0, 4)), ((0, 4), (0, 4)))


def test_chunk_rects_block():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(-1, 1), Full()))])
    prog = make_prog([loop])
    rects = chunk_rects(loop, "reads", 1, 4, prog)
    assert rects == {"a": [((15, 33), (0, 16))]}


def test_chunk_rects_cyclic_bounding_interval():
    loop = ParallelLoop("l", 64, kern, schedule="cyclic", start=10,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    rects = chunk_rects(loop, "writes", 2, 4, prog)
    (row_range, _cols), = rects["a"]
    lo, hi = row_range
    # proc 2 owns {10, 14, ..} offset: first index >= 10 with idx%4==2
    assert lo % 4 == 2 and lo >= 10
    assert hi <= 64


def test_chunk_rects_irregular_returns_none():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", Irregular(lambda v, lo, hi: None))])
    prog = make_prog([loop])
    assert chunk_rects(loop, "reads", 0, 4, prog) is None


def test_stmt_footprints_parallel_loop():
    loop = ParallelLoop("l", 64, kern,
                        reads=[Access("a", (Span(), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    prog = make_prog([loop])
    fp = stmt_footprints(loop, prog)
    assert fp == {"a": [((0, 64), (0, 16))], "b": [((0, 64), (0, 16))]}


def test_fusable_independent_loops():
    """Loop writing a, loop writing b, chunk-aligned: fusable."""
    l1 = ParallelLoop("l1", 64, kern,
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("b", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 4, prog)


def test_fusable_same_chunks_same_array():
    """Producer/consumer on identical chunks: no cross-processor edge."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern, reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 4, prog)


def test_not_fusable_halo_consumer():
    """The second loop reads a halo: neighbours' writes flow in."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("a", (Span(-1, 1), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_anti_dependence():
    """Jacobi's two phases: the copy writes what neighbours still read."""
    stencil = ParallelLoop("stencil", 64, kern,
                           reads=[Access("a", (Span(-1, 1), Full()))],
                           writes=[Access("b", (Span(), Full()))])
    copy = ParallelLoop("copy", 64, kern,
                        reads=[Access("b", (Span(), Full()))],
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([stencil, copy])
    assert not loops_fusable(stencil, copy, 4, prog)


def test_not_fusable_with_reductions():
    l1 = ParallelLoop("l1", 64, kern, reductions=[Reduction("r")])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_with_irregular():
    l1 = ParallelLoop("l1", 64, kern,
                      reads=[Access("a", Irregular(lambda v, lo, hi: None))])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_not_fusable_with_accumulate():
    l1 = ParallelLoop("l1", 64, kern, accumulate=["a"])
    l2 = ParallelLoop("l2", 64, kern)
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


def test_fusable_single_processor_always():
    """With one processor there are no cross-processor edges."""
    l1 = ParallelLoop("l1", 64, kern, writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("a", (Span(-2, 2), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert loops_fusable(l1, l2, 1, prog)


# ---------------------------------------------------------------------- #
# partition edge cases (shared by backends and the lint pass)

def test_loop_chunk_block_covers_iteration_space():
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 13, kern, start=2)
    covered = []
    for pid in range(4):
        lo, hi = loop_chunk(loop, pid, 4)
        covered.extend(range(lo, hi))
    assert covered == list(range(2, 13))


def test_loop_chunk_cyclic_partitions_exactly():
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 14, kern, schedule="cyclic", start=3)
    owned = np.concatenate([loop_chunk(loop, pid, 4) for pid in range(4)])
    assert sorted(owned.tolist()) == list(range(3, 14))


def test_loop_chunk_empty_cyclic_tail():
    """More processors than remaining iterations: some own nothing."""
    from repro.compiler.analysis import loop_chunk
    loop = ParallelLoop("l", 4, kern, schedule="cyclic", start=2)
    sizes = [loop_chunk(loop, pid, 4).size for pid in range(4)]
    assert sorted(sizes, reverse=True) == [1, 1, 0, 0]


def test_chunk_rects_empty_cyclic_chunk_is_empty_dict():
    loop = ParallelLoop("l", 4, kern, schedule="cyclic", start=3,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    # only one iteration remains; the other three processors touch nothing
    nonempty = [pid for pid in range(4)
                if chunk_rects(loop, "writes", pid, 4, prog)]
    assert len(nonempty) == 1


def test_chunk_rects_zero_extent_block_chunks():
    """start == extent: every processor's block chunk is empty."""
    loop = ParallelLoop("l", 8, kern, start=8,
                        writes=[Access("a", (Span(), Full()))])
    prog = make_prog([loop])
    assert all(chunk_rects(loop, "writes", pid, 4, prog) == {}
               for pid in range(4))


def test_access_rect_negative_point_wraps_once():
    acc = Access("a", (Point(-1),))
    assert access_rect(acc, 0, 0, (64, 16)) == ((63, 64), (0, 16))


def test_cyclic_bounding_interval_is_conservative():
    """Two identical cyclic loops never cross processors in reality, but
    the bounding-interval over-approximation must refuse to fuse them
    (intervals of different pids overlap) — conservative, never unsafe."""
    l1 = ParallelLoop("l1", 64, kern, schedule="cyclic",
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern, schedule="cyclic",
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    assert not loops_fusable(l1, l2, 4, prog)


# ---------------------------------------------------------------------- #
# rects_overlap edge cases: empty / point / full dim combinations
# (the zero-extent invariant documented in the docstring)

def test_rects_overlap_empty_dim_beats_point_dim():
    """A clipped-empty Span dim next to a (c, c+1) Point dim: the empty
    dim makes the whole footprint empty, so even identical point dims
    must not report overlap."""
    assert not rects_overlap(((5, 5), (3, 4)), ((5, 5), (3, 4)))
    assert not rects_overlap(((5, 5), (3, 4)), ((0, 64), (3, 4)))


def test_rects_overlap_empty_inside_enclosing_full():
    """An empty dim does not overlap an enclosing full dim."""
    assert not rects_overlap(((7, 7),), ((0, 64),))
    assert not rects_overlap(((0, 64),), ((7, 7),))
    assert not rects_overlap(((7, 7),), ((7, 7),))


def test_rects_overlap_inverted_extent_is_empty():
    """hi < lo (not just ==) also denotes empty, never a wrapped range."""
    assert not rects_overlap(((8, 2),), ((0, 64),))


def test_rects_overlap_point_point():
    assert rects_overlap(((5, 6), (0, 16)), ((5, 6), (0, 16)))
    assert not rects_overlap(((5, 6), (0, 16)), ((6, 7), (0, 16)))


def test_rects_overlap_point_touching_full_and_span():
    assert rects_overlap(((5, 6),), ((0, 64),))
    assert rects_overlap(((5, 6),), ((5, 8),))
    assert not rects_overlap(((4, 5),), ((5, 8),))


def test_rects_overlap_trailing_dims_ignored():
    """zip semantics: extra trailing dims on either side are ignored,
    matching Access.resolve's implicit-full padding."""
    assert rects_overlap(((0, 4),), ((2, 6), (0, 16)))
    assert not rects_overlap(((0, 4),), ((4, 6), (9, 9)))


def test_access_rect_emits_empty_dim_for_outside_halo():
    """A halo entirely outside the array clips to an empty slice; the
    rect must then overlap nothing (including itself)."""
    acc = Access("a", (Span(-2, -2), Full()))
    rect = access_rect(acc, 0, 2, (64, 16))
    lo, hi = rect[0]
    assert hi <= lo
    assert not rects_overlap(rect, rect)


# ---------------------------------------------------------------------- #
# satellite: loops_fusable hoists per-processor rects (no O(p^2) rebuild)

def test_loops_fusable_chunk_rects_call_count(monkeypatch):
    """Each loop side's rects are computed once per processor: exactly
    4 * nprocs chunk_rects calls, not O(nprocs**2)."""
    from repro.compiler import analysis

    l1 = ParallelLoop("l1", 64, kern,
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", 64, kern,
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    prog = make_prog([l1, l2])
    nprocs = 8
    calls = {"n": 0}
    real = analysis.chunk_rects

    def counting(*args, **kwargs):
        calls["n"] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(analysis, "chunk_rects", counting)
    verdict = analysis.loops_fusable(l1, l2, nprocs, prog)
    assert calls["n"] == 4 * nprocs
    assert verdict  # disjoint block rows: fusable


def test_loops_fusable_verdicts_unchanged_by_hoisting():
    """Bit-identical verdicts vs the paper cases: shallow-style fusable
    pair fuses, jacobi-style halo pair does not."""
    fuse_a = ParallelLoop("fa", 64, kern,
                          writes=[Access("a", (Span(), Full()))])
    fuse_b = ParallelLoop("fb", 64, kern,
                          reads=[Access("a", (Span(), Full()))],
                          writes=[Access("b", (Span(), Full()))])
    halo_b = ParallelLoop("hb", 64, kern,
                          reads=[Access("a", (Span(-1, 1), Full()))],
                          writes=[Access("b", (Span(), Full()))])
    prog = make_prog([fuse_a, fuse_b, halo_b])
    assert loops_fusable(fuse_a, fuse_b, 4, prog)
    assert not loops_fusable(fuse_a, halo_b, 4, prog)

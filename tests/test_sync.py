"""Tests for barriers and locks (repro.tmk.sync)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmk.api import tmk_run


def setup(space):
    space.alloc("x", (8, 1024), np.float32)
    space.alloc("counter", (1,), np.float64)


def test_barrier_message_count_is_2n_minus_2():
    """'The number of messages sent in a barrier is 2 x (n - 1).'"""

    def prog(tmk):
        tmk.barrier()

    for n in (2, 4, 8):
        r = tmk_run(n, prog, setup)
        assert r.stats.by_category["sync"][0] == 2 * (n - 1), f"n={n}"


def test_barrier_with_one_processor_is_free():
    def prog(tmk):
        for _ in range(5):
            tmk.barrier()

    r = tmk_run(1, prog, setup)
    assert r.messages == 0


def test_barrier_is_a_time_synchronizer():
    def prog(tmk):
        tmk.compute(0.1 * (tmk.pid + 1))
        tmk.barrier()
        return tmk.now

    r = tmk_run(4, prog, setup)
    slowest = 0.4
    assert all(t >= slowest for t in r.results)


def test_many_barriers_in_sequence():
    def prog(tmk):
        for i in range(20):
            tmk.barrier()
        return True

    r = tmk_run(5, prog, setup)
    assert all(r.results)
    assert r.stats.by_category["sync"][0] == 20 * 2 * 4


def test_lock_provides_mutual_exclusion_counter():
    def prog(tmk):
        c = tmk.array("counter")
        for _ in range(5):
            tmk.lock_acquire(0)
            cur = float(c.read((0,)))
            c.write((0,), cur + 1.0)
            tmk.lock_release(0)
        tmk.barrier()
        return float(c.read((0,)))

    for n in (2, 4, 7):
        r = tmk_run(n, prog, setup)
        assert r.results == [5.0 * n] * n, f"n={n}"


def test_lock_reacquire_by_manager_is_free():
    """Re-acquiring a lock nobody requested causes no communication."""

    def prog(tmk):
        if tmk.pid == 0:   # manager of lock 0
            for _ in range(10):
                tmk.lock_acquire(0)
                tmk.lock_release(0)

    r = tmk_run(2, prog, setup)
    assert r.stats.by_category.get("sync", [0, 0])[0] == 0


def test_release_without_waiter_is_silent():
    """'A lock release does not cause any communication.'"""

    def prog(tmk):
        if tmk.pid == 1:
            tmk.lock_acquire(0)     # request + grant
            tmk.lock_release(0)     # silent

    r = tmk_run(2, prog, setup)
    # exactly: request to manager + grant back
    assert r.stats.by_category["sync"][0] == 2


def test_lock_forwarding_chain_three_messages():
    """Acquire of a lock held elsewhere: request, forward, grant."""

    def prog(tmk):
        if tmk.pid == 1:
            tmk.lock_acquire(0)
            tmk.lock_release(0)
        tmk.barrier()
        if tmk.pid == 2:
            tmk.lock_acquire(0)   # manager 0 forwards to last holder 1
            tmk.lock_release(0)

    r = tmk_run(3, prog, setup)
    # p1: req+grant (2) + barrier 2*(3-1)=4 + p2: req+forward+grant (3)
    assert r.stats.by_category["sync"][0] == 2 + 4 + 3


def test_multiple_locks_independent_managers():
    def prog(tmk):
        c = tmk.array("x")
        for lock in range(6):     # managers 0,1,2,0,1,2 at n=3
            tmk.lock_acquire(lock)
            cur = float(c.read((lock, 0)))
            c.write((lock, 0), cur + 1.0)
            tmk.lock_release(lock)
        tmk.barrier()
        return [float(c.read((l, 0))) for l in range(6)]

    r = tmk_run(3, prog, setup)
    for res in r.results:
        assert res == [3.0] * 6


def test_lock_grants_carry_consistency_information():
    """Data written under a lock is visible to the next holder without a
    barrier — the grant's piggybacked write notices do the invalidation."""

    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            tmk.lock_acquire(3)
            x.write((0, 0), 99.0)
            tmk.lock_release(3)
            tmk.barrier()
        else:
            tmk.barrier()
            tmk.lock_acquire(3)
            val = float(x.read((0, 0)))
            tmk.lock_release(3)
            return val

    r = tmk_run(2, prog, setup)
    assert r.results[1] == 99.0


def test_lock_chain_transitivity():
    """p0 -> p1 -> p2 lock chain: p2 must see p0's writes through p1's
    grant even though p0 and p2 never communicate directly."""

    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            tmk.lock_acquire(1)
            x.write((1, 0), 7.0)
            tmk.lock_release(1)
        tmk.barrier()   # order the acquires deterministically
        if tmk.pid == 1:
            tmk.lock_acquire(1)
            x.write((1, 1), float(x.read((1, 0))) + 1)
            tmk.lock_release(1)
        tmk.barrier()
        if tmk.pid == 2:
            tmk.lock_acquire(1)
            row = x.read((slice(1, 2),))[0]
            tmk.lock_release(1)
            return (float(row[0]), float(row[1]))

    r = tmk_run(3, prog, setup)
    assert r.results[2] == (7.0, 8.0)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)),
                min_size=1, max_size=12))
def test_lock_stress_random_schedules(plan):
    """Random per-processor lock sequences: the global counter of each lock
    equals the number of acquires of it (lost-update detector; regression
    for the tenure-chain bug)."""
    nprocs = 4

    def setup_stress(space):
        space.alloc("counts", (3, 1024), np.float64)

    def prog(tmk):
        c = tmk.array("counts")
        for who, lock in plan:
            if tmk.pid == who % nprocs:
                tmk.lock_acquire(lock)
                cur = float(c.read((lock, 0)))
                c.write((lock, 0), cur + 1.0)
                tmk.lock_release(lock)
        tmk.barrier()
        return [float(c.read((l, 0))) for l in range(3)]

    r = tmk_run(nprocs, prog, setup_stress)
    expected = [sum(1 for _w, l in plan if l == lk) for lk in range(3)]
    for res in r.results:
        assert res == [float(e) for e in expected]

"""Deterministic discrete-event engine with thread-backed simulated processes.

The engine implements classic process-oriented discrete-event simulation.
Each simulated processor runs ordinary imperative Python (the application
programs, the DSM protocol handlers, the message-passing library) on its own
OS thread, but the *conductor* guarantees that exactly one thread executes at
any instant: a thread runs until it blocks on a simulation primitive
(:meth:`Process.hold`, :meth:`Process.park`), at which point control returns
to the conductor, which pops the next event in ``(time, priority, seq)``
order.  The ``seq`` tie-break makes scheduling — and therefore every result
in the repository — fully deterministic.

A :class:`Simulator` built with ``schedule_seed=N`` inserts a seeded random
jitter key between ``priority`` and ``seq``, permuting the pop order of
events that share ``(time, priority)``.  Same-time events are exactly the
ones the simulated platform leaves unordered (causally-ordered events always
differ in time because every message and every hold advances the clock), so
each seed explores a distinct *legal* interleaving of the same run — the
schedule fuzzer underneath ``python -m repro racecheck``.  ``None`` keeps
the historical FIFO order bit-for-bit.

Virtual time is a ``float`` in seconds.  Nothing in the engine depends on
wall-clock time; Python's execution speed never leaks into reported numbers.
"""

from __future__ import annotations

import heapq
import random
import threading
import traceback
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Process", "SimError", "Deadlock"]


class SimError(RuntimeError):
    """An error raised inside a simulated process, re-raised by :meth:`Simulator.run`."""


class Deadlock(RuntimeError):
    """Raised when every live process is parked and no events remain."""


class Process:
    """A simulated process: a cooperatively-scheduled thread with a virtual clock.

    Application code never constructs these directly; use
    :meth:`Simulator.add_process`.  The public surface relevant to programs is
    :meth:`hold` (advance virtual time / model computation), :meth:`park`
    (block until another process calls :meth:`Simulator.unpark`), and the
    :attr:`now` property.
    """

    def __init__(self, sim: "Simulator", pid: int, name: str,
                 fn: Callable[..., Any], args: tuple, kwargs: dict,
                 daemon: bool = False):
        self.sim = sim
        self.pid = pid
        self.name = name
        self.daemon = daemon
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._resume = threading.Event()
        self.finished = False
        self.finish_time: Optional[float] = None
        self.result: Any = None
        self.parked = False
        self.park_token: Any = None
        self._started = False
        self._thread = threading.Thread(
            target=self._bootstrap, name=f"simproc-{name}", daemon=True)

    # ------------------------------------------------------------------ #
    # thread plumbing (conductor side)

    def _start(self) -> None:
        self._started = True
        self._thread.start()

    def _bootstrap(self) -> None:
        # Wait for the conductor to give us our first slice.
        self._resume.wait()
        self._resume.clear()
        try:
            self.result = self._fn(*self._args, **self._kwargs)
        except _Killed:
            pass
        except BaseException:  # noqa: BLE001 - report any failure to conductor
            self.sim._fail(self, traceback.format_exc())
        finally:
            self.finished = True
            self.finish_time = self.sim.now
            self.sim._switch_to_conductor()

    def _run_slice(self) -> None:
        """Conductor hands the CPU to this process and waits for it to block."""
        self._resume.set()
        self.sim._conductor_wait()

    # ------------------------------------------------------------------ #
    # primitives (called from the process's own thread)

    @property
    def now(self) -> float:
        return self.sim.now

    def hold(self, dt: float) -> None:
        """Advance this process's virtual clock by ``dt`` seconds.

        Models local computation or fixed software overheads.  ``dt`` may be
        zero (a pure yield, which still gives deterministically-ordered
        scheduling to same-time events).
        """
        if dt < 0:
            raise ValueError(f"negative hold: {dt}")
        self.sim._schedule_wakeup(self, self.sim.now + dt)
        self._block()

    def park(self, token: Any = None) -> None:
        """Block until another process calls :meth:`Simulator.unpark` on us."""
        self.parked = True
        self.park_token = token
        self._block()

    def _block(self) -> None:
        self.sim._switch_to_conductor()
        self._resume.wait()
        self._resume.clear()
        if self.sim._dead:
            raise _Killed()


class _Killed(BaseException):
    """Internal: unwinds a process thread when the simulation is torn down."""


class Simulator:
    """The conductor: owns the event queue and the global virtual clock."""

    def __init__(self, schedule_seed: Optional[int] = None) -> None:
        self.now: float = 0.0
        self.schedule_seed = schedule_seed
        self._rng = (random.Random(schedule_seed)
                     if schedule_seed is not None else None)
        self._queue: list[tuple[float, int, float, int, Any]] = []
        self._seq = 0
        self._procs: list[Process] = []
        self._conductor_evt = threading.Event()
        self._error: Optional[str] = None
        self._dead = False
        self._running = False
        self._current: Optional[Process] = None

    # ------------------------------------------------------------------ #
    # construction

    def add_process(self, name: str, fn: Callable[..., Any],
                    *args: Any, daemon: bool = False, **kwargs: Any) -> Process:
        """Register a simulated process.

        ``daemon`` processes (protocol servers) do not keep the simulation
        alive: once every non-daemon process has finished, :meth:`run`
        returns, and parked daemons are not a deadlock.
        """
        proc = Process(self, len(self._procs), name, fn, args, kwargs,
                       daemon=daemon)
        self._procs.append(proc)
        self._schedule_wakeup(proc, self.now)
        if self._running and not proc._started:
            proc._start()
        return proc

    # ------------------------------------------------------------------ #
    # scheduling internals

    def _jitter(self) -> float:
        """Tie-break key between ``priority`` and ``seq``: 0.0 (FIFO) without
        a seed, seeded-random with one, so only same-``(time, priority)``
        events ever reorder."""
        return self._rng.random() if self._rng is not None else 0.0

    def _schedule_wakeup(self, proc: Process, at: float, priority: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._queue,
                       (at, priority, self._jitter(), self._seq, proc))

    def schedule_call(self, delay: float, fn: Callable[[], None],
                      priority: int = 0) -> None:
        """Run ``fn`` on the conductor at ``now + delay`` (no process context)."""
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority,
                                     self._jitter(), self._seq, fn))

    def unpark(self, proc: Process, delay: float = 0.0, priority: int = 0) -> None:
        """Make a parked process runnable again at ``now + delay``."""
        if not proc.parked:
            raise SimError(f"unpark of non-parked process {proc.name}")
        proc.parked = False
        proc.park_token = None
        self._schedule_wakeup(proc, self.now + delay, priority)

    # ------------------------------------------------------------------ #
    # conductor <-> process handoff

    def _conductor_wait(self) -> None:
        self._conductor_evt.wait()
        self._conductor_evt.clear()

    def _switch_to_conductor(self) -> None:
        self._conductor_evt.set()

    def _fail(self, proc: Process, tb: str) -> None:
        if self._error is None:
            self._error = f"process {proc.name!r} raised:\n{tb}"

    # ------------------------------------------------------------------ #
    # main loop

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation until all processes finish (or ``until``).

        Returns the final virtual time.  Raises :class:`SimError` if any
        process raised, and :class:`Deadlock` if live processes remain but no
        event can ever wake them.
        """
        self._running = True
        for proc in self._procs:
            if not proc._started:
                proc._start()
        try:
            while self._queue:
                if all(p.finished for p in self._procs if not p.daemon):
                    break
                at, _pri, _jit, _seq, target = heapq.heappop(self._queue)
                if until is not None and at > until:
                    self.now = until
                    break
                self.now = at
                if isinstance(target, Process):
                    if target.finished:
                        continue
                    self._current = target
                    target._run_slice()
                    self._current = None
                else:
                    target()
                if self._error is not None:
                    raise SimError(self._error)
            live = [p for p in self._procs if not p.finished and not p.daemon]
            if live and until is None:
                sites = []
                for p in live:
                    if p.parked:
                        sites.append(f"{p.name} parked at {p.park_token!r}")
                    else:
                        sites.append(f"{p.name} blocked (no park site)")
                raise Deadlock(
                    f"no events remain but {len(live)} process(es) still "
                    f"blocked: " + "; ".join(sites))
            return self.now
        finally:
            self._teardown()

    def _teardown(self) -> None:
        """Unblock any still-parked threads so they exit (daemon hygiene)."""
        self._dead = True
        for proc in self._procs:
            if proc._started and not proc.finished:
                proc._resume.set()
        for proc in self._procs:
            if proc._started:
                proc._thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #

    @property
    def current(self) -> Process:
        """The process currently executing (valid only from process context)."""
        cur = self._current
        if cur is None:
            raise SimError("no process is currently executing")
        return cur

"""Deeper behavioural tests of the SPF and XHPF backends."""

import numpy as np
import pytest

from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Point, Program, SeqBlock, Span, TimeLoop)
from repro.compiler.seq import run_sequential
from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.xhpf import XhpfOptions, run_xhpf


def _seq_then(prog_factory, runner, n, **kw):
    _v, seq, _t = run_sequential(prog_factory())
    res = runner(prog_factory(), nprocs=n, **kw)
    return seq, res


# ---------------------------------------------------------------------- #
# master-sequential semantics (SPF)

def master_sequential_program():
    """Master mutates data between loops; workers must observe it."""

    def init(views):
        views["a"][...] = 1.0

    def bump(views):
        views["a"][0, :] += 10.0       # master-only sequential write

    def consume(views, lo, hi):
        return {"s": float(views["a"][lo:hi].sum(dtype=np.float64))}

    return Program(
        "ms", arrays=[ArrayDecl("a", (8, 64), np.float64, distribute=0)],
        body=[SeqBlock("init", init,
                       writes=[Access("a", (Full(), Full()))], cost=1e-6),
              TimeLoop("t", 3, [
                  SeqBlock("bump", bump,
                           reads=[Access("a", (Span(0, 1), Full()))],
                           writes=[Access("a", (Span(0, 1), Full()))],
                           cost=1e-6),
                  ParallelLoop("consume", 8, consume,
                               reads=[Access("a", (Span(), Full()))],
                               reductions=[
                                   __import__("repro.compiler.ir",
                                              fromlist=["Reduction"])
                                   .Reduction("s")],
                               cost_per_iter=1e-6)])])


def test_spf_master_sequential_writes_visible_to_workers():
    seq, res = _seq_then(master_sequential_program, run_spf, 4)
    assert res.scalars["s"] == pytest.approx(seq["s"], rel=1e-12)


def test_xhpf_replicated_sequential_consistent():
    seq, res = _seq_then(master_sequential_program, run_xhpf, 4)
    assert res.scalars["s"] == pytest.approx(seq["s"], rel=1e-12)


def test_xhpf_seq_read_of_distributed_data_broadcasts():
    """A sequential block reading a distributed row makes its owner
    broadcast it — n-1 messages, every processor computes."""

    def init(views, lo, hi):
        views["a"][lo:hi] = np.arange(lo, hi, dtype=np.float64)[:, None]

    def peek(views):
        views["scalarbox"][0] = views["a"][5, 0] * 2

    def report(views, lo, hi):
        return {"r": float(views["scalarbox"][0]) if lo == 0 else 0.0}

    from repro.compiler.ir import Reduction
    prog = Program(
        "p", arrays=[ArrayDecl("a", (8, 8), np.float64, distribute=0),
                     ArrayDecl("scalarbox", (1,), np.float64)],
        body=[ParallelLoop("init", 8, init,
                           writes=[Access("a", (Span(), Full()))],
                           align=("a", 0), cost_per_iter=1e-7),
              SeqBlock("peek", peek,
                       reads=[Access("a", (Point(5), Full()))],
                       writes=[Access("scalarbox", (Full(),))], cost=1e-7),
              ParallelLoop("report", 8, report,
                           reads=[Access("scalarbox", (Full(),))],
                           reductions=[Reduction("r", op="max")],
                           align=("a", 0), cost_per_iter=1e-7)])
    res = run_xhpf(prog, nprocs=4)
    assert res.scalars["r"] == 10.0
    # owner broadcast of row 5: one tree broadcast = n-1 data messages
    assert res.stats.by_category["data"][0] >= 3


# ---------------------------------------------------------------------- #
# old-interface control variables

def test_old_interface_passes_loop_bounds_through_pages():
    """Workers read the loop bounds from the shared control pages."""
    from repro.tmk.forkjoin import CTRL_ARG

    captured = []

    def kernel(views, lo, hi):
        captured.append((lo, hi))

    prog = Program("p", arrays=[ArrayDecl("a", (8, 64))],
                   body=[ParallelLoop("l", 8, kernel,
                                      writes=[Access("a", (Span(), Full()))],
                                      cost_per_iter=1e-7)])
    res = run_spf(prog, nprocs=2,
                  options=SpfOptions(improved_interface=False))
    # both processors ran their chunks; the control pages carried (0, 8)
    assert (0, 4) in captured and (4, 8) in captured


# ---------------------------------------------------------------------- #
# accumulation staging across instances

def test_spf_staging_clears_stale_contributions():
    """A contribution present in instance 1 but absent in instance 2 must
    not leak into instance 2's merge (the union-rewrite in
    _stage_contributions)."""
    flags = {"t": 0}

    def footprint(views, lo, hi):
        return np.arange(lo, hi, dtype=np.int64)

    from repro.compiler.ir import Irregular, Reduction

    def kernel(views, lo, hi):
        # instance parity decided by a shared counter array the kernel reads
        t = int(views["step"][0])
        if t % 2 == 0:
            views["acc"][lo:hi] += 1.0      # contribute everywhere
        else:
            if lo == 0:
                views["acc"][0] += 1.0      # only one cell

    def tick(views):
        views["step"][0] += 1

    def check(views, lo, hi):
        return {"total": float(views["acc"][lo:hi].sum(dtype=np.float64))}

    prog = Program(
        "stale", arrays=[ArrayDecl("acc", (8,), np.float64),
                         ArrayDecl("step", (1,), np.float64)],
        body=[TimeLoop("t", 2, [
            ParallelLoop("contrib", 8, kernel,
                         reads=[Access("step", (Full(),)),
                                Access("acc", Irregular(footprint))],
                         writes=[Access("acc", Irregular(footprint))],
                         accumulate=["acc"], cost_per_iter=1e-7),
            SeqBlock("tick", tick, reads=[Access("step", (Full(),))],
                     writes=[Access("step", (Full(),))], cost=1e-7),
            ParallelLoop("check", 8, check,
                         reads=[Access("acc", (Span(),))],
                         reductions=[Reduction("total")],
                         cost_per_iter=1e-7)])])
    _v, seq, _t = run_sequential(prog)
    assert seq["total"] == 1.0          # second instance: a single cell
    res = run_spf(prog, nprocs=4)
    assert res.scalars["total"] == pytest.approx(1.0)


# ---------------------------------------------------------------------- #
# XHPF validity tracking

def test_xhpf_irregular_prologue_rebroadcasts_stale_inputs():
    """A block loop staling an array that an irregular loop later reads
    forces the coordinate-style re-broadcast."""
    from repro.compiler.ir import Irregular, Reduction

    def footprint(views, lo, hi):
        return np.arange(0, 8, dtype=np.int64)    # reads everything

    def writer(views, lo, hi):
        views["a"][lo:hi] += 1.0

    def reader(views, lo, hi):
        return {"s": float(views["a"].sum(dtype=np.float64))
                if lo == 0 else 0.0}

    prog = Program(
        "p", arrays=[ArrayDecl("a", (8, 4), np.float64, distribute=0)],
        body=[ParallelLoop("w", 8, writer,
                           writes=[Access("a", (Span(), Full()))],
                           align=("a", 0), cost_per_iter=1e-7),
              ParallelLoop("r", 8, reader,
                           reads=[Access("a", Irregular(footprint))],
                           reductions=[Reduction("s", op="max")],
                           align=("a", 0), cost_per_iter=1e-7)])
    res = run_xhpf(prog, nprocs=4)
    assert res.scalars["s"] == 8 * 4      # fresh data everywhere
    # partition re-broadcast: 4 procs x 3 peers messages at minimum
    assert res.stats.by_category["data"][0] >= 12

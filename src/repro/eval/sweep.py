"""Extended scaling sweep: the analytic model at 16-1024 nodes.

The paper's evaluation stops at the 8-node SP/2.  The sweep composes the
validated analytic model (:mod:`repro.compiler.model`) at N well past what
the event simulator can schedule, and emits the extended speedup/traffic
tables plus a JSON artifact.  Every number it reports is *modeled*, never
simulated: rows carry ``mode: "model"`` and the tables badge it, so these
extrapolations can never be confused with simulated DsmStats (the
validate-small / trust-large protocol of docs/MODEL.md).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Optional

from repro.api.types import RunRequest, machine_to_doc
from repro.apps.common import get_app
from repro.compiler.seq import sequential_time
from repro.eval.constants import APPS
from repro.eval.parallel import run_requests
from repro.sim.machine import SP2_MODEL, MachineModel

__all__ = ["SWEEP_SCHEMA", "DEFAULT_NODES", "DEFAULT_SWEEP_VARIANTS",
           "run_sweep", "format_sweep_tables"]

SWEEP_SCHEMA = "repro-sweep/3"
DEFAULT_NODES = (8, 16, 64, 256, 1024)
DEFAULT_SWEEP_VARIANTS = ("spf", "spf_old", "xhpf", "xhpf_ie")


def run_sweep(apps: Optional[list] = None,
              variants: Optional[list] = None,
              nodes: tuple = DEFAULT_NODES,
              preset: str = "test",
              machine: Optional[MachineModel] = None,
              gc_epochs: Optional[int] = 8,
              jobs: int = 1,
              service=None,
              fleet: Optional[list] = None,
              progress=None) -> dict:
    """Model every (app, variant, N) combination; returns the JSON doc.

    ``jobs > 1`` (or a caller-supplied ``service``) retires the grid
    through a :class:`~repro.serve.RunService` worker pool; ``fleet``
    (``"HOST:PORT"`` specs) shards it across remote ``repro serve
    --tcp`` hosts through a :class:`~repro.serve.FleetService`.  Rows
    land in deterministic request order every way, and the document is
    **bit-identical** to a serial run — requests carry no tag or other
    per-submission state, so their fingerprints cannot diverge (the CI
    parallel-sweep and fleet smokes assert this against the serial
    golden).

    The document is schema-stable (``tests/test_sweep_schema.py`` pins it):

    * ``schema`` — ``"repro-sweep/3"``
    * ``preset``, ``machine`` (full parameter set), ``nodes``, ``variants``
    * ``apps[app]`` — ``seq_time`` plus per-variant lists of per-N rows.
      Each row is the deterministic (fingerprint) form of the unified
      ``repro-run/1`` result document — the same serializer the serve wire
      protocol and the chaos harness use — and carries ``mode: "model"``.
    """
    apps = list(apps or APPS)
    variants = list(variants or DEFAULT_SWEEP_VARIANTS)
    mach = machine or SP2_MODEL
    doc = {
        "schema": SWEEP_SCHEMA,
        "preset": preset,
        "machine": asdict(mach),
        "nodes": [int(n) for n in nodes],
        "variants": variants,
        "apps": {},
    }
    machine_doc = machine_to_doc(mach)
    requests = []
    slots = []                  # (app, variant, node index) per request
    for app in apps:
        spec = get_app(app)
        seq_time = sequential_time(spec.build_program(spec.params(preset)))
        entry: dict = {"seq_time": seq_time, "variants": {}}
        for variant in variants:
            entry["variants"][variant] = [None] * len(nodes)
            for i, n in enumerate(nodes):
                requests.append(RunRequest(
                    app=app, variant=variant, nprocs=int(n), preset=preset,
                    mode="model", machine=machine_doc, seq_time=seq_time,
                    gc_epochs=gc_epochs))
                slots.append((app, variant, i))
        doc["apps"][app] = entry
    results = run_requests(
        requests, jobs=jobs, service=service, fleet=fleet,
        progress=progress,
        describe=lambda r: f"model {r.app} {r.variant} n={r.nprocs}")
    for (app, variant, i), res in zip(slots, results):
        doc["apps"][app]["variants"][variant][i] = res.fingerprint()
    return doc


def _table(title: str, variants: list, nodes: list, cell) -> str:
    width = 11
    lines = [f"  {title}"]
    lines.append("  " + f"{'':10s}"
                 + "".join(f"{'n=' + str(n):>{width}s}" for n in nodes))
    for variant in variants:
        row = f"  {variant:10s}"
        for i, _n in enumerate(nodes):
            row += f"{cell(variant, i):>{width}s}"
        lines.append(row)
    return "\n".join(lines)


def format_sweep_tables(doc: dict) -> str:
    """Speedup, message and data tables per application, model-badged."""
    nodes = doc["nodes"]
    variants = doc["variants"]
    out = []
    for app, entry in doc["apps"].items():
        rows = entry["variants"]
        out.append(f"{app} — extended scaling [model] "
                   f"(preset {doc['preset']!r}, analytic predictions, "
                   f"not simulated)")
        out.append(_table("speedup", variants, nodes,
                          lambda v, i: f"{rows[v][i]['speedup']:.2f}"))
        out.append(_table("messages", variants, nodes,
                          lambda v, i: f"{rows[v][i]['messages']:d}"))
        out.append(_table("data (KB)", variants, nodes,
                          lambda v, i: f"{rows[v][i]['kilobytes']:.1f}"))
        out.append("")
    return "\n".join(out).rstrip()

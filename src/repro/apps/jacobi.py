"""Jacobi: iterative method for solving partial differential equations.

Section 5.1 of the paper.  Two arrays — data and scratch — and two parallel
phases per iteration: a four-point stencil into the scratch array, then a
copy back to the data array.  The data array is "initialized with ones on
the edges and zeroes in the interior"; nearest-neighbour communication
exchanges partition-boundary lines each iteration.  The paper's Fortran is
column-major and partitions by column; this C-order implementation
partitions by row, which is the identical memory pattern.

Variant notes (from the paper):

* SPF also allocates the *scratch* array in shared memory because it is
  accessed in a parallel loop — worth ~2% versus hand-coded TreadMarks,
  which keeps scratch private (exactly what :func:`hand_tmk` does);
* message passing wins mainly through data aggregation (a boundary line is
  one message; TreadMarks needs two faults x two messages for the same
  line) and merged synchronization;
* TreadMarks moves far *less data* because only modified words travel as
  diffs, and Jacobi's interior stays zero until the boundary wave reaches
  it (Table 2: 862 KB vs 11,469 KB).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, append_signature_loops,
                               partial_signature, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Program, SeqBlock, Span, TimeLoop)
from repro.compiler.spf import SpfOptions

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# Per-element virtual compute costs, calibrated so the paper-size problem
# (2048^2 x 100 iterations) runs ~55 s sequentially (Table 1 row estimated;
# see eval/constants.py).
STENCIL_COST = 95e-9
COPY_COST = 36e-9

PRESETS = {
    "paper": dict(n=2048, iters=100, warmup=1),
    "bench": dict(n=2048, iters=12, warmup=1),
    "test": dict(n=64, iters=3, warmup=1),
}


# ---------------------------------------------------------------------- #
# kernels (shared by every variant)

def init_grid(u: np.ndarray) -> None:
    u[...] = 0.0
    u[0, :] = 1.0
    u[-1, :] = 1.0
    u[:, 0] = 1.0
    u[:, -1] = 1.0


def stencil_rows(u: np.ndarray, scratch: np.ndarray, lo: int, hi: int) -> None:
    """Four-point stencil into scratch for interior rows of [lo, hi)."""
    n = u.shape[0]
    lo, hi = max(lo, 1), min(hi, n - 1)
    if hi <= lo:
        return
    src = u[lo - 1:hi + 1]
    scratch[lo:hi, 1:-1] = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                                   + src[1:-1, :-2] + src[1:-1, 2:])


def copy_rows(u: np.ndarray, scratch: np.ndarray, lo: int, hi: int) -> None:
    n = u.shape[0]
    lo, hi = max(lo, 1), min(hi, n - 1)
    if hi > lo:
        u[lo:hi, 1:-1] = scratch[lo:hi, 1:-1]


# ---------------------------------------------------------------------- #
# IR description (consumed by SPF, XHPF and the sequential oracle)

def build_program(params: dict) -> Program:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]

    def init_kernel(views):
        init_grid(views["u"])

    def stencil_kernel(views, lo, hi):
        stencil_rows(views["u"], views["scratch"], lo, hi)

    def copy_kernel(views, lo, hi):
        copy_rows(views["u"], views["scratch"], lo, hi)

    iteration = [
        ParallelLoop("stencil", n, stencil_kernel,
                     reads=[Access("u", (Span(-1, 1), Full()))],
                     writes=[Access("scratch", (Span(), Full()))],
                     align=("scratch", 0),
                     cost_per_iter=STENCIL_COST * n),
        ParallelLoop("copy", n, copy_kernel,
                     reads=[Access("scratch", (Span(), Full()))],
                     writes=[Access("u", (Span(), Full()))],
                     align=("u", 0),
                     cost_per_iter=COPY_COST * n),
    ]
    program = Program(
        name="jacobi",
        arrays=[ArrayDecl("u", (n, n), np.float32, distribute=0),
                ArrayDecl("scratch", (n, n), np.float32, distribute=0)],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("u", (Full(), Full()))],
                       cost=2e-9 * n * n),
              TimeLoop("warmup", warmup, iteration),
              Mark("start"),
              TimeLoop("iterations", iters, iteration),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, ["u", "scratch"])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks: scratch is private, plain barriers

def hand_tmk_setup(space, params: dict) -> None:
    n = params["n"]
    space.alloc("u", (n, n), np.float32)


def hand_tmk(tmk, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    u = tmk.array("u")
    lo, hi = tmk.block_range(n)
    scratch = np.zeros((n, n), dtype=np.float32)   # private scratch array

    if tmk.pid == 0:
        view = u.writable()
        init_grid(view)
        tmk.compute(2e-9 * n * n)
    tmk.barrier()

    def one_iteration():
        rlo, rhi = max(lo, 1), min(hi, n - 1)
        src = u.read((slice(rlo - 1, rhi + 1), slice(None)))
        stencil_rows(u.raw(), scratch, lo, hi)
        tmk.compute(STENCIL_COST * n * (hi - lo))
        tmk.barrier()                       # anti-dependence between phases
        dst = u.writable((slice(rlo, rhi), slice(None))) if rhi > rlo else None
        copy_rows(u.raw(), scratch, lo, hi)
        tmk.compute(COPY_COST * n * (hi - lo))
        tmk.barrier()

    for _ in range(warmup):
        one_iteration()
    tmk.env.mark("start")
    for _ in range(iters):
        one_iteration()
    tmk.env.mark("stop")
    sig = partial_signature({"u": u.raw(), "scratch": scratch}, lo, hi)
    return sig


# ---------------------------------------------------------------------- #
# hand-coded PVMe message passing

TAG_UP, TAG_DOWN = 10, 11


def hand_pvme(p, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    lo, hi = p.block_range(n)
    u = np.zeros((n, n), dtype=np.float32)
    scratch = np.zeros((n, n), dtype=np.float32)
    init_grid(u)       # everyone initializes locally (replicated, free)

    up, down = p.tid - 1, p.tid + 1

    def one_iteration():
        # exchange boundary rows with neighbours (one message per line)
        if up >= 0:
            p.send(up, u[lo].copy(), tag=TAG_UP)
        if down < p.ntasks:
            p.send(down, u[hi - 1].copy(), tag=TAG_DOWN)
        if up >= 0:
            u[lo - 1] = p.recv(src=up, tag=TAG_DOWN)
        if down < p.ntasks:
            u[hi] = p.recv(src=down, tag=TAG_UP)
        stencil_rows(u, scratch, lo, hi)
        p.compute(STENCIL_COST * n * (hi - lo))
        copy_rows(u, scratch, lo, hi)     # no communication between phases
        p.compute(COPY_COST * n * (hi - lo))

    for _ in range(warmup):
        one_iteration()
    p.env.mark("start")
    for _ in range(iters):
        one_iteration()
    p.env.mark("stop")
    return partial_signature({"u": u, "scratch": scratch}, lo, hi)


SPEC = register(AppSpec(
    name="jacobi",
    regular=True,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=["u", "scratch"],
    spf_opt_options=lambda: SpfOptions(aggregate=True),
    notes="Section 5.1; hand optimization = communication aggregation",
))

"""Every application, every variant, against the sequential oracle.

This is the repository's central correctness statement: all four
implementation strategies of all six applications compute the same numbers
the sequential program does (within float32 chunked-summation noise), on
divisible and non-divisible processor counts.
"""

import pytest

from repro.apps.common import APP_REGISTRY, get_app, signatures_close
from repro.eval.experiments import run_variant

APPS = ["jacobi", "shallow", "mgs", "fft3d", "igrid", "nbf"]
VARIANTS = ["spf", "tmk", "xhpf", "pvme"]

_seq_cache = {}


def seq_signature(app):
    if app not in _seq_cache:
        _seq_cache[app] = run_variant(app, "seq", preset="test")
    return _seq_cache[app]


def test_registry_complete():
    assert set(APP_REGISTRY) == set(APPS)
    for app in APPS:
        spec = get_app(app)
        assert spec.presets.keys() >= {"paper", "bench", "test"}
        assert spec.regular == (app in ("jacobi", "shallow", "mgs", "fft3d"))


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_matches_sequential(app, variant):
    seq = seq_signature(app)
    res = run_variant(app, variant, nprocs=4, preset="test",
                      seq_time=seq.time)
    assert signatures_close(seq.signature, res.signature, rtol=1e-6), (
        f"{app}/{variant}: {res.signature} != {seq.signature}")


@pytest.mark.parametrize("app", APPS)
def test_nondivisible_processor_count(app):
    """3 processors: block remainders and cyclic wrap still correct."""
    seq = seq_signature(app)
    res = run_variant(app, "tmk", nprocs=3, preset="test",
                      seq_time=seq.time)
    assert signatures_close(seq.signature, res.signature, rtol=1e-6)


@pytest.mark.parametrize("app", ["jacobi", "igrid"])
def test_compiled_variants_on_two_procs(app):
    seq = seq_signature(app)
    for variant in ("spf", "xhpf"):
        res = run_variant(app, variant, nprocs=2, preset="test",
                          seq_time=seq.time)
        assert signatures_close(seq.signature, res.signature, rtol=1e-6)


@pytest.mark.parametrize("app", APPS)
def test_spf_optimized_variant_same_answer(app):
    """The paper's hand optimizations must not change results."""
    spec = get_app(app)
    if spec.spf_opt_options is None:
        pytest.skip("no hand-optimized variant in the paper")
    seq = seq_signature(app)
    res = run_variant(app, "spf_opt", nprocs=4, preset="test",
                      seq_time=seq.time)
    assert signatures_close(seq.signature, res.signature, rtol=1e-6)


@pytest.mark.parametrize("app", ["jacobi", "mgs"])
def test_spf_old_interface_same_answer(app):
    seq = seq_signature(app)
    res = run_variant(app, "spf_old", nprocs=4, preset="test",
                      seq_time=seq.time)
    assert signatures_close(seq.signature, res.signature, rtol=1e-6)


@pytest.mark.parametrize("app", APPS)
def test_variants_deterministic(app):
    a = run_variant(app, "tmk", nprocs=4, preset="test")
    b = run_variant(app, "tmk", nprocs=4, preset="test")
    assert a.time == b.time
    assert a.messages == b.messages
    assert a.signature == b.signature

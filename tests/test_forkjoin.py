"""Tests for the Section 2.3 fork-join interfaces (repro.tmk.forkjoin)."""

import numpy as np
import pytest

from repro.tmk.api import tmk_run
from repro.tmk.forkjoin import (ImprovedForkJoin, OldForkJoin,
                                alloc_old_interface_control)


def _run_forkjoin(nprocs, improved, nloops=3, payload_hook=None):
    """Drive ``nloops`` parallel loops that increment a shared slab."""

    def setup(space):
        space.alloc("data", (nprocs, 1024), np.float32)
        if not improved:
            alloc_old_interface_control(space)

    def prog(tmk):
        fj = (ImprovedForkJoin if improved else OldForkJoin)(tmk.node)
        data = tmk.array("data")
        if tmk.pid == 0:
            for loop in range(nloops):
                fj.fork(loop, (loop * 10,))
                row = data.read((slice(0, 1),)).copy()
                data.write((slice(0, 1),), row + 1)
                fj.join()
            fj.shutdown()
            return float(data.read((slice(0, 1), slice(0, 1)))[0, 0])
        else:
            seen = []
            while True:
                work = fj.wait_for_work()
                if work is None:
                    break
                sub, params = work
                seen.append((int(sub), tuple(params)))
                row = data.read((slice(tmk.pid, tmk.pid + 1),)).copy()
                data.write((slice(tmk.pid, tmk.pid + 1),), row + 1)
                fj.work_done()
            return seen

    return tmk_run(nprocs, prog, setup)


@pytest.mark.parametrize("improved", [True, False])
def test_workers_receive_every_dispatch(improved):
    r = _run_forkjoin(4, improved)
    assert r.results[0] == 3.0
    for w in range(1, 4):
        assert [s for s, _p in r.results[w]] == [0, 1, 2]
        assert [p for _s, p in r.results[w]] == [(0.0,), (10.0,), (20.0,)]


def test_improved_interface_message_count():
    """2(n-1) synchronization messages per parallel loop."""
    n, loops = 8, 5
    r = _run_forkjoin(n, improved=True, nloops=loops)
    sync = r.stats.by_category["sync"][0]
    # loops + the shutdown fork (one extra one-to-all)
    assert sync == (loops * 2 + 1) * (n - 1)


def test_old_interface_message_count():
    """8(n-1) messages per parallel loop: two barriers (4(n-1)) plus two
    control-page faults per worker (4(n-1))."""
    n, loops = 8, 5
    r = _run_forkjoin(n, improved=False, nloops=loops)
    sync = r.stats.by_category["sync"][0]
    ctrl_reqs = r.stats.by_category["diff_req"][0]
    ctrl_reps = r.stats.by_category["diff_rep"][0]
    # barriers: 2 per loop + 1 for the shutdown fork
    assert sync == (loops * 2 + 1) * 2 * (n - 1)
    # control faults: at most 2 per worker per dispatch (pages stay valid
    # only when contents did not change; the subroutine id page changes
    # every dispatch)
    assert ctrl_reqs == ctrl_reps
    assert ctrl_reqs >= loops * (n - 1)
    total_per_loop = (sync + ctrl_reqs + ctrl_reps) / (loops + 0.5)
    assert total_per_loop > 6 * (n - 1)   # ~8(n-1), vs 2(n-1) improved


def test_old_interface_slower_than_improved():
    fast = _run_forkjoin(8, improved=True, nloops=10)
    slow = _run_forkjoin(8, improved=False, nloops=10)
    assert slow.time > fast.time


def test_fork_payload_piggyback():
    """The improved interface can carry data on the fork message (the
    sync+data merge used by the optimized MGS)."""
    from repro.tmk.enhanced import PushPayload

    def setup(space):
        space.alloc("vec", (4, 1024), np.float32)

    def prog(tmk):
        fj = ImprovedForkJoin(tmk.node)
        vec = tmk.array("vec")
        if tmk.pid == 0:
            vec.write((slice(0, 1),), 5.0)
            payload = PushPayload.build(tmk.node, [(vec.handle, (slice(0, 1),))])
            assert payload is not None
            fj.fork(0, (), payload=payload)
            fj.join()
            fj.shutdown()
            return None
        else:
            fj.wait_for_work()
            before = tmk.world.dsm_stats.read_faults
            val = float(vec.read((0, 0)))    # no fault: data was pushed
            after = tmk.world.dsm_stats.read_faults
            fj.work_done()
            fj.wait_for_work()
            return (val, after - before)

    r = tmk_run(3, prog, setup)
    for w in (1, 2):
        assert r.results[w] == (5.0, 0)


def test_old_interface_rejects_payload():
    def setup(space):
        alloc_old_interface_control(space)

    def prog(tmk):
        fj = OldForkJoin(tmk.node)
        if tmk.pid == 0:
            with pytest.raises(ValueError):
                fj.fork(0, (), payload=object())
            fj.shutdown()
        else:
            assert fj.wait_for_work() is None

    tmk_run(2, prog, setup)


def test_workers_see_master_sequential_writes():
    """Fork is a release/acquire pair: master writes between loops must be
    visible inside the next loop."""

    def setup(space):
        space.alloc("flag", (1,), np.float64)

    def prog(tmk):
        fj = ImprovedForkJoin(tmk.node)
        flag = tmk.array("flag")
        if tmk.pid == 0:
            flag.write((0,), 1.0)
            fj.fork(0, ())
            fj.join()
            flag.write((0,), 2.0)
            fj.fork(1, ())
            fj.join()
            fj.shutdown()
            return None
        vals = []
        while True:
            work = fj.wait_for_work()
            if work is None:
                return vals
            vals.append(float(flag.read((0,))))
            fj.work_done()

    r = tmk_run(3, prog, setup)
    assert r.results[1] == [1.0, 2.0]
    assert r.results[2] == [1.0, 2.0]

"""Tests for BLOCK/CYCLIC partitioning (repro.compiler.partition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.partition import (block_owner, block_range, chunk_of,
                                      cyclic_indices, cyclic_owner)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(1, 16))
def test_block_ranges_partition_exactly(extent, nprocs):
    """Block chunks are disjoint, ordered, and cover [0, extent)."""
    spans = [block_range(extent, nprocs, p) for p in range(nprocs)]
    assert spans[0][0] == 0
    assert spans[-1][1] == extent
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c
    sizes = [hi - lo for lo, hi in spans]
    assert max(sizes) - min(sizes) <= 1     # balanced


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(1, 16), st.integers(0, 499))
def test_block_owner_consistent_with_range(extent, nprocs, index):
    index = index % extent
    owner = block_owner(extent, nprocs, index)
    lo, hi = block_range(extent, nprocs, owner)
    assert lo <= index < hi


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 300), st.integers(1, 12), st.integers(0, 50))
def test_cyclic_indices_partition_exactly(extent, nprocs, start):
    start = min(start, extent)
    all_indices = np.concatenate(
        [cyclic_indices(extent, nprocs, p, start) for p in range(nprocs)])
    assert sorted(all_indices.tolist()) == list(range(start, extent))


def test_cyclic_owner():
    assert cyclic_owner(0, 4) == 0
    assert cyclic_owner(7, 4) == 3


def test_cyclic_indices_respect_start():
    idx = cyclic_indices(16, 4, 1, start=5)
    assert idx.tolist() == [5, 9, 13]
    idx0 = cyclic_indices(16, 4, 0, start=5)
    assert idx0.tolist() == [8, 12]


def test_chunk_of_dispatch():
    assert chunk_of("block", 10, 2, 0) == (0, 5)
    assert chunk_of("cyclic", 10, 2, 1).tolist() == [1, 3, 5, 7, 9]
    with pytest.raises(ValueError):
        chunk_of("diagonal", 10, 2, 0)


def test_more_procs_than_work():
    spans = [block_range(3, 8, p) for p in range(8)]
    nonempty = [s for s in spans if s[1] > s[0]]
    assert len(nonempty) == 3
    assert spans[-1] == (3, 3)

"""Region algebra and dependence analysis over the IR.

This is the compile-time reasoning both backends rely on:

* *footprints* — the concrete index rectangles a chunk of a parallel loop
  touches, from the declared affine region expressions;
* *irregularity detection* — any :class:`~repro.compiler.ir.Irregular`
  access makes a loop's communication pattern unknowable at compile time,
  which sends SPF down the on-demand path and XHPF down the
  broadcast-everything path;
* *cross-processor dependence tests* — whether two adjacent parallel loops
  can be fused (equivalently: the barrier between them eliminated, Tseng
  [17]) because no processor's writes in the first are touched by a
  *different* processor in the second.

Rectangles are per-dimension half-open intervals.  Cyclic chunks are
over-approximated by their bounding interval, which can only make the
dependence tests conservative (safe).
"""

from __future__ import annotations

from typing import Optional

from repro.compiler.ir import Access, ParallelLoop, Program, SeqBlock
from repro.compiler.partition import block_range, cyclic_indices

__all__ = ["access_rect", "rects_overlap", "chunk_rects", "loop_chunk",
           "loop_is_irregular", "loops_fusable", "stmt_footprints"]

Rect = tuple  # tuple of (lo, hi) per dimension


def access_rect(acc: Access, lo: int, hi: int, shape: tuple) -> Optional[Rect]:
    """Bounding rectangle of an affine access for chunk [lo, hi).

    Returns ``None`` for irregular accesses (unknown footprint).
    """
    if acc.irregular:
        return None
    idx = acc.resolve(lo, hi, shape)
    rect = []
    for comp, extent in zip(idx, shape):
        if isinstance(comp, slice):
            rect.append((comp.start, comp.stop))
        else:
            rect.append((comp, comp + 1))
    return tuple(rect)


def rects_overlap(a: Rect, b: Rect) -> bool:
    """Do two rectangles share any element?

    Invariant: a dimension with zero extent (``hi <= lo``) denotes an
    *empty* footprint, and an empty footprint overlaps nothing — not even
    another empty or enclosing dimension.  This matters because
    :func:`access_rect` mixes dim kinds in one rectangle: ``Point`` dims
    arrive as one-element ``(c, c + 1)`` intervals, ``Full`` dims as
    ``(0, extent)``, and clipped ``Span`` dims may arrive empty (e.g. a
    halo entirely outside the array).  A rect with any empty dim therefore
    touches no element and must report no overlap regardless of the other
    dims.  Extra trailing dims on either rect are ignored (`zip`
    semantics), matching ``Access.resolve``'s implicit-full padding.
    """
    for (alo, ahi), (blo, bhi) in zip(a, b):
        if ahi <= alo or bhi <= blo:
            return False
        if ahi <= blo or bhi <= alo:
            return False
    return True


def loop_chunk(loop: ParallelLoop, pid: int, nprocs: int):
    """Processor ``pid``'s chunk of ``loop``'s iteration space.

    Returns block bounds ``(lo, hi)`` (possibly empty, ``hi <= lo``) or an
    int64 index array for cyclic schedules (possibly zero-length).  Every
    consumer of the iteration partition — backends, dependence tests, the
    lint pass — goes through this one helper so they cannot disagree.
    """
    if loop.schedule == "cyclic":
        return cyclic_indices(loop.extent, nprocs, pid, loop.start)
    lo, hi = block_range(loop.extent - loop.start, nprocs, pid)
    return lo + loop.start, hi + loop.start


def chunk_rects(loop: ParallelLoop, which: str, pid: int, nprocs: int,
                program: Program) -> Optional[dict]:
    """``{array: [rects]}`` touched by processor ``pid``'s chunk.

    ``which`` is "reads" or "writes".  Returns ``None`` if any access is
    irregular.  Cyclic chunks use the bounding interval of the owned
    indices (a conservative over-approximation).
    """
    accesses = getattr(loop, which)
    out: dict = {}
    chunk = loop_chunk(loop, pid, nprocs)
    if loop.schedule == "cyclic":
        if chunk.size == 0:
            return out
        lo, hi = int(chunk[0]), int(chunk[-1]) + 1
    else:
        lo, hi = chunk
        if hi <= lo:
            return out
    for acc in accesses:
        if acc.irregular:
            return None
        shape = program.decl(acc.array).shape
        rect = access_rect(acc, lo, hi, shape)
        out.setdefault(acc.array, []).append(rect)
    return out


def loop_is_irregular(loop: ParallelLoop) -> bool:
    return loop.irregular


def stmt_footprints(stmt, program: Program) -> Optional[dict]:
    """Whole-statement footprint ``{array: [rects]}`` (reads ∪ writes);
    ``None`` when irregular."""
    out: dict = {}
    accesses = list(stmt.reads) + list(stmt.writes)
    if isinstance(stmt, SeqBlock):
        for acc in accesses:
            if acc.irregular:
                return None
            shape = program.decl(acc.array).shape
            out.setdefault(acc.array, []).append(
                access_rect(acc, 0, 0, shape))
        return out
    for acc in accesses:
        if acc.irregular:
            return None
        shape = program.decl(acc.array).shape
        out.setdefault(acc.array, []).append(
            access_rect(acc, stmt.start, stmt.extent, shape))
    return out


def _cross_conflict(a_rects: Optional[dict], b_rects: Optional[dict]) -> bool:
    if a_rects is None or b_rects is None:
        return True  # unknown footprints: assume conflict
    for array, rects_a in a_rects.items():
        rects_b = b_rects.get(array)
        if not rects_b:
            continue
        for ra in rects_a:
            for rb in rects_b:
                if rects_overlap(ra, rb):
                    return True
    return False


def loops_fusable(a: ParallelLoop, b: ParallelLoop, nprocs: int,
                  program: Program) -> bool:
    """May the synchronization between adjacent loops ``a`` then ``b`` be
    removed (each processor runs its chunk of ``b`` right after its chunk
    of ``a``)?

    Required: for every pair of *distinct* processors p != q there is no
    flow (writes_a(p) ∩ reads_b(q)), anti (reads_a(p) ∩ writes_b(q)), or
    output (writes_a(p) ∩ writes_b(q)) dependence.  Reductions and
    accumulation buffers force a synchronization, as does irregularity.
    """
    if a.irregular or b.irregular:
        return False
    if a.reductions or a.accumulate:
        return False
    # Footprints depend only on the owning processor, so resolve each
    # side's per-processor rects once (2*nprocs calls per loop) instead of
    # recomputing b's inside the pair loop (which made this O(nprocs**2)
    # chunk_rects calls).
    was = [chunk_rects(a, "writes", p, nprocs, program)
           for p in range(nprocs)]
    ras = [chunk_rects(a, "reads", p, nprocs, program)
           for p in range(nprocs)]
    wbs = [chunk_rects(b, "writes", q, nprocs, program)
           for q in range(nprocs)]
    rbs = [chunk_rects(b, "reads", q, nprocs, program)
           for q in range(nprocs)]
    for p in range(nprocs):
        wa, ra = was[p], ras[p]
        for q in range(nprocs):
            if p == q:
                continue
            if (_cross_conflict(wa, rbs[q]) or _cross_conflict(wa, wbs[q])
                    or _cross_conflict(ra, wbs[q])):
                return False
    return True

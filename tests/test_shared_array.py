"""Tests for the SharedArray access layer (repro.tmk.shared)."""

import numpy as np
import pytest

from repro.tmk.api import tmk_run


def setup(space):
    space.alloc("m", (8, 1024), np.float32)
    space.alloc("vec", (100,), np.float64)


def test_shape_dtype_name():
    def prog(tmk):
        m = tmk.array("m")
        return (m.shape, str(m.dtype), m.name)

    r = tmk_run(1, prog, setup)
    assert r.results[0] == ((8, 1024), "float32", "m")


def test_array_cached_per_tmk():
    def prog(tmk):
        return tmk.array("m") is tmk.array("m")

    assert tmk_run(1, prog, setup).results[0]


def test_read_returns_view_of_region():
    def prog(tmk):
        m = tmk.array("m")
        m.write((slice(0, 2),), 3.0)
        region = m.read((slice(0, 2), slice(0, 4)))
        return region.shape, float(region.sum())

    r = tmk_run(1, prog, setup)
    assert r.results[0] == ((2, 4), 24.0)


def test_read_ellipsis_whole_array():
    def prog(tmk):
        m = tmk.array("m")
        return m.read().shape

    assert tmk_run(1, prog, setup).results[0] == (8, 1024)


def test_writable_returns_assignable_view():
    def prog(tmk):
        m = tmk.array("m")
        view = m.writable((slice(2, 3),))
        view[...] = 7.0
        return float(m.raw()[2].sum())

    assert tmk_run(1, prog, setup).results[0] == 7.0 * 1024


def test_scalar_region_write():
    def prog(tmk):
        v = tmk.array("vec")
        v.write((5,), 1.25)
        return float(v.read((5,)))

    assert tmk_run(1, prog, setup).results[0] == 1.25


def test_gather_scatter_roundtrip():
    def prog(tmk):
        m = tmk.array("m")
        idx = [0, 1500, 8 * 1024 - 1]
        m.scatter_write(idx, [1.0, 2.0, 3.0])
        return [float(x) for x in m.gather(idx)]

    assert tmk_run(1, prog, setup).results[0] == [1.0, 2.0, 3.0]


def test_scatter_add_accumulates_duplicates():
    def prog(tmk):
        m = tmk.array("m")
        m.scatter_add([10, 10, 10], [1.0, 1.0, 1.0])
        return float(m.gather([10])[0])

    assert tmk_run(1, prog, setup).results[0] == 3.0


def test_repr_mentions_name_and_node():
    def prog(tmk):
        return repr(tmk.array("m"))

    out = tmk_run(1, prog, setup).results[0]
    assert "m" in out and "node=0" in out


def test_raw_is_uncoherent():
    """raw() performs no faults — remote data stays stale through it."""

    def prog(tmk):
        m = tmk.array("m")
        if tmk.pid == 0:
            m.write((slice(0, 1),), 9.0)
        tmk.barrier()
        if tmk.pid == 1:
            stale = float(m.raw()[0, 0])      # no coherence
            fresh = float(m.read((0, 0)))     # faults
            return (stale, fresh)

    r = tmk_run(2, prog, setup)
    assert r.results[1] == (0.0, 9.0)

"""Barriers and locks, exactly as Section 2.2 of the paper describes them.

**Barriers** have a centralized manager (hosted on processor 0's request
server).  "At barrier arrival, each processor sends a release message to the
manager, waits until a barrier departure message is received from the
manager, and then leaves the barrier. ... The number of messages sent in a
barrier is 2 x (n - 1)."  Arrival messages carry the member's new interval
records and its vector time; the departure to each member carries exactly
the records that member lacks (the lazy-invalidate consistency information).

**Locks** each have a statically assigned manager (``lock_id mod nprocs``).
"All lock acquire requests are directed to the manager, and, if necessary,
forwarded to the processor that last requested the lock.  A lock release
does not cause any communication."  The grant message carries the interval
records the acquirer has not seen (the happens-before closure known to the
releaser), per lazy release consistency.

Both protocols assume the interconnect delivers exactly once and in
per-pair send order: a duplicated barrier arrival would advance the
manager's count twice, and a lock grant overtaking an earlier forward
would violate tenure order.  The network guarantees both — natively on
the perfect wire, via its reliable-delivery sublayer when a
:class:`~repro.sim.faults.FaultPlan` is attached — so no sequence
numbers appear at this layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.tmk.intervals import (IntervalRecord, SeenVector,
                                 notice_payload_nbytes, records_unknown_to)
from repro.tmk.protocol import (TAG_BARRIER_DEP, TAG_LOCK_GRANT, TAG_TMK_REQ,
                                TmkNode)

if TYPE_CHECKING:
    from repro.sim.engine import Process

__all__ = ["BarrierManager", "LockTable", "BarrierArrive", "LockReq",
           "LockForward", "barrier", "lock_acquire", "lock_release"]


# ---------------------------------------------------------------------- #
# wire payloads

@dataclass
class BarrierArrive:
    kind: str = field(default="barrier", init=False)
    member: int = 0
    gen: int = 0
    records: list = field(default_factory=list)
    seen: tuple = ()

    def nbytes(self, model) -> int:
        return 16 + notice_payload_nbytes(
            self.records, model.interval_header_bytes, model.write_notice_bytes)


@dataclass
class BarrierDepart:
    gen: int
    records: list

    def nbytes(self, model) -> int:
        return 16 + notice_payload_nbytes(
            self.records, model.interval_header_bytes, model.write_notice_bytes)


@dataclass
class LockReq:
    kind: str = field(default="lock_req", init=False)
    lock: int = 0
    requester: int = 0
    seen: tuple = ()

    def nbytes(self) -> int:
        return 16 + 8 * len(self.seen)


@dataclass
class LockForward:
    kind: str = field(default="lock_fwd", init=False)
    lock: int = 0
    requester: int = 0
    seen: tuple = ()
    after: int = 0      # serve after the target's ``after``-th release

    def nbytes(self) -> int:
        return 16 + 8 * len(self.seen)


@dataclass
class LockGrant:
    lock: int
    records: list

    def nbytes(self, model) -> int:
        return 16 + notice_payload_nbytes(
            self.records, model.interval_header_bytes, model.write_notice_bytes)


# ---------------------------------------------------------------------- #
# barrier manager (state lives with the world; code runs on node 0)

class BarrierManager:
    """Centralized barrier state, driven by processor 0's contexts."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.gen = 0
        self._arrived: dict[int, SeenVector] = {}
        self._records: list[IntervalRecord] = []
        self._seen_keys: set = set()
        self._local_waiting: Optional["Process"] = None
        self._local_depart: Optional[list] = None

    def note_arrival(self, member: int, gen: int, records: list,
                     seen: tuple) -> bool:
        """Record an arrival; True when this one completes the barrier."""
        if gen != self.gen:
            raise RuntimeError(
                f"barrier generation mismatch: member {member} at {gen}, "
                f"manager at {self.gen}")
        if member in self._arrived:
            raise RuntimeError(f"member {member} arrived twice at barrier {gen}")
        sv = SeenVector(self.nprocs)
        sv.v = list(seen)
        self._arrived[member] = sv
        for rec in records:
            key = (rec.proc, rec.id)
            if key not in self._seen_keys:
                self._seen_keys.add(key)
                self._records.append(rec)
        return len(self._arrived) == self.nprocs

    def departures(self) -> dict[int, list]:
        """Per-member record lists for the departure broadcast; resets state."""
        out = {}
        for member, seen in self._arrived.items():
            out[member] = records_unknown_to(self._records, seen)
        self.gen += 1
        self._arrived = {}
        self._records = []
        self._seen_keys = set()
        return out


class LockTable:
    """Cluster-wide lock bookkeeping (logically distributed; see DESIGN.md).

    Acquire requests form a linear chain through the manager: each request
    is forwarded to the previous requester.  Because a forward can overtake
    the target's own pending acquire (or arrive before its grant), serving
    it on "am I currently holding?" alone either breaks mutual exclusion or
    deadlocks.  The manager therefore stamps each forward with the *tenure
    number* it follows — the count of the target's acquires at forwarding
    time — and the target serves it as soon as its release count reaches
    that stamp (possibly immediately, possibly at a future release).
    """

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        # manager side: lock -> pid of last requester (initially the manager)
        self.last_requester: dict[int, int] = {}
        # manager side: (lock, pid) -> acquires by pid processed so far
        self.req_count: dict[tuple, int] = {}
        # holder side: (pid, lock) -> releases completed
        self.release_count: dict[tuple, int] = {}
        # holder side: (pid, lock) -> {after: (requester, seen)}
        self.queued: dict[tuple, dict] = {}

    def manager_of(self, lock: int) -> int:
        return lock % self.nprocs

    def note_request(self, lock: int, requester: int) -> tuple:
        """Record an acquire; returns (prev_holder, after_tenure)."""
        prev = self.last_requester.get(lock, self.manager_of(lock))
        after = self.req_count.get((lock, prev), 0)
        self.req_count[(lock, requester)] = \
            self.req_count.get((lock, requester), 0) + 1
        self.last_requester[lock] = requester
        return prev, after

    def note_release(self, pid: int, lock: int) -> Optional[tuple]:
        """Record a release; returns a queued (requester, seen) now due."""
        key = (pid, lock)
        self.release_count[key] = self.release_count.get(key, 0) + 1
        return self.take_due(pid, lock)

    def take_due(self, pid: int, lock: int) -> Optional[tuple]:
        queue = self.queued.get((pid, lock))
        if not queue:
            return None
        done = self.release_count.get((pid, lock), 0)
        for after in sorted(queue):
            if after <= done:
                return queue.pop(after)
        return None


# ---------------------------------------------------------------------- #
# member-side operations (called from a node's main program)

def barrier(node: TmkNode) -> None:
    """TreadMarks barrier: arrival release + departure acquire."""
    world = node.world
    world.dsm_stats.barriers += 1
    model = node.model
    mgr: BarrierManager = world.barrier_mgr
    proc = node.env.proc
    mon = getattr(world, "race_monitor", None)
    if mon is not None:
        mon.on_barrier_arrive(node.pid)
    node.close_interval()
    records = list(node.log_current)
    node.prune_log()

    if node.nprocs == 1:
        node.advance_epoch()
        if mon is not None:
            mon.on_barrier_depart(node.pid)
        return

    if node.pid == 0:
        complete = mgr.note_arrival(0, mgr.gen, records,
                                    node.seen.as_tuple())
        if complete:
            _distribute_departures(node, proc)
        else:
            mgr._local_waiting = proc
            proc.park(token=("barrier", mgr.gen))
            my_records = mgr._local_depart
            mgr._local_depart = None
            node.apply_records(my_records, log=False)
        node.advance_epoch()
        if mon is not None:
            mon.on_barrier_depart(node.pid)
        return

    # remote member: release message to the manager
    arr = BarrierArrive(member=node.pid, gen=_member_gen(node),
                        records=records, seen=node.seen.as_tuple())
    node.net.send(proc, node.pid, 0, arr, tag=TAG_TMK_REQ,
                  nbytes=arr.nbytes(model), category="sync")
    msg = node.net.recv(proc, node.pid, tag=TAG_BARRIER_DEP)
    dep: BarrierDepart = msg.payload
    node.apply_records(dep.records, log=False)
    node.advance_epoch()
    if mon is not None:
        mon.on_barrier_depart(node.pid)


def _member_gen(node: TmkNode) -> int:
    """A member's barrier generation counter (tracked on the node)."""
    gen = getattr(node, "_barrier_gen", 0)
    node._barrier_gen = gen + 1
    return gen


def manager_handle_arrival(node0: TmkNode, sproc, arr: BarrierArrive) -> None:
    """Processor 0's server processes a remote arrival message."""
    mgr: BarrierManager = node0.world.barrier_mgr
    sproc.hold(node0.model.protocol_overhead)
    if mgr.note_arrival(arr.member, arr.gen, arr.records, arr.seen):
        _distribute_departures(node0, sproc)


def _distribute_departures(node0: TmkNode, proc) -> None:
    """Send departures to every member; runs on whichever processor-0
    context (main or server) observed the final arrival."""
    mgr: BarrierManager = node0.world.barrier_mgr
    model = node0.model
    departures = mgr.departures()
    for member in range(node0.nprocs):
        if member == 0:
            continue
        dep = BarrierDepart(gen=mgr.gen - 1, records=departures[member])
        node0.net.send(proc, 0, member, dep, tag=TAG_BARRIER_DEP,
                       nbytes=dep.nbytes(model), category="sync")
    # processor 0's own departure is local
    if mgr._local_waiting is not None:
        mgr._local_depart = departures[0]
        waiter = mgr._local_waiting
        mgr._local_waiting = None
        node0.env.sim.unpark(waiter)
    else:
        # processor 0's main is the final arriver and is running right now
        node0.apply_records(departures[0], log=False)


# ---------------------------------------------------------------------- #
# locks

def lock_acquire(node: TmkNode, lock: int) -> None:
    """Acquire ``lock``; applies the releaser's consistency information."""
    world = node.world
    world.dsm_stats.lock_acquires += 1
    table: LockTable = world.lock_table
    proc = node.env.proc
    manager = table.manager_of(lock)

    if node.pid == manager:
        prev, after = table.note_request(lock, node.pid)
        if prev == node.pid:
            return   # re-acquire, no communication (token never left)
        # forward to the previous requester over the network
        world.dsm_stats.lock_remote_acquires += 1
        fwd = LockForward(lock=lock, requester=node.pid,
                          seen=node.seen.as_tuple(), after=after)
        node.net.send(proc, node.pid, prev, fwd, tag=TAG_TMK_REQ,
                      nbytes=fwd.nbytes(), category="sync")
    else:
        world.dsm_stats.lock_remote_acquires += 1
        req = LockReq(lock=lock, requester=node.pid,
                      seen=node.seen.as_tuple())
        node.net.send(proc, node.pid, manager, req, tag=TAG_TMK_REQ,
                      nbytes=req.nbytes(), category="sync")
    msg = node.net.recv(proc, node.pid, tag=TAG_LOCK_GRANT + lock)
    grant: LockGrant = msg.payload
    node.apply_records(grant.records, log=True)
    mon = getattr(world, "race_monitor", None)
    if mon is not None:
        mon.on_lock_acquire(node.pid, lock)


def lock_release(node: TmkNode, lock: int) -> None:
    """Release ``lock``.  Communication happens only if a request is queued."""
    table: LockTable = node.world.lock_table
    mon = getattr(node.world, "race_monitor", None)
    if mon is not None:
        # snapshot before note_release: a queued request may be granted
        # (and read this snapshot) inside the call below
        mon.on_lock_release(node.pid, lock)
    node.close_interval()
    due = table.note_release(node.pid, lock)
    if due is not None:
        requester, seen = due
        _send_grant(node, node.env.proc, lock, requester, seen)


def _send_grant(node: TmkNode, proc, lock: int, requester: int,
                seen: tuple) -> None:
    sv = SeenVector(node.nprocs)
    sv.v = list(seen)
    records = records_unknown_to(node.retained_log, sv)
    grant = LockGrant(lock=lock, records=records)
    mon = getattr(node.world, "race_monitor", None)
    if mon is not None:
        mon.on_grant_send(node.pid, lock, requester)
    node.net.send(proc, node.pid, requester, grant,
                  tag=TAG_LOCK_GRANT + lock, nbytes=grant.nbytes(node.model),
                  category="sync")


def holder_handle_forward(node: TmkNode, sproc, fwd: LockForward) -> None:
    """A previous requester's server receives a forwarded acquire.

    Served immediately if the tenure it follows has completed; otherwise
    queued and served by the corresponding release ("a lock release does
    not cause any communication" — unless a request is waiting)."""
    table: LockTable = node.world.lock_table
    sproc.hold(node.model.protocol_overhead)
    done = table.release_count.get((node.pid, fwd.lock), 0)
    if done >= fwd.after:
        _send_grant(node, sproc, fwd.lock, fwd.requester, fwd.seen)
    else:
        table.queued.setdefault((node.pid, fwd.lock), {})[fwd.after] = (
            fwd.requester, fwd.seen)


def manager_handle_lock_req(node: TmkNode, sproc, req: LockReq) -> None:
    """A lock's manager node processes an acquire request."""
    table: LockTable = node.world.lock_table
    sproc.hold(node.model.protocol_overhead)
    prev, after = table.note_request(req.lock, req.requester)
    if prev == req.requester:
        _send_grant_empty(node, sproc, req.lock, req.requester)
    elif prev == node.pid:
        # the manager itself is the previous requester: same tenure rule,
        # applied locally instead of through a forward message
        done = table.release_count.get((node.pid, req.lock), 0)
        if done >= after:
            _send_grant(node, sproc, req.lock, req.requester, req.seen)
        else:
            table.queued.setdefault((node.pid, req.lock), {})[after] = (
                req.requester, req.seen)
    else:
        fwd = LockForward(lock=req.lock, requester=req.requester,
                          seen=req.seen, after=after)
        node.net.send(sproc, node.pid, prev, fwd, tag=TAG_TMK_REQ,
                      nbytes=fwd.nbytes(), category="sync")


def _send_grant_empty(node: TmkNode, proc, lock: int, requester: int) -> None:
    grant = LockGrant(lock=lock, records=[])
    mon = getattr(node.world, "race_monitor", None)
    if mon is not None:
        # re-acquire by the last holder: the grant carries no new ordering
        mon._pending_grant[(lock, requester)] = None
    node.net.send(proc, node.pid, requester, grant,
                  tag=TAG_LOCK_GRANT + lock, nbytes=grant.nbytes(node.model),
                  category="sync")

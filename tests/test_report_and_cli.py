"""Tests for the compilation reports and the command-line interface."""

import pytest

from repro.cli import main
from repro.compiler.report import footprint_report, spf_report, xhpf_report
from repro.compiler.spf import SpfOptions
from tests.conftest import irregular_program, stencil_program, triangular_program


# ---------------------------------------------------------------------- #
# compilation reports

def test_spf_report_contents():
    text = spf_report(stencil_program(), nprocs=4)
    assert "SPF compilation report" in text
    assert "page-padded" in text
    assert "lock-protected shared scalar" in text
    assert "parallel stencil" in text
    assert "sequential 'init'" in text


def test_spf_report_reflects_options():
    text = spf_report(stencil_program(), nprocs=4,
                      options=SpfOptions(tree_reductions=True,
                                         fuse_loops=True))
    assert "combining tree" in text
    assert "tree-red" in text


def test_spf_report_shows_push_plan():
    text = spf_report(stencil_program(), nprocs=4,
                      options=SpfOptions(push_halos=True))
    assert "halo-push plan" in text
    assert "push a boundary rows" in text or "push a" in text


def test_spf_report_marks_irregular_units():
    text = spf_report(irregular_program(), nprocs=4)
    assert "on-demand element faults" in text


def test_xhpf_report_contents():
    text = xhpf_report(stencil_program(), nprocs=4)
    assert "owner-computes" in text
    assert "distributed BLOCK on dim 0" in text


def test_xhpf_report_flags_irregular_fallback():
    text = xhpf_report(irregular_program(), nprocs=4)
    assert "IRREGULAR" in text
    assert "broadcasts its whole partition" in text
    assert "accumulation buffers" in text


def test_xhpf_report_cyclic_distribution():
    text = xhpf_report(triangular_program(), nprocs=4)
    assert "CYCLIC" in text


def test_footprint_report():
    loop = next(iter(stencil_program().parallel_loops()))
    text = footprint_report(loop, 4, stencil_program())
    assert "p0:" in text and "p3:" in text
    assert "reads a" in text and "writes b" in text


def test_footprint_report_irregular():
    prog = irregular_program()
    loop = next(iter(prog.parallel_loops()))
    text = footprint_report(loop, 2, prog)
    assert "irregular (run-time footprint)" in text


# ---------------------------------------------------------------------- #
# CLI

def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jacobi" in out and "irregular" in out and "spf_old" in out


def test_cli_run(capsys):
    assert main(["run", "jacobi", "pvme", "-n", "2",
                 "--preset", "test"]) == 0
    out = capsys.readouterr().out
    assert "jacobi" in out and "speedup" in out
    assert "paper's 8-processor speedup" in out


def test_cli_run_dsm_prints_stats(capsys):
    assert main(["run", "jacobi", "tmk", "-n", "2", "--preset", "test"]) == 0
    out = capsys.readouterr().out
    assert "dsm:" in out


def test_cli_compare(capsys):
    assert main(["compare", "igrid", "-n", "2", "--preset", "test"]) == 0
    out = capsys.readouterr().out
    for variant in ("seq", "spf", "tmk", "xhpf", "pvme"):
        assert variant in out


def test_cli_explain(capsys):
    assert main(["explain", "nbf", "-n", "2", "--preset", "test"]) == 0
    out = capsys.readouterr().out
    assert "SPF compilation report" in out
    assert "XHPF compilation report" in out


def test_cli_explain_optimized(capsys):
    assert main(["explain", "jacobi", "--optimized", "-n", "2",
                 "--preset", "test"]) == 0
    out = capsys.readouterr().out
    assert "aggregate" in out


def test_cli_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "doom", "tmk"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------------------- #
# python -m repro lint

def test_cli_lint_single_app(capsys):
    assert main(["lint", "jacobi", "--no-traffic", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "jacobi" in out and "clean" in out


def test_cli_lint_strict_counts_warnings(capsys):
    # jacobi's test-size grid has sub-page chunks: false-sharing warnings
    assert main(["lint", "jacobi", "--no-traffic", "--quiet",
                 "--strict"]) == 1
    out = capsys.readouterr().out
    assert "warning" in out


def test_cli_lint_suppression_restores_strict(capsys):
    assert main(["lint", "jacobi", "--no-traffic", "--quiet", "--strict",
                 "--suppress", "false-sharing"]) == 0


def test_cli_lint_unknown_app(capsys):
    assert main(["lint", "doom"]) == 2
    assert "unknown application" in capsys.readouterr().err


def test_cli_lint_json_out(tmp_path, capsys):
    out_path = tmp_path / "lint.json"
    assert main(["lint", "jacobi", "--no-traffic", "--quiet",
                 "--out", str(out_path)]) == 0
    import json
    doc = json.loads(out_path.read_text())
    assert doc["ok"] is True and "jacobi" in doc["apps"]

"""Tests for the trace-based diagnostics (repro.tmk.diagnostics)."""

import numpy as np

from repro.tmk.api import tmk_run
from repro.tmk.diagnostics import (fault_summary, false_sharing_report,
                                   find_false_sharing, hot_pages)


def setup(space):
    space.alloc("x", (4, 1024), np.float32)    # 4 pages, one row each
    space.alloc("packed", (16, 256), np.float32)  # 4 rows per page


def test_no_false_sharing_on_page_aligned_partitions():
    def prog(tmk):
        x = tmk.array("x")
        x.write((slice(tmk.pid, tmk.pid + 1),), 1.0)   # own page only
        tmk.barrier()

    r = tmk_run(4, prog, setup, trace=True)
    assert find_false_sharing(r.trace) == {}
    assert "no false sharing" in false_sharing_report(r.trace)


def test_false_sharing_detected_on_packed_rows():
    def prog(tmk):
        packed = tmk.array("packed")
        # all four processors write different rows of the same first page
        packed.write((slice(tmk.pid, tmk.pid + 1),), float(tmk.pid))
        tmk.barrier()

    r = tmk_run(4, prog, setup, trace=True)
    shared = find_false_sharing(r.trace)
    assert len(shared) == 1
    (page, by_epoch), = shared.items()
    assert sorted(next(iter(by_epoch.values()))) == [0, 1, 2, 3]
    report = false_sharing_report(r.trace)
    assert f"page {page}" in report


def test_hot_pages_ranks_by_fetches():
    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((slice(0, 1),), 1.0)
        tmk.barrier()
        for _ in range(3):                      # page 0 fetched repeatedly
            if tmk.pid != 0:
                x.read((0, 0))
            tmk.barrier()
            if tmk.pid == 0:
                x.write((0, 0), float(tmk.now))
            tmk.barrier()

    r = tmk_run(3, prog, setup, trace=True)
    report = hot_pages(r.trace, top=2)
    assert "page 0" in report
    assert "fetches" in report


def test_hot_pages_empty_run():
    def prog(tmk):
        tmk.barrier()

    r = tmk_run(2, prog, setup, trace=True)
    assert hot_pages(r.trace) == "no remote fetches occurred"


def test_fault_summary_tabulates_per_processor():
    def prog(tmk):
        x = tmk.array("x")
        if tmk.pid == 0:
            x.write((slice(0, 4),), 2.0)
        tmk.barrier()
        if tmk.pid == 1:
            x.read()

    r = tmk_run(2, prog, setup, trace=True)
    table = fault_summary(r.trace)
    assert "p0" in table and "p1" in table
    assert "fetch" in table and "barrier" in table
    # p1 fetched all four pages of x
    p1_line = [l for l in table.splitlines() if l.startswith("p1")][0]
    assert " 4 " in p1_line or p1_line.split()[2] == "4"

"""The full option matrix over every application (test sizes).

Beyond the four paper variants (tests/test_apps_correctness.py), every SPF
extension and the XHPF inspector must preserve correctness on every
application it applies to — including apps with max/min reductions (IGrid)
and accumulation buffers (NBF).
"""

import pytest

from repro.apps.common import get_app, signatures_close
from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.xhpf import XhpfOptions, run_xhpf
from repro.eval.experiments import run_variant

APPS = ["jacobi", "shallow", "mgs", "fft3d", "igrid", "nbf"]

_seq = {}


def seq(app):
    if app not in _seq:
        _seq[app] = run_variant(app, "seq", preset="test")
    return _seq[app]


def run_app_spf(app, options, nprocs=4):
    spec = get_app(app)
    prog = spec.build_program(spec.params("test"))
    return run_spf(prog, nprocs=nprocs, options=options)


@pytest.mark.parametrize("app", APPS)
def test_tree_reductions_every_app(app):
    r = run_app_spf(app, SpfOptions(tree_reductions=True))
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), (
        app, r.scalars, seq(app).signature)


@pytest.mark.parametrize("app", APPS)
def test_push_halos_every_app(app):
    r = run_app_spf(app, SpfOptions(push_halos=True))
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), app


@pytest.mark.parametrize("app", APPS)
def test_balance_loops_every_app(app):
    r = run_app_spf(app, SpfOptions(balance_loops=True))
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), app


@pytest.mark.parametrize("app", APPS)
def test_everything_on_every_app(app):
    spec = get_app(app)
    base = (spec.spf_opt_options() if spec.spf_opt_options
            else SpfOptions())
    options = SpfOptions(
        improved_interface=True,
        aggregate=base.aggregate, fuse_loops=base.fuse_loops,
        piggyback=base.piggyback,
        tree_reductions=True, balance_loops=True, push_halos=True)
    r = run_app_spf(app, options)
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), app


@pytest.mark.parametrize("app", ["jacobi", "igrid"])
def test_old_interface_with_extensions(app):
    options = SpfOptions(improved_interface=False, tree_reductions=True)
    r = run_app_spf(app, options)
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), app


@pytest.mark.parametrize("app", APPS)
def test_xhpf_unsegmented_every_app(app):
    spec = get_app(app)
    prog = spec.build_program(spec.params("test"))
    r = run_xhpf(prog, nprocs=4,
                 options=XhpfOptions(segment_transfers=False))
    assert signatures_close(seq(app).signature, r.scalars, rtol=1e-6), app


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("nprocs", [5])
def test_awkward_processor_count_every_app(app, nprocs):
    """5 processors: nothing divides evenly anywhere."""
    r = run_variant(app, "spf", nprocs=nprocs, preset="test",
                    seq_time=seq(app).time)
    assert signatures_close(seq(app).signature, r.signature,
                            rtol=1e-6), app

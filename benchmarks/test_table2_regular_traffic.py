"""E3 — Table 2: message totals and data totals, regular applications.

Message counts for the TreadMarks variants land close to the paper's
absolute numbers when run at paper sizes (the protocol is the same one);
at the default bench preset the iteration scaling applies.  The asserted,
size-independent structure:

* SPF sends at least as many messages as hand-coded TreadMarks (fork-join
  overhead, shared scratch/control state),
* both DSM variants send more messages than PVMe,
* on Jacobi the DSM moves far *less data* than message passing (only
  modified words travel).
"""

from repro.eval.constants import PAPER, REGULAR_APPS
from repro.eval.tables import format_traffic_table

from conftest import all_variants, archive, runner  # noqa: F401


def test_table2(runner):
    results = runner(lambda: {app: all_variants(app)
                              for app in REGULAR_APPS})
    text = format_traffic_table(
        results, REGULAR_APPS,
        "Table 2 — Message Totals and Data Totals (KB), Regular Applications")
    archive("table2_regular_traffic", text)

    for app in REGULAR_APPS:
        msgs = {v: results[app][v].messages for v in ("spf", "tmk", "xhpf",
                                                      "pvme")}
        # SPF's extra messages versus hand-Tmk are mostly startup (outside
        # the timed window) — within it the counts are nearly equal
        assert msgs["spf"] >= 0.95 * msgs["tmk"], app
        assert msgs["tmk"] > msgs["pvme"], app
        assert msgs["spf"] > msgs["xhpf"], app

    jac = results["jacobi"]
    assert jac["tmk"].kilobytes < jac["pvme"].kilobytes
    assert jac["spf"].kilobytes < jac["xhpf"].kilobytes


def test_jacobi_message_counts_near_paper(runner):
    """At the paper's shapes the Jacobi DSM message counts are dominated by
    per-iteration structure (faults + barriers), so per-timed-iteration
    counts should match Table 2 closely (the paper times 100 iterations)."""
    results = runner(lambda: all_variants("jacobi"))
    from repro.apps.jacobi import PRESETS
    from conftest import PRESET
    iters = PRESETS[PRESET]["iters"]       # the measured window
    paper_iters = 100
    for variant in ("spf", "tmk", "pvme"):
        per_iter = results[variant].messages / iters
        paper_per_iter = PAPER["jacobi"].messages[variant] / paper_iters
        assert 0.7 * paper_per_iter < per_iter < 1.3 * paper_per_iter, (
            f"{variant}: {per_iter:.0f}/iter vs paper "
            f"{paper_per_iter:.0f}/iter")

"""Tests for the XHPF message-passing backend (repro.compiler.xhpf)."""

import numpy as np
import pytest

from repro.compiler.seq import run_sequential
from repro.compiler.xhpf import XhpfOptions, compile_xhpf, run_xhpf
from tests.conftest import irregular_program, stencil_program, triangular_program


def test_matches_sequential_stencil():
    _v, seq, _t = run_sequential(stencil_program())
    for n in (1, 2, 3, 4, 7):
        got = run_xhpf(stencil_program(), nprocs=n).scalars
        assert got["sum"] == pytest.approx(seq["sum"], rel=1e-6), f"n={n}"


def test_matches_sequential_irregular():
    _v, seq, _t = run_sequential(irregular_program())
    for n in (2, 4, 5):
        got = run_xhpf(irregular_program(), nprocs=n).scalars
        assert got["k"] == pytest.approx(seq["k"], rel=1e-12), f"n={n}"


def test_matches_sequential_triangular():
    from repro.apps.common import append_signature_loops
    views, _s, _t = run_sequential(triangular_program())
    expect = float(np.abs(views["v"]).sum(dtype=np.float64))
    prog = append_signature_loops(triangular_program(), ["v"])
    got = run_xhpf(prog, nprocs=4).scalars
    assert got["sig_v"] == pytest.approx(expect, rel=1e-5)


def test_regular_exchange_is_boundary_only():
    """Affine stencil: per loop instance each interior processor receives
    exactly its two halo lines — no broadcast-everything."""
    r = run_xhpf(stencil_program(iters=1), nprocs=4)
    # stencil loop: 6 halo messages (3 pairs x 2 directions); copy loop: 0;
    # plus 6 tiny reduce+broadcast messages for the scalar sum
    data_msgs = r.stats.by_category["data"][0]
    assert data_msgs == 12
    assert r.stats.bytes < 13000   # ~6 x 2 KB halo lines + scalar traffic


def test_irregular_loop_broadcasts_partitions():
    """Indirection triggers the broadcast-everything fallback."""
    r = run_xhpf(irregular_program(iters=2), nprocs=4)
    # per iteration: forces buffers (4x3 full-buffer messages) + pos
    # partition broadcasts (4x3) — far beyond the stencil's halo counts
    assert r.stats.by_category["data"][0] >= 2 * (12 + 12)


def test_sequential_block_executed_by_all():
    """SPMD: every processor charges the sequential block's cost."""
    from repro.compiler.ir import ArrayDecl, Program, SeqBlock

    prog = Program("p", arrays=[ArrayDecl("a", (4,))],
                   body=[SeqBlock("s", lambda v: None, cost=1.0)])
    r = run_xhpf(prog, nprocs=4)
    assert r.time >= 1.0
    assert all(t >= 1.0 for t in r.proc_times)


def test_owner_computes_alignment():
    exe = compile_xhpf(stencil_program(), nprocs=4)
    loop = next(iter(exe.program.parallel_loops()))
    lo, hi = exe.chunk_bounds(loop, 0)
    olo, ohi = exe.owned_rows(exe.decls["b"], 0)
    assert (lo, hi) == (olo, ohi)


def test_row_owner_block_and_cyclic():
    exe = compile_xhpf(triangular_program(), nprocs=4)
    decl = exe.decls["v"]
    assert exe.row_owner(decl, 5) == 1       # cyclic
    exe2 = compile_xhpf(stencil_program(), nprocs=4)
    assert exe2.row_owner(exe2.decls["a"], 0) == 0


def test_segmentation_matches_packet_size():
    """Transfers above 4 KB are split (the Table 3 data/message ratio)."""
    r_seg = run_xhpf(irregular_program(m=4096, iters=1), nprocs=2)
    r_ideal = run_xhpf(irregular_program(m=4096, iters=1), nprocs=2,
                       options=XhpfOptions(segment_transfers=False))
    assert r_seg.messages > r_ideal.messages
    assert r_seg.kilobytes == pytest.approx(r_ideal.kilobytes)


def test_scalars_allreduced_everywhere():
    r = run_xhpf(stencil_program(), nprocs=4)
    assert all(res == r.results[0] for res in r.results)


def test_deterministic_replay():
    a = run_xhpf(stencil_program(), nprocs=4)
    b = run_xhpf(stencil_program(), nprocs=4)
    assert (a.time, a.messages, a.kilobytes) == \
        (b.time, b.messages, b.kilobytes)

"""Evaluation harness: runs every variant of every application and
regenerates each table and figure of the paper (see DESIGN.md §4)."""

from repro.eval.chaos import ChaosCell, ChaosReport, chaos_sweep
from repro.eval.constants import PAPER, PaperNumbers
from repro.eval.experiments import (VariantResult, run_variant,
                                    run_all_variants, VARIANTS)
from repro.eval.racecheck import RacecheckReport, SeedRun, racecheck_app
from repro.eval.tables import (format_table1, format_speedup_figure,
                               format_traffic_table, format_comparison)

__all__ = [
    "ChaosCell",
    "ChaosReport",
    "chaos_sweep",
    "PAPER",
    "PaperNumbers",
    "VariantResult",
    "run_variant",
    "run_all_variants",
    "VARIANTS",
    "RacecheckReport",
    "SeedRun",
    "racecheck_app",
    "format_table1",
    "format_speedup_figure",
    "format_traffic_table",
    "format_comparison",
]

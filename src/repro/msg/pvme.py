"""PVMe-flavoured facade for the hand-coded message-passing programs.

PVMe is IBM's SP/2-optimized implementation of PVM [8].  The hand-coded
programs in the paper use a small subset — initialize, send/receive typed
array messages, broadcast, and reduce — which this facade exposes with
PVM-ish names over :class:`~repro.msg.endpoint.Comm`.  Sends are
unsegmented (PVMe moves a boundary column in a single message, which is
what makes the paper's Table 2 show exactly 1400 messages for Jacobi:
2 neighbours x 7 exchanges x 100 iterations).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.msg import collectives as coll
from repro.msg.endpoint import ANY_SOURCE, ANY_TAG, Comm
from repro.sim.cluster import ProcEnv

__all__ = ["Pvme"]


class Pvme:
    """Per-task handle, in the spirit of ``pvm_mytid``/``pvm_send``."""

    def __init__(self, env: ProcEnv):
        self.env = env
        self.comm = Comm(env, category="data", packet_bytes=None)
        self.tid = env.pid
        self.ntasks = env.nprocs

    # -- point to point ---------------------------------------------------

    def send(self, dst: int, payload: Any, tag: int = 0) -> None:
        self.comm.send(dst, payload, tag=tag)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        return self.comm.recv(src=src, tag=tag)

    def exchange(self, peer: int, payload: Any, tag: int = 0) -> Any:
        """Symmetric neighbour exchange (send then recv from the same peer)."""
        return self.comm.sendrecv(peer, payload, src=peer, tag=tag)

    # -- collectives --------------------------------------------------------

    def bcast(self, value: Any, root: int = 0) -> Any:
        return coll.bcast(self.comm, value, root=root)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Optional[Any]:
        return coll.reduce(self.comm, value, op, root=root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        return coll.allreduce(self.comm, value, op)

    def gather(self, value: Any, root: int = 0) -> Optional[list]:
        return coll.gather(self.comm, value, root=root)

    def allgather(self, value: Any) -> list:
        return coll.allgather(self.comm, value)

    def alltoall(self, values: list) -> list:
        return coll.alltoall(self.comm, values)

    def barrier(self) -> None:
        coll.mp_barrier(self.comm)

    # -- program support -----------------------------------------------------

    def compute(self, seconds: float) -> None:
        self.env.compute(seconds)

    def block_range(self, extent: int) -> tuple:
        base, rem = divmod(extent, self.ntasks)
        lo = self.tid * base + min(self.tid, rem)
        return lo, lo + base + (1 if self.tid < rem else 0)

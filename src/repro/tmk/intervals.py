"""Intervals, vector times, and write notices for lazy release consistency.

Execution of each processor is divided into *intervals*, delimited by its
synchronization operations.  An :class:`IntervalRecord` names the pages a
processor wrote during one of its intervals — one *write notice* per page.
A processor's knowledge of the global computation is its *seen vector*
``seen[p] = highest interval id of processor p it knows about``; interval
records always propagate in per-processor id order, so a vector of maxima is
a faithful vector timestamp.

At an acquire (barrier departure, lock grant, fork receipt) a processor
receives every interval record the releaser knows that it does not, and
invalidates its copies of the pages named — the "lazy invalidate" protocol
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["IntervalRecord", "SeenVector", "records_unknown_to",
           "notice_payload_nbytes"]


@dataclass(frozen=True)
class IntervalRecord:
    """Write notices for one closed interval of one processor.

    ``vtsum`` is the sum of the closing vector time.  For two intervals a, b
    with a happens-before b, ``vt_a <= vt_b`` componentwise and they differ,
    so ``vtsum_a < vtsum_b``: sorting modifications by ``(vtsum, proc)`` is a
    linear extension of happens-before, which is the order in which diffs
    must be merged (concurrent diffs touch disjoint words in race-free
    programs, so their relative order is immaterial).
    """

    proc: int
    id: int                 # per-processor interval counter, 1-based
    pages: tuple            # sorted page numbers written during the interval
    vtsum: int = 0          # sum of the closing vector time (merge order key)

    def __post_init__(self):
        if self.id < 1:
            raise ValueError("interval ids are 1-based")


class SeenVector:
    """``seen[p]`` = highest interval id of processor ``p`` this node knows."""

    __slots__ = ("v",)

    def __init__(self, nprocs: int):
        self.v = [0] * nprocs

    def copy(self) -> "SeenVector":
        out = SeenVector(len(self.v))
        out.v = list(self.v)
        return out

    def __getitem__(self, p: int) -> int:
        return self.v[p]

    def observe(self, rec: IntervalRecord) -> bool:
        """Advance for ``rec``; return True if the record was new.

        Records for a processor must arrive in id order (gaps indicate a
        protocol bug and raise).
        """
        cur = self.v[rec.proc]
        if rec.id <= cur:
            return False
        if rec.id != cur + 1:
            raise RuntimeError(
                f"interval gap for proc {rec.proc}: have {cur}, got {rec.id}")
        self.v[rec.proc] = rec.id
        return True

    def merge_max(self, other: "SeenVector") -> None:
        self.v = [max(a, b) for a, b in zip(self.v, other.v)]

    def dominates(self, other: "SeenVector") -> bool:
        return all(a >= b for a, b in zip(self.v, other.v))

    def as_tuple(self) -> tuple:
        return tuple(self.v)

    def __repr__(self) -> str:
        return f"SeenVector({self.v})"


def records_unknown_to(log: Iterable[IntervalRecord],
                       seen: "SeenVector") -> list[IntervalRecord]:
    """Records from ``log`` with ids beyond ``seen``, in (proc, id) order.

    Sorting by id per processor preserves the in-order delivery invariant
    that :meth:`SeenVector.observe` checks.
    """
    out = [r for r in log if r.id > seen[r.proc]]
    out.sort(key=lambda r: (r.proc, r.id))
    return out


def page_runs(pages: tuple) -> int:
    """Number of maximal runs of consecutive page ids in a sorted tuple."""
    if not pages:
        return 0
    runs = 1
    for a, b in zip(pages, pages[1:]):
        if b != a + 1:
            runs += 1
    return runs


def notice_payload_nbytes(records: list, header_bytes: int,
                          notice_bytes: int) -> int:
    """Wire size of a batch of interval records.

    Write notices are encoded as runs of consecutive pages (a block
    partition's whole write set is one run), which is what keeps barrier
    traffic small in TreadMarks — e.g. the paper's Table 2 shows only 862 KB
    total data for hand-coded Jacobi across 16,800 messages.
    """
    return sum(header_bytes + notice_bytes * page_runs(r.pages)
               for r in records)

"""Unit + property tests for the shared address space (repro.tmk.pagespace)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.machine import PAGE_SIZE
from repro.tmk.pagespace import (ArrayHandle, SharedSpace, normalize_region,
                                 region_nbytes)


def test_alloc_page_aligned():
    space = SharedSpace()
    a = space.alloc("a", (10,), np.float32)
    b = space.alloc("b", (10,), np.float32)
    assert a.offset == 0
    assert b.offset == PAGE_SIZE          # padded to the next page
    assert space.npages == 2


def test_alloc_unpadded_packs():
    space = SharedSpace()
    space.alloc("a", (10,), np.float32)
    b = space.alloc("b", (10,), np.float32, pad_to_page=False)
    assert b.offset == 40                  # right after a


def test_duplicate_name_rejected():
    space = SharedSpace()
    space.alloc("a", (4,), np.float32)
    with pytest.raises(ValueError):
        space.alloc("a", (4,), np.float32)


def test_bad_shape_rejected():
    space = SharedSpace()
    with pytest.raises(ValueError):
        space.alloc("z", (0, 4), np.float32)


def test_handle_properties():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)   # 16 KB = 4 pages
    assert h.nbytes == 16 * 256 * 4
    assert h.first_page == 0
    assert h.last_page == 3
    assert list(h.pages()) == [0, 1, 2, 3]
    assert space["m"] is h
    assert "m" in space and "q" not in space


def test_region_pages_full_array():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    assert h.region_pages((slice(None), slice(None))).tolist() == [0, 1, 2, 3]


def test_region_pages_contiguous_rows():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)   # row = 1 KB, 4 rows/page
    assert h.region_pages((slice(0, 4),)).tolist() == [0]
    assert h.region_pages((slice(4, 8),)).tolist() == [1]
    assert h.region_pages((slice(3, 5),)).tolist() == [0, 1]


def test_region_pages_column_slice_touches_every_row_page():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    pages = h.region_pages((slice(None), slice(0, 4))).tolist()
    assert pages == [0, 1, 2, 3]   # strided over all pages


def test_region_pages_int_index():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    assert h.region_pages((8,)).tolist() == [2]
    assert h.region_pages((-1,)).tolist() == [3]


def test_region_pages_empty_region():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    assert h.region_pages((slice(4, 4),)).size == 0


def test_region_pages_3d_middle_slice():
    space = SharedSpace()
    h = space.alloc("c", (4, 8, 128), np.float64)  # 32 KB = 8 pages
    # (Full, Span, Full): strided runs of 2*128*8 = 2 KB every 8 KB
    pages = h.region_pages((slice(None), slice(0, 2), slice(None))).tolist()
    assert pages == [0, 2, 4, 6]


def test_element_pages_scattered():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    # element 0 -> page 0; element 1024 (row 4) -> page 1
    assert h.element_pages([0, 4 * 256]).tolist() == [0, 1]


def test_element_pages_with_span():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    # a whole-row span starting at row 3 crosses into page 1
    assert h.element_pages([3 * 256], elem_span=512).tolist() == [0, 1]


def test_element_pages_empty():
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    assert h.element_pages([]).size == 0


def test_normalize_region_variants():
    shape = (8, 8)
    assert normalize_region((slice(None),), shape) == ((0, 8), (0, 8))
    assert normalize_region((2,), shape) == ((2, 3), (0, 8))
    assert normalize_region((-1, slice(1, 3)), shape) == ((7, 8), (1, 3))
    assert normalize_region((slice(5, 99),), shape) == ((5, 8), (0, 8))


def test_normalize_region_rejects_strides_and_bad_rank():
    with pytest.raises(ValueError):
        normalize_region((slice(0, 8, 2),), (8,))
    with pytest.raises(ValueError):
        normalize_region((1, 2, 3), (8, 8))
    with pytest.raises(IndexError):
        normalize_region((9,), (8,))


def test_region_nbytes():
    assert region_nbytes((slice(0, 4), slice(0, 8)), (16, 256), 4) == 128
    assert region_nbytes((3,), (16, 256), 4) == 1024


@settings(max_examples=80, deadline=None)
@given(
    rows=st.integers(1, 24),
    cols=st.integers(1, 300),
    r0=st.integers(0, 23),
    r1=st.integers(0, 24),
    c0=st.integers(0, 299),
    c1=st.integers(0, 300),
)
def test_region_pages_matches_bruteforce(rows, cols, r0, r1, c0, c1):
    """The vectorized page math equals element-by-element enumeration."""
    r0, r1 = min(r0, rows - 1), min(r1, rows)
    c0, c1 = min(c0, cols - 1), min(c1, cols)
    space = SharedSpace()
    space.alloc("pad", (3,), np.float64)   # shift offsets off zero
    h = space.alloc("m", (rows, cols), np.float32)
    got = h.region_pages((slice(r0, r1), slice(c0, c1))).tolist()
    expect = set()
    for r in range(r0, r1):
        for c in range(c0, c1):
            byte = h.offset + (r * cols + c) * 4
            expect.add(byte // PAGE_SIZE)
            expect.add((byte + 3) // PAGE_SIZE)
    assert got == sorted(expect)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 16 * 256 - 1), max_size=40),
       st.integers(1, 300))
def test_element_pages_matches_bruteforce(indices, span):
    space = SharedSpace()
    h = space.alloc("m", (16, 256), np.float32)
    got = h.element_pages(indices, elem_span=span).tolist()
    expect = set()
    for idx in indices:
        lo = h.offset + idx * 4
        hi = lo + span * 4 - 1
        expect.update(range(lo // PAGE_SIZE, hi // PAGE_SIZE + 1))
    assert got == sorted(expect)

"""The one code path from :class:`RunRequest` to :class:`RunResult`.

Every entry point — ``repro run``/``compare``/``figures``, the sweep and
chaos harnesses, the bench kernels, the deprecated ``run_variant`` shim,
and every :mod:`repro.serve` worker process — funnels through
:func:`execute`.  It owns variant dispatch (spf family, xhpf family,
hand-coded tmk/pvme, the sequential oracle, and the analytic ``model``
mode) and the **compiled-program cache**: repeated requests with the same
:meth:`RunRequest.cache_key` skip IR building, footprint lowering and
codegen, which is where the run service gets its repeat-throughput.

What is cached (per :class:`ProgramCache`, i.e. per process/worker):

* spf family — the built :class:`~repro.compiler.ir.Program` and the
  compiled :class:`~repro.compiler.spf.SpfExecutable` (codegen reuse
  across runs is the established pattern of the chaos/racecheck
  harnesses, which compile once and run per seed);
* xhpf family — the built program and :class:`XhpfExecutable`
  (inspector-executor schedules live in per-run state, so the executable
  itself is reusable);
* tmk / pvme / seq / model — the built program (hand-coded variants have
  no codegen step; the model replays its replica per run);
* the sequential oracle's window time, keyed ``(app, preset)`` — shared
  by every variant of an app, so one batch computes it once per worker.

A cache hit/miss verdict is recorded on each result (``cache_hit``), and
the cache keeps running totals — the service aggregates both into
:class:`~repro.api.types.BatchResult` and the e2e tests assert them.
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict
from typing import Iterable, Optional

from repro.api import registry
from repro.api.types import (RunRequest, RunResult, _replace,
                             fault_plan_from_doc, machine_from_doc)

__all__ = ["ProgramCache", "execute", "run", "run_batch_inprocess"]


class ProgramCache:
    """LRU cache of prepared (built/compiled) programs, with counters.

    One instance per process: executables close over numpy arrays and
    kernels, so they never cross process boundaries — each serve worker
    owns one, and the in-process batch helpers share one.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key, build):
        """Return ``build()``'s value for ``key``, memoized LRU."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = build()
            self._entries[key] = value
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value, False
        self.hits += 1
        self._entries.move_to_end(key)
        return value, True

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}


def _validate(request: RunRequest) -> None:
    if request.variant not in registry.VARIANTS:
        raise ValueError(f"unknown variant {request.variant!r} "
                         f"(choose from {', '.join(registry.VARIANTS)})")
    reason = registry.supports(request.app, request.variant)
    if reason:
        raise ValueError(reason)
    if request.racecheck and request.variant not in registry.DSM_VARIANTS:
        raise ValueError(
            f"racecheck applies to the DSM variants "
            f"{registry.DSM_VARIANTS}, not {request.variant!r} "
            f"(message-passing variants have no shared memory)")
    if request.readback and request.variant not in registry.DSM_VARIANTS:
        raise ValueError(
            f"readback applies to the DSM variants "
            f"{registry.DSM_VARIANTS}, not {request.variant!r} "
            f"(only shared arrays have coherent contents to read back)")
    if request.readback and request.mode != "sim":
        raise ValueError("readback requires mode='sim' "
                         "(the analytic model has no arrays)")


def _spf_options(spec, request: RunRequest):
    from repro.compiler.spf import SpfOptions

    if request.variant == "spf_opt":
        return spec.spf_opt_options()
    if request.variant == "spf_old":
        base = {"improved_interface": False}
    else:
        base = {}
    if request.options:
        base.update(request.options)
    return SpfOptions(**base)


def _xhpf_options(request: RunRequest):
    from repro.compiler.xhpf import XhpfOptions

    base = {"inspector_executor": request.variant == "xhpf_ie"}
    if request.options:
        base.update(request.options)
    return XhpfOptions(**base)


def _seq_time_for(request: RunRequest, cache: ProgramCache) -> float:
    """The oracle's window time, cached per (app, preset)."""
    if request.seq_time is not None:
        return request.seq_time

    def build():
        from repro.compiler.seq import sequential_time
        spec = registry._specs()[request.app]
        return sequential_time(spec.build_program(spec.params(
            request.preset)))

    value, _hit = cache.get(("seq_time", request.app, request.preset), build)
    return value


def _prepare(request: RunRequest, cache: ProgramCache):
    """(prepared bundle, cache_hit) for the request's cache key."""
    spec = registry._specs()[request.app]
    params = spec.params(request.preset)     # KeyError on unknown preset

    def build():
        if request.mode == "model" or request.variant in ("seq", "tmk",
                                                          "pvme"):
            return {"spec": spec, "params": params,
                    "program": (spec.build_program(params)
                                if request.variant not in ("tmk", "pvme")
                                else None)}
        program = spec.build_program(params)
        if request.variant == "spf_spec":
            from repro.compiler.spf_spec import compile_spf_spec
            exe = compile_spf_spec(program, request.nprocs,
                                   _spf_options(spec, request))
        elif request.variant in ("spf", "spf_opt", "spf_old"):
            from repro.compiler.spf import compile_spf
            exe = compile_spf(program, request.nprocs,
                              _spf_options(spec, request))
        else:
            from repro.compiler.xhpf import compile_xhpf
            exe = compile_xhpf(program, request.nprocs,
                               _xhpf_options(request))
        return {"spec": spec, "params": params, "program": program,
                "exe": exe}

    return cache.get(request.cache_key(), build)


def _seq_result(request: RunRequest, bundle) -> RunResult:
    from repro.compiler.seq import run_sequential

    _views, scalars, time = run_sequential(bundle["program"])
    return RunResult(app=request.app, variant="seq", nprocs=1,
                     preset=request.preset, time=time, seq_time=time,
                     messages=0, kilobytes=0.0, signature=dict(scalars),
                     mode=request.mode)


def _execute_model(request: RunRequest, cache: ProgramCache,
                   hit: bool) -> RunResult:
    from repro.compiler.model import model_variant

    seq_time = (None if request.variant == "seq"
                else _seq_time_for(request, cache))
    res = model_variant(request.app, request.variant,
                        nprocs=request.nprocs, preset=request.preset,
                        machine=machine_from_doc(request.machine),
                        seq_time=seq_time, gc_epochs=request.gc_epochs)
    return _replace(res, tag=request.tag, cache_hit=hit)


def _wrap_readback(body):
    """The racecheck harness's coherent-readback wrapper (lazy import:
    the harness imports apps/compilers this module must not pull in at
    import time)."""
    from repro.eval.racecheck import _wrap_with_readback
    return _wrap_with_readback(body)


def _unwrap_readback(result):
    """Split a readback-wrapped run into per-pid outputs + array hashes."""
    from repro.eval.racecheck import _hash
    parts = [out for out, _arrays in result.results]
    _out0, arrays = result.results[0]
    return parts, {name: _hash(a) for name, a in sorted(arrays.items())}


def _execute_sim(request: RunRequest, cache: ProgramCache,
                 bundle, hit: bool) -> RunResult:
    from repro.apps.common import combine_signatures

    spec, params = bundle["spec"], bundle["params"]
    machine = machine_from_doc(request.machine)
    faults = fault_plan_from_doc(request.fault_plan)

    if request.variant == "seq":
        return _replace(_seq_result(request, bundle), tag=request.tag,
                        cache_hit=hit)

    seq_time = _seq_time_for(request, cache)
    array_hashes = None
    speculation = None

    if request.variant in ("spf", "spf_opt", "spf_old", "spf_spec"):
        from repro.tmk.api import tmk_run
        exe = bundle["exe"]
        main = _wrap_readback(exe.run_on) if request.readback else exe.run_on
        # spf_spec's misspeculation detector IS the race monitor: force it
        # on so UNKNOWN loops speculate instead of degrading to serial
        racecheck = request.racecheck or request.variant == "spf_spec"
        result = tmk_run(request.nprocs, main, exe.setup_space,
                         model=machine, gc_epochs=request.gc_epochs,
                         schedule_seed=request.schedule_seed,
                         racecheck=racecheck, faults=faults)
        if request.readback:
            parts, array_hashes = _unwrap_readback(result)
            result.scalars = parts[0]
        else:
            result.scalars = result.results[0]
        signature = dict(result.scalars)
        dsm = result.dsm_stats
        speculation = getattr(exe, "last_spec_stats", None)
    elif request.variant in ("xhpf", "xhpf_ie"):
        from repro.sim.cluster import Cluster
        exe = bundle["exe"]
        cluster = Cluster(nprocs=request.nprocs, model=machine,
                          schedule_seed=request.schedule_seed, faults=faults)
        result = cluster.run(exe.run_on)
        result.scalars = result.results[0]
        result.fault_stats = cluster.net.fault_stats
        signature = dict(result.scalars)
        dsm = None
    elif request.variant == "tmk":
        from repro.tmk.api import tmk_run

        def setup(space):
            spec.hand_tmk_setup(space, params)

        def main(tmk):
            return spec.hand_tmk(tmk, params)

        if request.readback:
            main = _wrap_readback(main)
        result = tmk_run(request.nprocs, main, setup, model=machine,
                         gc_epochs=request.gc_epochs,
                         schedule_seed=request.schedule_seed,
                         racecheck=request.racecheck, faults=faults)
        if request.readback:
            parts, array_hashes = _unwrap_readback(result)
        else:
            parts = result.results
        signature = combine_signatures(parts)
        dsm = result.dsm_stats
    else:                                     # pvme
        from repro.msg.pvme import Pvme
        from repro.sim.cluster import Cluster
        cluster = Cluster(nprocs=request.nprocs, model=machine,
                          schedule_seed=request.schedule_seed, faults=faults)

        def pvme_main(env):
            return spec.hand_pvme(Pvme(env), params)

        result = cluster.run(pvme_main)
        result.fault_stats = cluster.net.fault_stats
        signature = combine_signatures(result.results)
        dsm = None

    elapsed, wtraffic = result.window()
    return RunResult(
        app=request.app, variant=request.variant, nprocs=request.nprocs,
        preset=request.preset, time=elapsed, seq_time=seq_time,
        messages=wtraffic.messages, kilobytes=wtraffic.kilobytes,
        signature=signature, dsm=dsm,
        total_messages=result.messages,
        total_kilobytes=result.kilobytes,
        categories={k: (v[0], v[1])
                    for k, v in wtraffic.by_category.items()},
        races=(getattr(result, "racecheck", None)
               if request.racecheck else None),
        array_hashes=array_hashes,
        speculation=speculation,
        events=getattr(result, "events", 0),
        retransmissions=result.stats.retransmissions,
        acks=result.stats.acks,
        dup_suppressed=result.stats.dup_suppressed,
        fault_stats=getattr(result, "fault_stats", None),
        mode="sim", tag=request.tag, cache_hit=hit,
    )


def execute(request: RunRequest,
            cache: Optional[ProgramCache] = None) -> RunResult:
    """Run one request and return its result (raising on invalid input).

    ``cache`` persists compiled programs across calls; omit it for a
    one-shot run (a fresh throwaway cache — today's ``run_variant``
    behaviour).  Execution errors propagate as exceptions here; the serve
    worker layer is what converts them into structured failure results.
    """
    _validate(request)
    cache = cache if cache is not None else ProgramCache()
    t0 = _time.perf_counter()
    bundle, hit = _prepare(request, cache)
    if request.mode == "model":
        res = _execute_model(request, cache, hit)
    else:
        res = _execute_sim(request, cache, bundle, hit)
    return _replace(res, wall_s=round(_time.perf_counter() - t0, 6))


def run(request: RunRequest,
        cache: Optional[ProgramCache] = None) -> RunResult:
    """Alias of :func:`execute` (the friendlier public name)."""
    return execute(request, cache)


def run_batch_inprocess(requests: Iterable[RunRequest],
                        cache: Optional[ProgramCache] = None):
    """Serial in-process batch: yields results in request order.

    The serial counterpart of :meth:`repro.serve.RunService.run_batch` —
    one shared cache, no worker pool.  This is also the throughput
    harness's baseline when asked for a cached serial run.
    """
    cache = cache if cache is not None else ProgramCache()
    for request in requests:
        yield execute(request, cache)

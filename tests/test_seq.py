"""Tests for the sequential oracle (repro.compiler.seq)."""

import numpy as np
import pytest

from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Program, Reduction, SeqBlock, Span, TimeLoop)
from repro.compiler.seq import make_views, run_sequential, sequential_time
from tests.conftest import stencil_program, triangular_program


def test_make_views_zeroed_and_typed(stencil_prog):
    views = make_views(stencil_prog)
    assert set(views) == {"a", "b"}
    assert views["a"].dtype == np.float32
    assert views["a"].sum() == 0.0


def test_run_sequential_executes_kernels(stencil_prog):
    views, scalars, time = run_sequential(stencil_prog)
    assert views["a"][0, 0] == 1.0
    assert "sum" in scalars
    assert time > 0


def test_sequential_time_matches_run(stencil_prog):
    _views, _scalars, measured = run_sequential(stencil_prog)
    assert sequential_time(stencil_prog) == pytest.approx(measured)


def test_marks_restrict_measured_window():
    """Costs before Mark('start') do not count."""
    def kernel(views, lo, hi):
        return None

    loop = ParallelLoop("l", 4, kernel, cost_per_iter=1.0)
    prog = Program("p", arrays=[ArrayDecl("a", (4,))],
                   body=[loop, Mark("start"), loop, loop, Mark("stop")])
    assert sequential_time(prog) == pytest.approx(8.0)
    _v, _s, t = run_sequential(prog)
    assert t == pytest.approx(8.0)


def test_reductions_reset_per_instance():
    def kernel(views, lo, hi):
        return {"r": 1.0}

    loop = ParallelLoop("l", 4, kernel, reductions=[Reduction("r")])
    prog = Program("p", arrays=[ArrayDecl("a", (4,))],
                   body=[TimeLoop("t", 5, [loop])])
    _v, scalars, _t = run_sequential(prog)
    assert scalars["r"] == 1.0    # the last instance's value, not 5


def test_missing_partials_raise():
    loop = ParallelLoop("l", 4, lambda v, lo, hi: None,
                        reductions=[Reduction("r")])
    prog = Program("p", arrays=[ArrayDecl("a", (4,))], body=[loop])
    with pytest.raises(ValueError):
        run_sequential(prog)


def test_cyclic_loop_runs_full_range(triangular_prog):
    views, _s, _t = run_sequential(triangular_prog)
    v = views["v"].astype(np.float64)
    gram = v @ v.T
    assert np.allclose(gram, np.eye(v.shape[0]), atol=1e-4)


def test_accumulate_zeroed_per_instance():
    def kernel(views, lo, hi):
        views["acc"][lo:hi] += 1.0

    loop = ParallelLoop("l", 4, kernel, accumulate=["acc"],
                        writes=[Access("acc", (Span(),))],
                        merge_cost_per_iter=0.5)
    prog = Program("p", arrays=[ArrayDecl("acc", (4,), np.float64)],
                   body=[TimeLoop("t", 3, [loop])])
    views, _s, t = run_sequential(prog)
    assert views["acc"].tolist() == [1.0] * 4   # recomputed, not accumulated
    assert t == pytest.approx(3 * 0.5 * 4)       # merge cost charged


def test_seqblock_callable_cost():
    prog = Program("p", arrays=[ArrayDecl("a", (4,))],
                   body=[SeqBlock("s", lambda v: None,
                                  cost=lambda params: params["c"])],
                   params={"c": 2.5})
    assert sequential_time(prog) == 2.5

"""One helper every evaluation harness shares: run requests, maybe in
parallel, return results **in request order**.

``repro sweep``, ``repro chaos``, ``repro racecheck`` and ``repro
compare`` all retire grids of independent :class:`~repro.api.RunRequest`
runs.  :func:`run_requests` is their common submission path:

* ``jobs <= 1``, no ``service``, no ``fleet`` — the historical serial
  loop: one in-process :func:`~repro.api.execute` call after another
  through a single shared :class:`~repro.api.ProgramCache`.  Bit-for-bit
  the behaviour the harnesses had before they learned ``--jobs``;
* ``fleet`` (a list of ``"HOST:PORT"`` specs) — a batch through a
  temporary :class:`~repro.serve.FleetService` sharding across remote
  ``repro serve --tcp`` hosts;
* otherwise — a batch through a :class:`~repro.serve.RunService` worker
  pool (a caller-supplied one, or a temporary ``workers=jobs`` pool torn
  down afterwards).  Both services stream completions in whatever order
  the scheduler produces; this helper reassembles them into request
  order, so a harness's rows/cells/tables are deterministic regardless
  of which worker — or host — finished first.

Results are the same ``repro-run/1`` documents either way — the service
path is bit-identical on the fingerprint contract, which is exactly what
``tests/test_scheduling.py`` and the CI parallel-sweep smoke assert.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.api.execute import ProgramCache, execute
from repro.api.types import RunRequest, RunResult

__all__ = ["run_requests"]


def _describe(request: RunRequest) -> str:
    return f"{request.app}/{request.variant} n={request.nprocs}"


def run_requests(requests: Iterable[RunRequest],
                 jobs: int = 1,
                 service=None,
                 fleet: Optional[list] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 describe: Optional[Callable[[RunRequest], str]] = None,
                 raise_on_error: bool = True) -> List[RunResult]:
    """Run ``requests``; return their results in request order.

    ``service`` takes precedence over ``fleet`` and ``jobs`` (reuse an
    existing pool — e.g. the throughput bench measures a sweep through
    its own service); ``fleet`` (``"HOST:PORT"`` specs) spins up a
    temporary :class:`~repro.serve.FleetService` over remote hosts;
    ``jobs > 1`` spins up a temporary :class:`~repro.serve.RunService`.
    ``progress`` is called with ``describe(request)`` per run — before
    each run when serial, on completion when parallel (completion order).
    ``raise_on_error=True`` turns any structured ``ok=False`` result
    into a ``RuntimeError`` naming the run, matching the serial path
    where execution errors propagate as exceptions; pass ``False`` for
    harnesses that record failures instead (chaos).
    """
    requests = list(requests)
    describe = describe or _describe

    if service is None and not fleet and jobs <= 1:
        cache = ProgramCache()
        results = []
        for request in requests:
            if progress:
                progress(describe(request))
            results.append(execute(request, cache))
    else:
        results = [None] * len(requests)
        own = None
        if service is None:
            if fleet:
                from repro.serve import FleetService
                service = own = FleetService(fleet)
            else:
                from repro.serve import RunService
                service = own = RunService(workers=jobs)
        try:
            for index, result in service.stream(requests):
                results[index] = result
                if progress:
                    progress(describe(requests[index]))
        finally:
            if own is not None:
                own.close()

    if raise_on_error:
        for request, result in zip(requests, results):
            if not result.ok:
                raise RuntimeError(
                    f"{describe(request)} failed in the worker pool: "
                    f"{result.error_kind}: {result.error}")
    return results

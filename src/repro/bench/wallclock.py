"""Wall-clock kernel timings, calibration, and the regression gate.

Kernels
-------
Five representative simulator workloads (8 simulated processors each):

* ``jacobi_spf``  — compiler-generated regular stencil (the ISSUE's 2x
  target kernel: barrier-per-iteration, large row regions)
* ``jacobi_tmk``  — the hand-coded variant of the same app
* ``shallow_spf_opt`` — fused multi-array loops with the paper's hand
  optimizations (push/aggregate heavy)
* ``igrid_spf``   — irregular indirection-array accesses (gather/scatter)
* ``fft3d_tmk``   — transpose-dominated all-to-all traffic

Each kernel reports wall seconds, simulator events processed, events/sec,
and the run's *virtual* metrics (time, messages, kilobytes) — the latter
are machine-independent and double as a behavioural fingerprint.

Calibration
-----------
Absolute wall-clock thresholds do not travel between machines.  The
harness therefore times a fixed pure-engine workload (two simulated
processes ping-ponging zero-length holds) and scales the committed
baseline by ``calibration_now / calibration_baseline`` before applying the
regression threshold.  The calibration workload exercises exactly the
simulator's dominant primitive (conductor handoffs plus Python dispatch),
so the ratio tracks machine speed for these kernels well.

Gate
----
``check_regression`` fails a kernel when its wall time exceeds the scaled
baseline by more than ``tolerance`` (default 25%) plus a small absolute
slack (timer noise floor for the millisecond-scale smoke kernels), and
*always* fails on
any virtual-metric mismatch — a vtime/messages/kilobytes drift means the
change altered simulated behaviour, which no wall-clock tolerance excuses.
"""

from __future__ import annotations

import json
import os
import time
from typing import Optional

__all__ = ["BENCH_KERNELS", "SMOKE_PRESET", "FULL_PRESET", "calibrate",
           "run_bench", "write_results", "load_baseline", "check_regression",
           "DEFAULT_RESULT_PATH", "DEFAULT_BASELINE_PATH"]

SCHEMA = "bench-wallclock/1"
FULL_PRESET = "bench"
SMOKE_PRESET = "test"

DEFAULT_RESULT_PATH = os.path.join("benchmarks", "results",
                                   "BENCH_wallclock.json")
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "results",
                                     "BENCH_baseline.json")

# (name, app, variant) — the canonical 5-kernel matrix lives in the
# registry so the throughput harness and this gate time the same workloads
from repro.api.registry import BENCH_MATRIX as BENCH_KERNELS  # noqa: E402

_CALIBRATION_EVENTS = 40_000

# Absolute wall slack added on top of the relative tolerance.  Smoke-preset
# kernels finish in tens of milliseconds, where scheduler/timer noise easily
# exceeds 25% of the measurement; a percentage alone makes the CI gate flaky.
_WALL_ABS_SLACK_S = 0.05


def calibrate() -> float:
    """Seconds for the fixed pure-engine calibration workload."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def ping() -> None:
        for _ in range(_CALIBRATION_EVENTS // 2):
            proc_a.hold(0.0)

    def pong() -> None:
        for _ in range(_CALIBRATION_EVENTS // 2):
            proc_b.hold(0.0)

    proc_a = sim.add_process("calib-a", ping)
    proc_b = sim.add_process("calib-b", pong)
    t0 = time.perf_counter()
    sim.run()
    return time.perf_counter() - t0


def _time_kernel(app: str, variant: str, nprocs: int, preset: str) -> dict:
    from repro.api.execute import execute
    from repro.api.types import RunRequest

    t0 = time.perf_counter()
    res = execute(RunRequest(app=app, variant=variant, nprocs=nprocs,
                             preset=preset,
                             seq_time=1.0))  # skip the sequential oracle:
    wall = time.perf_counter() - t0          # wall-clock times the sim only
    out = {
        "app": app,
        "variant": variant,
        "wall_s": round(wall, 4),
        "events": res.events,
        "events_per_s": round(res.events / wall) if wall > 0 else 0,
        "vtime": res.time,
        "messages": res.messages,
        "kilobytes": res.kilobytes,
    }
    if res.dsm is not None:
        out["fastpath_hits"] = res.dsm.fastpath_hits
        out["fastpath_misses"] = res.dsm.fastpath_misses
        out["region_cache_hits"] = res.dsm.region_cache_hits
        out["epoch_bumps"] = res.dsm.epoch_bumps
    return out


def run_bench(smoke: bool = False, nprocs: int = 8,
              only: Optional[list] = None, progress=None) -> dict:
    """Time every kernel; returns the result document (not yet written).

    ``smoke`` switches to the small ``test`` preset (a CI-sized run);
    ``only`` restricts to a subset of kernel names; ``progress`` is an
    optional callable fed one line per kernel.
    """
    preset = SMOKE_PRESET if smoke else FULL_PRESET
    calibration = calibrate()
    doc = {
        "schema": SCHEMA,
        "preset": preset,
        "nprocs": nprocs,
        "calibration_s": round(calibration, 4),
        "kernels": {},
    }
    for name, app, variant in BENCH_KERNELS:
        if only is not None and name not in only:
            continue
        entry = _time_kernel(app, variant, nprocs, preset)
        doc["kernels"][name] = entry
        if progress is not None:
            progress(f"{name:18s} wall={entry['wall_s']:8.3f}s "
                     f"events/s={entry['events_per_s']:>9,d} "
                     f"vtime={entry['vtime']:.6f} "
                     f"msgs={entry['messages']}")
    return doc


def write_results(doc: dict, path: str = DEFAULT_RESULT_PATH) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Optional[dict]:
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def check_regression(doc: dict, baseline: dict,
                     tolerance: float = 0.25) -> list:
    """Compare ``doc`` against ``baseline``; returns failure strings.

    Wall times are compared after scaling the baseline by the calibration
    ratio; virtual metrics must match exactly (they are machine
    -independent and fully deterministic).
    """
    failures: list = []
    if baseline.get("preset") != doc.get("preset"):
        return [f"baseline preset {baseline.get('preset')!r} does not match "
                f"run preset {doc.get('preset')!r}; not comparable"]
    base_cal = baseline.get("calibration_s") or 1.0
    scale = (doc.get("calibration_s") or base_cal) / base_cal
    for name, entry in doc["kernels"].items():
        base = baseline.get("kernels", {}).get(name)
        if base is None:
            continue
        for key in ("vtime", "messages", "kilobytes"):
            if entry[key] != base[key]:
                failures.append(
                    f"{name}: {key} changed {base[key]!r} -> {entry[key]!r} "
                    f"(simulated behaviour drifted; update the baseline "
                    f"only if the change is intended)")
        allowed = (base["wall_s"] * scale * (1.0 + tolerance)
                   + _WALL_ABS_SLACK_S)
        if entry["wall_s"] > allowed:
            failures.append(
                f"{name}: wall {entry['wall_s']:.3f}s exceeds "
                f"{allowed:.3f}s (baseline {base['wall_s']:.3f}s x "
                f"calibration {scale:.2f} x {1 + tolerance:.2f} "
                f"+ {_WALL_ABS_SLACK_S:.2f}s slack)")
    return failures

"""Speculative SPF: parallelize UNKNOWN loops, race-monitor as safety net.

The paper's compilers serialize any loop whose dependence test fails.
``spf_spec`` implements the CPF/Perspective recipe on top of the SPF
backend instead: the symbolic engine of :mod:`repro.compiler.depend`
classifies every loop, and the backend picks a policy per fork-join
dispatch unit —

* **PROVEN-PARALLEL** — dispatched exactly like plain SPF (no
  speculation cost);
* **PROVEN-SERIAL** — a confirmed loop-carried dependence: the master
  runs the whole iteration space itself, workers are never forked (what
  a strict compiler would have generated);
* **UNKNOWN** — *speculate*: the master checkpoints the unit's write-set
  arrays (a coherent read + copy of each), dispatches the loop in
  parallel as usual, and after the join asks the PR 1 happens-before
  race monitor whether any *true race* (word-granularity overlap between
  concurrent accesses) occurred among the events of this unit.  On a
  clean run the speculation commits with zero extra work beyond the
  checkpoint.  On misspeculation the master restores the checkpoint
  (its post-join writes supersede the workers' diffs under LRC) and
  re-executes the unit sequentially — the same fallback semantics as
  PROVEN-SERIAL, paid only when speculation actually fails.

Reduction scalars are reset to the identity again before a sequential
re-execution (the workers' partial folds are garbage after
misspeculation), and accumulate staging is rewritten wholesale (master's
row gets the full-space contributions, the other rows zero), so the
synthetic merge loop that follows still sums to the correct answer.

The backend *requires* an attached race monitor (``tmk_run(...,
racecheck=True)``); without one a speculative unit silently degrades to
the sequential policy — never to unchecked parallelism.
``exe.last_spec_stats`` records verdicts and per-run speculation
outcomes and is surfaced as ``RunResult.speculation`` by the run API.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.compiler import depend
from repro.compiler.ir import Program
from repro.compiler.spf import (REDUCTION_PREFIX, STAGING_PREFIX,
                                SpfExecutable, SpfOptions, _ensure_order)
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel
from repro.tmk.api import Tmk, tmk_run
from repro.tmk.pagespace import SharedSpace
from repro.tmk.racecheck import find_races

__all__ = ["SpfSpecExecutable", "compile_spf_spec", "run_spf_spec"]

CHECKPOINT_SOURCE = "__spec_ckpt"


class SpfSpecExecutable(SpfExecutable):
    """SPF with verdict-driven policies and speculative fallback."""

    def __init__(self, program: Program, options: SpfOptions, nprocs: int):
        if options.push_halos:
            # halo pushes pair producer/consumer units positionally; a
            # serialized producer would leave consumers waiting forever
            options = replace(options, push_halos=False)
        super().__init__(program, options, nprocs)
        self.depend_report = depend.analyze_program(program, nprocs,
                                                    options)
        self._verdict_cache: dict = {}
        self.unit_plans = [self._plan_unit(unit) for unit in self.units]
        self.last_spec_stats: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # compile-time policy

    def _verdict_of(self, loop) -> str:
        key = (loop.name, loop.start, loop.extent)
        if key not in self._verdict_cache:
            self._verdict_cache[key] = depend.analyze_loop(
                loop, self.program).verdict
        return self._verdict_cache[key]

    def _plan_unit(self, unit) -> Optional[str]:
        if not unit.loops:
            return None
        verdicts = [self._verdict_of(loop) for loop in unit.loops]
        if all(v == depend.PROVEN_PARALLEL for v in verdicts):
            return "parallel"
        if any(v == depend.PROVEN_SERIAL for v in verdicts):
            return "serial"
        return "speculate"

    def policy_summary(self) -> dict:
        """Loop families under each policy (compile-time view)."""
        out = {"parallel": [], "serial": [], "speculate": []}
        seen = set()
        for unit, plan in zip(self.units, self.unit_plans):
            if plan is None:
                continue
            for loop in unit.loops:
                fam = depend.tag_family(loop.name + ":")
                if fam not in seen:
                    seen.add(fam)
                    out[plan].append(fam)
        return out

    # ------------------------------------------------------------------ #
    # execution (master side; the worker loop is inherited unchanged)

    def _run_master(self, tmk: Tmk, fj, views: dict) -> dict:
        tmk._spf_scalars = {}
        monitor = getattr(tmk.world, "race_monitor", None)
        stats = {
            "verdicts": {fam: v.verdict for fam, v in
                         sorted(self.depend_report.verdicts.items())},
            "policies": self.policy_summary(),
            "speculations": 0, "commits": 0, "misspeculations": 0,
            "serial_instances": 0, "monitored": monitor is not None,
        }
        for idx, unit in enumerate(self.units):
            if unit.mark is not None:
                tmk.env.mark(unit.mark)
                continue
            if unit.seq is not None:
                self._run_seq(tmk, unit.seq, views)
                continue
            if not self.options.tree_reductions:
                for loop in unit.loops:
                    for red in loop.reductions:
                        shared = tmk.array(REDUCTION_PREFIX + red.name)
                        shared.write((slice(0, 1),), red.identity)
            plan = self.unit_plans[idx]
            if plan == "serial" or (plan == "speculate"
                                    and monitor is None):
                for loop in unit.loops:
                    self._run_full_loop(tmk, loop, views)
                stats["serial_instances"] += 1
                continue
            if plan == "speculate":
                self._run_unit_speculative(tmk, fj, idx, unit, views,
                                           monitor, stats)
                continue
            payload = self._build_piggyback(tmk, unit)
            head = unit.loops[0]
            fj.fork(idx, (float(head.start), float(head.extent)),
                    payload=payload)
            for loop in unit.loops:
                self._run_chunk(tmk, loop, views)
            fj.join()
        fj.shutdown()
        self.last_spec_stats = stats
        return self._read_scalars(tmk)

    def _unit_write_set(self, unit) -> list:
        """Arrays a speculative unit may write (staging excluded: its
        rows are per-processor private by construction)."""
        names = []
        for loop in unit.loops:
            staged = set(loop.accumulate)
            for acc in loop.writes:
                if acc.array not in staged and acc.array not in names:
                    names.append(acc.array)
        return names

    def _run_unit_speculative(self, tmk: Tmk, fj, idx: int, unit,
                              views: dict, monitor, stats: dict) -> None:
        tag = unit.loops[0].name
        snapshot = {}
        for name in self._unit_write_set(unit):
            handle = tmk.world.space[name]
            region = tuple(slice(0, s) for s in handle.shape)
            tmk.node.ensure_read(handle, region,
                                 source=f"{tag}:{CHECKPOINT_SOURCE}")
            snapshot[name] = views[name].copy()
        mark = len(monitor.events)
        payload = self._build_piggyback(tmk, unit)
        head = unit.loops[0]
        fj.fork(idx, (float(head.start), float(head.extent)),
                payload=payload)
        for loop in unit.loops:
            self._run_chunk(tmk, loop, views)
        fj.join()
        stats["speculations"] += 1
        verdict = find_races(monitor.events[mark:], space=tmk.world.space)
        if not verdict.true_races:
            stats["commits"] += 1
            return
        stats["misspeculations"] += 1
        # restore the checkpoint: the master's post-join writes dominate
        # every worker diff under LRC (join is an acquire of their
        # releases), so readers afterwards see the pre-loop state ...
        for name, saved in snapshot.items():
            handle = tmk.world.space[name]
            region = tuple(slice(0, s) for s in handle.shape)
            tmk.node.ensure_write(handle, region,
                                  source=f"{tag}:{CHECKPOINT_SOURCE}")
            views[name][...] = saved
        # ... the workers' partial reduction folds are garbage: restart
        # from the identity before the sequential re-execution folds the
        # full-space partials
        if not self.options.tree_reductions:
            for loop in unit.loops:
                for red in loop.reductions:
                    shared = tmk.array(REDUCTION_PREFIX + red.name)
                    shared.write((slice(0, 1),), red.identity)
        for loop in unit.loops:
            self._run_full_loop(tmk, loop, views)

    def _run_full_loop(self, tmk: Tmk, loop, views: dict) -> None:
        """The sequential policy: master executes the whole iteration
        space (workers are not involved and were never forked)."""
        if loop.accumulate:
            views = dict(views)
            privates = {}
            for name in loop.accumulate:
                decl = self.program.decl(name)
                privates[name] = views[name] = np.zeros(decl.shape,
                                                        dtype=decl.dtype)
        start, extent = loop.start, loop.extent
        if extent <= start:
            partials = None
            cost = 0.0
        elif loop.schedule == "cyclic":
            indices = np.arange(start, extent, dtype=np.int64)
            for acc in _ensure_order(loop.reads, loop.accumulate):
                self._ensure_cyclic(tmk, acc, indices, views,
                                    write=False, tag=loop.name)
            for acc in _ensure_order(loop.writes, loop.accumulate):
                self._ensure_cyclic(tmk, acc, indices, views,
                                    write=True, tag=loop.name)
            partials = loop.kernel(views, indices)
            cost = (sum(loop.cost_per_iter(int(i)) for i in indices)
                    if callable(loop.cost_per_iter)
                    else loop.cost_per_iter * indices.size)
        else:
            for acc in _ensure_order(loop.reads, loop.accumulate):
                self._ensure(tmk, acc, start, extent, views,
                             write=False, tag=loop.name)
            for acc in _ensure_order(loop.writes, loop.accumulate):
                self._ensure(tmk, acc, start, extent, views,
                             write=True, tag=loop.name)
            partials = loop.kernel(views, start, extent)
            cost = loop.chunk_cost(start, extent)
        if cost:
            tmk.compute(cost)
        if loop.accumulate:
            self._stage_full(tmk, loop, privates)
        if loop.reductions:
            self._fold_reductions(tmk, loop, partials)

    def _stage_full(self, tmk: Tmk, loop, privates: dict) -> None:
        """Sequential-policy staging: the master's row carries the whole
        contribution, every other processor's row is zeroed (wiping any
        stale or misspeculated chunk contributions)."""
        for name, buf in privates.items():
            handle = tmk.world.space[STAGING_PREFIX + name]
            source = f"{loop.name}:{STAGING_PREFIX}{name}"
            region = tuple(slice(0, s) for s in handle.shape)
            tmk.node.ensure_write(handle, region, source=source)
            staging = tmk.array(STAGING_PREFIX + name).raw()
            staging[0] = buf
            staging[1:] = 0
            self._prev_touched(tmk).pop((loop.name, name), None)


def compile_spf_spec(program: Program, nprocs: int = 8,
                     options: Optional[SpfOptions] = None
                     ) -> SpfSpecExecutable:
    return SpfSpecExecutable(program, options or SpfOptions(), nprocs)


def run_spf_spec(program: Program, nprocs: int = 8,
                 options: Optional[SpfOptions] = None,
                 model: Optional[MachineModel] = None,
                 gc_epochs: Optional[int] = 8,
                 schedule_seed: Optional[int] = None,
                 faults: Optional[FaultPlan] = None):
    """Compile and run with the race monitor attached (speculation needs
    its misspeculation detector); scalars land in ``result.scalars``."""
    exe = compile_spf_spec(program, nprocs, options)

    def setup(space: SharedSpace) -> None:
        exe.setup_space(space)

    def main(tmk: Tmk):
        return exe.run_on(tmk)

    result = tmk_run(nprocs, main, setup, model=model, gc_epochs=gc_epochs,
                     schedule_seed=schedule_seed, racecheck=True,
                     faults=faults)
    result.scalars = result.results[0]
    result.speculation = exe.last_spec_stats
    return result

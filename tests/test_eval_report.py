"""Tests for the report assembler (repro.eval.report) and its CLI hook."""

import pathlib

from repro.cli import main
from repro.eval.report import RESULT_ORDER, assemble_report


def test_assemble_from_directory(tmp_path):
    (tmp_path / "table1_sequential.txt").write_text("TABLE ONE CONTENT")
    (tmp_path / "custom_extra.txt").write_text("EXTRA CONTENT")
    text = assemble_report(tmp_path)
    assert "TABLE ONE CONTENT" in text
    assert "EXTRA CONTENT" in text
    assert "custom_extra" in text
    assert "*(not yet run)*" in text     # the missing experiments


def test_assemble_empty_directory(tmp_path):
    text = assemble_report(tmp_path)
    assert "not yet run" in text


def test_result_order_covers_design_index():
    names = {name for name, _title in RESULT_ORDER}
    # every experiment family from DESIGN.md's index appears
    for expected in ("table1_sequential", "fig1_regular_speedups",
                     "table2_regular_traffic", "fig2_irregular_speedups",
                     "table3_irregular_traffic", "sec23_interface",
                     "sec7_summary", "ext_scaling", "ext_inspector"):
        assert expected in names


def test_cli_report(tmp_path, capsys):
    (tmp_path / "sec7_summary.txt").write_text("SUMMARY RATIOS")
    assert main(["report", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "SUMMARY RATIOS" in out
    assert "# Reproduction report" in out


def test_default_directory_is_benchmarks_results():
    text = assemble_report()
    assert "benchmarks" in text


def test_report_includes_lint_badges():
    from repro.eval.lintreport import lint_registry
    summary = lint_registry(apps=["jacobi", "igrid"], nprocs=4)
    assert summary.ok
    text = summary.format()
    assert "jacobi" in text and "clean" in text
    # irregular apps are lint-clean but traffic-unanalyzable
    assert summary.badge("igrid").startswith("clean")
    assert "unanalyzable" in text


def test_assemble_report_has_lint_section(tmp_path):
    text = assemble_report(tmp_path)
    assert "## Static lint" in text

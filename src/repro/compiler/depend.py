"""Symbolic cross-iteration dependence engine and static race analysis.

The bounding-rectangle tests in :mod:`repro.compiler.analysis` answer
"may these two *chunks* touch the same element?" with a conservative
over-approximation.  This module answers the sharper compile-time
question — "may two *different iterations* of one loop touch the same
element?" — exactly, for the affine region language of the IR, and
builds three layers on the answer:

1. **Per-pair subscript tests** (:func:`pair_dependence`).  For two
   affine accesses to the same array, each dimension contributes an
   interval constraint on the iteration pair ``(i, j)`` or on the
   dependence distance ``d = j - i``:

   * ``Span(a_lo, a_hi)`` × ``Span(b_lo, b_hi)``:  iteration ``i``'s
     footprint is ``[i + a_lo, i + a_hi]`` (inclusive rows), so a shared
     element needs ``d ∈ [a_lo - b_hi, a_hi - b_lo]``;
   * ``Span`` × ``Point(c)``:  needs ``i ∈ [c - a_hi, c - a_lo]``
     (and symmetrically a ``j`` interval for ``Point`` × ``Span``);
   * ``Point(c1)`` × ``Point(c2)``:  ``c1 != c2`` kills the pair,
     equality constrains nothing;
   * ``Full`` constrains nothing.

   The conjunction over dimensions is a box over ``(i, j, d)``; the pair
   carries a cross-iteration dependence iff the box intersected with the
   iteration space contains a point with ``d != 0``.  Distance/direction
   vectors fall straight out of the feasible ``d`` interval.

2. **A verdict lattice per loop** (:func:`analyze_loop`):

   * ``PROVEN_PARALLEL`` — every conflicting pair's feasible set is
     empty (sound: the feasible set over-approximates reality because
     edge clipping only removes conflicts);
   * ``PROVEN_SERIAL`` — some pair has a *concretely confirmed* witness:
     the engine resolves both accesses at the candidate iterations
     through ``Access.resolve`` (which clips) and checks the rectangles
     really overlap, so a claim of serial is never an artifact of the
     un-clipped approximation;
   * ``UNKNOWN`` — anything the algebra cannot decide.  Any
     :class:`~repro.compiler.ir.Irregular` access or computed ``Point``
     puts the loop here, *never* in a PROVEN class; feasible-but-
     unconfirmed pairs do too.

   Reduction folding and accumulate-array staging are runtime-ordered
   (lock / private-buffer mechanisms), so those accesses are excluded
   from the pair tests — exactly like the fusion test does.

3. **May-happen-in-parallel over the sync IR** (:func:`mhp_pairs`) and
   the exact chunk-set algebra (:func:`chunk_sets`,
   :func:`loops_fusable_exact`) that replaces the bounding-interval
   over-approximation for cyclic schedules with residue-class
   (GCD/Diophantine) intersection tests.

Consumers: the speculative ``spf_spec`` backend
(:mod:`repro.compiler.spf_spec`), the ``repro lint`` barrier/false-
sharing rules, and the ``repro racecheck --cross-check`` harness, which
validates the static verdicts against the dynamic race detector.
:func:`inject_dependence` supports the latter's mutation tests: it
widens or adds *declared* footprints (kernels untouched) so a claimed
PROVEN-PARALLEL verdict must demonstrably flip.

See docs/DEPEND.md for the evidence format.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.compiler import analysis
from repro.compiler.ir import (Access, FootprintError, Full, Irregular,
                               ParallelLoop, Point, Program, Span, TimeLoop)

__all__ = ["PROVEN_PARALLEL", "PROVEN_SERIAL", "UNKNOWN",
           "Dependence", "LoopVerdict", "DependReport", "MhpPair",
           "Mutation", "pair_dependence", "analyze_loop", "analyze_program",
           "mhp_pairs", "Interval", "Strided", "dim_sets_intersect",
           "chunk_sets", "sets_conflict", "loops_fusable_exact",
           "eligible_mutation_targets", "inject_dependence", "tag_family"]

PROVEN_PARALLEL = "proven-parallel"
PROVEN_SERIAL = "proven-serial"
UNKNOWN = "unknown"

_SEVERITY = {PROVEN_PARALLEL: 0, UNKNOWN: 1, PROVEN_SERIAL: 2}


def _family(name: str) -> str:
    """Instance names like ``orthogonalize[3]`` share family
    ``orthogonalize`` (same convention as the lint pass)."""
    return name.split("[")[0]


def tag_family(tag: str) -> str:
    """Loop family of a race-monitor source tag ``"<unit name>:<array>"``."""
    return _family(tag.split(":")[0])


def _region_str(region) -> str:
    if isinstance(region, Irregular):
        return "irregular"
    parts = []
    for d in region:
        if isinstance(d, Span):
            parts.append(f"Span({d.lo_off:+d},{d.hi_off:+d})"
                         if (d.lo_off or d.hi_off) else "Span")
        elif isinstance(d, Full):
            parts.append("Full")
        elif isinstance(d, Point):
            parts.append("Point(fn)" if callable(d.index)
                         else f"Point({d.index})")
        else:
            parts.append(type(d).__name__)
    return "(" + ", ".join(parts) + ")"


# ---------------------------------------------------------------------- #
# per-pair subscript test

@dataclass(frozen=True)
class Dependence:
    """Evidence for one conflicting access pair of a loop.

    ``witness`` is a concrete conflicting iteration pair ``(i, j)``
    (``confirmed`` True means the resolved footprints at those iterations
    were checked to really overlap); ``distance_range`` is the feasible
    interval of ``d = j - i`` (0 excluded when it is an endpoint only).
    """

    array: str
    kind: str                       # flow | anti | output | possible
    access_a: str                   # region of the source (write) access
    access_b: str
    distance: Optional[int]         # confirmed distance, None if unconfirmed
    distance_range: tuple           # feasible (dmin, dmax)
    direction: str                  # "<" | ">" | "*"
    witness: Optional[tuple]        # (i, j) conflicting iterations
    confirmed: bool

    def describe(self) -> str:
        where = (f"iterations i={self.witness[0]}, j={self.witness[1]}"
                 if self.witness else "no confirmed iteration pair")
        dist = (f"distance {self.distance:+d}" if self.distance is not None
                else f"distance in [{self.distance_range[0]}, "
                     f"{self.distance_range[1]}]")
        return (f"{self.kind} dependence on {self.array!r}: "
                f"{self.access_a} vs {self.access_b}, {dist}, "
                f"direction {self.direction!r}, {where}")

    def as_doc(self) -> dict:
        return {"array": self.array, "kind": self.kind,
                "access_a": self.access_a, "access_b": self.access_b,
                "distance": self.distance,
                "distance_range": list(self.distance_range),
                "direction": self.direction,
                "witness": list(self.witness) if self.witness else None,
                "confirmed": self.confirmed}


def _point_value(dim: Point, extent: int) -> Optional[int]:
    if callable(dim.index):
        return None
    idx = dim.index
    return idx + extent if idx < 0 else idx


def _pair_box(acc_a: Access, acc_b: Access, loop: ParallelLoop,
              shape: tuple):
    """Constraint box over (i, j, d=j-i) for one ordered access pair.

    Returns ``("none", None)``, ``("unknown", reason)``, or
    ``("box", (ilo, ihi, jlo, jhi, dmin, dmax))`` with all bounds
    inclusive and the iteration space / d-range already folded in.
    """
    start, extent = loop.start, loop.extent
    n_iters = extent - start
    if n_iters <= 1:
        return "none", None
    ilo, ihi = start, extent - 1
    jlo, jhi = start, extent - 1
    dlo, dhi = -(n_iters - 1), n_iters - 1
    dims_a, dims_b = acc_a.region, acc_b.region
    for d in range(max(len(dims_a), len(dims_b))):
        da = dims_a[d] if d < len(dims_a) else Full()
        db = dims_b[d] if d < len(dims_b) else Full()
        if isinstance(da, Full) or isinstance(db, Full):
            continue
        if isinstance(da, Span) and isinstance(db, Span):
            dlo = max(dlo, da.lo_off - db.hi_off)
            dhi = min(dhi, da.hi_off - db.lo_off)
        elif isinstance(da, Span) and isinstance(db, Point):
            c = _point_value(db, shape[d])
            if c is None:
                return "unknown", f"computed Point index in dim {d}"
            ilo, ihi = max(ilo, c - da.hi_off), min(ihi, c - da.lo_off)
        elif isinstance(da, Point) and isinstance(db, Span):
            c = _point_value(da, shape[d])
            if c is None:
                return "unknown", f"computed Point index in dim {d}"
            jlo, jhi = max(jlo, c - db.hi_off), min(jhi, c - db.lo_off)
        elif isinstance(da, Point) and isinstance(db, Point):
            ca = _point_value(da, shape[d])
            cb = _point_value(db, shape[d])
            if ca is None or cb is None:
                return "unknown", f"computed Point index in dim {d}"
            if ca != cb:
                return "none", None
        else:
            return "unknown", (f"unsupported dim expression "
                               f"{type(da).__name__}/{type(db).__name__}")
    dmin = max(dlo, jlo - ihi)
    dmax = min(dhi, jhi - ilo)
    if ihi < ilo or jhi < jlo or dmax < dmin or (dmin == 0 == dmax):
        return "none", None
    return "box", (ilo, ihi, jlo, jhi, dmin, dmax)


def _confirm(acc_a: Access, acc_b: Access, i: int, j: int,
             shape: tuple) -> bool:
    """Do the *clipped* footprints at iterations i and j really overlap?"""
    try:
        ra = analysis.access_rect(acc_a, i, i + 1, shape)
        rb = analysis.access_rect(acc_b, j, j + 1, shape)
    except FootprintError:
        return False
    return (ra is not None and rb is not None
            and analysis.rects_overlap(ra, rb))


def pair_dependence(acc_a: Access, acc_b: Access, loop: ParallelLoop,
                    shape: tuple):
    """Exact cross-iteration test for one ordered affine access pair.

    Returns ``("none", None)`` when no two distinct iterations can touch
    a common element, ``("unknown", reason)`` when the algebra cannot
    decide, or ``("dep", info)`` with ``info`` a dict holding the
    feasible distance range and — when a candidate could be concretely
    confirmed — a witness ``(i, j)`` and its distance.
    """
    status, payload = _pair_box(acc_a, acc_b, loop, shape)
    if status != "box":
        return status, payload
    ilo, ihi, jlo, jhi, dmin, dmax = payload
    direction = "<" if dmin > 0 else (">" if dmax < 0 else "*")
    candidates = []
    for d in (1, -1, dmin, dmax):
        if dmin <= d <= dmax and d != 0 and d not in candidates:
            candidates.append(d)
    for d in candidates:
        wlo, whi = max(ilo, jlo - d), min(ihi, jhi - d)
        if whi < wlo:
            continue
        mid = (wlo + whi) // 2
        for i in dict.fromkeys((mid, wlo, whi)):
            if _confirm(acc_a, acc_b, i, i + d, shape):
                return "dep", {"distance": d, "witness": (i, i + d),
                               "range": (dmin, dmax),
                               "direction": "<" if d > 0 else ">",
                               "confirmed": True}
    return "dep", {"distance": None, "witness": None,
                   "range": (dmin, dmax), "direction": direction,
                   "confirmed": False}


# ---------------------------------------------------------------------- #
# per-loop verdicts

@dataclass
class LoopVerdict:
    """Static classification of one parallel loop (family)."""

    loop: str
    verdict: str
    dependences: list = field(default_factory=list)   # [Dependence]
    unknowns: list = field(default_factory=list)      # [reason str]
    schedule: str = "block"
    extent: int = 0
    start: int = 0
    instances: int = 1

    def as_doc(self) -> dict:
        return {"loop": self.loop, "verdict": self.verdict,
                "dependences": [d.as_doc() for d in self.dependences],
                "unknowns": list(self.unknowns),
                "schedule": self.schedule, "extent": self.extent,
                "start": self.start, "instances": self.instances}

    def explain(self) -> str:
        lines = [f"loop {self.loop!r}: {self.verdict.upper()} "
                 f"({self.schedule} schedule, iterations "
                 f"[{self.start}, {self.extent}), "
                 f"{self.instances} instance(s))"]
        for reason in self.unknowns:
            lines.append(f"  unknown: {reason}")
        for dep in self.dependences:
            lines.append(f"  {dep.describe()}")
        if not self.unknowns and not self.dependences:
            lines.append("  no feasible cross-iteration conflict "
                         "(all subscript pairs proved disjoint)")
        return "\n".join(lines)


def analyze_loop(loop: ParallelLoop, program: Program) -> LoopVerdict:
    """Classify one loop as PROVEN-PARALLEL / PROVEN-SERIAL / UNKNOWN."""
    unknowns, deps = [], []
    for acc in list(loop.reads) + list(loop.writes):
        if acc.irregular:
            unknowns.append(f"irregular access to {acc.array!r} "
                            f"(run-time footprint)")
    staged = set(loop.accumulate)
    writes = [a for a in loop.writes
              if not a.irregular and a.array not in staged]
    reads = [a for a in loop.reads
             if not a.irregular and a.array not in staged]
    pairs = [(wa, rb, "read") for wa in writes for rb in reads
             if wa.array == rb.array]
    pairs += [(writes[x], writes[y], "write")
              for x in range(len(writes)) for y in range(x, len(writes))
              if writes[x].array == writes[y].array]
    for wa, other, role in pairs:
        shape = program.decl(wa.array).shape
        status, info = pair_dependence(wa, other, loop, shape)
        if status == "none":
            continue
        if status == "unknown":
            unknowns.append(f"{wa.array!r} {_region_str(wa.region)} vs "
                            f"{_region_str(other.region)}: {info}")
            continue
        if role == "write":
            kind = "output"
        elif info["confirmed"]:
            kind = "flow" if info["distance"] > 0 else "anti"
        else:
            kind = "possible"
        deps.append(Dependence(
            array=wa.array, kind=kind,
            access_a=_region_str(wa.region),
            access_b=_region_str(other.region),
            distance=info["distance"], distance_range=info["range"],
            direction=info["direction"], witness=info["witness"],
            confirmed=info["confirmed"]))
    if unknowns:
        # An Irregular access or computed Point anywhere in the loop
        # forfeits both PROVEN classes (see docs/DEPEND.md).
        verdict = UNKNOWN
    elif any(d.confirmed for d in deps):
        verdict = PROVEN_SERIAL
    elif deps:
        verdict = UNKNOWN
    else:
        verdict = PROVEN_PARALLEL
    return LoopVerdict(loop=_family(loop.name), verdict=verdict,
                       dependences=deps, unknowns=unknowns,
                       schedule=loop.schedule, extent=loop.extent,
                       start=loop.start)


# ---------------------------------------------------------------------- #
# may-happen-in-parallel over the sync IR

@dataclass(frozen=True)
class MhpPair:
    """Two loop families whose chunks may execute concurrently."""

    a: str
    b: str
    why: str

    def as_doc(self) -> dict:
        return {"a": self.a, "b": self.b, "why": self.why}


def mhp_pairs(program: Program, nprocs: int = 8,
              options=None) -> list:
    """May-happen-in-parallel pairs under the fork-join sync structure.

    Every parallel loop's chunks run concurrently with themselves between
    fork and join; distinct statements are otherwise ordered by the
    implied barrier at every join — unless fusion (``fuse_loops``)
    eliminated the barrier, in which case the fused loops' chunks overlap
    across processors.  Reduction folds and accumulate staging never
    appear here: the lock (resp. the private per-processor staging row)
    orders them by construction.
    """
    pairs, seen = [], set()
    for stmt in program.flat_statements():
        if isinstance(stmt, ParallelLoop):
            fam = _family(stmt.name)
            if fam not in seen:
                seen.add(fam)
                pairs.append(MhpPair(fam, fam,
                                     "chunks of one fork-join dispatch "
                                     "run concurrently"))
    if options is not None and getattr(options, "fuse_loops", False):
        from repro.compiler.spf import compile_spf
        exe = compile_spf(program, nprocs, options)
        fused_seen = set()
        for unit in exe.units:
            loops = unit.loops or []
            for x in range(len(loops)):
                for y in range(x + 1, len(loops)):
                    key = (_family(loops[x].name), _family(loops[y].name))
                    if key[0] != key[1] and key not in fused_seen:
                        fused_seen.add(key)
                        pairs.append(MhpPair(
                            key[0], key[1],
                            "barrier eliminated by fusion: chunks of "
                            "both loops overlap across processors"))
    return pairs


# ---------------------------------------------------------------------- #
# whole-program report

@dataclass
class DependReport:
    """Verdicts for every loop family plus the MHP pairs."""

    program: str
    nprocs: int
    verdicts: dict                     # family -> LoopVerdict
    mhp: list = field(default_factory=list)

    def counts(self) -> dict:
        out = {PROVEN_PARALLEL: 0, PROVEN_SERIAL: 0, UNKNOWN: 0}
        for v in self.verdicts.values():
            out[v.verdict] += 1
        return out

    def as_doc(self) -> dict:
        return {"schema": "repro-depend/1", "program": self.program,
                "nprocs": self.nprocs, "counts": self.counts(),
                "verdicts": {fam: v.as_doc()
                             for fam, v in sorted(self.verdicts.items())},
                "mhp": [p.as_doc() for p in self.mhp]}

    def explain(self, family: Optional[str] = None) -> str:
        if family is not None:
            if family not in self.verdicts:
                known = ", ".join(sorted(self.verdicts))
                return (f"no parallel loop family {family!r} in "
                        f"{self.program!r} (known: {known})")
            lines = [self.verdicts[family].explain()]
            for p in self.mhp:
                if family in (p.a, p.b):
                    lines.append(f"  MHP with {p.b if p.a == family else p.a}"
                                 f": {p.why}")
            return "\n".join(lines)
        counts = self.counts()
        lines = [f"dependence report — {self.program!r}: "
                 f"{counts[PROVEN_PARALLEL]} proven-parallel, "
                 f"{counts[PROVEN_SERIAL]} proven-serial, "
                 f"{counts[UNKNOWN]} unknown"]
        for fam in sorted(self.verdicts):
            lines.append(self.verdicts[fam].explain())
        return "\n".join(lines)


def analyze_program(program: Program, nprocs: int = 8,
                    options=None) -> DependReport:
    """Analyze every parallel loop; per family, keep the worst instance.

    Loop instances of one family (``name[t]`` unrolled from a TimeLoop)
    can differ in ``start`` (mgs's triangular loops do), so each instance
    is analyzed and the family reports the weakest verdict seen
    (PROVEN-SERIAL > UNKNOWN > PROVEN-PARALLEL in severity).
    """
    verdicts: dict = {}
    for stmt in program.flat_statements():
        if not isinstance(stmt, ParallelLoop):
            continue
        fam = _family(stmt.name)
        v = analyze_loop(stmt, program)
        prev = verdicts.get(fam)
        if prev is None:
            verdicts[fam] = v
        else:
            prev.instances += 1
            if _SEVERITY[v.verdict] > _SEVERITY[prev.verdict]:
                v.instances = prev.instances
                verdicts[fam] = v
    return DependReport(program.name, nprocs, verdicts,
                        mhp_pairs(program, nprocs, options))


# ---------------------------------------------------------------------- #
# exact chunk sets (replacing the bounding-interval over-approximation)

@dataclass(frozen=True)
class Interval:
    """Half-open index interval ``[lo, hi)``."""

    lo: int
    hi: int

    @property
    def empty(self) -> bool:
        return self.hi <= self.lo


@dataclass(frozen=True)
class Strided:
    """Union of ``count`` blocks ``[start + k*step, start + k*step +
    width)`` — a cyclic chunk's exact footprint along a Span dimension."""

    start: int
    step: int
    count: int
    width: int

    @property
    def empty(self) -> bool:
        return self.count <= 0 or self.width <= 0


def _make_strided(start: int, step: int, count: int, width: int):
    if count <= 0 or width <= 0:
        return Interval(0, 0)
    if count == 1 or width >= step:
        return Interval(start, start + (count - 1) * step + width)
    return Strided(start, step, count, width)


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _ext_gcd(a: int, b: int):
    if b == 0:
        return a, 1, 0
    g, x, y = _ext_gcd(b, a % b)
    return g, y, x - (a // b) * y


def _diophantine_in_range(sa: int, sb: int, c: int,
                          m_count: int, n_count: int) -> bool:
    """Is there ``m in [0, m_count)``, ``n in [0, n_count)`` with
    ``m*sa - n*sb == c``?"""
    g, x, y = _ext_gcd(sa, sb)
    if c % g:
        return False
    scale = c // g
    m0, n0 = x * scale, -y * scale
    pa, pb = sb // g, sa // g         # m += pa, n += pb leaves c fixed
    t_lo = max(_ceil_div(-m0, pa), _ceil_div(-n0, pb))
    t_hi = min((m_count - 1 - m0) // pa, (n_count - 1 - n0) // pb)
    return t_lo <= t_hi


def dim_sets_intersect(a, b) -> bool:
    """Do two per-dimension index sets share an element?

    Empty sets intersect nothing (the same invariant as
    :func:`repro.compiler.analysis.rects_overlap`).  Strided × Strided
    reduces to a bounded linear Diophantine problem: block starts differ
    by ``m*step_a - n*step_b``, and two width-``w`` blocks overlap iff
    their starts differ by less than a width — so distinct residues
    modulo ``gcd(step_a, step_b)`` (e.g. different processors of one
    cyclic distribution) can be proved disjoint where the bounding
    interval says "maybe".
    """
    if isinstance(a, Interval) and isinstance(b, Interval):
        return max(a.lo, b.lo) < min(a.hi, b.hi)
    if isinstance(a, Interval):
        a, b = b, a
    if a.empty or b.empty:
        return False
    if isinstance(b, Interval):
        # block [start + k*step, ... + width) hits [b.lo, b.hi)?
        k_lo = max(0, _ceil_div(b.lo - a.width + 1 - a.start, a.step))
        k_hi = min(a.count - 1, (b.hi - 1 - a.start) // a.step)
        return k_lo <= k_hi
    # Strided × Strided: block-start difference delta = (a.start + m*sa)
    # - (b.start + n*sb) must satisfy -a.width < delta < b.width
    # (a's block reaches forward by a.width, b's by b.width).
    base = b.start - a.start
    for delta in range(-a.width + 1, b.width):
        if _diophantine_in_range(a.step, b.step, delta + base,
                                 a.count, b.count):
            return True
    return False


def chunk_sets(loop: ParallelLoop, which: str, pid: int, nprocs: int,
               program: Program) -> Optional[dict]:
    """``{array: [per-dim index-set tuples]}`` touched by ``pid``'s chunk.

    Exact for block chunks (contiguous iterations make contiguous Span
    footprints; ``Access.resolve`` clips them).  Cyclic chunks put a
    :class:`Strided` set on every Span dimension — deliberately
    *unclipped* at array edges and treated per-dimension independently,
    both over-approximations, which is the safe direction: every
    consumer uses these sets to prove the *absence* of a conflict.
    Returns ``None`` if any access is irregular.
    """
    accesses = getattr(loop, which)
    out: dict = {}
    chunk = analysis.loop_chunk(loop, pid, nprocs)
    cyclic = loop.schedule == "cyclic"
    if cyclic:
        if chunk.size == 0:
            return out
        first, last = int(chunk[0]), int(chunk[-1])
    else:
        lo, hi = chunk
        if hi <= lo:
            return out
    for acc in accesses:
        if acc.irregular:
            return None
        shape = program.decl(acc.array).shape
        if not cyclic:
            rect = analysis.access_rect(acc, lo, hi, shape)
            sets = tuple(Interval(rlo, rhi) for rlo, rhi in rect)
        else:
            dims = []
            for d, extent in enumerate(shape):
                expr = acc.region[d] if d < len(acc.region) else Full()
                if isinstance(expr, Span):
                    dims.append(_make_strided(
                        first + expr.lo_off, nprocs, len(chunk),
                        1 + expr.hi_off - expr.lo_off))
                elif isinstance(expr, Point):
                    c = expr.resolve(first, last + 1, extent)
                    dims.append(Interval(c, c + 1))
                else:                  # Full
                    dims.append(Interval(0, extent))
            sets = tuple(dims)
        out.setdefault(acc.array, []).append(sets)
    return out


def sets_conflict(a_sets: Optional[dict], b_sets: Optional[dict]) -> bool:
    """May two chunk footprints share an element?  Unknown → assume yes."""
    if a_sets is None or b_sets is None:
        return True
    for array, tuples_a in a_sets.items():
        tuples_b = b_sets.get(array)
        if not tuples_b:
            continue
        for ta in tuples_a:
            for tb in tuples_b:
                if all(dim_sets_intersect(da, db)
                       for da, db in zip(ta, tb)):
                    return True
    return False


def loops_fusable_exact(a: ParallelLoop, b: ParallelLoop, nprocs: int,
                        program: Program) -> bool:
    """Exact-set version of :func:`repro.compiler.analysis.loops_fusable`.

    Same contract and same conservative early-outs, but cyclic chunks use
    residue-class sets instead of bounding intervals, so e.g. two cyclic
    loops whose per-processor rows interleave are recognized as fusable.
    Never less precise than the rectangle test on block schedules (they
    compute identical sets there).
    """
    if a.irregular or b.irregular:
        return False
    if a.reductions or a.accumulate:
        return False
    was = [chunk_sets(a, "writes", p, nprocs, program)
           for p in range(nprocs)]
    ras = [chunk_sets(a, "reads", p, nprocs, program)
           for p in range(nprocs)]
    wbs = [chunk_sets(b, "writes", q, nprocs, program)
           for q in range(nprocs)]
    rbs = [chunk_sets(b, "reads", q, nprocs, program)
           for q in range(nprocs)]
    for p in range(nprocs):
        wa, ra = was[p], ras[p]
        for q in range(nprocs):
            if p == q:
                continue
            if (sets_conflict(wa, rbs[q]) or sets_conflict(wa, wbs[q])
                    or sets_conflict(ra, wbs[q])):
                return False
    return True


# ---------------------------------------------------------------------- #
# dependence-injection mutations (cross-check harness)

@dataclass(frozen=True)
class Mutation:
    """A declaration-only injected dependence (kernels untouched)."""

    seed: int
    family: str
    kind: str          # widen-write | read-back | add-write
    array: str

    def describe(self) -> str:
        what = {"widen-write": "widened a write Span by one row",
                "read-back": "added a one-behind read of a written array",
                "add-write": "declared a widened write over a read region"}
        return (f"seed {self.seed}: {what[self.kind]} on {self.array!r} "
                f"in loop {self.family!r}")

    def as_doc(self) -> dict:
        return {"seed": self.seed, "family": self.family,
                "kind": self.kind, "array": self.array}


def _span_dim_index(region) -> Optional[int]:
    if isinstance(region, Irregular):
        return None
    for d, expr in enumerate(region):
        if isinstance(expr, Span):
            return d
    return None


def eligible_mutation_targets(program: Program) -> list:
    """``(family, kind, array)`` triples where an injected dependence must
    flip a PROVEN-PARALLEL verdict."""
    report = analyze_program(program)
    out, seen = [], set()
    for stmt in program.flat_statements():
        if not isinstance(stmt, ParallelLoop):
            continue
        fam = _family(stmt.name)
        if fam in seen:
            continue
        seen.add(fam)
        if report.verdicts[fam].verdict != PROVEN_PARALLEL:
            continue
        staged = set(stmt.accumulate)
        for acc in stmt.writes:
            if (not acc.irregular and acc.array not in staged
                    and _span_dim_index(acc.region) is not None):
                out.append((fam, "widen-write", acc.array))
                out.append((fam, "read-back", acc.array))
                break
        for acc in stmt.reads:
            if (not acc.irregular and acc.array not in staged
                    and _span_dim_index(acc.region) is not None):
                out.append((fam, "add-write", acc.array))
                break
    return out


def _mutate_loop(loop: ParallelLoop, kind: str, array: str) -> ParallelLoop:
    def widen(acc: Access) -> Access:
        d = _span_dim_index(acc.region)
        span = acc.region[d]
        region = (acc.region[:d]
                  + (Span(span.lo_off, span.hi_off + 1),)
                  + acc.region[d + 1:])
        return Access(acc.array, region)

    def shift_back(acc: Access) -> Access:
        d = _span_dim_index(acc.region)
        span = acc.region[d]
        region = (acc.region[:d]
                  + (Span(span.lo_off - 1, span.hi_off - 1),)
                  + acc.region[d + 1:])
        return Access(acc.array, region)

    reads, writes = list(loop.reads), list(loop.writes)
    if kind == "widen-write":
        idx = next(i for i, a in enumerate(writes)
                   if a.array == array and not a.irregular
                   and _span_dim_index(a.region) is not None)
        writes[idx] = widen(writes[idx])
    elif kind == "read-back":
        src = next(a for a in writes
                   if a.array == array and not a.irregular
                   and _span_dim_index(a.region) is not None)
        reads.append(shift_back(src))
    elif kind == "add-write":
        src = next(a for a in reads
                   if a.array == array and not a.irregular
                   and _span_dim_index(a.region) is not None)
        writes.append(widen(src))
    else:
        raise ValueError(f"unknown mutation kind {kind!r}")
    return replace(loop, reads=reads, writes=writes)


def inject_dependence(program: Program, seed: int = 0):
    """Seeded declaration-only dependence injection.

    Picks one eligible ``(family, kind, array)`` target with a seeded
    PRNG and returns ``(mutated_program, Mutation)``.  The mutation only
    *widens or adds declared footprints* — kernels are untouched, so the
    mutated program still runs (and still passes the shadow sanitizer:
    over-declaration is legal) but its target loop now carries a genuine
    declared cross-iteration dependence that the static engine must
    refuse to call PROVEN-PARALLEL.
    """
    targets = eligible_mutation_targets(program)
    if not targets:
        raise ValueError(f"no mutation-eligible loop in {program.name!r}")
    family, kind, array = random.Random(seed).choice(targets)

    def rebuild(stmt):
        if isinstance(stmt, ParallelLoop) and _family(stmt.name) == family:
            return _mutate_loop(stmt, kind, array)
        if isinstance(stmt, TimeLoop):
            body = stmt.body
            if callable(body):
                new_body = (lambda t, _b=body:
                            [rebuild(s) for s in _b(t)])
            else:
                new_body = [rebuild(s) for s in body]
            return replace(stmt, body=new_body)
        return stmt

    mutated = replace(program, body=[rebuild(s) for s in program.body])
    return mutated, Mutation(seed=seed, family=family, kind=kind,
                             array=array)

"""Assemble archived benchmark results into one reproduction report.

``pytest benchmarks/ --benchmark-only`` archives each experiment's
paper-vs-measured table under ``benchmarks/results/``; this module stitches
them into a single markdown document (the raw material behind
``EXPERIMENTS.md``), via ``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from typing import Optional

__all__ = ["assemble_report", "RESULT_ORDER"]

RESULT_ORDER = [
    ("table1_sequential", "E1 — Table 1: sizes and sequential times"),
    ("fig1_regular_speedups", "E2 — Figure 1: regular speedups"),
    ("table2_regular_traffic", "E3 — Table 2: regular traffic"),
    ("fig2_irregular_speedups", "E4 — Figure 2: irregular speedups"),
    ("table3_irregular_traffic", "E5 — Table 3: irregular traffic"),
    ("sec23_interface", "E6 — §2.3: improved fork-join interface"),
    ("sec5_hand_optimizations", "E7–E10 — §5: hand optimizations"),
    ("sec54_fft_aggregation", "E10 — §5.4: FFT aggregation detail"),
    ("sec5_barrier_elimination", "E13 — barrier elimination"),
    ("sec7_summary", "E11 — §7: summary ratios"),
    ("ext_scaling", "E12 — extension: processor scaling"),
    ("ext_section8_enhancements", "E14 — extension: §8 enhancements"),
    ("ext_sensitivity", "E15 — ablation: model sensitivity"),
    ("ext_inspector", "E16 — extension: inspector-executor"),
]


def assemble_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """Render every archived result as one markdown document."""
    if results_dir is None:
        results_dir = (pathlib.Path(__file__).resolve()
                       .parents[3] / "benchmarks" / "results")
    results_dir = pathlib.Path(results_dir)
    lines = ["# Reproduction report",
             "",
             "Generated from the archives under "
             f"`{results_dir}`.  Regenerate the archives with "
             "`pytest benchmarks/ --benchmark-only`; see EXPERIMENTS.md "
             "for the curated analysis.", ""]
    found = 0
    for name, title in RESULT_ORDER:
        path = results_dir / f"{name}.txt"
        if not path.exists():
            lines += [f"## {title}", "", "*(not yet run)*", ""]
            continue
        found += 1
        lines += [f"## {title}", "", "```",
                  path.read_text().rstrip(), "```", ""]
    extras = sorted(p for p in results_dir.glob("*.txt")
                    if p.stem not in {n for n, _t in RESULT_ORDER}) \
        if results_dir.exists() else []
    for path in extras:
        lines += [f"## {path.stem}", "", "```",
                  path.read_text().rstrip(), "```", ""]
    if found == 0 and not extras:
        lines.append("No archived results found — run the benchmarks "
                     "first.")
    lines += ["## Static lint", ""] + _lint_section()
    return "\n".join(lines)


def _lint_section() -> list:
    """Live lint badges next to the archived paper-facing metrics.

    Lint is static (no simulation), so unlike the benchmark tables it is
    recomputed on every report; a crash in the linter must not take the
    report down with it."""
    try:
        from repro.eval.lintreport import lint_registry
        summary = lint_registry(preset="test")
    except Exception as exc:                    # pragma: no cover
        return [f"*(lint unavailable: {exc})*", ""]
    return ["```", summary.format(), "```", ""]

"""Determinism across every layer.

The conductor's ``(time, priority, seq)`` total order makes whole runs
bit-reproducible; these tests pin that property where it matters — results,
virtual times, message counts, byte counts, and DSM event counts must be
identical across repeated runs of every kind of workload.
"""

import numpy as np
import pytest

from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.xhpf import run_xhpf
from repro.eval.experiments import run_variant
from repro.msg import Pvme
from repro.sim import Cluster
from repro.tmk.api import tmk_run
from tests.conftest import irregular_program, stencil_program


def fingerprint(result):
    dsm = getattr(result, "dsm_stats", None)
    return (result.time, tuple(result.proc_times), result.stats.messages,
            result.stats.bytes,
            tuple(sorted((k, tuple(v))
                         for k, v in result.stats.by_category.items())),
            tuple(vars(dsm).values()) if dsm else None)


def test_raw_cluster_deterministic():
    def prog(env):
        p = Pvme(env)
        for i in range(10):
            peer = (env.pid + 1) % env.nprocs
            p.send(peer, np.arange(i + 1.0), tag=i)
        got = [p.recv(tag=i) for i in range(10)]
        return float(sum(g.sum() for g in got))

    runs = [Cluster(nprocs=5).run(prog) for _ in range(3)]
    assert len({fingerprint(r) for r in runs}) == 1
    assert len({tuple(r.results) for r in runs}) == 1


def test_dsm_program_deterministic():
    def setup(space):
        space.alloc("x", (16, 512), np.float32)

    def prog(tmk):
        x = tmk.array("x")
        lo, hi = tmk.block_range(16)
        for it in range(4):
            cur = x.read((slice(lo, hi),)).copy()
            x.write((slice(lo, hi),), cur + tmk.pid + it)
            tmk.lock_acquire(it % 3)
            tmk.lock_release(it % 3)
            tmk.barrier()
        return float(x.read().sum())

    runs = [tmk_run(6, prog, setup) for _ in range(3)]
    assert len({fingerprint(r) for r in runs}) == 1


def test_compiled_backends_deterministic():
    spf = [run_spf(stencil_program(), nprocs=4,
                   options=SpfOptions(aggregate=True)) for _ in range(2)]
    assert fingerprint(spf[0]) == fingerprint(spf[1])
    xhpf = [run_xhpf(stencil_program(), nprocs=4) for _ in range(2)]
    assert fingerprint(xhpf[0]) == fingerprint(xhpf[1])


def test_irregular_accumulate_deterministic():
    runs = [run_spf(irregular_program(), nprocs=4) for _ in range(2)]
    assert fingerprint(runs[0]) == fingerprint(runs[1])
    assert runs[0].scalars == runs[1].scalars


@pytest.mark.parametrize("variant", ["spf", "tmk", "xhpf", "pvme"])
def test_harness_runs_deterministic(variant):
    a = run_variant("igrid", variant, nprocs=3, preset="test")
    b = run_variant("igrid", variant, nprocs=3, preset="test")
    assert (a.time, a.messages, a.kilobytes) == (b.time, b.messages,
                                                 b.kilobytes)
    assert a.signature == b.signature


def test_extension_paths_deterministic():
    opts = SpfOptions(tree_reductions=True, push_halos=True,
                      balance_loops=True)
    a = run_spf(stencil_program(), nprocs=5, options=opts)
    b = run_spf(stencil_program(), nprocs=5, options=opts)
    assert fingerprint(a) == fingerprint(b)


# --------------------------------------------------------------------- #
# schedule seeds: same seed -> bit-identical run; any seed -> same answer


def _jacobi_hand():
    from repro.apps.common import get_app
    spec = get_app("jacobi")
    params = spec.params("test")

    def setup(space):
        spec.hand_tmk_setup(space, params)

    def main(tmk):
        return spec.hand_tmk(tmk, params)

    return spec, params, setup, main


def test_same_schedule_seed_is_bit_identical():
    """Cross-seed determinism regression: the seeded jitter must be a
    pure function of the seed — times, DSM stats, and computed values
    all repeat exactly."""
    _spec, _params, setup, main = _jacobi_hand()
    a = tmk_run(4, main, setup, schedule_seed=123)
    b = tmk_run(4, main, setup, schedule_seed=123)
    assert fingerprint(a) == fingerprint(b)
    assert a.results == b.results


def test_different_schedule_seeds_still_match_sequential(monkeypatch):
    """Seeds pick genuinely different event interleavings (the dispatch
    order of same-timestamp events changes), yet every one computes the
    sequential oracle's answer — the protocol is schedule-oblivious."""
    import heapq as real_heapq

    from repro.apps.common import get_app, signatures_close
    from repro.compiler.seq import run_sequential
    from repro.sim import engine

    class ProbeHeap:
        heappush = staticmethod(real_heapq.heappush)
        log = []

        @staticmethod
        def heappop(queue):
            item = real_heapq.heappop(queue)
            ProbeHeap.log.append(item[3])     # push sequence number
            return item

    monkeypatch.setattr(engine, "heapq", ProbeHeap)
    spec = get_app("jacobi")
    program = spec.build_program(spec.params("test"))
    _views, seq_scalars, _t = run_sequential(program)
    orders = []
    for seed in (None, 11, 17):
        ProbeHeap.log = []
        r = run_spf(program, nprocs=4, schedule_seed=seed)
        assert signatures_close(r.scalars, seq_scalars)
        orders.append(tuple(ProbeHeap.log))
    # the seeds really produced distinct dispatch orders
    assert len(set(orders)) >= 2


def test_seed_none_matches_historical_order():
    """``schedule_seed=None`` must leave the original (time, priority,
    seq) total order untouched."""
    _spec, _params, setup, main = _jacobi_hand()
    a = tmk_run(4, main, setup)
    b = tmk_run(4, main, setup, schedule_seed=None)
    assert fingerprint(a) == fingerprint(b)
    assert a.results == b.results

"""Determinism across every layer.

The conductor's ``(time, priority, seq)`` total order makes whole runs
bit-reproducible; these tests pin that property where it matters — results,
virtual times, message counts, byte counts, and DSM event counts must be
identical across repeated runs of every kind of workload.
"""

import numpy as np
import pytest

from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.xhpf import run_xhpf
from repro.eval.experiments import run_variant
from repro.msg import Pvme
from repro.sim import Cluster
from repro.tmk.api import tmk_run
from tests.conftest import irregular_program, stencil_program


def fingerprint(result):
    dsm = getattr(result, "dsm_stats", None)
    return (result.time, tuple(result.proc_times), result.stats.messages,
            result.stats.bytes,
            tuple(sorted((k, tuple(v))
                         for k, v in result.stats.by_category.items())),
            tuple(vars(dsm).values()) if dsm else None)


def test_raw_cluster_deterministic():
    def prog(env):
        p = Pvme(env)
        for i in range(10):
            peer = (env.pid + 1) % env.nprocs
            p.send(peer, np.arange(i + 1.0), tag=i)
        got = [p.recv(tag=i) for i in range(10)]
        return float(sum(g.sum() for g in got))

    runs = [Cluster(nprocs=5).run(prog) for _ in range(3)]
    assert len({fingerprint(r) for r in runs}) == 1
    assert len({tuple(r.results) for r in runs}) == 1


def test_dsm_program_deterministic():
    def setup(space):
        space.alloc("x", (16, 512), np.float32)

    def prog(tmk):
        x = tmk.array("x")
        lo, hi = tmk.block_range(16)
        for it in range(4):
            cur = x.read((slice(lo, hi),)).copy()
            x.write((slice(lo, hi),), cur + tmk.pid + it)
            tmk.lock_acquire(it % 3)
            tmk.lock_release(it % 3)
            tmk.barrier()
        return float(x.read().sum())

    runs = [tmk_run(6, prog, setup) for _ in range(3)]
    assert len({fingerprint(r) for r in runs}) == 1


def test_compiled_backends_deterministic():
    spf = [run_spf(stencil_program(), nprocs=4,
                   options=SpfOptions(aggregate=True)) for _ in range(2)]
    assert fingerprint(spf[0]) == fingerprint(spf[1])
    xhpf = [run_xhpf(stencil_program(), nprocs=4) for _ in range(2)]
    assert fingerprint(xhpf[0]) == fingerprint(xhpf[1])


def test_irregular_accumulate_deterministic():
    runs = [run_spf(irregular_program(), nprocs=4) for _ in range(2)]
    assert fingerprint(runs[0]) == fingerprint(runs[1])
    assert runs[0].scalars == runs[1].scalars


@pytest.mark.parametrize("variant", ["spf", "tmk", "xhpf", "pvme"])
def test_harness_runs_deterministic(variant):
    a = run_variant("igrid", variant, nprocs=3, preset="test")
    b = run_variant("igrid", variant, nprocs=3, preset="test")
    assert (a.time, a.messages, a.kilobytes) == (b.time, b.messages,
                                                 b.kilobytes)
    assert a.signature == b.signature


def test_extension_paths_deterministic():
    opts = SpfOptions(tree_reductions=True, push_halos=True,
                      balance_loops=True)
    a = run_spf(stencil_program(), nprocs=5, options=opts)
    b = run_spf(stencil_program(), nprocs=5, options=opts)
    assert fingerprint(a) == fingerprint(b)

"""E14 (extension) — the Section 8 enhancements, measured.

Section 8 proposes: efficient support for reductions, more aggressive
consistency-overhead elimination, pushing data, and dynamic load
balancing.  This bench turns each proposal on over the SPF-generated
applications and reports what it buys on the simulated SP/2:

* tree reductions on 3-D FFT (whose per-iteration checksum pays two
  serialized lock chains per iteration),
* halo pushing on Jacobi (whose entire DSM overhead is boundary pulls),
* everything combined ("the compiler and DSM system enhancements"),
  against hand-coded message passing — the paper's Section 9 conjecture
  that "the performance of regular applications can match that of their
  message passing counterparts".
"""

from repro.compiler.spf import SpfOptions

from conftest import all_variants, archive, one_variant, runner  # noqa: F401


def test_section8_enhancements(runner):
    def experiment():
        out = {}
        out["fft_base"] = one_variant("fft3d", "spf")
        out["fft_tree"] = one_variant(
            "fft3d", "spf", spf_options=SpfOptions(tree_reductions=True))
        out["jac_base"] = one_variant("jacobi", "spf")
        out["jac_push"] = one_variant(
            "jacobi", "spf", spf_options=SpfOptions(push_halos=True))
        out["jac_all"] = one_variant(
            "jacobi", "spf", spf_options=SpfOptions(
                aggregate=True, fuse_loops=True, tree_reductions=True,
                push_halos=True))
        out["jac_pvme"] = all_variants("jacobi")["pvme"]
        return out

    res = runner(experiment)
    lines = ["Section 8 extensions — measured on the simulated SP/2",
             f"FFT   : spf {res['fft_base'].speedup:5.2f} -> "
             f"+tree reductions {res['fft_tree'].speedup:5.2f}",
             f"Jacobi: spf {res['jac_base'].speedup:5.2f} -> "
             f"+halo push {res['jac_push'].speedup:5.2f} -> "
             f"+all enhancements {res['jac_all'].speedup:5.2f} "
             f"(hand-coded PVMe {res['jac_pvme'].speedup:5.2f})"]
    archive("ext_section8_enhancements", "\n".join(lines))

    assert res["fft_tree"].speedup >= res["fft_base"].speedup
    assert res["jac_push"].speedup > res["jac_base"].speedup
    assert res["jac_all"].speedup > res["jac_base"].speedup
    # Section 9's conjecture: enhanced compiler+DSM approaches hand MP
    assert res["jac_all"].speedup > 0.93 * res["jac_pvme"].speedup, (
        f"enhanced SPF {res['jac_all'].speedup:.2f} vs PVMe "
        f"{res['jac_pvme'].speedup:.2f}")

"""E4 — Figure 2: 8-processor speedups for the irregular applications.

The paper's central result: on irregular codes the compiler-generated
shared memory beats compiler-generated message passing (by 38% and 89% in
the paper) and comes close to hand-coded message passing (4.4% / 16%),
because the DSM fetches on demand and caches, while XHPF broadcasts whole
partitions.
"""

from repro.eval.constants import IRREGULAR_APPS, PAPER
from repro.eval.tables import format_speedup_figure

from conftest import all_variants, archive, runner  # noqa: F401


def test_figure2(runner):
    results = runner(lambda: {app: all_variants(app)
                              for app in IRREGULAR_APPS})
    text = format_speedup_figure(
        results, IRREGULAR_APPS,
        "Figure 2 — 8-Processor Speedups, Irregular Applications")
    archive("fig2_irregular_speedups", text)

    for app in IRREGULAR_APPS:
        r = {v: results[app][v].speedup
             for v in ("spf", "tmk", "xhpf", "pvme")}
        # the reversal: compiled DSM beats compiled message passing
        assert r["spf"] > r["xhpf"], (
            f"{app}: SPF/Tmk {r['spf']:.2f} must beat XHPF {r['xhpf']:.2f}")
        # and approaches hand-coded message passing
        gap = r["pvme"] / r["spf"]
        assert gap < 1.25, (
            f"{app}: PVMe/SPF gap {gap:.2f} should be small (paper: "
            f"1.044 and 1.16)")
        # hand-coded DSM still at or above compiled DSM
        assert r["tmk"] >= r["spf"] * 0.98, app


def test_nbf_dsm_advantage_ratio(runner):
    """NBF: the paper reports SPF/Tmk beating XHPF by 38%."""
    results = runner(lambda: all_variants("nbf"))
    ratio = results["spf"].speedup / results["xhpf"].speedup
    assert ratio > 1.15, f"NBF SPF/XHPF ratio {ratio:.2f} (paper 1.38)"

"""E2 — Figure 1: 8-processor speedups for the regular applications.

Reproduced claims (Section 5): for every regular application the ordering
is SPF/Tmk <= hand-Tmk <= XHPF-or-PVMe, message passing wins on regular
codes, and the hand-coded variants beat their compiler-generated
counterparts.  Absolute speedups land near the paper's (the compute costs
and machine model are calibrated, not fitted per-experiment).
"""

import pytest

from repro.eval.constants import PAPER, REGULAR_APPS
from repro.eval.tables import format_speedup_figure

from conftest import all_variants, archive, runner  # noqa: F401


def test_figure1(runner):
    results = runner(lambda: {app: all_variants(app)
                              for app in REGULAR_APPS})
    text = format_speedup_figure(
        results, REGULAR_APPS,
        "Figure 1 — 8-Processor Speedups, Regular Applications")
    archive("fig1_regular_speedups", text)

    for app in REGULAR_APPS:
        r = {v: results[app][v].speedup for v in ("spf", "tmk", "xhpf",
                                                  "pvme")}
        # the paper's orderings
        assert r["xhpf"] > r["spf"], f"{app}: XHPF must beat SPF/Tmk"
        assert r["pvme"] > r["spf"], f"{app}: PVMe must beat SPF/Tmk"
        assert r["pvme"] >= r["xhpf"] * 0.95, (
            f"{app}: hand MP should not lose clearly to compiled MP")
        assert r["tmk"] >= r["spf"] * 0.98, (
            f"{app}: hand shared memory should not lose to compiled")


@pytest.mark.parametrize("app", REGULAR_APPS)
def test_speedups_within_band(app, runner):
    """Each measured speedup within a generous band of the paper's bar."""
    results = runner(lambda: all_variants(app))
    for variant in ("spf", "tmk", "xhpf", "pvme"):
        paper = PAPER[app].speedups[variant]
        ours = results[variant].speedup
        assert 0.5 * paper < ours < min(1.8 * paper, 8.05), (
            f"{app}/{variant}: {ours:.2f} vs paper {paper}")

"""Tests for Comm endpoints and payload sizing (repro.msg.endpoint)."""

import numpy as np
import pytest

from repro.msg.endpoint import Comm, payload_nbytes
from repro.sim import Cluster


def test_payload_nbytes_numpy():
    assert payload_nbytes(np.zeros(10, np.float64)) == 80
    assert payload_nbytes(np.zeros((4, 4), np.float32)) == 64


def test_payload_nbytes_scalars_and_bytes():
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(3) == 8
    assert payload_nbytes(3.5) == 8
    assert payload_nbytes(True) == 8
    assert payload_nbytes(1 + 2j) == 16
    assert payload_nbytes(None) == 0


def test_payload_nbytes_containers():
    assert payload_nbytes((1, 2.0)) == 24        # 8 + 8 + container 8
    assert payload_nbytes([np.zeros(2, np.float64)]) == 24


def test_payload_nbytes_unknown_type_raises():
    with pytest.raises(TypeError):
        payload_nbytes(object())


def test_send_infers_numpy_size():
    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, np.zeros(256, np.float32), tag=1)
        else:
            comm.recv(src=0, tag=1)

    r = Cluster(nprocs=2).run(prog)
    assert r.stats.bytes == 1024


def test_segmented_transfer_message_count():
    """A 10 KB section through a 4 KB transfer buffer = 3 messages."""

    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 0:
            comm.send(1, np.zeros(2560, np.float32), tag=1)   # 10 KB
        else:
            got = comm.recv(src=0, tag=1)
            return got.shape

    r = Cluster(nprocs=2).run(prog)
    assert r.results[1] == (2560,)
    assert r.messages == 3
    assert r.stats.bytes == 10240


def test_segmented_exact_multiple():
    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 0:
            comm.send(1, np.zeros(2048, np.float32), tag=1)   # exactly 8 KB
        else:
            comm.recv(src=0, tag=1)

    r = Cluster(nprocs=2).run(prog)
    assert r.messages == 2


def test_segmented_recv_requires_source():
    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 1:
            with pytest.raises(ValueError):
                comm.recv()

    Cluster(nprocs=2).run(prog)


def test_small_message_not_segmented():
    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 0:
            comm.send(1, b"x" * 100, tag=1)
        else:
            comm.recv(src=0, tag=1)

    r = Cluster(nprocs=2).run(prog)
    assert r.messages == 1


def test_sendrecv_pairwise():
    def prog(env):
        comm = Comm(env)
        peer = 1 - env.pid
        return comm.sendrecv(peer, env.pid * 10, src=peer, tag=2)

    r = Cluster(nprocs=2).run(prog)
    assert r.results == [10, 0]


def test_recv_msg_exposes_metadata():
    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=17)
        else:
            msg = comm.recv_msg(tag=17)
            return (msg.src, msg.tag)

    r = Cluster(nprocs=2).run(prog)
    assert r.results[1] == (0, 17)


def test_link_serialization_fifo_per_pair():
    """Two messages (big then small) on one src-dst pair arrive in order."""

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "big", tag=1, nbytes=1_000_000)
            comm.send(1, "small", tag=1, nbytes=8)
        else:
            first = comm.recv(src=0, tag=1)
            second = comm.recv(src=0, tag=1)
            return (first, second)

    r = Cluster(nprocs=2).run(prog)
    assert r.results[1] == ("big", "small")


def test_receive_link_contention_serializes():
    """Seven senders pushing 1 MB each to one node cannot all land in the
    time one transfer takes (the FFT-transpose effect)."""
    MB = 1_000_000

    def prog(env):
        comm = Comm(env)
        if env.pid != 0:
            comm.send(0, "blob", tag=1, nbytes=MB)
        else:
            for _ in range(env.nprocs - 1):
                comm.recv(tag=1)
            return env.now

    r = Cluster(nprocs=8).run(prog)
    single = MB * Cluster(nprocs=2).model.byte_time
    assert r.results[0] >= 7 * single


# --------------------------------------------------------------------------- #
# carrier packets, payload sizing, and interleaving fixes


def test_segmented_none_payload_delivered():
    """A transported payload that is legitimately None must not be
    mistaken for a header-only carrier packet (it used to loop forever)."""

    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 0:
            comm.send(1, None, tag=1, nbytes=10240)    # 3 packets, None rides last
        else:
            return ("got", comm.recv(src=0, tag=1))

    r = Cluster(nprocs=2).run(prog)
    assert r.results[1] == ("got", None)
    assert r.messages == 3


def test_segmented_recv_requires_tag():
    def prog(env):
        comm = Comm(env, packet_bytes=4096)
        if env.pid == 1:
            with pytest.raises(ValueError, match="explicit.*tag"):
                comm.recv(src=0)

    Cluster(nprocs=2).run(prog)


def test_unsegmented_recv_rejects_carrier():
    """An unsegmented endpoint matching a segment carrier is a protocol
    mismatch and must fail loudly, not hand the carrier to the program."""

    def prog(env):
        seg = Comm(env, packet_bytes=4096)
        if env.pid == 0:
            seg.send(1, np.zeros(2560, np.float32), tag=1)    # 3 packets
        else:
            plain = Comm(env)
            with pytest.raises(RuntimeError, match="carrier"):
                plain.recv(src=0, tag=1)

    Cluster(nprocs=2).run(prog)


def test_payload_nbytes_object_dtype_raises():
    with pytest.raises(TypeError, match="object-dtype"):
        payload_nbytes(np.array([object(), object()], dtype=object))


def test_payload_nbytes_numpy_scalars_sized_like_python():
    assert payload_nbytes(np.float64(3.5)) == 8
    assert payload_nbytes(np.int32(7)) == 8
    assert payload_nbytes(np.bool_(True)) == 8
    assert payload_nbytes(np.complex128(1 + 2j)) == 16
    # 0-d arrays are scalars on the wire, not arrays
    assert payload_nbytes(np.array(3.5)) == 8
    assert payload_nbytes(np.array(1 + 2j)) == 16
    assert payload_nbytes(np.array(True)) == 8


def test_payload_nbytes_string_scalars():
    assert payload_nbytes("héllo") == len("héllo".encode()) == 6
    assert payload_nbytes(np.str_("abc")) == 3
    assert payload_nbytes(np.bytes_(b"abcd")) == 4


def test_segmented_matches_unsegmented_payload_and_bytes():
    """Property: segmentation changes packetization, never the payload or
    the accounted byte total."""
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=1, max_value=5000),
           packet=st.sampled_from([512, 1024, 4096]))
    def check(n, packet):
        data = np.arange(n, dtype=np.float64)

        def prog(env, packet_bytes):
            comm = Comm(env, packet_bytes=packet_bytes)
            if env.pid == 0:
                comm.send(1, data, tag=1)
            else:
                return comm.recv(src=0, tag=1)

        seg = Cluster(nprocs=2).run(prog, args=(packet,))
        plain = Cluster(nprocs=2).run(prog, args=(None,))
        assert np.array_equal(seg.results[1], plain.results[1])
        assert seg.stats.bytes == plain.stats.bytes == data.nbytes

    check()


def test_deadlock_report_names_mailbox_and_filters():
    """When a recv never matches, the Deadlock message shows what IS in
    the mailbox and what the receiver was waiting for."""
    from repro.sim import Deadlock

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=7)
        else:
            comm.recv(src=0, tag=99)     # never sent

    with pytest.raises(Deadlock) as exc:
        Cluster(nprocs=2).run(prog)
    text = str(exc.value)
    assert "network state at deadlock" in text
    assert "tag=7" in text                       # what actually arrived
    assert "waiting on recv(src=0, tag=99)" in text   # what was wanted

"""Simulated interconnect: mailboxes, tag matching, and traffic accounting.

Semantics follow the user-level MPL/PVMe libraries the paper runs on:

* ``send`` is buffered and asynchronous — the sender is charged its software
  send overhead and continues; the message is delivered to the destination
  mailbox after the modelled wire time.
* ``recv`` blocks until a matching message (by source and tag) is present,
  then charges the receiver's software overhead and returns the payload.

Every message carries an accounting *category* (``"data"``, ``"sync"``,
``"diff"``, ...) and a declared payload size in bytes.  The paper's Tables 2
and 3 report total message counts and total kilobytes per program; the
:class:`NetworkStats` object accumulates exactly those, per category, and the
evaluation harness snapshots it per run.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.engine import Process, SimError, Simulator
from repro.sim.machine import MachineModel

__all__ = ["Network", "Message", "NetworkStats", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """One in-flight or delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    category: str
    sent_at: float
    delivered_at: float = 0.0


@dataclass
class NetworkStats:
    """Message and byte totals, overall and per category.

    ``messages``/``bytes`` count every network message including protocol
    requests and synchronization, which is how the paper counts (e.g. a
    TreadMarks page fault is *two* messages: request and response).
    """

    messages: int = 0
    bytes: int = 0
    by_category: dict = field(default_factory=lambda: defaultdict(lambda: [0, 0]))

    def record(self, category: str, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes
        cell = self.by_category[category]
        cell[0] += 1
        cell[1] += nbytes

    def snapshot(self) -> "NetworkStats":
        snap = NetworkStats(self.messages, self.bytes)
        snap.by_category = defaultdict(
            lambda: [0, 0], {k: list(v) for k, v in self.by_category.items()})
        return snap

    def delta(self, earlier: "NetworkStats") -> "NetworkStats":
        out = NetworkStats(self.messages - earlier.messages,
                           self.bytes - earlier.bytes)
        keys = set(self.by_category) | set(earlier.by_category)
        for key in keys:
            a = self.by_category.get(key, [0, 0])
            b = earlier.by_category.get(key, [0, 0])
            out.by_category[key] = [a[0] - b[0], a[1] - b[1]]
        return out

    @property
    def kilobytes(self) -> float:
        return self.bytes / 1024.0


class Network:
    """Point-to-point message transport between ``nprocs`` endpoints."""

    def __init__(self, sim: Simulator, nprocs: int, model: MachineModel):
        self.sim = sim
        self.nprocs = nprocs
        self.model = model
        self.stats = NetworkStats()
        # mailbox[dst] holds delivered, un-received messages in arrival order
        self._mailbox: list[deque[Message]] = [deque() for _ in range(nprocs)]
        # waiting[dst] -> list of (process, src_filter, tag_filter); a node's
        # main program and its DSM request server may both be blocked in recv
        # on the same endpoint with disjoint tag filters.
        self._waiting: list[list[tuple[Process, int, int]]] = [
            [] for _ in range(nprocs)]
        # cut-through link model: each node has one send link and one
        # receive link; a message occupies the send link for its transfer
        # time starting at `start`, and the receive link for the same
        # duration offset by the wire latency.  Concurrent transfers to or
        # from one node serialize — the effect that makes an all-to-all
        # transpose or a broadcast-everything epilogue pay for its volume.
        self._src_free = [0.0] * nprocs
        self._dst_free = [0.0] * nprocs

    # ------------------------------------------------------------------ #

    def send(self, proc: Process, src: int, dst: int, payload: Any, *,
             tag: int = 0, nbytes: int, category: str = "data",
             charge_sender: bool = True) -> None:
        """Asynchronously send ``payload`` from ``src`` to ``dst``.

        ``nbytes`` is the accounted payload size; callers declare it because
        payloads are Python objects whose wire encoding we model rather than
        perform.  ``charge_sender=False`` supports piggybacked replies whose
        send cost is already folded into a handler's protocol overhead.
        """
        if not (0 <= dst < self.nprocs):
            raise SimError(f"bad destination {dst}")
        if nbytes < 0:
            raise ValueError("negative message size")
        if charge_sender:
            proc.hold(self.model.send_overhead)
        msg = Message(src=src, dst=dst, tag=tag, payload=payload,
                      nbytes=nbytes, category=category, sent_at=self.sim.now)
        self.stats.record(category, nbytes)
        transfer = (nbytes + self.model.message_header_bytes) \
            * self.model.byte_time
        latency = self.model.latency
        now = self.sim.now
        start = max(now, self._src_free[src], self._dst_free[dst] - latency)
        self._src_free[src] = start + transfer
        arrival = start + latency + transfer
        self._dst_free[dst] = arrival
        self.sim.schedule_call(arrival - now, lambda: self._deliver(msg))

    def _deliver(self, msg: Message) -> None:
        msg.delivered_at = self.sim.now
        self._mailbox[msg.dst].append(msg)
        waiters = self._waiting[msg.dst]
        for i, (proc, src_f, tag_f) in enumerate(waiters):
            if self._match(msg, src_f, tag_f):
                del waiters[i]
                self.sim.unpark(proc)
                break

    @staticmethod
    def _match(msg: Message, src: int, tag: int) -> bool:
        return ((src == ANY_SOURCE or msg.src == src)
                and (tag == ANY_TAG or msg.tag == tag))

    def _take(self, dst: int, src: int, tag: int) -> Optional[Message]:
        box = self._mailbox[dst]
        for i, msg in enumerate(box):
            if self._match(msg, src, tag):
                del box[i]
                return msg
        return None

    def recv(self, proc: Process, dst: int, *, src: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Message:
        """Block until a message matching ``(src, tag)`` arrives at ``dst``."""
        msg = self._take(dst, src, tag)
        while msg is None:
            self._waiting[dst].append((proc, src, tag))
            proc.park(token=("recv", dst, src, tag))
            msg = self._take(dst, src, tag)
        proc.hold(self.model.recv_overhead)
        return msg

    def probe(self, dst: int, *, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message already in the mailbox?"""
        return any(self._match(m, src, tag) for m in self._mailbox[dst])

    def pending(self, dst: int) -> int:
        return len(self._mailbox[dst])

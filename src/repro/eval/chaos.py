"""Chaos harness: prove numerics survive an unreliable interconnect.

``python -m repro racecheck`` fuzzes *schedules*; this module fuzzes the
*wire*.  For every requested (application, variant) pair it first runs the
pair fault-free to capture ground truth, then re-runs it under a seeded
:class:`~repro.sim.faults.FaultPlan` — messages dropped, duplicated,
reordered and delayed, one node stalled — once per seed, and asserts the
answer did not move:

* **DSM variants** (``spf``/``tmk``/...): the coherent final contents of
  every application array (a barrier-ordered readback on processor 0,
  the same one the racecheck harness uses) must be **bit-identical** to
  the fault-free run; reduction scalars must match within the usual
  signature tolerance (lock-folded reductions combine in lock-grant
  order, which timing legitimately perturbs).
* **Message-passing variants** (``xhpf``/``pvme``): the scalar signature
  must be **bit-identical** — every checksum is computed from explicit
  sends whose sources and contents are timing-independent.

Any divergence means the reliable-delivery sublayer leaked a fault into
the computation — a dropped message papered over, a duplicate applied
twice, an ordering inversion observed — and the sweep fails loudly with
the offending cell.  Command line::

    python -m repro chaos --seeds 3 --preset bench --out chaos.json
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Optional, Sequence, Union

from repro.api.registry import DSM_VARIANTS as _DSM_VARIANTS
from repro.api.types import (RunRequest, fault_plan_to_doc, machine_to_doc)
from repro.apps.common import get_app, signatures_close
from repro.compiler.spf import SpfOptions, compile_spf
from repro.eval.racecheck import _hash, _wrap_with_readback
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel
from repro.tmk.api import tmk_run

__all__ = ["ChaosCell", "ChaosReport", "chaos_sweep", "DEFAULT_VARIANTS"]

#: the four variants of the paper's Figures 1/2
DEFAULT_VARIANTS = ("spf", "tmk", "xhpf", "pvme")


@dataclass
class ChaosCell:
    """One (app, variant, seed) run under faults, judged against truth."""

    app: str
    variant: str
    seed: int
    ok: bool
    arrays_identical: bool       # DSM: readback hashes; MP: vacuously True
    scalars_ok: bool
    time: float
    retransmissions: int
    dup_suppressed: int
    acks: int
    faults: dict = field(default_factory=dict)   # FaultStats.as_dict()
    mismatches: list = field(default_factory=list)

    def as_doc(self) -> dict:
        return {
            "app": self.app, "variant": self.variant, "seed": self.seed,
            "ok": self.ok, "arrays_identical": self.arrays_identical,
            "scalars_ok": self.scalars_ok, "time": self.time,
            "retransmissions": self.retransmissions,
            "dup_suppressed": self.dup_suppressed, "acks": self.acks,
            "faults": dict(self.faults), "mismatches": list(self.mismatches),
        }


@dataclass
class ChaosReport:
    """Verdict of :func:`chaos_sweep` over every cell."""

    preset: str
    nprocs: int
    seeds: list
    plan: dict                   # fault_plan_to_doc form (one serializer)
    cells: list = field(default_factory=list)
    errors: list = field(default_factory=list)   # (app, variant, seed, error)

    @property
    def ok(self) -> bool:
        return not self.errors and all(c.ok for c in self.cells)

    @property
    def total_retransmissions(self) -> int:
        return sum(c.retransmissions for c in self.cells)

    def as_doc(self) -> dict:
        return {
            "kind": "chaos-sweep",
            "preset": self.preset, "nprocs": self.nprocs,
            "seeds": list(self.seeds), "plan": dict(self.plan),
            "ok": self.ok,
            "total_retransmissions": self.total_retransmissions,
            "cells": [c.as_doc() for c in self.cells],
            "errors": [list(e) for e in self.errors],
        }

    def format(self) -> str:
        lines = [f"chaos sweep: preset={self.preset} n={self.nprocs} "
                 f"seeds={self.seeds}"]
        pairs: dict = {}
        for c in self.cells:
            pairs.setdefault((c.app, c.variant), []).append(c)
        for (app, variant), cells in sorted(pairs.items()):
            bad = [c for c in cells if not c.ok]
            retrans = sum(c.retransmissions for c in cells)
            dropped = sum(c.faults.get("drops", 0) for c in cells)
            status = "OK " if not bad else "FAIL"
            lines.append(
                f"  {status} {app:8s} {variant:8s} seeds={len(cells)} "
                f"drops={dropped:4d} retrans={retrans:4d}")
            for c in bad:
                lines.append(f"       seed {c.seed}: "
                             + "; ".join(c.mismatches))
        for app, variant, seed, err in self.errors:
            lines.append(f"  ERROR {app}/{variant} seed {seed}: {err}")
        lines.append(f"  verdict: {'OK' if self.ok else 'FAIL'} "
                     f"({self.total_retransmissions} retransmission(s) "
                     f"recovered across the sweep)")
        return "\n".join(lines)


def _dsm_body(spec, variant: str, params: dict, nprocs: int):
    """(setup, main-with-readback, scalars_of) for one DSM variant."""
    if variant == "tmk":
        def setup(space):
            spec.hand_tmk_setup(space, params)
        body = lambda tmk: spec.hand_tmk(tmk, params)   # noqa: E731
        scalars_of = None
    else:
        if variant == "spf_opt":
            if spec.spf_opt_options is None:
                raise ValueError(f"{spec.name} has no hand-optimized variant")
            options = spec.spf_opt_options()
        elif variant == "spf_old":
            options = SpfOptions(improved_interface=False)
        else:
            options = SpfOptions()
        exe = compile_spf(spec.build_program(params), nprocs, options)
        setup = exe.setup_space
        body = exe.run_on
        scalars_of = 0
    return setup, _wrap_with_readback(body), scalars_of


def _dsm_signature(run, scalars_of):
    from repro.apps.common import combine_signatures
    parts = [r[0] for r in run.results]
    return (dict(parts[scalars_of]) if scalars_of is not None
            else combine_signatures(parts))


def _run_dsm(setup, main, nprocs, model, faults):
    run = tmk_run(nprocs, main, setup, model=model, faults=faults)
    _out0, arrays = run.results[0]
    hashes = {name: _hash(a) for name, a in arrays.items()}
    return run, hashes


def _run_mp(app: str, variant: str, nprocs, preset, model, faults):
    from repro.api.execute import execute
    return execute(RunRequest(app=app, variant=variant, nprocs=nprocs,
                              preset=preset, machine=machine_to_doc(model),
                              seq_time=1.0,
                              fault_plan=fault_plan_to_doc(faults)))


def chaos_sweep(apps: Optional[Sequence[str]] = None,
                variants: Optional[Sequence[str]] = None,
                seeds: Union[int, Sequence[int]] = 3,
                nprocs: int = 8, preset: str = "bench",
                model: Optional[MachineModel] = None,
                plan: Optional[FaultPlan] = None,
                jobs: int = 1, service=None,
                fleet: Optional[list] = None,
                progress=None) -> ChaosReport:
    """Sweep fault seeds over app×variant pairs and judge the numerics.

    ``seeds`` is a count (seeds ``0..K-1``) or an explicit sequence.
    ``plan`` supplies the fault rates/schedule (default:
    :meth:`FaultPlan.default`); each seed runs under ``plan.with_seed``.

    ``jobs > 1`` (or ``service``, or ``fleet`` — a list of remote
    ``repro serve --tcp`` ``"HOST:PORT"`` specs) retires every (pair,
    seed) cell — and each pair's fault-free baseline — through a
    :class:`~repro.serve.RunService` pool; DSM cells use the request's
    ``readback`` to carry coherent array hashes back across the process
    boundary, so the verdicts are judged on exactly the same evidence as
    the serial path.  (One reporting difference: parallel cells report
    the measured-window time, the unified result's ``time``, where the
    serial path reports whole-run time.)
    """
    from repro.eval.constants import APPS

    apps = list(apps) if apps else list(APPS)
    variants = list(variants) if variants else list(DEFAULT_VARIANTS)
    seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
    if not seed_list:
        raise ValueError("chaos sweep needs at least one fault seed")
    plan = plan if plan is not None else FaultPlan.default()

    report = ChaosReport(
        preset=preset, nprocs=nprocs, seeds=seed_list,
        plan=fault_plan_to_doc(plan))

    if jobs > 1 or service is not None or fleet:
        return _chaos_parallel(report, apps, variants, seed_list, nprocs,
                               preset, model, plan, jobs, service, fleet,
                               progress)

    for app in apps:
        spec = get_app(app)
        params = spec.params(preset)
        for variant in variants:
            if progress:
                progress(f"chaos {app}/{variant}: fault-free baseline")
            if variant in _DSM_VARIANTS:
                setup, main, scalars_of = _dsm_body(spec, variant, params,
                                                    nprocs)
                base_run, base_hashes = _run_dsm(setup, main, nprocs,
                                                 model, None)
                base_sig = _dsm_signature(base_run, scalars_of)
            else:
                base = _run_mp(app, variant, nprocs, preset, model, None)
                base_hashes, base_sig = {}, base.signature

            for seed in seed_list:
                if progress:
                    progress(f"chaos {app}/{variant}: fault seed {seed}")
                faults = plan.with_seed(seed)
                mismatches: list = []
                try:
                    if variant in _DSM_VARIANTS:
                        run, hashes = _run_dsm(setup, main, nprocs, model,
                                               faults)
                        sig = _dsm_signature(run, scalars_of)
                        arrays_ok = hashes == base_hashes
                        if not arrays_ok:
                            mismatches += [
                                f"array {n!r} diverged" for n in sorted(
                                    set(base_hashes) | set(hashes))
                                if base_hashes.get(n) != hashes.get(n)]
                        # lock-grant order is timing-dependent, so folded
                        # reduction scalars are close, not bit-stable
                        scalars_ok = signatures_close(sig, base_sig)
                        cell_time = run.time
                        net = run.stats
                        fstats = run.fault_stats
                    else:
                        res = _run_mp(app, variant, nprocs, preset, model,
                                      faults)
                        arrays_ok = True
                        scalars_ok = res.signature == base_sig
                        cell_time = res.time
                        net = None
                        fstats = res.fault_stats
                        cell_retrans = res.retransmissions
                    if not scalars_ok:
                        mismatches.append("scalar signature diverged")
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    report.errors.append(
                        (app, variant, seed, f"{type(exc).__name__}: {exc}"))
                    continue
                report.cells.append(ChaosCell(
                    app=app, variant=variant, seed=seed,
                    ok=arrays_ok and scalars_ok,
                    arrays_identical=arrays_ok, scalars_ok=scalars_ok,
                    time=cell_time,
                    retransmissions=(net.retransmissions if net is not None
                                     else cell_retrans),
                    dup_suppressed=(net.dup_suppressed if net is not None
                                    else 0),
                    acks=(net.acks if net is not None else 0),
                    faults=fstats.as_dict() if fstats is not None else {},
                    mismatches=mismatches))
    return report


def _chaos_parallel(report: ChaosReport, apps, variants, seed_list,
                    nprocs, preset, model, plan, jobs, service, fleet,
                    progress) -> ChaosReport:
    """Retire the whole chaos grid as one batch through a worker pool.

    Baselines and faulted cells are independent requests; DSM requests
    set ``readback`` so the coherent array hashes — the serial path's
    evidence — travel back on ``RunResult.array_hashes``.  Failures are
    recorded on ``report.errors`` (a failed baseline voids its pair's
    cells), mirroring the serial harness's try/except per cell.
    """
    from repro.eval.parallel import run_requests

    machine = machine_to_doc(model)
    requests, labels = [], []      # label: (app, variant, seed|None)
    for app in apps:
        for variant in variants:
            base = RunRequest(
                app=app, variant=variant, nprocs=nprocs, preset=preset,
                machine=machine, seq_time=1.0,
                readback=(variant in _DSM_VARIANTS))
            requests.append(base)
            labels.append((app, variant, None))
            for seed in seed_list:
                requests.append(_dc_replace(
                    base,
                    fault_plan=fault_plan_to_doc(plan.with_seed(seed))))
                labels.append((app, variant, seed))

    def describe(r: RunRequest) -> str:
        what = (f"fault seed {r.fault_plan['seed']}" if r.fault_plan
                else "fault-free baseline")
        return f"chaos {r.app}/{r.variant}: {what}"

    results = run_requests(requests, jobs=jobs, service=service,
                           fleet=fleet, progress=progress,
                           describe=describe, raise_on_error=False)
    by_label = dict(zip(labels, results))

    for app in apps:
        for variant in variants:
            base = by_label[(app, variant, None)]
            if not base.ok:
                report.errors.append(
                    (app, variant, None,
                     f"baseline failed: {base.error_kind}: {base.error}"))
                continue
            for seed in seed_list:
                res = by_label[(app, variant, seed)]
                if not res.ok:
                    report.errors.append(
                        (app, variant, seed,
                         f"{res.error_kind}: {res.error}"))
                    continue
                mismatches: list = []
                if variant in _DSM_VARIANTS:
                    want = base.array_hashes or {}
                    got = res.array_hashes or {}
                    arrays_ok = want == got
                    if not arrays_ok:
                        mismatches += [
                            f"array {n!r} diverged"
                            for n in sorted(set(want) | set(got))
                            if want.get(n) != got.get(n)]
                    # lock-grant order is timing-dependent, so folded
                    # reduction scalars are close, not bit-stable
                    scalars_ok = signatures_close(res.signature,
                                                  base.signature)
                else:
                    arrays_ok = True
                    scalars_ok = res.signature == base.signature
                if not scalars_ok:
                    mismatches.append("scalar signature diverged")
                fstats = res.fault_stats
                report.cells.append(ChaosCell(
                    app=app, variant=variant, seed=seed,
                    ok=arrays_ok and scalars_ok,
                    arrays_identical=arrays_ok, scalars_ok=scalars_ok,
                    time=res.time,
                    retransmissions=res.retransmissions,
                    dup_suppressed=res.dup_suppressed,
                    acks=res.acks,
                    faults=(fstats.as_dict() if fstats is not None
                            else {}),
                    mismatches=mismatches))
    return report

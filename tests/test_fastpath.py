"""The coherence fast path must be invisible to simulated behaviour.

``repro.tmk.faststate`` lets ``ensure_read``/``ensure_write`` return in
O(1) when per-node page masks prove no fault can occur.  These tests pin
the one property that makes the optimization safe: with the fast path on
or off (``TMK_FASTPATH=0``), every virtual metric — times, messages,
bytes, results, final array contents — is bit-identical.  Wall clock is
the only thing allowed to change.

Also covered here: the engine's hold-elision switch (same contract), the
region->pages memo on ArrayHandle, the gather/scatter index handling, the
``--stats`` CLI output, and a smoke run of the wall-clock bench harness.
"""

import numpy as np
import pytest

import repro.sim.engine as engine
from repro.cli import main
from repro.eval.experiments import run_variant
from repro.tmk.api import tmk_run
from repro.tmk.diagnostics import fastpath_summary
from repro.tmk.faststate import FastState, fastpath_enabled_from_env
from repro.tmk.pagespace import SharedSpace, normalize_region
from repro.tmk.stats import DsmStats


def _virtual_fingerprint(r):
    return (r.time, r.messages, r.kilobytes,
            tuple(sorted(r.signature.items())))


# ---------------------------------------------------------------------- #
# equivalence: fast path on vs off

@pytest.mark.parametrize("app,variant", [("jacobi", "spf"),
                                         ("igrid", "spf")])
def test_fastpath_equivalent_virtual_metrics(monkeypatch, app, variant):
    monkeypatch.setenv("TMK_FASTPATH", "0")
    off = run_variant(app, variant, nprocs=4, preset="test", seq_time=1.0)
    monkeypatch.setenv("TMK_FASTPATH", "1")
    on = run_variant(app, variant, nprocs=4, preset="test", seq_time=1.0)
    assert _virtual_fingerprint(off) == _virtual_fingerprint(on)
    assert off.dsm.fastpath_hits == 0 and off.dsm.fastpath_misses == 0
    assert on.dsm.fastpath_hits > 0
    # epoch bookkeeping runs unconditionally (masks stay maintained even
    # when consultation is disabled)
    assert off.dsm.epoch_bumps > 0 and on.dsm.epoch_bumps > 0
    assert off.dsm.epoch_bumps == on.dsm.epoch_bumps


def _bytes_setup(space):
    space.alloc("u", (6, 700), np.float64)


def _bytes_prog(tmk):
    u = tmk.array("u")
    lo, hi = tmk.block_range(6)
    for it in range(3):
        row = u.read((slice(lo, hi),)).copy()
        u.write((slice(lo, hi),), row + tmk.pid + it)
        tmk.barrier()
        # repeated reads of the same region exercise the verdict cache
        u.read((slice(0, 2),))
        u.read((slice(0, 2),))
        tmk.barrier()
    if tmk.pid == 0:
        return u.read().tobytes()
    return None


def test_fastpath_equivalent_final_array_bytes(monkeypatch):
    monkeypatch.setenv("TMK_FASTPATH", "0")
    off = tmk_run(3, _bytes_prog, _bytes_setup)
    monkeypatch.setenv("TMK_FASTPATH", "1")
    on = tmk_run(3, _bytes_prog, _bytes_setup)
    assert off.results[0] == on.results[0]
    assert off.time == on.time
    assert off.stats.messages == on.stats.messages
    assert off.stats.bytes == on.stats.bytes


def test_fastpath_env_switch():
    assert fastpath_enabled_from_env() in (True, False)


# ---------------------------------------------------------------------- #
# FastState unit behaviour

def test_faststate_masks_and_epochs():
    fs = FastState(4, enabled=True)
    assert fs.valid.all() and not fs.write_ok.any()
    fs.write_ok[2] = True
    fs.remember_read(("a", ((0, 1),)))
    fs.remember_write(("a", ((0, 1),)))
    assert fs.read_verdicts and fs.write_verdicts
    epoch = fs.epoch
    fs.bump_epoch()
    assert fs.epoch == epoch + 1
    assert not fs.read_verdicts and not fs.write_verdicts

    fs.invalidate_page(1)
    assert not fs.valid[1] and fs.valid[0]
    fs.untwin_page(2)
    assert not fs.write_ok[2]

    fs.write_ok[:] = True
    fs.close_interval()
    assert not fs.write_ok.any()


def test_faststate_verdict_cache_bounded():
    fs = FastState(1, enabled=True)
    for i in range(5000):
        fs.remember_read(("a", ((i, i + 1),)))
    from repro.tmk.faststate import _REGION_VERDICT_LIMIT
    assert len(fs.read_verdicts) <= _REGION_VERDICT_LIMIT + 1


# ---------------------------------------------------------------------- #
# region->pages memo on ArrayHandle

def test_pages_of_memoizes_and_is_readonly():
    space = SharedSpace()
    h = space.alloc("x", (16, 512), np.float32)
    nregion = normalize_region((slice(2, 5), slice(None)), h.shape)
    pages1, cached1 = h.pages_of(nregion)
    pages2, cached2 = h.pages_of(nregion)
    assert not cached1 and cached2
    assert pages1 is pages2
    assert not pages1.flags.writeable
    np.testing.assert_array_equal(
        pages1, h.region_pages((slice(2, 5), slice(None))))


# ---------------------------------------------------------------------- #
# gather/scatter index handling (single int64 conversion)

def _gs_setup(space):
    space.alloc("vec", (100,), np.float64)


def test_gather_accepts_lists_and_arrays(monkeypatch):
    def prog(tmk):
        v = tmk.array("vec")
        v.write((slice(0, 100),), np.arange(100.0))
        a = v.gather([3, 1, 4, 1, 5])
        b = v.gather(np.array([3, 1, 4, 1, 5], dtype=np.int32))
        return (a.tolist(), b.tolist())

    r = tmk_run(1, prog, _gs_setup)
    a, b = r.results[0]
    assert a == b == [3.0, 1.0, 4.0, 1.0, 5.0]


def test_scatter_add_with_numpy_indices():
    def prog(tmk):
        v = tmk.array("vec")
        v.write((slice(0, 100),), np.zeros(100))
        v.scatter_add(np.array([7, 7, 9]), np.array([1.0, 2.0, 3.0]))
        return v.gather([7, 9]).tolist()

    assert tmk_run(1, prog, _gs_setup).results[0] == [3.0, 3.0]


# ---------------------------------------------------------------------- #
# engine hold elision: same contract, pure wall-clock change

def test_hold_elision_bit_identical(monkeypatch):
    def run_once():
        return run_variant("jacobi", "tmk", nprocs=3, preset="test",
                           seq_time=1.0)

    fast = run_once()
    monkeypatch.setattr(engine, "HOLD_ELISION", False)
    slow = run_once()
    assert _virtual_fingerprint(fast) == _virtual_fingerprint(slow)
    assert fast.events == slow.events


# ---------------------------------------------------------------------- #
# stats surface

def test_fastpath_summary_formats():
    stats = DsmStats()
    assert "inactive" in fastpath_summary(stats)
    stats.fastpath_hits = 30
    stats.fastpath_misses = 10
    stats.region_cache_hits = 25
    stats.epoch_bumps = 12
    text = fastpath_summary(stats)
    assert "30/40" in text and "75.0%" in text
    assert "25 region" in text and "12 acquire-edge" in text


def test_cli_run_stats_flag(capsys):
    assert main(["run", "jacobi", "tmk", "-n", "2", "--preset", "test",
                 "--stats"]) == 0
    out = capsys.readouterr().out
    assert "fast path:" in out


# ---------------------------------------------------------------------- #
# bench harness smoke

def test_bench_smoke_and_gate(tmp_path):
    from repro.bench import check_regression, run_bench
    from repro.bench.wallclock import load_baseline, write_results

    doc = run_bench(smoke=True, nprocs=2, only=["jacobi_tmk"])
    assert doc["preset"] == "test" and doc["calibration_s"] > 0
    entry = doc["kernels"]["jacobi_tmk"]
    assert entry["wall_s"] > 0 and entry["events"] > 0
    assert entry["fastpath_hits"] >= 0

    path = write_results(doc, str(tmp_path / "bench.json"))
    loaded = load_baseline(path)
    assert loaded == doc

    # a run gates cleanly against itself
    assert check_regression(doc, doc) == []

    # virtual drift always fails, wall regression fails past tolerance
    drifted = {**doc, "kernels": {"jacobi_tmk": {**entry,
                                                 "messages": entry["messages"] + 1}}}
    assert any("messages" in f for f in check_regression(drifted, doc))
    slow = {**doc, "kernels": {"jacobi_tmk": {**entry,
                                              "wall_s": entry["wall_s"] + 1.0}}}
    assert any("exceeds" in f for f in check_regression(slow, doc))

    # mismatched presets are not comparable
    other = {**doc, "preset": "bench"}
    assert check_regression(other, doc)


def test_bench_cli_no_gate(tmp_path, capsys):
    out_path = str(tmp_path / "bench.json")
    assert main(["bench", "--smoke", "--only", "jacobi_tmk", "-n", "2",
                 "--out", out_path, "--no-gate"]) == 0
    out = capsys.readouterr().out
    assert "calibration" in out and "jacobi_tmk" in out

"""Evaluation harness: runs every variant of every application and
regenerates each table and figure of the paper (see DESIGN.md §4).

Submodules are imported lazily (PEP 562): ``repro.eval.constants`` is a
leaf the :mod:`repro.api` registry depends on, so this package's
``__init__`` must not eagerly pull in the heavyweight harness modules
(``experiments``, ``chaos``, ...) — they import ``repro.api`` right back.
``from repro.eval import run_variant`` and friends keep working.
"""

_EXPORTS = {
    "ChaosCell": "repro.eval.chaos",
    "ChaosReport": "repro.eval.chaos",
    "chaos_sweep": "repro.eval.chaos",
    "PAPER": "repro.eval.constants",
    "PaperNumbers": "repro.eval.constants",
    "VariantResult": "repro.eval.experiments",
    "run_variant": "repro.eval.experiments",
    "run_all_variants": "repro.eval.experiments",
    "VARIANTS": "repro.eval.experiments",
    "RacecheckReport": "repro.eval.racecheck",
    "SeedRun": "repro.eval.racecheck",
    "racecheck_app": "repro.eval.racecheck",
    "format_table1": "repro.eval.tables",
    "format_speedup_figure": "repro.eval.tables",
    "format_traffic_table": "repro.eval.tables",
    "format_comparison": "repro.eval.tables",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.eval' has no attribute "
                             f"{name!r}")
    import importlib
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

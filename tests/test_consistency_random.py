"""Randomized release-consistency checking.

Hypothesis generates arbitrary race-free shared-memory programs — per
barrier epoch, each processor writes an arbitrary set of cells inside its
own column lane (lanes make concurrent writes disjoint by construction,
while still sharing pages heavily: a row spans every lane) and afterwards
reads arbitrary cells.  A sequential replay oracle computes what every read
must observe under release consistency.  Any protocol defect — lost diffs,
wrong merge order, watermark over-advance, stale validity — shows up as a
wrong read.

This is the test family that would have caught each of the protocol bugs
found during development (happens-before diff ordering, the mid-interval
watermark, the diff-cache/twin race, lock-chain tenure overtaking).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmk.api import tmk_run

ROWS = 8
COLS = 256          # one page holds 4 rows -> heavy false sharing
NPROCS = 4
LANE = COLS // NPROCS

# one program step per processor and epoch:
#   writes: list of (row, offset-in-lane, width, value-seed)
#   reads:  list of (row, col)
write_op = st.tuples(st.integers(0, ROWS - 1), st.integers(0, LANE - 1),
                     st.integers(1, LANE), st.integers(1, 100))
read_op = st.tuples(st.integers(0, ROWS - 1), st.integers(0, COLS - 1))
epoch = st.tuples(st.lists(write_op, max_size=4),
                  st.lists(read_op, max_size=4))
program_strategy = st.lists(
    st.tuples(*[epoch for _ in range(NPROCS)]), min_size=1, max_size=5)


def oracle_replay(program):
    """Sequential model: apply every epoch's writes in any order (they are
    disjoint), snapshotting the array after each epoch."""
    state = np.zeros((ROWS, COLS), dtype=np.float32)
    snapshots = []
    for epoch_ops in program:
        for pid, (writes, _reads) in enumerate(epoch_ops):
            lane_lo = pid * LANE
            for row, off, width, seed in writes:
                lo = lane_lo + off
                hi = min(lo + width, lane_lo + LANE)
                state[row, lo:hi] = seed + pid * 1000
        snapshots.append(state.copy())
    return snapshots


def dsm_program(tmk, program, snapshots):
    x = tmk.array("x")
    lane_lo = tmk.pid * LANE
    for epoch_idx, epoch_ops in enumerate(program):
        writes, _ = epoch_ops[tmk.pid]
        for row, off, width, seed in writes:
            lo = lane_lo + off
            hi = min(lo + width, lane_lo + LANE)
            x.write((row, slice(lo, hi)), float(seed + tmk.pid * 1000))
        tmk.barrier()
        _, reads = epoch_ops[tmk.pid]
        expect = snapshots[epoch_idx]
        for row, col in reads:
            got = float(x.read((row, col)))
            want = float(expect[row, col])
            assert got == want, (
                f"epoch {epoch_idx} p{tmk.pid}: x[{row},{col}] = {got}, "
                f"oracle says {want}")
        tmk.barrier()
    return True


def setup(space):
    space.alloc("x", (ROWS, COLS), np.float32)


@settings(max_examples=25, deadline=None)
@given(program_strategy)
def test_random_programs_consistent(program):
    snapshots = oracle_replay(program)
    result = tmk_run(NPROCS, dsm_program, setup, args=(program, snapshots))
    assert all(result.results)


@settings(max_examples=10, deadline=None)
@given(program_strategy, st.integers(2, 6))
def test_random_programs_consistent_any_size(program, nprocs):
    """Same property on varying cluster sizes (lanes re-derived)."""
    lane = COLS // nprocs

    def oracle():
        state = np.zeros((ROWS, COLS), dtype=np.float32)
        snaps = []
        for epoch_ops in program:
            for pid in range(nprocs):
                writes, _ = epoch_ops[pid % NPROCS]
                for row, off, width, seed in writes:
                    lo = pid * lane + (off % lane)
                    hi = min(lo + width, (pid + 1) * lane)
                    state[row, lo:hi] = seed + pid * 1000
            snaps.append(state.copy())
        return snaps

    snaps = oracle()

    def prog(tmk):
        x = tmk.array("x")
        for epoch_idx, epoch_ops in enumerate(program):
            writes, _ = epoch_ops[tmk.pid % NPROCS]
            for row, off, width, seed in writes:
                lo = tmk.pid * lane + (off % lane)
                hi = min(lo + width, (tmk.pid + 1) * lane)
                if hi > lo:
                    x.write((row, slice(lo, hi)),
                            float(seed + tmk.pid * 1000))
            tmk.barrier()
            _, reads = epoch_ops[tmk.pid % NPROCS]
            for row, col in reads:
                got = float(x.read((row, col)))
                want = float(snaps[epoch_idx][row, col])
                assert got == want, (epoch_idx, tmk.pid, row, col, got, want)
            tmk.barrier()
        return True

    result = tmk_run(nprocs, prog, setup)
    assert all(result.results)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.integers(0, NPROCS - 1), st.integers(1, 50)),
                min_size=1, max_size=12))
def test_random_lock_histories_serialize(ops):
    """Random lock-protected increments: the final counter equals the sum
    of every applied increment, on every processor."""

    def setup_counter(space):
        space.alloc("x", (ROWS, COLS), np.float32)
        space.alloc("counter", (1,), np.float64)

    def prog(tmk):
        c = tmk.array("counter")
        for who, amount in ops:
            if tmk.pid == who:
                tmk.lock_acquire(1)
                cur = float(c.read((0,)))
                c.write((0,), cur + amount)
                tmk.lock_release(1)
        tmk.barrier()
        return float(c.read((0,)))

    result = tmk_run(NPROCS, prog, setup_counter)
    total = float(sum(a for _w, a in ops))
    assert result.results == [total] * NPROCS

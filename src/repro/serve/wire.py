"""JSON-lines wire protocol for the run service (stdio and TCP).

One message per line, each a JSON object with an ``"op"`` field.  The
request/result payloads are exactly the documents produced by
:meth:`repro.api.RunRequest.to_json` and
:meth:`repro.api.RunResult.to_json` — the wire format *is* the library
serialization (``repro-run/1``), not a third dialect.

Server -> client::

    {"op": "hello", "schema": "repro-serve/1", "workers": N}
    {"op": "result", "id": ..., "index": i, "result": <run doc>}   # streamed
    {"op": "batch-done", "id": ..., "batch": <batch doc>}
    {"op": "stats", "stats": {...}}
    {"op": "error", "message": "..."}
    {"op": "bye"}

Client -> server::

    {"op": "run", "id": ..., "request": <request doc>}
    {"op": "batch", "id": ..., "requests": [<request doc>, ...]}
    {"op": "stats"}
    {"op": "shutdown"}          # stop the whole service
    {"op": "bye"}               # close just this connection

``repro serve`` speaks this over stdio (``--stdio``) or a TCP socket
(``--port``); :class:`WireClient` is the in-library client the e2e tests
and ``repro bench --throughput`` can point at a remote service.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Iterable, Optional

from repro.api.types import BatchResult, RunResult

WIRE_SCHEMA = "repro-serve/1"

__all__ = ["WIRE_SCHEMA", "serve_stdio", "WireServer", "WireClient"]


def _hello(service) -> dict:
    return {"op": "hello", "schema": WIRE_SCHEMA,
            "workers": service.workers}


def _handle(service, msg: dict, emit, lock: threading.Lock) -> str:
    """Dispatch one client message; returns "", "bye" or "shutdown".

    ``emit`` writes one message object back to this client; ``lock``
    serializes access to the (single-consumer) service queues so several
    TCP connections cannot interleave their streams.
    """
    op = msg.get("op")
    if op == "bye":
        emit({"op": "bye"})
        return "bye"
    if op == "shutdown":
        emit({"op": "bye"})
        return "shutdown"
    if op == "stats":
        with lock:
            emit({"op": "stats", "stats": service.stats()})
        return ""
    if op == "run":
        with lock:
            batch = service.run_batch([msg["request"]])
        emit({"op": "result", "id": msg.get("id"), "index": 0,
              "result": batch.results[0].to_json()})
        return ""
    if op == "batch":
        requests = msg.get("requests", [])
        results = [None] * len(requests)
        import time as _time
        t0 = _time.perf_counter()
        with lock:
            before = service._counters()
            for index, result in service.stream(requests):
                results[index] = result
                emit({"op": "result", "id": msg.get("id"), "index": index,
                      "result": result.to_json()})
            delta = {k: v - before[k]
                     for k, v in service._counters().items()}
            live = len(service._procs)
        batch = BatchResult(
            results=tuple(results),
            wall_s=round(_time.perf_counter() - t0, 6),
            workers=live,
            cache_hits=sum(1 for r in results if r and r.cache_hit),
            cache_misses=sum(1 for r in results
                             if r and r.cache_hit is False),
            crashes=delta["crashes"],
            affinity_hits=delta["affinity_hits"],
            steals=delta["steals"],
            rejected=delta["rejections"])
        emit({"op": "batch-done", "id": msg.get("id"),
              "batch": batch.to_json()})
        return ""
    emit({"op": "error", "message": f"unknown op {op!r}"})
    return ""


# ---------------------------------------------------------------------- #
# stdio transport

def serve_stdio(service, stdin, stdout) -> str:
    """Serve one client over text streams; returns why we stopped."""
    lock = threading.Lock()

    def emit(obj: dict) -> None:
        stdout.write(json.dumps(obj, sort_keys=True) + "\n")
        stdout.flush()

    emit(_hello(service))
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            msg = json.loads(line)
        except ValueError as exc:
            emit({"op": "error", "message": f"bad json: {exc}"})
            continue
        try:
            verdict = _handle(service, msg, emit, lock)
        except Exception as exc:  # noqa: BLE001 — keep the session alive
            emit({"op": "error", "message": str(exc)})
            continue
        if verdict:
            return verdict
    return "eof"


# ---------------------------------------------------------------------- #
# TCP transport

class WireServer:
    """Threaded TCP front-end over one shared :class:`RunService`.

    Connections are accepted concurrently but batches are serialized
    through the service lock (the pool is the unit of parallelism, not
    the connection count).  ``shutdown`` from any client stops the
    server.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                stdin = (line.decode("utf-8") for line in self.rfile)

                def emit(obj: dict) -> None:
                    data = json.dumps(obj, sort_keys=True) + "\n"
                    self.wfile.write(data.encode("utf-8"))
                    self.wfile.flush()

                emit(_hello(outer.service))
                for line in stdin:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        msg = json.loads(line)
                    except ValueError as exc:
                        emit({"op": "error", "message": f"bad json: {exc}"})
                        continue
                    try:
                        verdict = _handle(outer.service, msg, emit,
                                          outer._lock)
                    except Exception as exc:  # noqa: BLE001
                        emit({"op": "error", "message": str(exc)})
                        continue
                    if verdict == "bye":
                        return
                    if verdict == "shutdown":
                        outer._shutdown.set()
                        threading.Thread(target=outer._tcp.shutdown,
                                         daemon=True).start()
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = _Server((host, port), _Handler)
        self.host, self.port = self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._tcp.serve_forever(poll_interval=0.1)

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-tcp", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()


class WireClient:
    """Minimal JSON-lines client for a :class:`WireServer`."""

    def __init__(self, host: str, port: int, timeout: float = 300.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        self.hello = self._recv()
        if self.hello.get("schema") != WIRE_SCHEMA:
            raise RuntimeError(f"unexpected wire schema: {self.hello}")

    def _send(self, obj: dict) -> None:
        self._wfile.write(json.dumps(obj, sort_keys=True) + "\n")
        self._wfile.flush()

    def _recv(self) -> dict:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def run(self, request, id: Optional[object] = None) -> RunResult:
        doc = request.to_json() if hasattr(request, "to_json") else request
        self._send({"op": "run", "id": id, "request": doc})
        msg = self._recv()
        if msg.get("op") == "error":
            raise RuntimeError(msg.get("message"))
        return RunResult.from_json(msg["result"])

    def stream_batch(self, requests: Iterable,
                     id: Optional[object] = None):
        """Send a batch; yield streamed messages, ending in batch-done.

        Yields ``("result", index, RunResult)`` per completion, then
        ``("batch", None, BatchResult)``.
        """
        docs = [r.to_json() if hasattr(r, "to_json") else r
                for r in requests]
        self._send({"op": "batch", "id": id, "requests": docs})
        while True:
            msg = self._recv()
            op = msg.get("op")
            if op == "result":
                yield ("result", msg["index"],
                       RunResult.from_json(msg["result"]))
            elif op == "batch-done":
                yield ("batch", None, BatchResult.from_json(msg["batch"]))
                return
            elif op == "error":
                raise RuntimeError(msg.get("message"))

    def run_batch(self, requests: Iterable) -> BatchResult:
        batch = None
        for kind, _index, payload in self.stream_batch(requests):
            if kind == "batch":
                batch = payload
        return batch

    def stats(self) -> dict:
        self._send({"op": "stats"})
        msg = self._recv()
        if msg.get("op") == "error":
            raise RuntimeError(msg.get("message"))
        return msg["stats"]

    def shutdown(self) -> None:
        self._send({"op": "shutdown"})
        try:
            self._recv()
        except (ConnectionError, ValueError):
            pass

    def close(self) -> None:
        try:
            self._send({"op": "bye"})
        except (OSError, ValueError):
            pass
        self._sock.close()

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

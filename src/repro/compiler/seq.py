"""Sequential execution of the IR: the correctness oracle and Table 1 baseline.

The paper obtains sequential times "by removing all synchronization from the
TreadMarks programs and executing them on a single processor" — here, by
walking the program's statement schedule with plain numpy arrays and summing
the declared compute costs.  Every parallel variant is tested against the
arrays and scalars this produces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compiler.ir import Mark, ParallelLoop, Program, SeqBlock

__all__ = ["run_sequential", "sequential_time", "make_views"]


def make_views(program: Program) -> dict:
    """Zero-initialized full-size arrays for every declaration."""
    return {a.name: np.zeros(a.shape, dtype=a.dtype) for a in program.arrays}


def run_sequential(program: Program, views: Optional[dict] = None):
    """Execute the whole program on one processor.

    Returns ``(views, scalars, time)``: the final array contents, the final
    reduction values, and the summed virtual compute time.
    """
    if views is None:
        views = make_views(program)
    scalars: dict = {}
    marks: dict = {}
    time = 0.0
    for stmt in program.flat_statements():
        if isinstance(stmt, Mark):
            marks[stmt.label] = time
            continue
        if isinstance(stmt, SeqBlock):
            stmt.kernel(views)
            time += _cost_of(stmt, program)
        elif isinstance(stmt, ParallelLoop):
            lo, hi = stmt.start, stmt.extent
            for name in stmt.accumulate:   # recomputed from zero per instance
                views[name][...] = 0
            if stmt.schedule == "cyclic":
                idx = np.arange(lo, hi, dtype=np.int64)
                partials = stmt.kernel(views, idx)
                time += stmt.iter_cost(len(idx)) if not callable(
                    stmt.cost_per_iter) else stmt.chunk_cost(lo, hi)
            else:
                partials = stmt.kernel(views, lo, hi)
                time += stmt.chunk_cost(lo, hi)
            for name in stmt.accumulate:   # the source's buffer-merge work
                time += stmt.merge_cost_per_iter * views[name].shape[0]
            _fold_reductions(stmt, partials, scalars)
        else:
            raise TypeError(f"unexpected statement {stmt!r}")
    if "start" in marks:
        time -= marks["start"]   # report only the measured region
    return views, scalars, time


def _fold_reductions(loop: ParallelLoop, partials, scalars: dict) -> None:
    """Each loop instance's reduction restarts from the identity (matching
    the parallel backends, which reset the shared scalar per instance);
    ``scalars`` keeps the most recent value."""
    if not loop.reductions:
        return
    if partials is None:
        raise ValueError(f"{loop.name}: kernel returned no reduction partials")
    for red in loop.reductions:
        scalars[red.name] = red.combine(red.identity, partials[red.name])


def sequential_time(program: Program) -> float:
    """Summed compute cost of the measured region (no kernels executed)."""
    total = 0.0
    start_at = 0.0
    for stmt in program.flat_statements():
        if isinstance(stmt, Mark):
            if stmt.label == "start":
                start_at = total
        elif isinstance(stmt, SeqBlock):
            total += _cost_of(stmt, program)
        elif isinstance(stmt, ParallelLoop):
            total += stmt.chunk_cost(stmt.start, stmt.extent)
            for name in stmt.accumulate:
                total += (stmt.merge_cost_per_iter
                          * program.decl(name).shape[0])
    return total - start_at


def _cost_of(stmt: SeqBlock, program: Program) -> float:
    return stmt.cost(program.params) if callable(stmt.cost) else float(stmt.cost)

"""The per-node DSM request server.

Real TreadMarks services remote requests (diff fetches, lock forwarding,
barrier management) inside a SIGIO handler that interrupts the application.
In the simulation, each node runs one daemon *server process* that receives
every ``TAG_TMK_REQ`` message addressed to the node and dispatches it to the
protocol/sync handlers.  The server has its own virtual-time context (the
handler's CPU cost is charged there), while the node's main program keeps
computing — the same overlap an interrupt handler provides.

Delivery assumptions: the dispatch loop requires per-(src, dst) FIFO,
exactly-once delivery — a duplicated ``DiffRequest`` would double-charge a
serve, a reordered lock forward would break tenure order.  On the perfect
wire these hold by construction; under an attached
:class:`~repro.sim.faults.FaultPlan` the network's reliable-delivery
sublayer (sequence numbers, cumulative acks, retransmission, duplicate
suppression) restores them below this layer, so the server needs no
request ids or idempotence logic of its own.
"""

from __future__ import annotations

from repro.tmk.protocol import TAG_TMK_REQ, DiffRequest, TmkNode
from repro.tmk import sync as _sync

__all__ = ["start_server"]


def start_server(node: TmkNode):
    """Spawn the request-server daemon for ``node``; returns the Process."""

    def loop():
        sproc = node.server_proc
        while True:
            msg = node.net.recv(sproc, node.pid, tag=TAG_TMK_REQ)
            req = msg.payload
            kind = getattr(req, "kind", None)
            if isinstance(req, DiffRequest):
                node.serve_diff_request(sproc, req.reply_to, req)
            elif kind == "barrier":
                _sync.manager_handle_arrival(node, sproc, req)
            elif kind == "lock_req":
                _sync.manager_handle_lock_req(node, sproc, req)
            elif kind == "lock_fwd":
                _sync.holder_handle_forward(node, sproc, req)
            else:
                raise RuntimeError(f"unknown DSM request: {req!r}")

    node.server_proc = node.env.spawn_server("tmk-srv", loop)
    return node.server_proc

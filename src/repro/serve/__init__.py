"""`repro.serve` — the persistent worker-pool run service.

Library entry point::

    from repro.serve import RunService
    with RunService(workers=4) as svc:
        batch = svc.run_batch(requests)       # BatchResult, request order
        for idx, res in svc.stream(requests): # completion order
            ...

CLI entry point: ``python -m repro serve`` (stdio or TCP JSON-lines —
see :mod:`repro.serve.wire` for the protocol).

One level up, :class:`FleetService` (``python -m repro fleet``) presents
the same surface but shards batches across several remote ``repro serve
--tcp`` hosts — see :mod:`repro.serve.fleet`.
"""

from repro.serve.fleet import FleetService, parse_host
from repro.serve.service import DEFAULT_WORKERS, RunService
from repro.serve.wire import (WIRE_SCHEMA, WireClient, WireConnectionLost,
                              WireServer, serve_stdio)
from repro.serve.worker import DEFAULT_RUNNER

__all__ = [
    "RunService",
    "FleetService",
    "parse_host",
    "DEFAULT_WORKERS",
    "DEFAULT_RUNNER",
    "WIRE_SCHEMA",
    "WireClient",
    "WireConnectionLost",
    "WireServer",
    "serve_stdio",
]

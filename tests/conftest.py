"""Shared fixtures: small IR programs exercising every backend feature."""

import numpy as np
import pytest

from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Program, Reduction, SeqBlock,
                               Span, TimeLoop)

N = 32
COLS = 512


def stencil_program(iters=3):
    """Jacobi-shaped: seq init, halo stencil, aligned copy, sum reduction."""

    def init_kernel(views):
        views["a"][:, 0] = 1.0
        views["a"][0, :] = 1.0

    def stencil_kernel(views, lo, hi):
        a, b = views["a"], views["b"]
        lo2, hi2 = max(lo, 1), min(hi, N - 1)
        if hi2 <= lo2:
            return None
        src = a[lo2 - 1:hi2 + 1]
        b[lo2:hi2, 1:-1] = 0.25 * (src[:-2, 1:-1] + src[2:, 1:-1]
                                   + src[1:-1, :-2] + src[1:-1, 2:])

    def copy_kernel(views, lo, hi):
        lo2, hi2 = max(lo, 1), min(hi, N - 1)
        if hi2 > lo2:
            views["a"][lo2:hi2, 1:-1] = views["b"][lo2:hi2, 1:-1]
        return {"sum": float(views["a"][lo:hi].sum(dtype=np.float64))}

    return Program(
        "stencil",
        arrays=[ArrayDecl("a", (N, COLS), np.float32, distribute=0),
                ArrayDecl("b", (N, COLS), np.float32, distribute=0)],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("a", (Full(), Full()))], cost=1e-5),
              Mark("start"),
              TimeLoop("iters", iters, [
                  ParallelLoop("stencil", N, stencil_kernel,
                               reads=[Access("a", (Span(-1, 1), Full()))],
                               writes=[Access("b", (Span(), Full()))],
                               align=("b", 0), cost_per_iter=1e-6),
                  ParallelLoop("copy", N, copy_kernel,
                               reads=[Access("b", (Span(), Full()))],
                               writes=[Access("a", (Span(), Full()))],
                               reductions=[Reduction("sum")],
                               align=("a", 0), cost_per_iter=1e-6)]),
              Mark("stop")])


def irregular_program(iters=3, m=64, p=4):
    """NBF-shaped: indirect gathers, scatter accumulation, update loop."""
    rng = np.random.default_rng(7)
    partners = np.sort(rng.integers(0, m, size=(m, p)).astype(np.int32),
                       axis=1)

    def init_kernel(views):
        views["pos"][:] = np.linspace(0.0, 1.0, m)[:, None]
        views["prt"][:] = partners

    def footprint(views, lo, hi):
        own = np.arange(lo, hi, dtype=np.int64)
        return np.unique(np.concatenate(
            [own, views["prt"][lo:hi].astype(np.int64).ravel()]))

    def force_kernel(views, lo, hi):
        pos, f, prt = views["pos"], views["forces"], views["prt"]
        idx = prt[lo:hi].astype(np.int64)
        d = pos[lo:hi, None, :] - pos[idx] + 0.01
        np.add.at(f, np.arange(lo, hi), d.sum(axis=1))
        np.subtract.at(f.reshape(-1, 1), idx.ravel(),
                       d.reshape(-1, 1))

    def update_kernel(views, lo, hi):
        views["pos"][lo:hi] += 0.01 * views["forces"][lo:hi]
        return {"k": float((views["pos"][lo:hi] ** 2).sum(dtype=np.float64))}

    return Program(
        "irregular",
        arrays=[ArrayDecl("pos", (m, 1), np.float64, distribute=0),
                ArrayDecl("forces", (m, 1), np.float64, distribute=0),
                ArrayDecl("prt", (m, p), np.int32, distribute=0)],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("pos", (Full(), Full())),
                               Access("prt", (Full(), Full()))], cost=1e-6),
              Mark("start"),
              TimeLoop("steps", iters, [
                  ParallelLoop("forces", m, force_kernel,
                               reads=[Access("pos", Irregular(footprint)),
                                      Access("prt", (Span(),))],
                               writes=[Access("forces",
                                              Irregular(footprint))],
                               accumulate=["forces"],
                               align=("pos", 0), cost_per_iter=1e-6,
                               merge_cost_per_iter=1e-8),
                  ParallelLoop("update", m, update_kernel,
                               reads=[Access("forces", (Span(), Full()))],
                               writes=[Access("pos", (Span(), Full()))],
                               reductions=[Reduction("k")],
                               align=("pos", 0), cost_per_iter=1e-7)]),
              Mark("stop")])


def triangular_program(n=24):
    """MGS-shaped: per-iteration factories, cyclic schedule, Point reads."""
    from repro.compiler.ir import Point

    def init_kernel(views):
        v = views["v"]
        idx = np.arange(n)
        v[...] = np.sin(0.3 * (idx[:, None] + 1) * (idx[None, :] + 2)) * 0.3
        v[idx, idx] += 3.0

    def iteration(i):
        def norm_kernel(views, _i=i):
            row = views["v"][_i]
            views["v"][_i] = row / np.sqrt(float((row.astype(np.float64) ** 2).sum()))

        def orth_kernel(views, rows, _i=i):
            v = views["v"]
            vi = v[_i].astype(np.float64)
            coef = v[rows].astype(np.float64) @ vi
            v[rows] = (v[rows] - coef[:, None] * vi[None, :]).astype(v.dtype)

        stmts = [SeqBlock(f"norm[{i}]", norm_kernel,
                          reads=[Access("v", (Point(i), Full()))],
                          writes=[Access("v", (Point(i), Full()))],
                          cost=1e-7)]
        if i + 1 < n:
            stmts.append(ParallelLoop(
                f"orth[{i}]", n, orth_kernel,
                reads=[Access("v", (Point(i), Full())),
                       Access("v", (Span(), Full()))],
                writes=[Access("v", (Span(), Full()))],
                schedule="cyclic", start=i + 1,
                align=("v", 0), cost_per_iter=1e-7))
        return stmts

    return Program(
        "triangular",
        arrays=[ArrayDecl("v", (n, n), np.float32, distribute=0,
                          dist_kind="cyclic")],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("v", (Full(), Full()))], cost=1e-6),
              Mark("start"),
              TimeLoop("vectors", n, iteration),
              Mark("stop")])


@pytest.fixture
def stencil_prog():
    return stencil_program()


@pytest.fixture
def irregular_prog():
    return irregular_program()


@pytest.fixture
def triangular_prog():
    return triangular_program()

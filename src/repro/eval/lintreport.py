"""Registry-wide lint summary: badges for ``repro report`` and the CLI.

Runs the static verifier of :mod:`repro.compiler.lint` over every
registered application (at the test preset by default — the rules are
size-independent, only the false-sharing geometry changes) and renders a
per-app badge table: lint status, finding counts, and the static SPF
traffic estimate where the program is analyzable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.common import APP_REGISTRY, get_app
from repro.compiler import depend
from repro.compiler.lint import LintReport, lint_program

__all__ = ["AppLint", "RegistryLint", "lint_registry"]


@dataclass
class AppLint:
    """One application's lint outcome."""

    app: str
    report: LintReport
    verdicts: dict = field(default_factory=dict)   # family -> depend verdict

    @property
    def badge(self) -> str:
        e, w, i = self.report.counts()
        if e:
            return f"FAIL ({e} error(s))"
        if w or i:
            return f"clean ({w} warning(s), {i} info)"
        return "clean"

    def traffic_cell(self) -> str:
        t = self.report.traffic
        if t is None:
            return "-"
        if not t.analyzable:
            return "unanalyzable"
        return f"~{t.fetches} fetches / ~{t.twins_created} diffs"

    def depend_cell(self) -> str:
        if not self.verdicts:
            return "-"
        n = {depend.PROVEN_PARALLEL: 0, depend.PROVEN_SERIAL: 0,
             depend.UNKNOWN: 0}
        for v in self.verdicts.values():
            n[v] += 1
        return (f"{n[depend.PROVEN_PARALLEL]}P/"
                f"{n[depend.PROVEN_SERIAL]}S/"
                f"{n[depend.UNKNOWN]}U")


@dataclass
class RegistryLint:
    """Lint results for the whole application registry."""

    nprocs: int
    preset: str
    apps: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.report.ok for a in self.apps)

    def badge(self, app: str) -> str:
        for a in self.apps:
            if a.app == app:
                return a.badge
        return "-"

    def format(self, verbose: bool = False) -> str:
        lines = [f"Static lint (python -m repro lint, preset "
                 f"{self.preset!r}, n={self.nprocs}):", ""]
        width = max((len(a.app) for a in self.apps), default=8)
        lines.append(f"{'app':{width}s}  {'lint':28s}  {'depend':8s}  "
                     f"traffic (spf)")
        for a in self.apps:
            lines.append(f"{a.app:{width}s}  {a.badge:28s}  "
                         f"{a.depend_cell():8s}  {a.traffic_cell()}")
        if verbose:
            for a in self.apps:
                if a.report.findings:
                    lines += ["", a.report.format()]
        return "\n".join(lines)

    def as_doc(self) -> dict:
        docs = {}
        for a in self.apps:
            docs[a.app] = a.report.as_doc()
            docs[a.app]["depend_verdicts"] = dict(a.verdicts)
        return {"nprocs": self.nprocs, "preset": self.preset,
                "ok": self.ok, "apps": docs}


def lint_registry(apps=None, nprocs: int = 8, preset: str = "test",
                  backends: tuple = ("spf", "xhpf"), shadow: bool = True,
                  traffic: bool = True, suppress=(),
                  progress=None) -> RegistryLint:
    """Lint every registered app (or the given subset)."""
    out = RegistryLint(nprocs=nprocs, preset=preset)
    for app in (apps or sorted(APP_REGISTRY)):
        if progress:
            progress(f"lint {app}...")
        spec = get_app(app)
        program = spec.build_program(spec.params(preset))
        report = lint_program(program, nprocs, backends=backends,
                              shadow=shadow, traffic=traffic,
                              suppress=suppress)
        dep = depend.analyze_program(program, nprocs)
        out.apps.append(AppLint(
            app=app, report=report,
            verdicts={fam: v.verdict
                      for fam, v in sorted(dep.verdicts.items())}))
    return out

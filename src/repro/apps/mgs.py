"""MGS: Modified Gramm-Schmidt orthonormalization.

Section 5.3 of the paper.  At iteration ``i`` the algorithm first
*sequentially* normalizes vector ``i``, then makes all vectors ``j > i``
orthogonal to it in parallel.  Vectors are distributed cyclically to
balance the shrinking triangular iteration space; all processors
synchronize at the end of an iteration.

Variant notes (from the paper):

* the SPF fork-join model executes the normalization on the *master*, so
  vector ``i`` shuttles between its owner and the master every iteration —
  the main reason SPF (3.35) trails hand-coded TreadMarks (4.19), whose
  normalization happens on the owner;
* the message-passing programs *broadcast* the ith vector, while the
  shared-memory programs have every other processor page it in from the
  owner, and pay a separate barrier — hence XHPF 5.06 / PVMe 6.55;
* the XHPF SPMD model makes **all** processors execute the normalization
  redundantly, which is why XHPF trails PVMe;
* the paper's hand optimization merges synchronization and data and adds a
  TreadMarks broadcast, lifting 4.19 to 5.09 — reproduced here with the
  fork-piggyback option of the SPF backend.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, abs_sum,
                               append_signature_loops, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Point, Program, SeqBlock, Span, TimeLoop)
from repro.compiler.spf import SpfOptions

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# 56.4 s sequential at 1024x1024 (Table 1): total work ~ sum_i (N-i)*N
# orthogonalization updates plus N normalizations -> ~105 ns/element.
ORTH_COST = 105e-9
NORM_COST = 60e-9

PRESETS = {
    "paper": dict(n=1024),
    "bench": dict(n=1024),
    "test": dict(n=64),
}


# ---------------------------------------------------------------------- #
# kernels

def init_vectors(v: np.ndarray) -> None:
    """A deterministic well-conditioned basis (diagonally dominant)."""
    n = v.shape[0]
    idx = np.arange(n, dtype=np.float64)
    v[...] = (np.sin(0.37 * (idx[:, None] + 1) * (idx[None, :] + 2))
              * 0.4).astype(v.dtype)
    v[np.arange(n), np.arange(n)] += 4.0


def normalize_vector(v: np.ndarray, i: int) -> None:
    norm = float(np.sqrt(np.sum(v[i].astype(np.float64) ** 2)))
    v[i] = (v[i] / norm).astype(v.dtype)


def orthogonalize_rows(v: np.ndarray, i: int, rows: np.ndarray) -> None:
    """v[rows] -= (v[rows] . v[i]) v[i] (all rows > i)."""
    if len(rows) == 0:
        return
    vi = v[i].astype(np.float64)
    coef = v[rows].astype(np.float64) @ vi
    v[rows] = (v[rows] - coef[:, None] * vi[None, :]).astype(v.dtype)


# ---------------------------------------------------------------------- #
# IR description

def build_program(params: dict) -> Program:
    n = params["n"]

    def iteration(i: int) -> list:
        def norm_kernel(views, _i=i):
            normalize_vector(views["v"], _i)

        def orth_kernel(views, rows, _i=i):
            orthogonalize_rows(views["v"], _i, rows)

        stmts = [SeqBlock(f"normalize[{i}]", norm_kernel,
                          reads=[Access("v", (Point(i), Full()))],
                          writes=[Access("v", (Point(i), Full()))],
                          cost=NORM_COST * n)]
        if i + 1 < n:
            stmts.append(ParallelLoop(
                f"orthogonalize[{i}]", n, orth_kernel,
                reads=[Access("v", (Point(i), Full())),
                       Access("v", (Span(), Full()))],
                writes=[Access("v", (Span(), Full()))],
                schedule="cyclic", start=i + 1,
                align=("v", 0), cost_per_iter=ORTH_COST * n))
        return stmts

    program = Program(
        name="mgs",
        arrays=[ArrayDecl("v", (n, n), np.float32, distribute=0,
                          dist_kind="cyclic")],
        body=[SeqBlock("init", lambda views: init_vectors(views["v"]),
                       writes=[Access("v", (Full(), Full()))],
                       cost=10e-9 * n * n),
              Mark("start"),
              TimeLoop("vectors", n, iteration),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, ["v"])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks: the owner normalizes; one barrier per iteration

def hand_tmk_setup(space, params: dict) -> None:
    n = params["n"]
    space.alloc("v", (n, n), np.float32)


def hand_tmk(tmk, params: dict) -> dict:
    n = params["n"]
    v = tmk.array("v")
    raw = tmk.node.view(v.handle)

    if tmk.pid == 0:
        v.writable()
        init_vectors(raw)
        tmk.compute(10e-9 * n * n)
    tmk.barrier()
    tmk.env.mark("start")

    my_rows = np.arange(tmk.pid, n, tmk.nprocs, dtype=np.int64)
    for i in range(n):
        owner = i % tmk.nprocs
        if tmk.pid == owner:
            # vector i is already current here: this processor wrote it
            # during its orthogonalization of iteration i-1
            v.writable((slice(i, i + 1), slice(None)))
            normalize_vector(raw, i)
            tmk.compute(NORM_COST * n)
        tmk.barrier()
        rows = my_rows[my_rows > i]
        if rows.size:
            v.read((slice(i, i + 1), slice(None)))   # page in vector i
            row_elems = n
            tmk.node.ensure_write_elements(v.handle, rows * row_elems,
                                           elem_span=row_elems)
            orthogonalize_rows(raw, i, rows)
            tmk.compute(ORTH_COST * n * rows.size)
    tmk.barrier()
    tmk.env.mark("stop")
    return {"sig_v": abs_sum(raw[my_rows])}


# ---------------------------------------------------------------------- #
# hand-coded PVMe: the owner normalizes and broadcasts vector i

def hand_pvme(p, params: dict) -> dict:
    n = params["n"]
    v = np.zeros((n, n), dtype=np.float32)
    init_vectors(v)
    p.compute(10e-9 * n * n if p.tid == 0 else 0.0)
    p.env.mark("start")
    my_rows = np.arange(p.tid, n, p.ntasks, dtype=np.int64)
    for i in range(n):
        owner = i % p.ntasks
        if p.tid == owner:
            normalize_vector(v, i)
            p.compute(NORM_COST * n)
            p.bcast(v[i].copy(), root=owner)
        else:
            v[i] = p.bcast(None, root=owner)
        rows = my_rows[my_rows > i]
        if rows.size:
            orthogonalize_rows(v, i, rows)
            p.compute(ORTH_COST * n * rows.size)
    p.env.mark("stop")
    return {"sig_v": abs_sum(v[my_rows])}


def _piggyback_hint(loop) -> list:
    """Fork-message payload for the optimized SPF variant: the vector the
    master just normalized rides on the fork (sync+data merging)."""
    name = loop.name
    if name.startswith("orthogonalize["):
        i = int(name[len("orthogonalize["):-1])
        return [("v", (slice(i, i + 1), slice(None)))]
    return []


SPEC = register(AppSpec(
    name="mgs",
    regular=True,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=["v"],
    spf_opt_options=lambda: SpfOptions(piggyback=_piggyback_hint),
    notes="Section 5.3; hand optimization = sync+data merge and broadcast",
))

#!/usr/bin/env python
"""Section 8 of the paper, implemented: closing the regular-code gap.

The paper's conclusion conjectures that "with appropriate enhancements to
the compiler and DSM system ... the performance of regular applications can
match that of their message passing counterparts".  Section 8 lists the
enhancements; this repository implements them as compiler options:

* communication aggregation        (SpfOptions.aggregate     — §5/§8)
* barrier elimination/loop fusion  (SpfOptions.fuse_loops    — Tseng [17])
* efficient reductions             (SpfOptions.tree_reductions)
* pushing data instead of pulling  (SpfOptions.push_halos)
* dynamic load balancing           (SpfOptions.balance_loops)

This script stacks them on compiler-generated Jacobi and compares each
stage against hand-coded PVMe message passing.

Run:  python examples/enhancements_study.py     (~1 minute)
"""

from repro.apps.jacobi import SPEC
from repro.compiler.seq import sequential_time
from repro.compiler.spf import SpfOptions, run_spf
from repro.eval.experiments import run_variant

NPROCS = 8
PARAMS = dict(n=2048, iters=8, warmup=1)

STAGES = [
    ("SPF baseline", SpfOptions()),
    ("+ aggregation", SpfOptions(aggregate=True)),
    ("+ loop fusion", SpfOptions(aggregate=True, fuse_loops=True)),
    ("+ tree reductions", SpfOptions(aggregate=True, fuse_loops=True,
                                     tree_reductions=True)),
    ("+ halo pushing", SpfOptions(aggregate=True, fuse_loops=True,
                                  tree_reductions=True, push_halos=True)),
]


def main():
    seq = sequential_time(SPEC.build_program(PARAMS))
    print(f"Jacobi {PARAMS['n']}x{PARAMS['n']}, {NPROCS} simulated "
          f"processors (sequential: {seq:.1f}s virtual)\n")
    print(f"{'configuration':22s} {'speedup':>8s} {'msgs':>7s} "
          f"{'faults':>7s} {'pushes':>7s}")
    for label, options in STAGES:
        r = run_spf(SPEC.build_program(PARAMS), nprocs=NPROCS,
                    options=options)
        elapsed, wtraffic = r.window()
        print(f"{label:22s} {seq / elapsed:8.2f} {wtraffic.messages:7d} "
              f"{r.dsm_stats.read_faults:7d} {r.dsm_stats.pushes:7d}")

    pvme = run_variant("jacobi", "pvme", nprocs=NPROCS, preset="bench")
    print(f"{'hand-coded PVMe':22s} {pvme.speedup:8.2f} "
          f"{pvme.messages:7d}")
    print("\nThe paper (Section 9): 'With appropriate enhancements ... the "
          "performance of regular\napplications can match that of their "
          "message passing counterparts.'")


if __name__ == "__main__":
    main()

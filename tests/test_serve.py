"""End-to-end tests of the repro.serve worker-pool service.

The contract under test (see docs/API.md):

* a mixed batch through the service returns results **bit-identical**
  (``RunResult.fingerprint()``) to direct in-process ``execute`` calls;
* the per-worker compiled-program caches work and their hit/miss
  counters surface through ``RunResult.cache_hit`` and the batch/service
  counters;
* a worker that raises returns a structured ``ok=False`` result; a
  worker that *dies* mid-batch surfaces a structured ``WorkerCrashed``
  result and the batch still completes — never a hang;
* the JSON-lines wire protocol (TCP) round-trips requests, streamed
  results and batch documents.
"""

import pytest

from repro.api import ProgramCache, RunRequest, execute
from repro.serve import RunService, WireClient, WireServer

#: tiny standard-preset mix: two DSM variants, one MP, one sequential
REQUESTS = [
    RunRequest("jacobi", "spf", nprocs=2, preset="test", seq_time=1.0),
    RunRequest("jacobi", "tmk", nprocs=2, preset="test", seq_time=1.0),
    RunRequest("jacobi", "spf", nprocs=2, preset="test", seq_time=1.0),
    RunRequest("mgs", "seq", nprocs=1, preset="test"),
]

ECHO = "tests.serve_helpers:echo_runner"


@pytest.fixture(scope="module")
def service():
    with RunService(workers=2) as svc:
        yield svc


@pytest.fixture(scope="module")
def batch(service):
    return service.run_batch(REQUESTS)


def test_batch_results_bit_identical_to_direct_execution(batch):
    cache = ProgramCache()
    direct = [execute(r, cache) for r in REQUESTS]
    assert [r.fingerprint() for r in batch.results] \
        == [r.fingerprint() for r in direct]


def test_batch_is_ordered_and_ok(batch):
    assert batch.ok and batch.runs == len(REQUESTS)
    assert [r.variant for r in batch.results] \
        == [r.variant for r in REQUESTS]
    assert all(r.worker is not None for r in batch.results)
    assert batch.crashes == 0


def test_cache_counters_surface(service, batch):
    # first batch: every compile is at most one hit (the repeated jacobi
    # spf request can land on the warm worker), never all hits
    assert batch.cache_misses > 0
    # identical second batch: the pool is warm, so repeats that land on a
    # worker that has seen the request hit its cache; service-level stats
    # must account every verdict
    again = service.run_batch(REQUESTS)
    assert again.cache_hits + again.cache_misses == len(REQUESTS)
    assert again.cache_hits > 0
    stats = service.stats()
    assert stats["cache"]["hits"] >= again.cache_hits
    assert stats["cache"]["misses"] >= batch.cache_misses
    assert [r.fingerprint() for r in again.results] \
        == [r.fingerprint() for r in batch.results]


def test_streaming_yields_every_index_once(service):
    seen = dict(service.stream(REQUESTS[:2]))
    assert sorted(seen) == [0, 1]
    assert all(res.ok for res in seen.values())


def test_worker_exception_returns_structured_failure():
    with RunService(workers=1, runner=ECHO) as svc:
        batch = svc.run_batch([
            RunRequest("jacobi", "spf", preset="test", tag="ok-1"),
            RunRequest("jacobi", "spf", preset="test", tag="fail"),
            RunRequest("jacobi", "spf", preset="test", tag="ok-2"),
        ])
    assert not batch.ok and batch.runs == 3
    failed = batch.results[1]
    assert failed.error_kind == "RuntimeError"
    assert "injected failure" in failed.error
    assert batch.results[0].ok and batch.results[2].ok
    assert batch.crashes == 0


def test_worker_crash_mid_batch_surfaces_error_not_hang():
    with RunService(workers=1, runner=ECHO) as svc:
        batch = svc.run_batch([
            RunRequest("jacobi", "spf", preset="test", tag="ok-1"),
            RunRequest("jacobi", "spf", preset="test", tag="crash"),
            RunRequest("jacobi", "spf", preset="test", tag="ok-2"),
        ])
        assert not batch.ok and batch.runs == 3
        crashed = batch.results[1]
        assert crashed.error_kind == "WorkerCrashed"
        assert "died" in crashed.error
        assert batch.crashes == 1
        # the respawned worker finished the rest of the batch ...
        assert batch.results[0].ok and batch.results[2].ok
        # ... and keeps serving subsequent batches
        after = svc.run_batch([RunRequest("jacobi", "spf", preset="test",
                                          tag="ok-3")])
        assert after.ok
        assert svc.stats()["crashes"] == 1


def test_unknown_variant_fails_structured_not_fatal(service):
    res = service.run_batch([RunRequest("jacobi", "warp",
                                        preset="test")]).results[0]
    assert not res.ok and res.error_kind == "ValueError"
    assert "warp" in res.error


def test_wire_protocol_round_trip(service):
    server = WireServer(service)
    server.serve_in_thread()
    try:
        with WireClient(server.host, server.port) as client:
            assert client.hello["workers"] == 2
            single = client.run(REQUESTS[0])
            assert single.ok and single.variant == "spf"
            events = list(client.stream_batch(REQUESTS))
            kinds = [k for k, _i, _p in events]
            assert kinds.count("result") == len(REQUESTS)
            assert kinds[-1] == "batch"
            wire_batch = events[-1][2]
            assert wire_batch.ok and wire_batch.runs == len(REQUESTS)
            cache = ProgramCache()
            direct = [execute(r, cache) for r in REQUESTS]
            assert [r.fingerprint() for r in wire_batch.results] \
                == [r.fingerprint() for r in direct]
            assert client.stats()["workers"] == 2
    finally:
        server.close()

"""NBF: the non-bonded force kernel of a molecular dynamics simulation.

Section 6.2 of the paper.  Each molecule has a list of *partners* (molecules
close enough to exert non-negligible force).  The force loop walks each
molecule's partner list and "updates the forces on both of them based on
the distance between them"; at iteration end the coordinates advance under
the accumulated force.  Molecules are block-partitioned; "each processor
accumulates the force updates in a local buffer, and adds the buffers
together after the force computation loop".

The indirection (partner lists) defeats both compilers' analysis:

* SPF + TreadMarks fetch on demand: only the partner-window boundary pages
  of the coordinate array and the overlapping staging sections travel;
* XHPF "makes each processor broadcast its local force buffer, and the
  coordinates of all its molecules" — 163 MB vs TreadMarks' 228 KB in
  Table 3, and the worst speedup of the study (3.85 vs 5.31/5.86/6.18).

Partner lists are synthetic but structurally faithful: partner ``j`` of
molecule ``i`` satisfies ``i < j <= i + W`` (pair listed once, forces
applied to both), with ``W`` far smaller than a partition, so cross-
processor interactions are confined to partition boundaries — the "close
enough" locality of a real MD decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, abs_sum,
                               append_signature_loops, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Program, Reduction, SeqBlock,
                               Span, TimeLoop)

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# 63.9 s sequential at 32K molecules x 20 iterations (Table 1) with 16
# partners per molecule -> ~6.1 us per pair interaction.
PAIR_COST = 6.1e-6
UPDATE_COST = 0.15e-6
MERGE_COST = 0.05e-6
DT = 1e-3
SOFTEN = 0.5      # softening in the denominator keeps forces bounded

PRESETS = {
    "paper": dict(n=32768, iters=20, warmup=0, P=16, W=3072),
    "bench": dict(n=32768, iters=6, warmup=0, P=16, W=3072),
    "test": dict(n=256, iters=3, warmup=0, P=8, W=16),
}


# ---------------------------------------------------------------------- #
# model construction and kernels

def build_partners(n: int, P: int, W: int) -> np.ndarray:
    """Deterministic partner lists: P partners in (i, i+W], self-padded."""
    rng = np.random.default_rng(12345)
    offsets = rng.integers(1, W + 1, size=(n, P)).astype(np.int64)
    partners = np.arange(n, dtype=np.int64)[:, None] + offsets
    own = np.arange(n, dtype=np.int64)[:, None]
    partners = np.where(partners < n, partners, own)  # pad with self (zero force)
    return np.sort(partners, axis=1).astype(np.int32)


def init_positions(pos: np.ndarray) -> None:
    n = pos.shape[0]
    t = np.arange(n, dtype=np.float64)
    pos[:, 0] = 0.9 * t
    pos[:, 1] = np.sin(0.05 * t)
    pos[:, 2] = np.cos(0.07 * t)


def pair_forces_rows(pos: np.ndarray, partners: np.ndarray,
                     forces: np.ndarray, lo: int, hi: int) -> None:
    """Accumulate pair forces for molecules [lo, hi) into ``forces``."""
    idx = partners[lo:hi].astype(np.int64)            # (rows, P)
    d = pos[lo:hi, None, :].astype(np.float64) - pos[idx]
    r2 = np.sum(d * d, axis=-1) + SOFTEN
    f = d / (r2 ** 1.5)[..., None]                    # (rows, P, 3)
    np.add.at(forces, np.arange(lo, hi), f.sum(axis=1).astype(forces.dtype))
    np.subtract.at(forces.reshape(-1, 3), idx.ravel(),
                   f.reshape(-1, 3).astype(forces.dtype))


def update_rows(pos: np.ndarray, forces: np.ndarray, lo: int, hi: int) -> dict:
    pos[lo:hi] += DT * forces[lo:hi]
    e = float(np.sum(pos[lo:hi].astype(np.float64) ** 2))
    return {"esum": e}


def touched_rows(partners: np.ndarray, lo: int, hi: int) -> np.ndarray:
    return np.unique(np.concatenate([np.arange(lo, hi, dtype=np.int64),
                                     partners[lo:hi].astype(np.int64).ravel()]))


def _row_elements(rows: np.ndarray, width: int = 3) -> np.ndarray:
    """Flat element indices of whole (N, 3) rows."""
    return (rows[:, None] * width + np.arange(width)[None, :]).ravel()


# ---------------------------------------------------------------------- #
# IR description

def build_program(params: dict) -> Program:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    P, W = params["P"], params["W"]

    def init_kernel(views):
        init_positions(views["pos"])
        views["partners"][...] = build_partners(n, P, W)

    def force_kernel(views, lo, hi):
        pair_forces_rows(views["pos"], views["partners"], views["forces"],
                         lo, hi)

    def pos_footprint(views, lo, hi):
        return _row_elements(touched_rows(views["partners"], lo, hi))

    def update_kernel(views, lo, hi):
        return update_rows(views["pos"], views["forces"], lo, hi)

    iteration = [
        ParallelLoop("forces", n, force_kernel,
                     reads=[Access("pos", Irregular(pos_footprint)),
                            Access("partners", (Span(), Full()))],
                     writes=[Access("forces", Irregular(pos_footprint))],
                     accumulate=["forces"],
                     align=("pos", 0),
                     cost_per_iter=PAIR_COST * P,
                     merge_cost_per_iter=MERGE_COST),
        ParallelLoop("update", n, update_kernel,
                     reads=[Access("forces", (Span(), Full()))],
                     writes=[Access("pos", (Span(), Full()))],
                     reductions=[Reduction("esum")],
                     align=("pos", 0),
                     cost_per_iter=UPDATE_COST),
    ]
    program = Program(
        name="nbf",
        arrays=[ArrayDecl("pos", (n, 3), np.float32, distribute=0),
                ArrayDecl("forces", (n, 3), np.float32, distribute=0),
                ArrayDecl("partners", (n, P), np.int32, distribute=0)],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("pos", (Full(), Full())),
                               Access("partners", (Full(), Full()))],
                       cost=50e-9 * n),
              TimeLoop("warmup", max(warmup, 1), iteration),
              Mark("start"),
              TimeLoop("iterations", iters, iteration),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, ["pos", "forces"])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks: private buffer + shared staging + merge loop

def hand_tmk_setup(space, params: dict) -> None:
    n = params["n"]
    space.alloc("pos", (n, 3), np.float32)
    space.alloc("staging", (64, n, 3), np.float32)


def hand_tmk(tmk, params: dict) -> dict:
    n, iters = params["n"], params["iters"]
    warmup = max(params["warmup"], 1)
    P, W = params["P"], params["W"]
    pos = tmk.array("pos")
    staging = tmk.array("staging")
    pos_raw, staging_raw = pos.raw(), staging.raw()
    lo, hi = tmk.block_range(n)
    partners = build_partners(n, P, W)               # private (computed locally)
    forces = np.zeros((n, 3), dtype=np.float32)      # private buffer
    touched = touched_rows(partners, lo, hi)
    touched_elems = _row_elements(touched)
    esum = [0.0]

    if tmk.pid == 0:
        pos.writable()
        init_positions(pos_raw)
        tmk.compute(50e-9 * n)
    tmk.barrier()

    def one_iteration():
        forces[...] = 0.0
        tmk.node.ensure_read_elements(pos.handle, touched_elems)
        pair_forces_rows(pos_raw, partners, forces, lo, hi)
        tmk.compute(PAIR_COST * P * (hi - lo))
        # publish contributions in this processor's staging row
        base = tmk.pid * n
        tmk.node.ensure_write_elements(staging.handle,
                                       _row_elements(base + touched))
        staging_raw[tmk.pid, touched] = forces[touched]
        tmk.barrier()
        # merge: own block = sum of every processor's contributions
        tmk.node.ensure_read(staging.handle,
                             (slice(0, tmk.nprocs), slice(lo, hi)))
        merged = staging_raw[:tmk.nprocs, lo:hi].sum(axis=0)
        tmk.compute(MERGE_COST * (hi - lo))
        pos.writable((slice(lo, hi), slice(None)))
        pos_raw[lo:hi] += DT * merged
        esum[0] = float(np.sum(pos_raw[lo:hi].astype(np.float64) ** 2))
        tmk.compute(UPDATE_COST * (hi - lo))
        tmk.barrier()

    for _ in range(warmup):
        one_iteration()
    tmk.env.mark("start")
    for _ in range(iters):
        one_iteration()
    tmk.env.mark("stop")
    merged_final = staging_raw[:tmk.nprocs, lo:hi].sum(axis=0)
    return {"sig_pos": abs_sum(pos_raw[lo:hi]),
            "sig_forces": abs_sum(merged_final),
            "esum": esum[0]}


# ---------------------------------------------------------------------- #
# hand-coded PVMe: windowed position exchange + cross-contribution returns

TAG_POS, TAG_CONTRIB = 50, 51


def hand_pvme(p, params: dict) -> dict:
    n, iters = params["n"], params["iters"]
    warmup = max(params["warmup"], 1)
    P, W = params["P"], params["W"]
    lo, hi = p.block_range(n)
    if hi - lo < W and p.ntasks > 1:
        raise ValueError("partner window exceeds a partition; "
                         "enlarge n or reduce W")
    pos = np.zeros((n, 3), dtype=np.float32)
    forces = np.zeros((n, 3), dtype=np.float32)
    init_positions(pos)
    partners = build_partners(n, P, W)
    up, down = p.tid - 1, p.tid + 1
    esum = [0.0]

    def one_iteration():
        # partners reach at most W molecules ahead: fetch [hi, hi+W) from
        # the next processor, supply [lo, lo+W) to the previous one
        if up >= 0:
            p.send(up, pos[lo:lo + W].copy(), tag=TAG_POS)
        if down < p.ntasks:
            pos[hi:hi + W] = p.recv(src=down, tag=TAG_POS)
        forces[...] = 0.0
        pair_forces_rows(pos, partners, forces, lo, hi)
        p.compute(PAIR_COST * P * (hi - lo))
        # contributions to molecules [hi, hi+W) belong to the next processor
        if down < p.ntasks:
            p.send(down, forces[hi:hi + W].copy(), tag=TAG_CONTRIB)
        if up >= 0:
            forces[lo:lo + W] += p.recv(src=up, tag=TAG_CONTRIB)
        pos[lo:hi] += DT * forces[lo:hi]
        esum[0] = float(np.sum(pos[lo:hi].astype(np.float64) ** 2))
        p.compute(UPDATE_COST * (hi - lo))

    for _ in range(warmup):
        one_iteration()
    p.env.mark("start")
    for _ in range(iters):
        one_iteration()
    p.env.mark("stop")
    return {"sig_pos": abs_sum(pos[lo:hi]),
            "sig_forces": abs_sum(forces[lo:hi]),
            "esum": esum[0]}


SPEC = register(AppSpec(
    name="nbf",
    regular=False,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=["pos", "forces"],
    spf_opt_options=None,
    notes="Section 6.2; irregular — partner lists defeat both compilers",
))

"""Collective operations over :class:`~repro.msg.endpoint.Comm`.

Implemented with the algorithms a mid-90s library would use on an SP/2:

* broadcast and reduce as binomial trees (``n-1`` messages, logarithmic
  depth),
* allreduce as reduce + broadcast,
* gather/allgather linear to/from the root (PVM semantics),
* alltoall as direct pairwise exchange (``n(n-1)`` messages) — this is the
  pattern 3-D FFT's transpose uses, where the paper observes the hand-coded
  message-passing version needs ~30x fewer messages than the DSM,
* a dissemination barrier for completeness (hand-coded message-passing
  programs rarely need it; data messages carry the synchronization).

Every collective is, well, collective: all ranks must call it with matching
arguments; internal phase tags are drawn deterministically per call.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


from repro.msg.endpoint import Comm

__all__ = ["bcast", "reduce", "allreduce", "gather", "allgather",
           "scatter", "alltoall", "mp_barrier"]


def _tree_children(rank: int, root: int, size: int) -> list[int]:
    """Binomial-tree children of ``rank`` in a tree rooted at ``root``."""
    rel = (rank - root) % size
    children = []
    lowbit = rel & -rel if rel else size  # rel 0 keeps all bits
    bit = 1
    while bit < size and bit < lowbit:
        if rel + bit < size:
            children.append((rel + bit + root) % size)
        bit <<= 1
    return children


def _tree_parent(rank: int, root: int, size: int) -> Optional[int]:
    rel = (rank - root) % size
    if rel == 0:
        return None
    # clear the lowest set bit of rel
    parent_rel = rel & (rel - 1)
    return (parent_rel + root) % size


def bcast(comm: Comm, value: Any, root: int = 0, tag: Optional[int] = None) -> Any:
    """Binomial-tree broadcast; returns the value on every rank."""
    tag = comm.next_tag() if tag is None else tag
    if comm.rank != root:
        value = comm.recv(src=_tree_parent(comm.rank, root, comm.size), tag=tag)
    for child in _tree_children(comm.rank, root, comm.size):
        comm.send(child, value, tag=tag)
    return value


def reduce(comm: Comm, value: Any, op: Callable[[Any, Any], Any],
           root: int = 0, tag: Optional[int] = None) -> Any:
    """Binomial-tree reduction; result valid only on ``root``."""
    tag = comm.next_tag() if tag is None else tag
    acc = value
    for child in _tree_children(comm.rank, root, comm.size):
        acc = op(acc, comm.recv(src=child, tag=tag))
    parent = _tree_parent(comm.rank, root, comm.size)
    if parent is not None:
        comm.send(parent, acc, tag=tag)
        return None
    return acc


def allreduce(comm: Comm, value: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Reduce to rank 0, then broadcast the result."""
    acc = reduce(comm, value, op, root=0)
    return bcast(comm, acc, root=0)


def gather(comm: Comm, value: Any, root: int = 0,
           tag: Optional[int] = None) -> Optional[list]:
    """Linear gather; returns the rank-ordered list on ``root``."""
    tag = comm.next_tag() if tag is None else tag
    if comm.rank == root:
        out: list = [None] * comm.size
        out[root] = value
        for _ in range(comm.size - 1):
            msg = comm.recv_msg(tag=tag)
            out[msg.src] = msg.payload
        return out
    comm.send(root, value, tag=tag)
    return None


def allgather(comm: Comm, value: Any) -> list:
    """Gather to rank 0, broadcast the list."""
    out = gather(comm, value, root=0)
    return bcast(comm, out, root=0)


def scatter(comm: Comm, values: Optional[list], root: int = 0,
            tag: Optional[int] = None) -> Any:
    """Linear scatter of a rank-indexed list from ``root``."""
    tag = comm.next_tag() if tag is None else tag
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError("scatter needs one value per rank at the root")
        for dst in range(comm.size):
            if dst != root:
                comm.send(dst, values[dst], tag=tag)
        return values[root]
    return comm.recv(src=root, tag=tag)


def alltoall(comm: Comm, values: list, tag: Optional[int] = None) -> list:
    """Direct pairwise exchange: ``values[d]`` goes to rank ``d``.

    Returns the rank-ordered received list.  ``n(n-1)`` messages total.
    """
    tag = comm.next_tag() if tag is None else tag
    if len(values) != comm.size:
        raise ValueError("alltoall needs one slot per rank")
    out: list = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    for shift in range(1, comm.size):
        dst = (comm.rank + shift) % comm.size
        comm.send(dst, values[dst], tag=tag)
    for _ in range(comm.size - 1):
        msg = comm.recv_msg(tag=tag)
        out[msg.src] = msg.payload
    return out


def mp_barrier(comm: Comm, tag: Optional[int] = None) -> None:
    """Dissemination barrier: ``n * ceil(log2 n)`` small messages.

    Each round draws its own tag.  The old scheme used ``tag + round_no``,
    which silently reused tag values that ``next_tag`` would hand out to
    the *next* collective — a later broadcast's message could match a
    stale barrier recv.  All ranks call ``next_tag`` in lockstep per
    round, so the drawn tags agree; an explicit ``tag`` reserves the
    ``ceil(log2 n)`` consecutive values after it.
    """
    if comm.size == 1:
        if tag is None:
            comm.next_tag()
        return
    dist = 1
    round_no = 0
    while dist < comm.size:
        round_tag = comm.next_tag() if tag is None else tag + round_no
        dst = (comm.rank + dist) % comm.size
        src = (comm.rank - dist) % comm.size
        comm.send(dst, round_no, tag=round_tag, nbytes=4,
                  category="sync")
        comm.recv(src=src, tag=round_tag)
        dist <<= 1
        round_no += 1

"""Tests for the static IR verifier (repro.compiler.lint).

One test per rule on minimal synthetic programs, ShadowArray mechanics,
suppression globs, and the registry-wide "every shipped app lints clean"
acceptance check.
"""

import numpy as np
import pytest

from repro.apps.common import APP_REGISTRY, get_app
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Point, Program, Reduction,
                               SeqBlock, Span, TimeLoop)
from repro.compiler.lint import (ShadowArray, estimate_spf_traffic,
                                 lint_program)
from repro.compiler.spf import SpfOptions

N = 32


def noop(views, lo, hi):
    return None


def make_prog(body, arrays=None, name="p"):
    if arrays is None:
        arrays = [ArrayDecl("a", (N, N), np.float32, distribute=0),
                  ArrayDecl("b", (N, N), np.float32, distribute=0)]
    return Program(name, arrays=arrays, body=body)


def findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


def rules_of(report):
    return {f.rule for f in report.findings}


# ---------------------------------------------------------------------- #
# rule 1: well-formedness

def test_wf_undeclared_array():
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("ghost", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    (f,) = findings(rep, "wf-undeclared")
    assert f.severity == "error" and f.stmt == "l" and f.array == "ghost"
    assert not rep.ok


def test_wf_rank_mismatch():
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("a", (Span(), Full(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    (f,) = findings(rep, "wf-rank")
    assert f.array == "a" and f.details["region_rank"] == 3
    assert f.details["array_rank"] == 2


def test_wf_bounds_point_outside():
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("a", (Point(N + 5), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    (f,) = findings(rep, "wf-bounds")
    assert f.details["index"] == N + 5 and f.details["extent"] == N


def test_wf_negative_point_wraps_once_clean():
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("a", (Point(-1), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    assert not findings(rep, "wf-bounds") and rep.ok


def test_wf_bad_extent():
    loop = ParallelLoop("l", 0, noop)
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    (f,) = findings(rep, "wf-extent")
    assert f.severity == "error"


def test_wf_empty_iteration_space_warns():
    loop = ParallelLoop("l", 4, noop, start=10)
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    (f,) = findings(rep, "wf-empty")
    assert f.severity == "warning" and rep.ok


def test_wf_halo_on_cyclic_schedule_warns():
    loop = ParallelLoop("l", N, noop, schedule="cyclic",
                        reads=[Access("a", (Span(-1, 1), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False,
                       backends=("spf",))
    (f,) = findings(rep, "wf-halo-cyclic")
    assert f.array == "a" and f.severity == "warning"


def test_wf_reduction_without_partial():
    loop = ParallelLoop("l", N, noop, reductions=[Reduction("s")])
    rep = lint_program(make_prog([loop]), 4)
    (f,) = findings(rep, "wf-reduction")
    assert "'s'" in f.message and f.severity == "error"


def test_wf_errors_gate_later_rules():
    """A rank error must not crash the shadow pass — later rules skip."""
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("a", (Span(), Full(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=True, traffic=True)
    assert rules_of(rep) == {"wf-rank"}
    assert rep.traffic is None


def test_xhpf_distribute_dim_rule():
    arrays = [ArrayDecl("a", (N, N), np.float32, distribute=1)]
    loop = ParallelLoop("l", N, noop,
                        writes=[Access("a", (Full(), Span()))])
    rep = lint_program(make_prog([loop], arrays), 4, shadow=False)
    (f,) = findings(rep, "xhpf-dist-dim")
    assert f.array == "a"
    # without the xhpf backend the program is acceptable
    rep = lint_program(make_prog([loop], arrays), 4, shadow=False,
                       backends=("spf",))
    assert not findings(rep, "xhpf-dist-dim")


def test_xhpf_cyclic_sequential_read_rule():
    arrays = [ArrayDecl("a", (N, N), np.float32, distribute=0,
                        dist_kind="cyclic")]

    def seq_kernel(views):
        pass

    multi = SeqBlock("seq", seq_kernel,
                     reads=[Access("a", (Full(), Full()))])
    rep = lint_program(make_prog([multi], arrays), 4, shadow=False)
    (f,) = findings(rep, "xhpf-cyclic-seq")
    assert f.stmt == "seq" and f.severity == "error"
    # a single-row Point read is exactly what the backend broadcasts
    single = SeqBlock("seq", seq_kernel,
                      reads=[Access("a", (Point(3), Full()))])
    rep = lint_program(make_prog([single], arrays), 4, shadow=False)
    assert not findings(rep, "xhpf-cyclic-seq")


# ---------------------------------------------------------------------- #
# rule 2: footprint soundness (shadow execution)

def test_footprint_clean_kernel_passes():
    def kernel(views, lo, hi):
        views["b"][lo:hi] = 2.0 * views["a"][lo:hi]

    loop = ParallelLoop("l", N, kernel,
                        reads=[Access("a", (Span(), Full()))],
                        writes=[Access("b", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, backends=("spf",))
    assert not findings(rep, "footprint")


def test_footprint_catches_undeclared_halo_read():
    def kernel(views, lo, hi):
        lo2, hi2 = max(lo, 1), min(hi, N - 1)
        if hi2 > lo2:
            views["b"][lo2:hi2] = views["a"][lo2 - 1:hi2 + 1][1:-1]

    loop = ParallelLoop("l", N, kernel,
                        reads=[Access("a", (Span(), Full()))],  # lies: no halo
                        writes=[Access("b", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, backends=("spf",))
    (f,) = [f for f in findings(rep, "footprint") if f.array == "a"]
    assert f.severity == "error" and f.details["mode"] == "reads"
    assert f.stmt == "l"


def test_footprint_catches_out_of_chunk_write():
    def kernel(views, lo, hi):
        views["b"][0:hi] = 1.0          # always writes from row 0

    loop = ParallelLoop("l", N, kernel,
                        writes=[Access("b", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, backends=("spf",))
    (f,) = [f for f in findings(rep, "footprint") if f.array == "b"]
    assert f.details["mode"] == "writes"


def test_footprint_accumulate_contribution_outside_declared():
    def footprint(views, lo, hi):
        return np.arange(lo * N, hi * N, dtype=np.int64)

    def kernel(views, lo, hi):
        views["b"][lo:hi] += 1.0
        views["b"][hi % N, 0] += 5.0           # stray scatter-add

    loop = ParallelLoop("l", N, kernel,
                        writes=[Access("b", Irregular(footprint))],
                        accumulate=["b"])
    rep = lint_program(make_prog([loop]), 4, backends=("spf",))
    hits = [f for f in findings(rep, "footprint") if f.array == "b"]
    assert hits and hits[0].details["mode"] == "writes"


def test_footprint_cyclic_chunk_exact_rows():
    """Cyclic Span(0,0) grants exactly the owned rows, not the bounding
    interval — a kernel touching an interleaved row is caught."""
    def kernel(views, rows):
        views["a"][(rows + 1) % N] = 1.0      # neighbours' rows

    loop = ParallelLoop("l", N, kernel, schedule="cyclic",
                        writes=[Access("a", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, backends=("spf",))
    assert [f for f in findings(rep, "footprint") if f.array == "a"]


def test_shadow_array_mechanics():
    s = ShadowArray(np.zeros((4, 4)))
    _ = s[1:3]
    assert s.read_mask[1:3].all() and not s.read_mask[0].any()
    s[0, 0] = 7.0
    assert s.write_mask[0, 0] and s.data[0, 0] == 7.0
    assert not s.write_mask[1:].any()
    # reshape shares data and masks (flat indexing stays exact)
    flat = s.reshape(16)
    flat[5] = 1.0
    assert s.write_mask[1, 1]
    # whole-array conversion and arithmetic are full reads
    t = ShadowArray(np.ones((2, 2)))
    assert (np.asarray(t) == 1.0).all() and t.read_mask.all()
    u = ShadowArray(np.ones(3))
    _ = u * 2.0 + 1.0
    assert u.read_mask.all()
    assert u.shape == (3,) and u.ndim == 1 and len(u) == 3


# ---------------------------------------------------------------------- #
# rule 3: redundant synchronization

def _independent_pair():
    l1 = ParallelLoop("l1", N, noop,
                      writes=[Access("a", (Span(), Full()))])
    l2 = ParallelLoop("l2", N, noop,
                      reads=[Access("a", (Span(), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    return l1, l2


def test_redundant_barrier_fires_on_fusable_pair():
    l1, l2 = _independent_pair()
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False)
    (f,) = findings(rep, "redundant-barrier")
    assert f.stmt == "l2" and f.details["pred"] == "l1"
    assert f.severity == "warning"


def test_redundant_barrier_silent_when_fused():
    l1, l2 = _independent_pair()
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False, options=SpfOptions(fuse_loops=True))
    assert not findings(rep, "redundant-barrier")


def test_redundant_barrier_respects_halo_dependence():
    """Jacobi's anti-dependence: the pair is NOT redundant."""
    l1 = ParallelLoop("l1", N, noop,
                      reads=[Access("a", (Span(-1, 1), Full()))],
                      writes=[Access("b", (Span(), Full()))])
    l2 = ParallelLoop("l2", N, noop,
                      reads=[Access("b", (Span(), Full()))],
                      writes=[Access("a", (Span(), Full()))])
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False)
    assert not findings(rep, "redundant-barrier")


def test_redundant_barrier_broken_by_seq_block():
    l1, l2 = _independent_pair()

    def seq_kernel(views):
        pass

    barrier = SeqBlock("seq", seq_kernel)
    rep = lint_program(make_prog([l1, barrier, l2]), 4, backends=("spf",),
                       shadow=False)
    assert not findings(rep, "redundant-barrier")


# ---------------------------------------------------------------------- #
# rule 4: false sharing

def _row_prog(cols):
    loop = ParallelLoop("l", N, noop,
                        writes=[Access("g", (Span(), Full()))])
    arrays = [ArrayDecl("g", (N, cols), np.float32, distribute=0)]
    return make_prog([loop], arrays)


def test_false_sharing_page_aligned_chunks_clean():
    # 8 rows x 128 cols x 4 B = exactly one page per chunk at n=4
    rep = lint_program(_row_prog(128), 4, backends=("spf",), shadow=False)
    assert not findings(rep, "false-sharing")


def test_false_sharing_straddling_chunks_warn():
    # 8 rows x 96 cols x 4 B = 3072 B: every chunk boundary straddles
    rep = lint_program(_row_prog(96), 4, backends=("spf",), shadow=False)
    (f,) = findings(rep, "false-sharing")
    assert f.stmt == "l" and "g" in f.details and f.severity == "warning"


# ---------------------------------------------------------------------- #
# rule 5: traffic prediction (static analyzability)

def test_traffic_unanalyzable_irregular():
    def footprint(views, lo, hi):
        return np.arange(lo, hi, dtype=np.int64)

    loop = ParallelLoop("l", N, noop,
                        reads=[Access("a", Irregular(footprint))],
                        writes=[Access("b", (Span(), Full()))])
    est = estimate_spf_traffic(make_prog([loop]), 4)
    assert not est.analyzable and "'l'" in est.reason


def test_traffic_unanalyzable_hand_optimized():
    l1, _l2 = _independent_pair()
    est = estimate_spf_traffic(make_prog([l1]), 4,
                               SpfOptions(aggregate=True))
    assert not est.analyzable and "aggregate" in est.reason


def test_traffic_locks_exact_for_reductions():
    def kernel(views, lo, hi):
        return {"s": float(hi - lo)}

    loop = ParallelLoop("l", N, kernel,
                        writes=[Access("a", (Span(), Full()))],
                        reductions=[Reduction("s")])
    est = estimate_spf_traffic(make_prog([TimeLoop("t", 3, [loop])]), 4)
    assert est.analyzable
    assert est.red_instances == 3
    assert est.lock_acquires == 3 * 4 and est.lock_remote == 3 * 3
    assert est.loop_units == 3 and est.est_messages > 0


# ---------------------------------------------------------------------- #
# suppression and report plumbing

def test_suppression_globs():
    l1, l2 = _independent_pair()
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False, suppress=("redundant-barrier",))
    assert not findings(rep, "redundant-barrier") and rep.suppressed == 1
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False, suppress=("redundant-barrier:l2",))
    assert rep.suppressed == 1
    rep = lint_program(make_prog([l1, l2]), 4, backends=("spf",),
                       shadow=False, suppress=("redundant-barrier:other",))
    assert rep.suppressed == 0 and findings(rep, "redundant-barrier")


def test_report_format_and_doc():
    loop = ParallelLoop("l", N, noop,
                        reads=[Access("ghost", (Span(), Full()))])
    rep = lint_program(make_prog([loop]), 4, shadow=False)
    text = rep.format()
    assert "FAIL" in text and "wf-undeclared" in text
    doc = rep.as_doc()
    assert doc["errors"] == 1 and doc["ok"] is False
    assert doc["findings"][0]["rule"] == "wf-undeclared"


# ---------------------------------------------------------------------- #
# acceptance: every shipped application lints clean

@pytest.mark.parametrize("app", sorted(APP_REGISTRY))
def test_shipped_apps_lint_clean(app):
    spec = get_app(app)
    program = spec.build_program(spec.params("test"))
    rep = lint_program(program, 8)
    assert rep.ok, rep.format()


def test_shallow_flags_the_papers_fusable_pairs():
    """Section 5's barrier-elimination win shows up as lint warnings."""
    spec = get_app("shallow")
    program = spec.build_program(spec.params("test"))
    rep = lint_program(program, 8, shadow=False, backends=("spf",))
    pairs = {(f.details["pred"], f.stmt)
             for f in findings(rep, "redundant-barrier")}
    assert ("step1", "colwrap1") in pairs
    assert ("step2", "colwrap2") in pairs

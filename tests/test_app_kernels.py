"""Unit tests for the applications' numeric kernels.

Every variant of every application reuses these kernels, so each is tested
against an independent (loop-based or analytic) reference at small sizes,
plus structural properties of the synthetic inputs (IGrid's map, NBF's
partner lists) that the irregular experiments rely on.
"""

import numpy as np
import pytest

from repro.apps import fft3d, igrid, jacobi, mgs, nbf, shallow


# ---------------------------------------------------------------------- #
# Jacobi

def test_jacobi_init_edges_one_interior_zero():
    u = np.empty((8, 8), np.float32)
    jacobi.init_grid(u)
    assert u[0].tolist() == [1.0] * 8
    assert u[:, -1].tolist() == [1.0] * 8
    assert u[1:-1, 1:-1].sum() == 0.0


def test_jacobi_stencil_matches_loops():
    rng = np.random.default_rng(0)
    u = rng.random((10, 12)).astype(np.float32)
    scratch = np.zeros_like(u)
    jacobi.stencil_rows(u, scratch, 0, 10)
    for i in range(1, 9):
        for j in range(1, 11):
            expect = 0.25 * (u[i - 1, j] + u[i + 1, j]
                             + u[i, j - 1] + u[i, j + 1])
            assert scratch[i, j] == pytest.approx(expect, rel=1e-6)
    assert scratch[0].sum() == 0.0          # boundary rows untouched


def test_jacobi_stencil_partial_rows_only():
    u = np.ones((10, 12), np.float32)
    scratch = np.zeros_like(u)
    jacobi.stencil_rows(u, scratch, 3, 6)
    assert scratch[3:6, 1:-1].min() == 1.0
    assert scratch[:3].sum() == 0.0 and scratch[6:].sum() == 0.0


def test_jacobi_copy_preserves_boundary():
    u = np.full((6, 6), 9.0, np.float32)
    scratch = np.zeros_like(u)
    jacobi.copy_rows(u, scratch, 0, 6)
    assert u[0, 0] == 9.0 and u[2, 0] == 9.0   # edges kept
    assert u[2, 2] == 0.0                       # interior copied


# ---------------------------------------------------------------------- #
# Shallow

def test_shallow_init_finite_and_positive_height():
    views = {name: np.zeros((32, 32), np.float32)
             for name in shallow.ALL_ARRAYS}
    shallow.init_fields(views, 32)
    assert np.isfinite(views["p"]).all()
    assert views["p"].min() > 0
    assert np.array_equal(views["uold"], views["u"])


def test_shallow_steps_stable_over_iterations():
    n = 32
    views = {name: np.zeros((n, n), np.float32)
             for name in shallow.ALL_ARRAYS}
    shallow.init_fields(views, n)
    tdt = 2.0 * shallow.DT
    for _ in range(10):
        shallow.step1_rows(views, 0, n, n)
        shallow.col_wrap_rows(views, shallow.FLUX, 0, n, n)
        shallow.row_wrap(views, shallow.FLUX, n)
        shallow.step2_rows(views, 0, n, n, tdt)
        shallow.col_wrap_rows(views, shallow.NEW, 0, n, n)
        shallow.row_wrap(views, shallow.NEW, n)
        shallow.step3_rows(views, 0, n)
    for name in ("u", "v", "p"):
        assert np.isfinite(views[name]).all(), name
    assert views["p"].min() > 0        # heights stay physical


def test_shallow_wraps_are_periodic():
    n = 16
    a = {name: np.arange(n * n, dtype=np.float32).reshape(n, n)
         for name in ("cu",)}
    shallow.row_wrap(a, ["cu"], n)
    assert np.array_equal(a["cu"][0], a["cu"][n - 2])
    assert np.array_equal(a["cu"][n - 1], a["cu"][1])
    shallow.col_wrap_rows(a, ["cu"], 0, n, n)
    assert np.array_equal(a["cu"][:, 0], a["cu"][:, n - 2])


# ---------------------------------------------------------------------- #
# MGS

def test_mgs_produces_orthonormal_basis():
    n = 48
    v = np.zeros((n, n), np.float32)
    mgs.init_vectors(v)
    for i in range(n):
        mgs.normalize_vector(v, i)
        mgs.orthogonalize_rows(v, i, np.arange(i + 1, n))
    gram = v.astype(np.float64) @ v.astype(np.float64).T
    assert np.allclose(gram, np.eye(n), atol=1e-4)


def test_mgs_init_well_conditioned():
    v = np.zeros((32, 32), np.float32)
    mgs.init_vectors(v)
    s = np.linalg.svd(v.astype(np.float64), compute_uv=False)
    assert s[-1] > 1.0       # far from singular: MGS is numerically safe


def test_mgs_orthogonalize_empty_rows_noop():
    v = np.ones((4, 4), np.float32)
    before = v.copy()
    mgs.orthogonalize_rows(v, 0, np.array([], dtype=np.int64))
    assert np.array_equal(v, before)


# ---------------------------------------------------------------------- #
# 3-D FFT

def test_fft_transpose_is_exact_permutation():
    rng = np.random.default_rng(1)
    a = rng.random((4, 6, 8)) + 1j * rng.random((4, 6, 8))
    b = np.zeros((6, 4, 8), np.complex128)
    fft3d.transpose_rows(a, b, 0, 6)
    for j in range(6):
        for k in range(4):
            assert np.array_equal(b[j, k], a[k, j])


def test_fft_forward_then_inverse_roundtrip():
    n3, n2, n1 = 4, 8, 8
    a = np.zeros((n3, n2, n1), np.complex128)
    fft3d.evolve_rows(a, 0, n3, t=0)
    orig = a.copy()
    fft3d.fft_dim2_rows(a, 0, n3)
    a[:] = np.fft.ifft(a, axis=2)
    assert np.allclose(a, orig, atol=1e-12)


def test_fft_checksum_partition_sums_to_whole():
    rng = np.random.default_rng(2)
    b = (rng.random((8, 4, 8)) + 1j * rng.random((8, 4, 8)))
    whole = fft3d.checksum_rows(b, 0, 8)
    parts = sum(fft3d.checksum_rows(b, lo, lo + 2) for lo in range(0, 8, 2))
    assert whole == pytest.approx(parts, rel=1e-12)


def test_fft_normalize_scales_by_size():
    b = np.ones((4, 4, 4), np.complex128)
    fft3d.normalize_rows(b, 0, 4)
    assert b[0, 0, 0] == pytest.approx(1.0 / 64)


# ---------------------------------------------------------------------- #
# IGrid

def test_igrid_map_points_at_neighbours():
    n = 10
    imap = igrid.build_map(n)
    assert imap.shape == (n, n, 9)
    # interior cell (5, 5): the 9-point neighbourhood
    expect = sorted((5 + di) * n + (5 + dj)
                    for di in (-1, 0, 1) for dj in (-1, 0, 1))
    assert sorted(imap[5, 5].tolist()) == expect
    # corners clamp instead of wrapping
    assert imap[0, 0].min() >= 0
    assert (imap[0, 0] < n * n).all()


def test_igrid_update_matches_direct_stencil():
    n = 12
    rng = np.random.default_rng(3)
    old = rng.random((n, n)).astype(np.float32)
    new = np.zeros_like(old)
    imap = igrid.build_map(n)
    igrid.update_rows(old, new, imap, 0, n)
    i, j = 6, 7
    neigh = old[i - 1:i + 2, j - 1:j + 2].reshape(-1)
    w = igrid.WEIGHTS.reshape(3, 3).reshape(-1)
    # build_map orders di-major, matching WEIGHTS
    assert new[i, j] == pytest.approx(float(neigh @ w), rel=1e-5)


def test_igrid_weights_sum_to_one():
    assert float(igrid.WEIGHTS.sum()) == pytest.approx(1.0)


def test_igrid_square_stats_partition_consistent():
    n = 48
    g = np.random.default_rng(4).random((n, n)).astype(np.float32)
    whole = igrid.square_stats_rows(g, n, 0, n)
    parts = [igrid.square_stats_rows(g, n, lo, lo + 12)
             for lo in range(0, n, 12)]
    assert whole["gmax"] == max(p["gmax"] for p in parts)
    assert whole["gmin"] == min(p["gmin"] for p in parts)
    assert whole["gsum"] == pytest.approx(sum(p["gsum"] for p in parts))


def test_igrid_touched_indices_are_chunk_neighbourhood():
    n = 16
    imap = igrid.build_map(n)
    touched = igrid.touched_indices(imap, 4, 8)
    rows = np.unique(touched // n)
    assert rows.min() == 3 and rows.max() == 8   # chunk rows +- 1


# ---------------------------------------------------------------------- #
# NBF

def test_nbf_partners_windowed_and_sorted():
    n, P, W = 256, 8, 16
    prt = nbf.build_partners(n, P, W)
    assert prt.shape == (n, P)
    idx = np.arange(n)[:, None]
    ahead = prt - idx
    # partners are self (padding) or within (0, W]
    assert ((ahead == 0) | ((ahead >= 1) & (ahead <= W))).all()
    assert (np.diff(prt.astype(int), axis=1) >= 0).all()


def test_nbf_pair_forces_newton_third_law():
    """Total force sums to ~zero: every pair contributes +f and -f."""
    n = 64
    pos = np.zeros((n, 3), np.float32)
    nbf.init_positions(pos)
    prt = nbf.build_partners(n, 8, 16)
    forces = np.zeros((n, 3), np.float32)
    nbf.pair_forces_rows(pos, prt, forces, 0, n)
    assert np.abs(forces.sum(axis=0)).max() < 1e-3
    assert np.abs(forces).sum() > 0


def test_nbf_chunked_forces_equal_whole():
    n = 64
    pos = np.zeros((n, 3), np.float32)
    nbf.init_positions(pos)
    prt = nbf.build_partners(n, 8, 16)
    whole = np.zeros((n, 3), np.float32)
    nbf.pair_forces_rows(pos, prt, whole, 0, n)
    parts = np.zeros((n, 3), np.float32)
    for lo in range(0, n, 16):
        nbf.pair_forces_rows(pos, prt, parts, lo, lo + 16)
    assert np.allclose(parts, whole, atol=1e-5)


def test_nbf_update_bounded():
    n = 128
    pos = np.zeros((n, 3), np.float32)
    nbf.init_positions(pos)
    prt = nbf.build_partners(n, 8, 16)
    for _ in range(10):
        forces = np.zeros((n, 3), np.float32)
        nbf.pair_forces_rows(pos, prt, forces, 0, n)
        nbf.update_rows(pos, forces, 0, n)
    assert np.isfinite(pos).all()


def test_nbf_touched_rows_cover_chunk_and_partners():
    n = 128
    prt = nbf.build_partners(n, 4, 8)
    touched = nbf.touched_rows(prt, 32, 48)
    assert set(range(32, 48)) <= set(touched.tolist())
    assert touched.max() <= 48 + 8 - 1 + 1   # within the window reach

"""Tagged point-to-point messaging over the simulated interconnect.

Semantics mirror the user-level libraries of the paper (MPL, PVMe): sends
are buffered and asynchronous, receives block and match on (source, tag).
Payloads are real Python/numpy objects; their wire size is computed from
the data (``payload_nbytes``) unless the caller declares it.

Large transfers can optionally be segmented into fixed-size packets
(``packet_bytes``) — the XHPF run-time system moves array sections through
a bounded transfer buffer, which is visible in the paper's Table 3 as a
~4 KB data/message ratio for XHPF programs.  Hand-coded PVMe programs send
unsegmented messages.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.sim.cluster import ProcEnv
from repro.sim.network import ANY_SOURCE, ANY_TAG

__all__ = ["Comm", "payload_nbytes", "ANY_SOURCE", "ANY_TAG"]


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload: numpy data verbatim, scalars as words."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (int, float, np.integer, np.floating, bool)):
        return 8
    if isinstance(payload, complex):
        return 16
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload) + 8
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v)
                   for k, v in payload.items()) + 8
    if payload is None:
        return 0
    raise TypeError(f"cannot size payload of type {type(payload).__name__}; "
                    f"pass nbytes explicitly")


class Comm:
    """A processor's handle to the message-passing library."""

    def __init__(self, env: ProcEnv, category: str = "data",
                 packet_bytes: Optional[int] = None):
        self.env = env
        self.rank = env.pid
        self.size = env.nprocs
        self.net = env.net
        self.category = category
        self.packet_bytes = packet_bytes
        self._seq = 0

    # ------------------------------------------------------------------ #

    def send(self, dst: int, payload: Any, tag: int = 0,
             nbytes: Optional[int] = None, category: Optional[str] = None) -> None:
        """Buffered asynchronous send."""
        size = payload_nbytes(payload) if nbytes is None else nbytes
        cat = category or self.category
        if self.packet_bytes and size > self.packet_bytes:
            # segment: payload rides the last packet, earlier packets are
            # header-only carriers of their share of the bytes
            full, last = divmod(size, self.packet_bytes)
            sizes = [self.packet_bytes] * full + ([last] if last else [])
            for part in sizes[:-1]:
                self.net.send(self.env.proc, self.rank, dst, None, tag=tag,
                              nbytes=part, category=cat)
            self.net.send(self.env.proc, self.rank, dst, payload, tag=tag,
                          nbytes=sizes[-1], category=cat)
        else:
            self.net.send(self.env.proc, self.rank, dst, payload, tag=tag,
                          nbytes=size, category=cat)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        if self.packet_bytes:
            if src == ANY_SOURCE:
                raise ValueError("segmented transfers require an explicit "
                                 "source (packets must not interleave)")
            # consume header-only packets until the payload-carrying one
            while True:
                msg = self.net.recv(self.env.proc, self.rank, src=src, tag=tag)
                if msg.payload is not None:
                    return msg.payload
        msg = self.net.recv(self.env.proc, self.rank, src=src, tag=tag)
        return msg.payload

    def recv_msg(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the full Message (src/tag visible)."""
        return self.net.recv(self.env.proc, self.rank, src=src, tag=tag)

    def sendrecv(self, dst: int, payload: Any, src: int,
                 tag: int = 0) -> Any:
        """Exchange: buffered send then blocking receive (deadlock-free)."""
        self.send(dst, payload, tag=tag)
        return self.recv(src=src, tag=tag)

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self.net.probe(self.rank, src=src, tag=tag)

    def next_tag(self, base: int = 500_000) -> int:
        """A fresh tag for internal phases (collectives use these)."""
        self._seq += 1
        return base + self._seq

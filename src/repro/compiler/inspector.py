"""Inspector–executor communication schedules (the CHAOS comparison).

Section 1 of the paper: "Compilers generating message passing code for
irregular accesses are either inefficient or quite complex (e.g., the
inspector-executor model [Saltz et al.])" — and Section 8 cites the
comparisons of TreadMarks against the CHAOS inspector-executor runtime
(Mukherjee et al. [14]; Lu et al. [12] found them comparable once the DSM
got simple compiler support).

This module adds that "quite complex" alternative to the XHPF backend
(``XhpfOptions(inspector_executor=True)``), which otherwise broadcasts
everything for irregular loops:

* **inspector** (first execution of an irregular loop): every processor
  evaluates the loop's run-time footprint, determines which *owned rows of
  other processors* it reads, and exchanges request lists pairwise — the
  communication *schedule*;
* **executor** (every execution): owners send exactly the requested rows
  to each requester before the loop; accumulation buffers are returned
  exactly to the owners of the touched rows afterwards (no broadcasts);
* the schedule is cached per loop and reused while the access pattern is
  static (IGrid's map and NBF's partner lists never change; a changed
  footprint fingerprint triggers re-inspection).

``benchmarks/test_ext_inspector.py`` reproduces the cited result: the
inspector-executor brings compiler-generated message passing back to
DSM-class performance on the irregular applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["CommSchedule", "ScheduleCache", "inspect_reads",
           "inspect_accumulates"]


@dataclass
class CommSchedule:
    """A pairwise gather/scatter plan for one irregular loop.

    ``recv_rows[p]``: rows this processor needs from owner ``p`` before the
    loop.  ``send_rows[p]``: rows this processor must send to requester
    ``p`` (the transpose, learned during inspection).
    ``return_rows[p]`` / ``accept_rows[p]``: accumulation contributions
    flowing back to row owners after the loop.
    """

    fingerprint: int
    recv_rows: dict = field(default_factory=dict)
    send_rows: dict = field(default_factory=dict)
    return_rows: dict = field(default_factory=dict)
    accept_rows: dict = field(default_factory=dict)
    inspections: int = 1

    def gather_volume(self, row_nbytes: int) -> int:
        return sum(len(r) * row_nbytes for r in self.recv_rows.values())


class ScheduleCache:
    """Per-run cache: loop name -> CommSchedule."""

    def __init__(self) -> None:
        self.schedules: dict[str, CommSchedule] = {}
        self.inspections = 0
        self.reuses = 0

    def lookup(self, name: str, fingerprint: int) -> Optional[CommSchedule]:
        sched = self.schedules.get(name)
        if sched is not None and sched.fingerprint == fingerprint:
            self.reuses += 1
            return sched
        return None

    def store(self, name: str, sched: CommSchedule) -> None:
        self.inspections += 1
        self.schedules[name] = sched


def _rows_of_elements(flat: np.ndarray, row_elems: int) -> np.ndarray:
    return np.unique(np.asarray(flat, dtype=np.int64) // row_elems)


def footprint_fingerprint(flat: np.ndarray) -> int:
    """A cheap stable fingerprint of an access pattern (re-inspection
    trigger).  Collisions only cost correctness if the pattern changes
    while the fingerprint does not AND the program relies on the new
    pattern's rows — the classic inspector-executor staleness contract."""
    arr = np.asarray(flat, dtype=np.int64)
    return int(arr.size) ^ int(arr.sum() % (1 << 61)) \
        ^ int((arr[:64] * 31).sum() % (1 << 61) if arr.size else 0)


def inspect_reads(flat: np.ndarray, row_elems: int, owned: tuple,
                  owner_bounds: list) -> dict:
    """Rows read outside the local partition, grouped by owning processor.

    ``owner_bounds`` is the list of (lo, hi) row ranges per processor.
    """
    rows = _rows_of_elements(flat, row_elems)
    out: dict = {}
    lo, hi = owned
    foreign = rows[(rows < lo) | (rows >= hi)]
    for pid, (plo, phi) in enumerate(owner_bounds):
        if phi <= plo:
            continue
        mine = foreign[(foreign >= plo) & (foreign < phi)]
        if mine.size:
            out[pid] = mine
    return out


def inspect_accumulates(flat: np.ndarray, row_elems: int, owned: tuple,
                        owner_bounds: list) -> dict:
    """Rows this processor *contributes to* outside its partition."""
    return inspect_reads(flat, row_elems, owned, owner_bounds)

"""Protocol event tracing.

Debugging a relaxed-consistency protocol means reconstructing interleavings
of faults, diffs, notices and grants; this module captures them as
structured events instead of ad-hoc prints.  Attach a tracer to a
:class:`~repro.tmk.api.TmkWorld` (or pass ``trace=True`` to ``tmk_run``)
and every protocol transition is recorded with its virtual timestamp:

    result = tmk_run(4, program, setup, trace=True)
    for ev in result.trace.query(kind="fetch", page=3):
        print(ev)
    print(result.trace.page_history(3))

Events carry only small metadata (no page contents), so tracing large runs
is cheap.  The tracer is also the foundation of the protocol-invariant
checks in ``tests/test_trace.py`` — e.g. "every fetch of a page follows an
invalidation of that page" and "no processor reads a page while write
notices are outstanding".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TraceEvent", "ProtocolTrace", "attach_tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One protocol transition."""

    time: float
    pid: int
    kind: str            # fault | fetch | invalidate | diff-create |
    #                      diff-apply | twin | barrier | lock | grant |
    #                      push | interval-close
    page: Optional[int] = None
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.detail.items())
        page = f" page={self.page}" if self.page is not None else ""
        return (f"[{self.time * 1e3:10.3f}ms] p{self.pid} "
                f"{self.kind}{page} {extra}".rstrip())


class ProtocolTrace:
    """An append-only event log with simple queries."""

    def __init__(self, capacity: Optional[int] = None):
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------ #

    def query(self, kind: Optional[str] = None, pid: Optional[int] = None,
              page: Optional[int] = None,
              since: float = 0.0) -> Iterable[TraceEvent]:
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if pid is not None and ev.pid != pid:
                continue
            if page is not None and ev.page != page:
                continue
            if ev.time < since:
                continue
            yield ev

    def counts(self) -> dict:
        out: dict = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def page_history(self, page: int) -> str:
        """Human-readable life of one page across all processors."""
        lines = [str(ev) for ev in self.query(page=page)]
        return "\n".join(lines) if lines else f"(no events for page {page})"

    def __len__(self) -> int:
        return len(self.events)


def attach_tracer(world, capacity: Optional[int] = None) -> ProtocolTrace:
    """Instrument a TmkWorld's nodes with a shared tracer.

    Must be called before the cluster runs (``tmk_run(trace=True)`` does
    this at the right moment).  Wraps the protocol entry points of every
    node created in the world.
    """
    from repro.tmk import protocol as proto
    from repro.tmk import sync as _sync

    trace = ProtocolTrace(capacity)
    world.trace = trace

    class _TracingNode(proto.TmkNode):
        def _read_fault_if_needed(self, page):
            m = self.meta(page)
            was_valid = m.valid
            super()._read_fault_if_needed(page)
            if not was_valid:
                trace.record(TraceEvent(self.env.now, self.pid, "fault",
                                        page, {"mode": "read"}))

        def _write_fault_if_needed(self, page):
            m = self.meta(page)
            was_valid, was_dirty = m.valid, m.dirty
            super()._write_fault_if_needed(page)
            if not was_valid or not was_dirty:
                trace.record(TraceEvent(
                    self.env.now, self.pid, "twin" if was_valid else "fault",
                    page, {"mode": "write"}))

        def _fetch(self, page, m):
            missing = list(m.missing_writers())
            super()._fetch(page, m)
            trace.record(TraceEvent(self.env.now, self.pid, "fetch", page,
                                    {"writers": [w for w, _f in missing]}))

        def _apply_notice(self, writer, interval_id, page):
            m = self.meta(page)
            was_valid = m.valid
            super()._apply_notice(writer, interval_id, page)
            if was_valid and not m.valid:
                trace.record(TraceEvent(
                    self.env.now, self.pid, "invalidate", page,
                    {"writer": writer, "interval": interval_id}))

        def _create_diff(self, page, m, charge=None):
            super()._create_diff(page, m, charge)
            entry = self.diff_cache.get(page, [])
            top = entry[-1].top if entry else 0
            trace.record(TraceEvent(self.env.now, self.pid, "diff-create",
                                    page, {"top": top}))

        def close_interval(self):
            rec = super().close_interval()
            if rec is not None:
                trace.record(TraceEvent(
                    self.env.now, self.pid, "interval-close", None,
                    {"id": rec.id, "pages": len(rec.pages)}))
            return rec

    world._node_class = _TracingNode

    _orig_barrier = _sync.barrier

    def traced_barrier(node):
        _orig_barrier(node)
        trace.record(TraceEvent(node.env.now, node.pid, "barrier"))

    world._traced_barrier = traced_barrier
    return trace

"""Unit tests for the simulated interconnect (repro.sim.network)."""

import pytest

from repro.sim import ANY_SOURCE, ANY_TAG, Cluster
from repro.sim.network import NetworkStats


def run2(prog):
    return Cluster(nprocs=2).run(prog)


def test_send_recv_payload_roundtrip():
    def prog(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, {"k": 1}, tag=5, nbytes=100)
        else:
            msg = env.net.recv(env.proc, 1, tag=5)
            assert msg.payload == {"k": 1}
            assert msg.src == 0 and msg.tag == 5
            return msg.payload

    r = run2(prog)
    assert r.results[1] == {"k": 1}


def test_recv_blocks_until_delivery():
    def prog(env):
        if env.pid == 0:
            env.compute(1.0)
            env.net.send(env.proc, 0, 1, "late", nbytes=8)
        else:
            msg = env.net.recv(env.proc, 1)
            return env.now

    r = run2(prog)
    assert r.results[1] > 1.0


def test_tag_matching_skips_nonmatching():
    def prog(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "a", tag=1, nbytes=8)
            env.net.send(env.proc, 0, 1, "b", tag=2, nbytes=8)
        else:
            got_b = env.net.recv(env.proc, 1, tag=2).payload
            got_a = env.net.recv(env.proc, 1, tag=1).payload
            return (got_a, got_b)

    r = run2(prog)
    assert r.results[1] == ("a", "b")


def test_source_matching():
    def prog(env):
        if env.pid < 2:
            env.net.send(env.proc, env.pid, 2, f"from{env.pid}", tag=9,
                         nbytes=8)
        elif env.pid == 2:
            m1 = env.net.recv(env.proc, 2, src=1, tag=9).payload
            m0 = env.net.recv(env.proc, 2, src=0, tag=9).payload
            return (m0, m1)

    r = Cluster(nprocs=3).run(prog)
    assert r.results[2] == ("from0", "from1")


def test_any_source_any_tag():
    def prog(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "x", tag=42, nbytes=8)
        else:
            msg = env.net.recv(env.proc, 1, src=ANY_SOURCE, tag=ANY_TAG)
            return (msg.src, msg.tag, msg.payload)

    r = run2(prog)
    assert r.results[1] == (0, 42, "x")


def test_two_waiters_same_endpoint_disjoint_tags():
    """A node's main program and its server may both block in recv."""

    def prog(env):
        if env.pid == 0:
            env.compute(0.01)
            env.net.send(env.proc, 0, 1, "for-server", tag=100, nbytes=8)
            env.compute(0.01)
            env.net.send(env.proc, 0, 1, "for-main", tag=200, nbytes=8)
        else:
            got = []

            def server():
                msg = env.net.recv(srv, 1, tag=100)
                got.append(msg.payload)

            srv = env.spawn_server("srv", server)
            msg = env.net.recv(env.proc, 1, tag=200)
            got.append(msg.payload)
            return got

    r = run2(prog)
    assert r.results[1] == ["for-server", "for-main"]


def test_larger_messages_take_longer():
    def prog(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "small", tag=1, nbytes=10)
        else:
            env.net.recv(env.proc, 1, tag=1)
            return env.now

    t_small = run2(prog).results[1]

    def prog_big(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "big", tag=1, nbytes=1_000_000)
        else:
            env.net.recv(env.proc, 1, tag=1)
            return env.now

    t_big = run2(prog_big).results[1]
    assert t_big > t_small


def test_stats_count_messages_and_bytes():
    def prog(env):
        if env.pid == 0:
            env.net.send(env.proc, 0, 1, "a", nbytes=1000, category="data")
            env.net.send(env.proc, 0, 1, "b", nbytes=24, category="sync")
        else:
            env.net.recv(env.proc, 1)
            env.net.recv(env.proc, 1)

    r = run2(prog)
    assert r.stats.messages == 2
    assert r.stats.bytes == 1024
    assert r.stats.kilobytes == 1.0
    assert r.stats.by_category["data"] == [1, 1000]
    assert r.stats.by_category["sync"] == [1, 24]


def test_stats_snapshot_and_delta():
    stats = NetworkStats()
    stats.record("data", 100)
    snap = stats.snapshot()
    stats.record("data", 50)
    stats.record("sync", 8)
    delta = stats.delta(snap)
    assert delta.messages == 2
    assert delta.bytes == 58
    assert delta.by_category["data"] == [1, 50]
    assert delta.by_category["sync"] == [1, 8]
    # snapshot unaffected
    assert snap.messages == 1


def test_probe_nonblocking():
    def prog(env):
        if env.pid == 0:
            assert not env.net.probe(0)
            env.net.send(env.proc, 0, 1, "x", tag=3, nbytes=8)
        else:
            env.compute(0.1)   # let the message arrive
            assert env.net.probe(1, tag=3)
            assert not env.net.probe(1, tag=4)
            env.net.recv(env.proc, 1, tag=3)
            assert not env.net.probe(1, tag=3)

    run2(prog)


def test_bad_destination_rejected():
    def prog(env):
        if env.pid == 0:
            with pytest.raises(Exception):
                env.net.send(env.proc, 0, 99, "x", nbytes=8)

    run2(prog)


def test_negative_size_rejected():
    def prog(env):
        if env.pid == 0:
            with pytest.raises(ValueError):
                env.net.send(env.proc, 0, 1, "x", nbytes=-1)

    run2(prog)


def test_charge_sender_false_skips_send_overhead():
    times = {}

    def prog(env):
        if env.pid == 0:
            t0 = env.now
            env.net.send(env.proc, 0, 1, "x", nbytes=8, charge_sender=False)
            times["free"] = env.now - t0
            t0 = env.now
            env.net.send(env.proc, 0, 1, "y", nbytes=8)
            times["charged"] = env.now - t0
        else:
            env.net.recv(env.proc, 1)
            env.net.recv(env.proc, 1)

    run2(prog)
    assert times["free"] == 0.0
    assert times["charged"] > 0.0

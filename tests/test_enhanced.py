"""Tests for the enhanced compiler-DSM interface (repro.tmk.enhanced)."""

import numpy as np

from repro.tmk import enhanced
from repro.tmk.api import tmk_run


def setup(space):
    space.alloc("a", (8, 1024), np.float32)   # 8 pages


def test_validate_equivalent_to_faulting():
    """Aggregated validate yields the same data as page-by-page faults."""

    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((slice(0, 8),), 4.0)
        tmk.barrier()
        if tmk.pid == 1:
            enhanced.validate(tmk.node, a.handle, (slice(0, 8), slice(None)))
            return float(a.raw().sum())

    r = tmk_run(2, prog, setup)
    assert r.results[1] == 4.0 * 8 * 1024


def test_validate_one_roundtrip_per_writer():
    """8 invalid pages from one writer: 2 messages total, not 16."""

    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((slice(0, 8),), 1.0)
        tmk.barrier()
        if tmk.pid == 1:
            enhanced.validate(tmk.node, a.handle, (slice(0, 8), slice(None)))

    r = tmk_run(2, prog, setup)
    assert r.stats.by_category["diff_req"][0] == 1
    assert r.stats.by_category["diff_rep"][0] == 1
    assert r.dsm_stats.aggregated_validates == 1
    assert r.dsm_stats.read_faults == 0


def test_validate_multiple_writers_batched_per_writer():
    def prog(tmk):
        a = tmk.array("a")
        lo, hi = tmk.block_range(8)
        a.write((slice(lo, hi),), float(tmk.pid + 1))
        tmk.barrier()
        if tmk.pid == 0:
            enhanced.validate(tmk.node, a.handle, (slice(0, 8), slice(None)))
            return [float(a.raw()[r, 0]) for r in range(8)]

    r = tmk_run(4, prog, setup)
    assert r.results[0] == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]
    # one round trip per remote writer (3), issued before any access
    assert r.stats.by_category["diff_req"][0] == 3


def test_validate_noop_when_everything_valid():
    def prog(tmk):
        a = tmk.array("a")
        enhanced.validate(tmk.node, a.handle, (slice(0, 8), slice(None)))

    r = tmk_run(2, prog, setup)
    assert r.messages == 0


def test_push_regions_prevents_demand_fetch():
    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((slice(0, 1),), 9.0)
            enhanced.push_regions(tmk.node, [(a.handle, (slice(0, 1),))],
                                  dests=[1])
            tmk.barrier()
        else:
            enhanced.expect_pushes(tmk.node, 1)
            tmk.barrier()
            before = tmk.world.dsm_stats.read_faults
            val = float(a.read((0, 0)))
            faults = tmk.world.dsm_stats.read_faults - before
            return (val, faults)

    r = tmk_run(2, prog, setup)
    assert r.results[1] == (9.0, 0)
    assert r.dsm_stats.pushes == 1


def test_push_carries_whole_page_modifications():
    """Pushed data is the sender's complete per-page diff, so the receiver
    holds exactly what a demand fetch would have built."""

    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((0, slice(0, 10)), 1.0)
            a.write((0, slice(500, 510)), 2.0)   # same page, other words
            enhanced.push_regions(tmk.node,
                                  [(a.handle, (0, slice(0, 10)))], [1])
            tmk.barrier()
        else:
            enhanced.expect_pushes(tmk.node, 1)
            tmk.barrier()
            row = a.read((slice(0, 1),))[0]
            return (float(row[0]), float(row[505]))

    r = tmk_run(2, prog, setup)
    assert r.results[1] == (1.0, 2.0)


def test_broadcast_from_root():
    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 2:
            a.write((slice(3, 4),), 7.5)
        tmk.barrier()
        if tmk.pid == 2:
            pass  # root already current
        enhanced.broadcast(tmk.node, a.handle, (slice(3, 4), slice(None)),
                           root=2)
        return float(a.raw()[3, 100])

    r = tmk_run(4, prog, setup)
    assert r.results == [7.5] * 4


def test_broadcast_messages_n_minus_one():
    def prog(tmk):
        a = tmk.array("a")
        if tmk.pid == 0:
            a.write((slice(0, 1),), 1.0)
        tmk.barrier()
        enhanced.broadcast(tmk.node, a.handle, (slice(0, 1), slice(None)),
                           root=0)

    r = tmk_run(6, prog, setup)
    assert r.stats.by_category["data"][0] == 5


def test_push_payload_build_empty_for_clean_pages():
    def prog(tmk):
        a = tmk.array("a")
        payload = enhanced.PushPayload.build(
            tmk.node, [(a.handle, (slice(0, 1),))])
        return payload is None

    r = tmk_run(2, prog, setup)
    assert all(r.results)

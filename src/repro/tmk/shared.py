"""User-facing shared arrays.

A :class:`SharedArray` binds an :class:`~repro.tmk.pagespace.ArrayHandle` to
one node's :class:`~repro.tmk.protocol.TmkNode`.  Access methods pair the
real numpy operation with the coherence hook at page granularity:

* :meth:`read` validates the touched pages and returns a view,
* :meth:`writable` validates + twins the touched pages and returns a view
  the caller may assign into,
* :meth:`gather`/:meth:`scatter_*` do the same for irregular element sets.

The *hand-coded TreadMarks* application variants use these directly; the
SPF backend emits calls to them from its analysed loop footprints.  Either
way the DSM sees accesses exactly where hardware page faults would occur.
"""

from __future__ import annotations

import numpy as np

from repro.tmk.pagespace import ArrayHandle
from repro.tmk.protocol import TmkNode

__all__ = ["SharedArray"]


class SharedArray:
    """One shared array as seen from one processor."""

    def __init__(self, node: TmkNode, handle: ArrayHandle):
        self.node = node
        self.handle = handle
        self._view = node.view(handle)
        self._full_region = tuple(slice(None) for _ in handle.shape)

    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple:
        return self.handle.shape

    @property
    def dtype(self) -> np.dtype:
        return self.handle.dtype

    @property
    def name(self) -> str:
        return self.handle.name

    def read(self, region=..., source=None) -> np.ndarray:
        """Validate pages under ``region`` and return the local view of it."""
        region = self._norm(region)
        self.node.ensure_read(self.handle, region,
                              source=source or f"{self.name}.read")
        return self._view[region]

    def writable(self, region=..., source=None) -> np.ndarray:
        """Validate + twin pages under ``region``; returns an assignable view."""
        region = self._norm(region)
        self.node.ensure_write(self.handle, region,
                               source=source or f"{self.name}.writable")
        return self._view[region]

    def write(self, region, values, source=None) -> None:
        """Assign ``values`` into ``region`` with write detection."""
        region = self._norm(region)
        self.node.ensure_write(self.handle, region,
                               source=source or f"{self.name}.write")
        self._view[region] = values

    def raw(self) -> np.ndarray:
        """The uncoherent local view (tests and the runtime use this)."""
        return self._view

    # ------------------------------------------------------------------ #
    # irregular access (indirection arrays)

    def gather(self, flat_indices, source=None) -> np.ndarray:
        """Read scattered elements (by C-order flat index)."""
        idx = np.asarray(flat_indices, dtype=np.int64)
        self.node.ensure_read_elements(self.handle, idx,
                                       source=source or f"{self.name}.gather")
        return self._view.reshape(-1)[idx]

    def scatter_write(self, flat_indices, values, source=None) -> None:
        """Write scattered elements (by C-order flat index)."""
        idx = np.asarray(flat_indices, dtype=np.int64)
        self.node.ensure_write_elements(
            self.handle, idx,
            source=source or f"{self.name}.scatter_write")
        self._view.reshape(-1)[idx] = values

    def scatter_add(self, flat_indices, values, source=None) -> None:
        """Accumulate into scattered elements (read-modify-write)."""
        idx = np.asarray(flat_indices, dtype=np.int64)
        self.node.ensure_write_elements(
            self.handle, idx, source=source or f"{self.name}.scatter_add")
        np.add.at(self._view.reshape(-1), idx, values)

    # ------------------------------------------------------------------ #

    def _norm(self, region):
        if region is Ellipsis:
            return self._full_region
        if not isinstance(region, tuple):
            region = (region,)
        return region

    def __repr__(self) -> str:
        return (f"SharedArray({self.handle.name!r}, shape={self.shape}, "
                f"dtype={self.dtype}, node={self.node.pid})")

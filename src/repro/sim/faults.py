"""Deterministic, seeded fault injection for the simulated interconnect.

The paper's platform (MPL/PVMe on the SP/2 switch) is assumed perfectly
reliable, and the seed :class:`~repro.sim.network.Network` inherited that
assumption: every ``send`` eventually ``_deliver``s, exactly once, in
per-pair FIFO order.  Real cluster transports break all three promises —
software DSM runtimes for heterogeneous machines (Cudennec,
arXiv:2009.01507) and PGAS runtimes layered over raw transports (DART-MPI,
arXiv:1507.01773) both treat link-level reliability as a first-class
design concern.  This module supplies the *adversary*: a seeded layer the
network consults on every wire transmission to

* **drop** the copy (it never arrives),
* **duplicate** it (a second copy arrives slightly later),
* **delay** it (extra in-flight time, up to :attr:`FaultPlan.delay_max`),
* **reorder** it (a large extra delay — enough to land after messages
  sent later on the same pair), and
* **stall or slow individual nodes** (an explicit fault-*schedule*:
  deliveries touching a stalled node's interface are deferred to the end
  of the stall window; a slow node adds a fixed delay to every message).

Everything is driven by one seeded ``random.Random`` — **no global
``random`` at simulation time** — so a run is a pure function of
``(program, schedule_seed, FaultPlan)``: the same plan replays the same
anomalies event-for-event, which is what lets ``python -m repro chaos``
assert bit-identical numerics across seeds.

The recovery side (sequence numbers, cumulative acks, retransmission) is
the network's job — see *Reliable delivery* in ``repro.sim.network`` —
this module only decides what the wire does to each copy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.envflags import env_flag

__all__ = ["FaultRates", "NodeStall", "FaultPlan", "FaultStats",
           "FaultInjector", "faults_enabled_from_env"]


def faults_enabled_from_env() -> bool:
    """The ``TMK_FAULTS`` toggle (default: off).

    Accepts the same spellings as ``TMK_FASTPATH`` (``0/false/off/no`` vs
    ``1/true/on/yes``, case-insensitive) via :func:`repro.envflags.
    env_flag`.  When set, clusters built without an explicit plan run
    under :meth:`FaultPlan.default`.
    """
    return env_flag("TMK_FAULTS", default=False)


@dataclass(frozen=True)
class FaultRates:
    """Per-transmission fault probabilities (independent draws)."""

    drop: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0


@dataclass(frozen=True)
class NodeStall:
    """One entry of the explicit fault schedule: ``node``'s network
    interface is unresponsive during ``[at, at + duration)`` virtual
    seconds — deliveries to or from it land at the window's end."""

    node: int
    at: float
    duration: float

    @property
    def end(self) -> float:
        return self.at + self.duration


#: default per-transmission rates: 2% drop, 2% duplicate, 5% reorder,
#: 5% extra delay — aggressive enough that every bench run exercises
#: every recovery path, mild enough that backoff never hits its cap.
DEFAULT_RATES = FaultRates(drop=0.02, dup=0.02, reorder=0.05, delay=0.05)


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs, in one immutable, seedable object.

    ``rates`` applies to every message; ``overrides`` maps an accounting
    *category* (``"sync"``, ``"diff_rep"``, ...) to different rates —
    e.g. a plan that only ever drops bulk data.  ``stalls`` is the
    explicit fault schedule.  ``reliable=False`` exposes the raw faulty
    wire (for tests that demonstrate why recovery is needed).
    """

    seed: int = 0
    rates: FaultRates = DEFAULT_RATES
    overrides: Mapping[str, FaultRates] = field(default_factory=dict)
    delay_max: float = 4e-4          # uniform extra in-flight time bound (s)
    reorder_lag: float = 2e-3        # reordering delay scale (s)
    stalls: tuple = ()               # NodeStall entries
    slow_nodes: Mapping[int, float] = field(default_factory=dict)
    reliable: bool = True            # arm the ack/retransmit sublayer
    rto: Optional[float] = None      # retransmit slack; None = derived
    max_attempts: int = 12           # transmissions per message before giving up

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def rates_for(self, category: str) -> FaultRates:
        return self.overrides.get(category, self.rates)

    @classmethod
    def default(cls, seed: int = 0) -> "FaultPlan":
        """Default chaos plan: all four rates plus one node stall."""
        return cls(seed=seed, stalls=(NodeStall(node=1, at=0.01,
                                               duration=0.01),))


@dataclass
class FaultStats:
    """What the injector actually did to this run (observability)."""

    drops: int = 0
    dups: int = 0
    delays: int = 0
    reorders: int = 0
    stall_deferrals: int = 0
    slow_deferrals: int = 0
    ack_drops: int = 0
    ack_delays: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))

    def total(self) -> int:
        return sum(vars(self).values())


@dataclass
class Verdict:
    """The injector's decision for one wire transmission."""

    drop: bool
    dup: bool
    delay: float


class FaultInjector:
    """Seeded per-run fault source; consulted by the network on every
    wire transmission (originals, retransmissions, and acks alike)."""

    def __init__(self, plan: FaultPlan, nprocs: int):
        self.plan = plan
        self.nprocs = nprocs
        self.rng = random.Random(plan.seed)
        self.stats = FaultStats()
        self._stalls = tuple(sorted(plan.stalls, key=lambda s: (s.at, s.node)))

    # ------------------------------------------------------------------ #

    def draw(self, category: str) -> Verdict:
        """Decide drop/dup/extra-delay for one transmission.

        The draw order is fixed (drop, dup, delay, amount, reorder,
        amount) so a plan replays identically whenever the network's
        transmission sequence is identical.
        """
        rates = self.plan.rates_for(category)
        rng = self.rng
        drop = rng.random() < rates.drop
        dup = rng.random() < rates.dup
        delay = 0.0
        if rng.random() < rates.delay:
            delay += rng.random() * self.plan.delay_max
            self.stats.delays += 1
        if rng.random() < rates.reorder:
            # enough lag to land behind several later sends on the pair
            delay += self.plan.reorder_lag * (0.5 + rng.random())
            self.stats.reorders += 1
        if drop:
            self.stats.drops += 1
        if dup:
            self.stats.dups += 1
        return Verdict(drop=drop, dup=dup, delay=delay)

    def draw_ack(self) -> Verdict:
        """Acks ride the same faulty wire (category ``"ack"``)."""
        verdict = self.draw("ack")
        if verdict.drop:
            self.stats.ack_drops += 1
            self.stats.drops -= 1       # counted separately
        if verdict.delay:
            self.stats.ack_delays += 1
        return verdict

    def dup_lag(self) -> float:
        """Extra in-flight time of an injected duplicate copy."""
        return self.plan.delay_max * (0.25 + 0.75 * self.rng.random())

    def defer(self, src: int, dst: int, t: float) -> float:
        """Apply the fault *schedule* to an arrival time: stalled-node
        windows push the arrival to the window end; slow nodes add their
        fixed per-message penalty."""
        slow = self.plan.slow_nodes
        if slow:
            extra = slow.get(src, 0.0) + slow.get(dst, 0.0)
            if extra:
                t += extra
                self.stats.slow_deferrals += 1
        for stall in self._stalls:
            if (src == stall.node or dst == stall.node) \
                    and stall.at <= t < stall.end:
                t = stall.end
                self.stats.stall_deferrals += 1
        return t

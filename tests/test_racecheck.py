"""Happens-before race detector + schedule-fuzzing harness tests.

Positive controls: two deliberately racy Tmk programs that the detector
MUST flag (a missing barrier, and a lock-free read-modify-write of a
shared scalar), each next to its race-free twin that MUST pass.  Then
the harness itself: the paper's applications are race-free and compute
bit-identical answers under every schedule seed.
"""

import numpy as np
import pytest

from repro.eval.experiments import run_variant
from repro.eval.racecheck import racecheck_app
from repro.sim.engine import Deadlock, Simulator
from repro.tmk.api import tmk_run

NPROCS = 4


def _setup(space):
    space.alloc("x", (16,), np.float64)


# --------------------------------------------------------------------- #
# control 1: missing barrier between initialization and use


def _racy_missing_barrier(tmk):
    x = tmk.array("x")
    if tmk.pid == 0:
        x.write((slice(0, 8),), 1.0, source="init:x")
    # BUG: no barrier — the other processors read concurrently with p0's
    # initialization write
    v = float(x.read((slice(0, 8),), source="use:x").sum())
    tmk.barrier()
    return v


def _fixed_missing_barrier(tmk):
    x = tmk.array("x")
    if tmk.pid == 0:
        x.write((slice(0, 8),), 1.0, source="init:x")
    tmk.barrier()
    v = float(x.read((slice(0, 8),), source="use:x").sum())
    tmk.barrier()
    return v


def test_missing_barrier_is_flagged():
    res = tmk_run(NPROCS, _racy_missing_barrier, _setup, racecheck=True)
    rc = res.racecheck
    assert rc.true_races, rc.format()
    assert not rc.ok


def test_missing_barrier_attribution():
    """The finding names the writing processor, the page, and both
    IR-level source tags."""
    res = tmk_run(NPROCS, _racy_missing_barrier, _setup, racecheck=True)
    page = res.race_monitor.world.space["x"].first_page
    for f in res.racecheck.true_races:
        assert f.array == "x"
        assert f.page == page
        sides = {(f.pid_a, f.source_a, f.rw_a), (f.pid_b, f.source_b, f.rw_b)}
        rws = {s[2] for s in sides}
        assert rws == {"W", "R"}          # init write vs concurrent read
        writer = next(s for s in sides if s[2] == "W")
        reader = next(s for s in sides if s[2] == "R")
        assert writer == (0, "init:x", "W")
        assert reader[0] != 0 and reader[1] == "use:x"
    # every non-zero processor's read races with p0's write
    readers = {f.pid_a for f in res.racecheck.true_races} \
        | {f.pid_b for f in res.racecheck.true_races}
    assert readers == set(range(NPROCS))


def test_barrier_fix_passes():
    res = tmk_run(NPROCS, _fixed_missing_barrier, _setup, racecheck=True)
    assert res.racecheck.ok, res.racecheck.format()
    assert not res.racecheck.true_races


# --------------------------------------------------------------------- #
# control 2: lock-free update of a shared scalar


def _racy_scalar(tmk):
    x = tmk.array("x")
    # BUG: read-modify-write with no lock
    cur = float(x.read((slice(0, 1),), source="accum:x")[0])
    x.write((slice(0, 1),), cur + 1.0, source="accum:x")
    tmk.barrier()
    return cur


def _locked_scalar(tmk):
    x = tmk.array("x")
    tmk.lock_acquire(0)
    cur = float(x.read((slice(0, 1),), source="accum:x")[0])
    x.write((slice(0, 1),), cur + 1.0, source="accum:x")
    tmk.lock_release(0)
    tmk.barrier()
    return cur


def test_lock_free_scalar_update_is_flagged():
    res = tmk_run(NPROCS, _racy_scalar, _setup, racecheck=True)
    rc = res.racecheck
    assert rc.true_races, rc.format()
    page = res.race_monitor.world.space["x"].first_page
    kinds = set()
    for f in rc.true_races:
        assert f.array == "x" and f.page == page
        assert {f.source_a, f.source_b} == {"accum:x"}
        kinds.add(frozenset((f.rw_a, f.rw_b)))
    assert frozenset(("W",)) in kinds      # the W/W pair is caught


def test_locked_scalar_update_passes():
    res = tmk_run(NPROCS, _locked_scalar, _setup, racecheck=True)
    assert res.racecheck.ok, res.racecheck.format()
    assert not res.racecheck.true_races


# --------------------------------------------------------------------- #
# the real applications are race-free under schedule fuzzing


def test_jacobi_spf_race_free_and_deterministic():
    rep = racecheck_app("jacobi", "spf", seeds=3, nprocs=NPROCS)
    assert rep.ok, rep.format()
    assert rep.deterministic
    assert not rep.true_races
    assert rep.all_exact          # elementwise stencil: bit-exact vs seq


def test_igrid_spf_acceptance():
    """The issue's acceptance bar: igrid/spf over 5 seeds — zero true
    races, numerics bit-identical to the sequential reference."""
    rep = racecheck_app("igrid", "spf", seeds=5, nprocs=NPROCS)
    assert rep.ok, rep.format()
    assert rep.deterministic and rep.all_exact
    assert not rep.true_races


def test_jacobi_hand_tmk_race_free():
    rep = racecheck_app("jacobi", "tmk", seeds=2, nprocs=NPROCS)
    assert rep.ok, rep.format()
    assert not rep.true_races


def test_spf_lock_reductions_race_free():
    """The lock-folded reduction path (no tree reductions) exercises the
    lock-transfer happens-before edges."""
    rep = racecheck_app("nbf", "spf", seeds=2, nprocs=NPROCS)
    assert not rep.true_races, rep.format()


def test_run_variant_carries_racecheck():
    res = run_variant("jacobi", "spf", nprocs=NPROCS, preset="test",
                      schedule_seed=3, racecheck=True)
    assert res.races is not None and res.races.ok


def test_run_variant_rejects_racecheck_on_message_passing():
    with pytest.raises(ValueError, match="DSM"):
        run_variant("jacobi", "xhpf", nprocs=NPROCS, preset="test",
                    racecheck=True)


def test_racecheck_app_rejects_non_dsm_variant():
    with pytest.raises(ValueError, match="DSM"):
        racecheck_app("jacobi", "pvme", seeds=1, nprocs=NPROCS)


# --------------------------------------------------------------------- #
# Deadlock diagnostics name the parked processes and their park sites


def test_deadlock_names_process_and_park_site():
    sim = Simulator()
    sim.add_process("stuck", lambda: sim.current.park(("waiting-on", 42)))
    with pytest.raises(Deadlock) as ei:
        sim.run()
    msg = str(ei.value)
    assert "stuck" in msg
    assert "waiting-on" in msg and "42" in msg
    assert "1 process(es)" in msg


def test_dsm_barrier_deadlock_names_park_site():
    def lopsided(tmk):
        if tmk.pid == 0:
            tmk.barrier()       # p1 never arrives

    with pytest.raises(Deadlock) as ei:
        tmk_run(2, lopsided, _setup)
    msg = str(ei.value)
    assert "cpu0" in msg
    assert "barrier" in msg or "recv" in msg

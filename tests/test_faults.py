"""Tests for seeded fault injection and reliable delivery (repro.sim.faults)."""

import numpy as np
import pytest

from repro.msg.endpoint import Comm
from repro.sim import Cluster, Deadlock, SimError
from repro.sim.faults import (FaultInjector, FaultPlan, FaultRates,
                              NodeStall, faults_enabled_from_env)

HEAVY = FaultPlan(rates=FaultRates(drop=0.3, dup=0.2, reorder=0.3, delay=0.3))


def pingpong(env, rounds=20):
    """Rank 0 <-> rank 1 strict request/reply; any loss hangs, any
    reorder or duplication corrupts the echoed sequence."""
    comm = Comm(env)
    peer = 1 - env.pid
    log = []
    for i in range(rounds):
        if env.pid == 0:
            comm.send(peer, i, tag=5)
            log.append(comm.recv(src=peer, tag=6))
        else:
            got = comm.recv(src=peer, tag=5)
            log.append(got)
            comm.send(peer, got * 10, tag=6)
    return log


def flood(env, count=30):
    """Rank 0 streams numbered payloads; rank 1 must see them in order."""
    comm = Comm(env)
    if env.pid == 0:
        for i in range(count):
            comm.send(1, i, tag=3)
    else:
        return [comm.recv(src=0, tag=3) for _ in range(count)]


# --------------------------------------------------------------------------- #
# the injector itself


def test_injector_is_deterministic_per_seed():
    a = FaultInjector(HEAVY.with_seed(7), nprocs=2)
    b = FaultInjector(HEAVY.with_seed(7), nprocs=2)
    for _ in range(200):
        va, vb = a.draw("data"), b.draw("data")
        assert (va.drop, va.dup, va.delay) == (vb.drop, vb.dup, vb.delay)
    assert vars(a.stats) == vars(b.stats)


def test_injector_seeds_differ():
    a = FaultInjector(HEAVY.with_seed(0), nprocs=2)
    b = FaultInjector(HEAVY.with_seed(1), nprocs=2)
    seq_a = [a.draw("data").drop for _ in range(100)]
    seq_b = [b.draw("data").drop for _ in range(100)]
    assert seq_a != seq_b


def test_category_overrides():
    plan = FaultPlan(rates=FaultRates(),
                     overrides={"sync": FaultRates(drop=1.0)})
    inj = FaultInjector(plan, nprocs=2)
    assert not inj.draw("data").drop
    assert inj.draw("sync").drop


def test_faults_env_toggle(monkeypatch):
    monkeypatch.delenv("TMK_FAULTS", raising=False)
    assert faults_enabled_from_env() is False
    for spelling in ("1", "true", "ON", "Yes"):
        monkeypatch.setenv("TMK_FAULTS", spelling)
        assert faults_enabled_from_env() is True
    for spelling in ("0", "false", "OFF", "no"):
        monkeypatch.setenv("TMK_FAULTS", spelling)
        assert faults_enabled_from_env() is False
    monkeypatch.setenv("TMK_FAULTS", "flase")
    with pytest.raises(ValueError):
        faults_enabled_from_env()


def test_fastpath_env_spellings(monkeypatch):
    from repro.tmk.faststate import fastpath_enabled_from_env
    monkeypatch.delenv("TMK_FASTPATH", raising=False)
    assert fastpath_enabled_from_env() is True
    for spelling in ("0", "False", "off", "NO"):
        monkeypatch.setenv("TMK_FASTPATH", spelling)
        assert fastpath_enabled_from_env() is False


# --------------------------------------------------------------------------- #
# reliable delivery


def test_reliable_delivery_survives_heavy_faults():
    for seed in range(4):
        r = Cluster(nprocs=2, faults=HEAVY.with_seed(seed)).run(pingpong)
        assert r.results[0] == [i * 10 for i in range(20)]
        assert r.results[1] == list(range(20))
        assert r.stats.retransmissions > 0   # the adversary did strike


def test_reliable_delivery_preserves_fifo_under_reorder():
    plan = FaultPlan(rates=FaultRates(reorder=0.5, dup=0.2))
    for seed in range(3):
        r = Cluster(nprocs=2, faults=plan.with_seed(seed)).run(flood)
        assert r.results[1] == list(range(30))


def test_unreliable_wire_actually_loses_messages():
    """reliable=False exposes the raw faulty wire: a certain drop hangs
    the receiver, and the Deadlock report shows the empty mailbox."""
    plan = FaultPlan(rates=FaultRates(drop=1.0), reliable=False)

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=1)
        else:
            comm.recv(src=0, tag=1)

    with pytest.raises(Deadlock) as exc:
        Cluster(nprocs=2, faults=plan).run(prog)
    assert "waiting on recv(src=0, tag=1)" in str(exc.value)


def test_retransmission_gives_up_after_max_attempts():
    plan = FaultPlan(rates=FaultRates(drop=1.0), max_attempts=4)

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=1)
        else:
            comm.recv(src=0, tag=1)

    with pytest.raises(SimError, match="gave up"):
        Cluster(nprocs=2, faults=plan).run(prog)


def test_duplicates_are_suppressed():
    plan = FaultPlan(rates=FaultRates(dup=1.0))
    cluster = Cluster(nprocs=2, faults=plan)
    r = cluster.run(flood)
    assert r.results[1] == list(range(30))
    # every message is doubled; most extra copies are suppressed (copies
    # still in flight when the last process finishes are never popped)
    assert r.stats.dup_suppressed >= 20


def test_node_stall_defers_delivery():
    stall = NodeStall(node=1, at=0.0, duration=0.5)
    plan = FaultPlan(rates=FaultRates(), stalls=(stall,))

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=1)
        else:
            comm.recv(src=0, tag=1)
            return env.now

    r = Cluster(nprocs=2, faults=plan).run(prog)
    assert r.results[1] >= stall.end
    assert Cluster(nprocs=2).run(prog).results[1] < 0.01


def test_slow_node_adds_latency():
    plan = FaultPlan(rates=FaultRates(), slow_nodes={1: 0.01})

    def prog(env):
        comm = Comm(env)
        if env.pid == 0:
            comm.send(1, "x", tag=1)
        else:
            comm.recv(src=0, tag=1)
            return env.now

    slow = Cluster(nprocs=2, faults=plan).run(prog).results[1]
    fast = Cluster(nprocs=2).run(prog).results[1]
    assert slow - fast >= 0.01 - 1e-9


def test_zero_rate_plan_matches_perfect_wire():
    """With all rates zero the recovery machinery (seq numbers, acks,
    timers) must be invisible: identical virtual time, message counts and
    byte totals.  (`events` legitimately differs: ack/timer conductor
    events interact with hold elision.)"""
    quiet = FaultPlan(rates=FaultRates(), stalls=())
    for prog in (pingpong, flood):
        a = Cluster(nprocs=2).run(prog)
        b = Cluster(nprocs=2, faults=quiet).run(prog)
        assert a.results == b.results
        assert a.time == b.time
        assert a.stats.messages == b.stats.messages
        assert a.stats.bytes == b.stats.bytes
        assert b.stats.retransmissions == 0


def test_faults_are_reproducible_end_to_end():
    """Same seed, same run: virtual times and every counter identical."""
    runs = [Cluster(nprocs=2, faults=HEAVY.with_seed(3)).run(pingpong)
            for _ in range(2)]
    assert runs[0].time == runs[1].time
    assert runs[0].stats.retransmissions == runs[1].stats.retransmissions
    assert runs[0].stats.acks == runs[1].stats.acks
    assert runs[0].stats.dup_suppressed == runs[1].stats.dup_suppressed


def test_env_toggle_attaches_default_plan(monkeypatch):
    monkeypatch.setenv("TMK_FAULTS", "on")
    cluster = Cluster(nprocs=2)
    assert cluster.net.plan is not None
    monkeypatch.setenv("TMK_FAULTS", "off")
    assert Cluster(nprocs=2).net.plan is None


# --------------------------------------------------------------------------- #
# stats plumbing


def test_network_stats_delta_covers_reliability_counters():
    from repro.sim.network import NetworkStats
    a = NetworkStats(messages=10, bytes=100, retransmissions=3, acks=7,
                     dup_suppressed=2)
    b = a.snapshot()
    b.retransmissions += 5
    b.acks += 1
    d = b.delta(a)
    assert (d.retransmissions, d.acks, d.dup_suppressed) == (5, 1, 0)


def test_dsm_stats_surface_retransmissions():
    from repro.tmk.api import tmk_run

    def setup(space):
        space.alloc("x", (64,), np.float64)

    def program(tmk):
        x = tmk.array("x")
        lo, hi = tmk.block_range(64)
        x.write(slice(lo, hi), float(tmk.pid))
        tmk.barrier()
        x.read()
        tmk.barrier()

    r = tmk_run(2, program, setup, faults=HEAVY.with_seed(1))
    assert r.dsm_stats.retransmissions == r.stats.retransmissions
    assert r.fault_stats is not None and r.fault_stats.total() > 0


# --------------------------------------------------------------------------- #
# the chaos harness


def test_chaos_sweep_smoke():
    from repro.eval.chaos import chaos_sweep

    report = chaos_sweep(apps=["jacobi"], variants=["spf", "pvme"],
                         seeds=[0], nprocs=4, preset="test")
    assert report.ok, report.format()
    assert len(report.cells) == 2
    doc = report.as_doc()
    assert doc["ok"] and doc["cells"][0]["app"] == "jacobi"


def test_mp_barrier_reserves_round_tags():
    """Barrier rounds draw their tags from next_tag, so a collective
    issued right after the barrier can never collide with a straggler's
    final barrier round (the old `tag + round_no` scheme reused tag
    space that next_tag would hand out again)."""
    from repro.msg.collectives import bcast, mp_barrier

    def prog(env):
        comm = Comm(env)
        before = comm._seq
        mp_barrier(comm)
        rounds = comm._seq - before          # one fresh tag per round
        value = bcast(comm, env.pid, root=0)
        return rounds, value

    r = Cluster(nprocs=4).run(prog)
    assert all(res == (2, 0) for res in r.results)    # ceil(log2 4) = 2

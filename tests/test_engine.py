"""Unit tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim.engine import Deadlock, Process, SimError, Simulator


def test_single_process_runs_to_completion():
    sim = Simulator()
    out = []
    sim.add_process("p", lambda: out.append("ran"))
    sim.run()
    assert out == ["ran"]


def test_hold_advances_virtual_time():
    sim = Simulator()
    times = []

    def prog():
        proc = sim.current
        times.append(sim.now)
        proc.hold(1.5)
        times.append(sim.now)
        proc.hold(0.25)
        times.append(sim.now)

    sim.add_process("p", prog)
    end = sim.run()
    assert times == [0.0, 1.5, 1.75]
    assert end == 1.75


def test_zero_hold_is_allowed():
    sim = Simulator()

    def prog():
        sim.current.hold(0.0)

    sim.add_process("p", prog)
    assert sim.run() == 0.0


def test_negative_hold_rejected():
    sim = Simulator()

    def prog():
        sim.current.hold(-1.0)

    sim.add_process("p", prog)
    with pytest.raises(SimError):
        sim.run()


def test_processes_interleave_by_time():
    sim = Simulator()
    order = []

    def prog(name, dt):
        proc = sim.current
        proc.hold(dt)
        order.append((name, sim.now))

    sim.add_process("a", prog, "a", 2.0)
    sim.add_process("b", prog, "b", 1.0)
    sim.add_process("c", prog, "c", 3.0)
    sim.run()
    assert order == [("b", 1.0), ("a", 2.0), ("c", 3.0)]


def test_same_time_tiebreak_is_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def prog(name):
        sim.current.hold(1.0)
        order.append(name)

    for name in "abcd":
        sim.add_process(name, prog, name)
    sim.run()
    assert order == list("abcd")


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        log = []

        def prog(name, dts):
            proc = sim.current
            for dt in dts:
                proc.hold(dt)
                log.append((name, sim.now))

        sim.add_process("x", prog, "x", [0.5, 0.5, 1.0])
        sim.add_process("y", prog, "y", [0.7, 0.3, 1.0])
        sim.run()
        return log

    assert build() == build()


def test_park_unpark():
    sim = Simulator()
    log = []

    def sleeper():
        proc = sim.current
        log.append("parking")
        proc.park()
        log.append(("woken", sim.now))

    def waker(target):
        proc = sim.current
        proc.hold(2.0)
        sim.unpark(target[0], delay=0.5)

    target = []
    p = sim.add_process("sleeper", sleeper)
    target.append(p)
    sim.add_process("waker", waker, target)
    sim.run()
    assert log == ["parking", ("woken", 2.5)]


def test_unpark_of_running_process_raises():
    sim = Simulator()

    def prog(holder):
        with pytest.raises(SimError):
            sim.unpark(sim.current)

    sim.add_process("p", prog, None)
    sim.run()


def test_deadlock_detected():
    sim = Simulator()
    sim.add_process("stuck", lambda: sim.current.park())
    with pytest.raises(Deadlock):
        sim.run()


def test_daemon_does_not_block_completion():
    sim = Simulator()

    def daemon():
        sim.current.park()   # parks forever

    def main():
        sim.current.hold(1.0)

    sim.add_process("d", daemon, daemon=True)
    sim.add_process("m", main)
    assert sim.run() == 1.0


def test_exception_in_process_propagates():
    sim = Simulator()

    def bad():
        raise ValueError("boom")

    sim.add_process("bad", bad)
    with pytest.raises(SimError, match="boom"):
        sim.run()


def test_exception_reports_process_name():
    sim = Simulator()

    def bad():
        sim.current.hold(1.0)
        raise RuntimeError("later failure")

    sim.add_process("worker-7", bad)
    with pytest.raises(SimError, match="worker-7"):
        sim.run()


def test_schedule_call_runs_on_conductor():
    sim = Simulator()
    hits = []

    def prog():
        sim.schedule_call(3.0, lambda: hits.append(sim.now))
        sim.current.hold(5.0)

    sim.add_process("p", prog)
    sim.run()
    assert hits == [3.0]


def test_run_until_stops_early():
    sim = Simulator()

    def prog():
        for _ in range(10):
            sim.current.hold(1.0)

    sim.add_process("p", prog)
    end = sim.run(until=3.5)
    assert end == 3.5


def test_process_results_captured():
    sim = Simulator()

    def prog(v):
        sim.current.hold(1.0)
        return v * 2

    procs = [sim.add_process(f"p{i}", prog, i) for i in range(4)]
    sim.run()
    assert [p.result for p in procs] == [0, 2, 4, 6]
    assert all(p.finished for p in procs)
    assert all(p.finish_time == 1.0 for p in procs)


def test_dynamic_process_spawn_mid_run():
    sim = Simulator()
    log = []

    def child():
        sim.current.hold(0.5)
        log.append(("child", sim.now))

    def parent():
        sim.current.hold(1.0)
        sim.add_process("child", child)
        sim.current.hold(1.0)
        log.append(("parent", sim.now))

    sim.add_process("parent", parent)
    sim.run()
    assert log == [("child", 1.5), ("parent", 2.0)]


def test_current_outside_process_context_raises():
    sim = Simulator()
    with pytest.raises(SimError):
        _ = sim.current

"""Vector-clock happens-before race detection for the DSM protocol.

The paper's argument rests on lazy release consistency being *correct for
race-free programs*: multiple-writer diffs merge to the sequential result
only when every pair of conflicting accesses is ordered by synchronization.
This module checks exactly that property over a run.

A :class:`RaceMonitor` attaches to a :class:`~repro.tmk.api.TmkWorld`
before the cluster starts (``tmk_run(racecheck=True)`` does it at the
right moment) and observes two event streams:

* **accesses** — every coherent access funnels through the four
  ``TmkNode.ensure_*`` hooks (``SharedArray`` methods, the SPF backend,
  the enhanced interface all call them), which report the accessing
  processor, the exact byte footprint, read/write, and an IR source tag;
* **synchronization** — barriers, lock transfers, fork/join, tree
  reductions, pushes and broadcasts call back at their release and
  acquire points.

The monitor maintains one vector clock per processor (FastTrack-style:
own component starts at 1 and increments at every release; acquires merge
the matching release's snapshot).  Each access is stamped with its
processor's current clock.  Two accesses *a*, *b* on different processors
are ordered iff ``a.clock[a.pid] <= b.clock[a.pid]`` (or symmetrically) —
i.e. the later processor observed the release that followed the earlier
access.  Note the protocol's own ``seen`` vectors cannot serve as these
clocks: a processor that writes nothing closes no intervals, so its
barriers are invisible in ``seen`` — the monitor's clocks tick at every
release regardless.

:func:`find_races` then classifies every unordered conflicting pair
(different processors, at least one write, same page):

* **true race** — the word-aligned byte footprints overlap; the
  multiple-writer merge is order-dependent and the program is broken;
* **false sharing** — same page, disjoint words; benign for correctness
  (the diffs commute) but a protocol-traffic hazard worth reporting.

Word granularity matches :mod:`repro.tmk.diffs` (``WORD = 4``): diffs are
encoded in words, so two writers of different bytes in one word *do*
conflict.

The schedule fuzzer lives in :mod:`repro.sim.engine`
(``Simulator(schedule_seed=...)``); ``python -m repro racecheck`` drives
both together across seeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.sim.machine import PAGE_SIZE
from repro.tmk.diffs import WORD
from repro.tmk.trace import ProtocolTrace, TraceEvent

__all__ = ["RaceMonitor", "attach_race_monitor", "AccessEvent",
           "RaceFinding", "RaceCheckResult", "find_races"]


@dataclass
class AccessEvent:
    """One (possibly merged) application access to shared memory.

    Accesses by the same processor with the same source tag, direction and
    vector clock are merged — between two synchronization operations a
    processor's clock is constant, and for race purposes only the union of
    its footprint matters.
    """

    pid: int
    array: str
    write: bool
    source: str
    clock: tuple
    time: float
    run_lists: list = field(default_factory=list)   # [(k, 2) byte intervals]
    count: int = 0

    @property
    def rw(self) -> str:
        return "W" if self.write else "R"

    def runs(self) -> np.ndarray:
        """All byte intervals, merged and sorted."""
        return _merge_runs(self.run_lists)

    def epoch(self) -> int:
        return self.clock[self.pid]


def _merge_runs(run_lists: list) -> np.ndarray:
    if not run_lists:
        return np.empty((0, 2), dtype=np.int64)
    if len(run_lists) == 1:
        return run_lists[0]
    allruns = np.concatenate(run_lists, axis=0)
    order = np.argsort(allruns[:, 0], kind="stable")
    allruns = allruns[order]
    out = []
    cur_lo, cur_hi = int(allruns[0, 0]), int(allruns[0, 1])
    for lo, hi in allruns[1:]:
        if lo <= cur_hi:
            cur_hi = max(cur_hi, int(hi))
        else:
            out.append((cur_lo, cur_hi))
            cur_lo, cur_hi = int(lo), int(hi)
    out.append((cur_lo, cur_hi))
    return np.asarray(out, dtype=np.int64)


@dataclass
class RaceFinding:
    """One conflicting unordered access pair (deduplicated per source pair)."""

    kind: str                 # "true-race" | "false-sharing"
    array: str
    page: int
    pid_a: int
    source_a: str
    rw_a: str
    pid_b: int
    source_b: str
    rw_b: str
    overlap: Optional[tuple] = None     # (start, stop) global byte range
    count: int = 1                      # distinct unordered pairs collapsed

    def describe(self, lookup: Optional[Callable[[str], str]] = None) -> str:
        """``lookup`` maps source tags to IR-level descriptions — a dict
        (e.g. :func:`repro.compiler.report.source_lookup`) or callable."""
        def side(pid, src, rw):
            extra = ""
            if lookup is not None:
                desc = (lookup.get(src) if hasattr(lookup, "get")
                        else lookup(src))
                if desc:
                    extra = f" ({desc})"
            return f"p{pid} {rw} {src}{extra}"
        where = f"array {self.array!r} page {self.page}"
        if self.overlap is not None:
            where += f" bytes [{self.overlap[0]}, {self.overlap[1]})"
        tag = "TRUE RACE" if self.kind == "true-race" else "false sharing"
        return (f"{tag}: {side(self.pid_a, self.source_a, self.rw_a)} x "
                f"{side(self.pid_b, self.source_b, self.rw_b)} on {where}"
                + (f" [{self.count} pairs]" if self.count > 1 else ""))


@dataclass
class RaceCheckResult:
    """Detector verdict for one run."""

    true_races: list
    false_sharing: list
    n_events: int
    n_dropped: int

    @property
    def ok(self) -> bool:
        return not self.true_races

    def format(self, lookup: Optional[Callable[[str], str]] = None) -> str:
        lines = [f"racecheck: {len(self.true_races)} true race(s), "
                 f"{len(self.false_sharing)} false-sharing pair(s) over "
                 f"{self.n_events} access events"
                 + (f" ({self.n_dropped} dropped)" if self.n_dropped else "")]
        for f in self.true_races:
            lines.append("  " + f.describe(lookup))
        for f in self.false_sharing:
            lines.append("  " + f.describe(lookup))
        return "\n".join(lines)


class RaceMonitor:
    """Observes accesses and synchronization; owns the vector clocks.

    All hooks run on simulated-process threads, but the conductor runs
    exactly one thread at a time, so no locking is needed.
    """

    def __init__(self, world, capacity: int = 500_000):
        self.world = world
        self.nprocs = world.nprocs
        self.capacity = capacity
        # FastTrack-style clocks: own component starts at 1 so that two
        # processors' pre-synchronization accesses compare as concurrent.
        self.clocks = [[0] * self.nprocs for _ in range(self.nprocs)]
        for p in range(self.nprocs):
            self.clocks[p][p] = 1
        self.events: list[AccessEvent] = []
        self._index: dict[tuple, AccessEvent] = {}
        self.n_dropped = 0
        # sync-event log (kind "release"/"acquire"), shared with the
        # protocol tracer when one is attached
        self.trace: ProtocolTrace = getattr(world, "trace", None) \
            or ProtocolTrace(capacity=None)
        # barriers: per-generation arrival snapshots, matched by per-pid
        # arrival counters (every barrier in this system is global)
        self._barrier_slots: dict[int, dict[int, tuple]] = {}
        self._arrive_count = [0] * self.nprocs
        self._depart_count = [0] * self.nprocs
        self._departed: dict[int, int] = {}
        # locks: (pid, lock) -> snapshot at this holder's latest release;
        # (lock, requester) -> snapshot travelling with an in-flight grant
        self._lock_snap: dict[tuple, tuple] = {}
        self._pending_grant: dict[tuple, Optional[tuple]] = {}
        # message channels (fork/join/reduce/push/bcast): FIFO per
        # (src, dst, kind), sound because same-(src, dst, tag) message
        # delivery is FIFO in the network
        self._channels: dict[tuple, deque] = {}

    # ------------------------------------------------------------------ #
    # clock primitives

    def snapshot(self, pid: int) -> tuple:
        return tuple(self.clocks[pid])

    def release(self, pid: int) -> tuple:
        """Snapshot this processor's clock, then tick its own component."""
        snap = self.snapshot(pid)
        self.clocks[pid][pid] += 1
        return snap

    def merge(self, pid: int, snap: Optional[tuple]) -> None:
        if snap is None:
            return
        row = self.clocks[pid]
        for q, v in enumerate(snap):
            if v > row[q]:
                row[q] = v

    # ------------------------------------------------------------------ #
    # access stream

    def on_access(self, pid: int, handle, write: bool, runs: np.ndarray,
                  source: Optional[str]) -> None:
        if runs.shape[0] == 0:
            return
        src = source if source is not None else handle.name
        clock = self.snapshot(pid)
        key = (pid, handle.name, write, src, clock)
        ev = self._index.get(key)
        if ev is None:
            if len(self.events) >= self.capacity:
                self.n_dropped += 1
                return
            ev = AccessEvent(pid=pid, array=handle.name, write=write,
                             source=src, clock=clock, time=self._now(pid))
            self.events.append(ev)
            self._index[key] = ev
        ev.run_lists.append(runs)
        ev.count += 1

    def _now(self, pid: int) -> float:
        node = self.world.nodes.get(pid)
        return node.env.now if node is not None else 0.0

    def _sync_event(self, pid: int, kind: str, **detail) -> None:
        self.trace.record(TraceEvent(self._now(pid), pid, kind, None, detail))

    # ------------------------------------------------------------------ #
    # barriers

    def on_barrier_arrive(self, pid: int) -> None:
        gen = self._arrive_count[pid]
        self._arrive_count[pid] += 1
        self._barrier_slots.setdefault(gen, {})[pid] = self.release(pid)
        self._sync_event(pid, "release", op="barrier", gen=gen)

    def on_barrier_depart(self, pid: int) -> None:
        gen = self._depart_count[pid]
        self._depart_count[pid] += 1
        slots = self._barrier_slots[gen]
        for snap in slots.values():
            self.merge(pid, snap)
        self._sync_event(pid, "acquire", op="barrier", gen=gen)
        done = self._departed.get(gen, 0) + 1
        if done == self.nprocs:
            del self._barrier_slots[gen]
            self._departed.pop(gen, None)
        else:
            self._departed[gen] = done

    # ------------------------------------------------------------------ #
    # locks — the grant message carries the holder's release-point clock

    def on_lock_release(self, pid: int, lock: int) -> None:
        self._lock_snap[(pid, lock)] = self.release(pid)
        self._sync_event(pid, "release", op="lock", lock=lock)

    def on_grant_send(self, pid: int, lock: int, requester: int) -> None:
        # The requester blocks until granted, so at most one grant per
        # (lock, requester) is ever in flight — the key is unambiguous.
        self._pending_grant[(lock, requester)] = \
            self._lock_snap.get((pid, lock))

    def on_lock_acquire(self, pid: int, lock: int) -> None:
        self.merge(pid, self._pending_grant.pop((lock, pid), None))
        self._sync_event(pid, "acquire", op="lock", lock=lock)

    # ------------------------------------------------------------------ #
    # point-to-point sync messages (fork/join, reductions, pushes)

    def channel_put(self, src: int, dst: int, kind: str, snap: tuple) -> None:
        self._channels.setdefault((src, dst, kind), deque()).append(snap)

    def channel_acquire(self, pid: int, src: int, kind: str) -> None:
        chan = self._channels.get((src, pid, kind))
        if not chan:
            raise RuntimeError(
                f"race monitor: acquire on empty channel {(src, pid, kind)}")
        self.merge(pid, chan.popleft())
        self._sync_event(pid, "acquire", op=kind, src=src)

    # ------------------------------------------------------------------ #

    def finish(self, max_report: int = 64) -> RaceCheckResult:
        """Run the detector over everything observed so far."""
        space = getattr(self.world, "space", None)
        return find_races(self.events, space=space,
                          n_dropped=self.n_dropped, max_report=max_report)


def attach_race_monitor(world, capacity: int = 500_000) -> RaceMonitor:
    """Instrument ``world`` (must precede the cluster run)."""
    mon = RaceMonitor(world, capacity=capacity)
    world.race_monitor = mon
    return mon


# ---------------------------------------------------------------------- #
# detection

def _word_align(runs: np.ndarray) -> np.ndarray:
    """Widen byte intervals to diff granularity (WORD-aligned)."""
    out = runs.copy()
    out[:, 0] = (out[:, 0] // WORD) * WORD
    out[:, 1] = ((out[:, 1] + WORD - 1) // WORD) * WORD
    return out


def _first_overlap(a: np.ndarray, b: np.ndarray) -> Optional[tuple]:
    """First intersecting ``[start, stop)`` of two sorted interval lists."""
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i, 0], b[j, 0])
        hi = min(a[i, 1], b[j, 1])
        if lo < hi:
            return (int(lo), int(hi))
        if a[i, 1] <= b[j, 1]:
            i += 1
        else:
            j += 1
    return None


def _ordered(a: AccessEvent, b: AccessEvent) -> bool:
    """Happens-before in either direction."""
    return (a.clock[a.pid] <= b.clock[a.pid]
            or b.clock[b.pid] <= a.clock[b.pid])


def _page_names(space) -> dict:
    names: dict[int, str] = {}
    if space is None:
        return names
    for handle in space.handles():
        for page in handle.pages():
            prev = names.get(page)
            names[page] = f"{prev}|{handle.name}" if prev else handle.name
    return names


def find_races(events: list, space=None, n_dropped: int = 0,
               max_report: int = 64) -> RaceCheckResult:
    """Classify every unordered conflicting access pair.

    ``events`` are :class:`AccessEvent` objects stamped with vector
    clocks.  Conflicts are checked page by page (that is the protocol's
    coherence unit); unordered conflicting pairs are split into true
    races (word-aligned footprints overlap) and false sharing (same page,
    disjoint words).  Findings are deduplicated per
    (array, pid/source/direction pair) with a pair count.
    """
    per_page: dict[int, list] = {}
    aligned: dict[int, np.ndarray] = {}
    for idx, ev in enumerate(events):
        runs = _word_align(ev.runs())
        aligned[idx] = runs
        pages = set()
        for lo, hi in runs:
            pages.update(range(int(lo) // PAGE_SIZE,
                               (int(hi) - 1) // PAGE_SIZE + 1))
        for page in pages:
            per_page.setdefault(page, []).append(idx)

    names = _page_names(space)
    findings: dict[tuple, RaceFinding] = {}
    for page, idxs in sorted(per_page.items()):
        pids = {events[i].pid for i in idxs}
        if len(pids) < 2:
            continue
        page_lo, page_hi = page * PAGE_SIZE, (page + 1) * PAGE_SIZE
        for x in range(len(idxs)):
            a = events[idxs[x]]
            for y in range(x + 1, len(idxs)):
                b = events[idxs[y]]
                if a.pid == b.pid or not (a.write or b.write):
                    continue
                if _ordered(a, b):
                    continue
                ra, rb = aligned[idxs[x]], aligned[idxs[y]]
                overlap = _first_overlap(ra, rb)
                if overlap is not None and not (overlap[0] < page_hi
                                                and overlap[1] > page_lo):
                    # the overlap lies on another page; report it there
                    continue
                kind = "true-race" if overlap is not None else "false-sharing"
                array = names.get(page) or a.array
                # canonical side order for dedup
                sa = (a.pid, a.source, a.rw)
                sb = (b.pid, b.source, b.rw)
                if sb < sa:
                    sa, sb = sb, sa
                key = (kind, array, sa, sb)
                f = findings.get(key)
                if f is None:
                    findings[key] = RaceFinding(
                        kind=kind, array=array, page=page,
                        pid_a=sa[0], source_a=sa[1], rw_a=sa[2],
                        pid_b=sb[0], source_b=sb[1], rw_b=sb[2],
                        overlap=overlap)
                else:
                    f.count += 1
    true_races = [f for f in findings.values() if f.kind == "true-race"]
    false_sharing = [f for f in findings.values()
                     if f.kind == "false-sharing"]
    return RaceCheckResult(true_races=true_races[:max_report],
                           false_sharing=false_sharing[:max_report],
                           n_events=len(events), n_dropped=n_dropped)

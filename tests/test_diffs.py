"""Unit + property tests for twins and run-length diffs (repro.tmk.diffs)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmk.diffs import (RUN_HEADER_BYTES, WORD, apply_diff, apply_diffs,
                             diff_nbytes, make_diff)

PAGE = 4096


def page(fill=0):
    return np.full(PAGE, fill, dtype=np.uint8)


def test_identical_pages_give_empty_diff():
    twin = page(7)
    cur = twin.copy()
    assert make_diff(cur, twin) == []


def test_empty_diff_costs_nothing():
    assert diff_nbytes([]) == 0


def test_single_word_change():
    twin = page(0)
    cur = twin.copy()
    cur[100:104] = 0xFF
    diff = make_diff(cur, twin)
    assert len(diff) == 1
    off, data = diff[0]
    assert off == 100 and len(data) == 4


def test_word_granularity_rounding():
    """A single changed byte produces a whole-word run."""
    twin = page(0)
    cur = twin.copy()
    cur[101] = 1   # middle of word 25
    diff = make_diff(cur, twin)
    assert diff == [(100, cur[100:104].tobytes())]


def test_adjacent_words_merge_into_one_run():
    twin = page(0)
    cur = twin.copy()
    cur[100:112] = 5    # words 25, 26, 27
    diff = make_diff(cur, twin)
    assert len(diff) == 1
    assert diff[0][0] == 100 and len(diff[0][1]) == 12


def test_separate_runs_stay_separate():
    twin = page(0)
    cur = twin.copy()
    cur[0:4] = 1
    cur[200:204] = 2
    cur[4092:4096] = 3
    diff = make_diff(cur, twin)
    assert [off for off, _ in diff] == [0, 200, 4092]


def test_apply_restores_modified_page():
    rng = np.random.default_rng(1)
    twin = rng.integers(0, 256, PAGE).astype(np.uint8)
    cur = twin.copy()
    cur[500:900] = rng.integers(0, 256, 400).astype(np.uint8)
    diff = make_diff(cur, twin)
    target = twin.copy()
    apply_diff(target, diff)
    assert np.array_equal(target, cur)


def test_apply_to_third_party_base_patches_only_runs():
    """Applying a diff changes only the modified words — the multiple-writer
    merge property."""
    twin = page(0)
    cur = twin.copy()
    cur[0:4] = 9
    diff = make_diff(cur, twin)
    other = page(0)
    other[2000:2004] = 7    # concurrent disjoint modification
    apply_diff(other, diff)
    assert other[0] == 9 and other[2000] == 7


def test_concurrent_disjoint_diffs_commute():
    twin = page(0)
    a = twin.copy()
    a[0:400] = 1
    b = twin.copy()
    b[400:800] = 2
    da = make_diff(a, twin)
    db = make_diff(b, twin)
    ab = twin.copy()
    apply_diff(ab, da)
    apply_diff(ab, db)
    ba = twin.copy()
    apply_diff(ba, db)
    apply_diff(ba, da)
    assert np.array_equal(ab, ba)
    assert ab[0] == 1 and ab[400] == 2


def test_diff_nbytes_counts_headers_and_payload():
    twin = page(0)
    cur = twin.copy()
    cur[0:8] = 1
    cur[100:104] = 2
    diff = make_diff(cur, twin)
    assert diff_nbytes(diff) == (8 + RUN_HEADER_BYTES) + (4 + RUN_HEADER_BYTES)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        make_diff(page(), np.zeros(8, np.uint8))


def test_non_word_multiple_rejected():
    with pytest.raises(ValueError):
        make_diff(np.zeros(6, np.uint8), np.zeros(6, np.uint8))


def test_out_of_range_run_rejected():
    with pytest.raises(ValueError):
        apply_diff(np.zeros(8, np.uint8), [(4, b"12345678")])


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, PAGE // WORD - 1),
              st.integers(0, 255)),
    max_size=64))
def test_roundtrip_property(changes):
    """apply(make_diff(cur, twin), twin) == cur for arbitrary word edits."""
    twin = np.arange(PAGE, dtype=np.uint32).view(np.uint8)[:PAGE].copy()
    cur = twin.copy()
    for word, val in changes:
        cur[word * WORD:(word + 1) * WORD] = val
    diff = make_diff(cur, twin)
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, cur)


# --------------------------------------------------------------------- #
# seeded randomized round-trips: random twin/page pairs must encode and
# re-apply bit-identically, including the degenerate shapes


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_seeded_random_edits_roundtrip(seed):
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, PAGE).astype(np.uint8)
    cur = twin.copy()
    for _ in range(int(rng.integers(1, 24))):
        word = int(rng.integers(0, PAGE // WORD))
        span = int(rng.integers(1, 16))
        lo = word * WORD
        hi = min(PAGE, lo + span * WORD)
        cur[lo:hi] = rng.integers(0, 256, hi - lo).astype(np.uint8)
    diff = make_diff(cur, twin)
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, cur)


@pytest.mark.parametrize("seed", [5, 6])
def test_seeded_unmodified_page_gives_empty_diff(seed):
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, PAGE).astype(np.uint8)
    assert make_diff(twin.copy(), twin) == []


@pytest.mark.parametrize("seed", [7, 8])
def test_seeded_full_page_diff_roundtrip(seed):
    """Every word modified: one run spanning the whole page."""
    rng = np.random.default_rng(seed)
    twin = rng.integers(0, 256, PAGE).astype(np.uint8)
    cur = (twin + 1).astype(np.uint8)    # every byte (hence word) differs
    diff = make_diff(cur, twin)
    assert len(diff) == 1
    assert diff[0][0] == 0 and len(diff[0][1]) == PAGE
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, cur)


def test_word_boundary_runs_roundtrip():
    """Runs hugging both page edges survive the round trip intact."""
    twin = page(0)
    cur = twin.copy()
    cur[0:WORD] = 1
    cur[PAGE - WORD:PAGE] = 2
    diff = make_diff(cur, twin)
    assert [off for off, _ in diff] == [0, PAGE - WORD]
    rebuilt = twin.copy()
    apply_diff(rebuilt, diff)
    assert np.array_equal(rebuilt, cur)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, PAGE // WORD - 1), st.integers(1, 64))
def test_run_structure_property(start_word, nwords):
    """A contiguous word-span edit yields exactly one run of that span."""
    nwords = min(nwords, PAGE // WORD - start_word)
    twin = page(0)
    cur = twin.copy()
    lo = start_word * WORD
    hi = lo + nwords * WORD
    cur[lo:hi] = 0xAB
    diff = make_diff(cur, twin)
    assert diff == [(lo, cur[lo:hi].tobytes())]
    assert diff_nbytes(diff) == (hi - lo) + RUN_HEADER_BYTES


# ---------------------------------------------------------------------- #
# batch application (apply_diffs)

def test_apply_diffs_empty_batch_is_noop():
    target = page(3)
    apply_diffs(target, [])
    assert np.array_equal(target, page(3))
    apply_diffs(target, [[], []])    # empty diffs inside the batch too
    assert np.array_equal(target, page(3))


def test_apply_diffs_matches_sequential_application():
    rng = np.random.default_rng(11)
    twin = rng.integers(0, 256, PAGE).astype(np.uint8)
    diffs = []
    for seed in range(4):
        cur = twin.copy()
        r = np.random.default_rng(seed)
        for _ in range(5):
            w = int(r.integers(0, PAGE // WORD))
            cur[w * WORD:(w + 1) * WORD] = r.integers(0, 256, WORD)
        diffs.append(make_diff(cur, twin))
    seq = twin.copy()
    for d in diffs:
        apply_diff(seq, d)
    batch = twin.copy()
    apply_diffs(batch, diffs)
    assert np.array_equal(batch, seq)


def test_apply_diffs_overlap_later_wins():
    """Overlapping runs resolve in list order: the last writer's bytes
    land, exactly as the sequential loop they replace."""
    twin = page(0)
    a = twin.copy()
    a[100:108] = 1
    b = twin.copy()
    b[104:112] = 2
    target = twin.copy()
    apply_diffs(target, [make_diff(a, twin), make_diff(b, twin)])
    assert target[100] == 1 and target[104] == 2 and target[108] == 2


def test_memoryview_payloads_behave_like_bytes():
    """make_diff's zero-copy payloads must satisfy every consumer that
    treated them as bytes: equality, len, buffer protocol."""
    twin = page(0)
    cur = twin.copy()
    cur[200:208] = 5
    diff = make_diff(cur, twin)
    off, data = diff[0]
    assert data == cur[200:208].tobytes()
    assert len(data) == 8
    assert np.frombuffer(data, dtype=np.uint8)[0] == 5

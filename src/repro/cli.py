"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run APP VARIANT``      run one application variant and print its metrics
``compare APP``          run all four variants of one application
``figures``              regenerate the paper's figures/tables (bench sizes)
``sweep``                analytic model at 8-1024 nodes (extended tables)
``explain APP``          print both compilers' compilation reports
``racecheck APP VARIANT``  fuzz schedules + happens-before race detection
``chaos``                sweep fault seeds; assert numerics vs fault-free
``bench``                time simulator kernels in wall-clock seconds
``serve``                persistent worker-pool run service (JSON lines)
``fleet``                front N remote serve hosts behind one service
``list``                 list applications, variants and presets

Every command that runs programs goes through the unified
:mod:`repro.api` — it builds :class:`~repro.api.RunRequest` values and
executes them in-process or through the :mod:`repro.serve` pool; the
app/variant argument choices come from :mod:`repro.api.registry`.

Examples::

    python -m repro run igrid spf -n 8 --preset bench --stats
    python -m repro run jacobi spf -n 64 --mode model --preset test
    python -m repro sweep --apps jacobi --nodes 8 16 64 --out sweep.json
    python -m repro compare jacobi --preset test
    python -m repro explain mgs
    python -m repro racecheck igrid spf --seeds 5
    python -m repro chaos --seeds 3 --apps jacobi mgs --out chaos.json
    python -m repro bench --smoke
    python -m repro bench --throughput --workers 4
    python -m repro serve --port 7590 --workers 4
    python -m repro fleet --host h1:7590 --host h2:7590 --probe
    python -m repro sweep --apps jacobi --fleet h1:7590 --fleet h2:7590
    python -m repro figures
"""

from __future__ import annotations

import argparse
import sys

from repro.api.execute import execute
from repro.api.registry import (APPS, IRREGULAR_APPS, PAPER, PRESETS,
                                RACECHECK_VARIANTS, REGULAR_APPS, VARIANTS)
from repro.api.types import RunRequest, machine_from_doc
from repro.apps.common import get_app
from repro.eval.experiments import run_all_variants
from repro.eval.tables import format_speedup_figure, format_traffic_table

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", "--nprocs", type=int, default=8,
                        help="simulated processors (default 8, the paper's)")
    parser.add_argument("--preset", default="bench",
                        choices=list(PRESETS),
                        help="problem size preset (default bench)")


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="retire runs through a worker pool of this "
                             "size (default 1: serial in-process, "
                             "bit-for-bit the historical behaviour)")
    parser.add_argument("--fleet", action="append", default=None,
                        metavar="HOST:PORT", dest="fleet",
                        help="retire runs across remote `repro serve "
                             "--tcp` hosts (repeat per host); results "
                             "stay bit-identical to the serial loop")


def _parse_machine(pairs):
    """``KEY=VALUE`` pairs -> machine-override dict (RunRequest form)."""
    from dataclasses import fields

    from repro.sim.machine import SP2_MODEL

    if not pairs:
        return None
    types = {f.name: type(getattr(SP2_MODEL, f.name))
             for f in fields(SP2_MODEL)}
    overrides = {}
    for pair in pairs:
        key, sep, val = pair.partition("=")
        if not sep or key not in types:
            raise SystemExit(
                f"bad --machine override {pair!r} (expected KEY=VALUE with "
                f"KEY one of {', '.join(sorted(types))})")
        cast = types[key]
        overrides[key] = cast(float(val)) if cast is int else cast(val)
    return overrides


def cmd_run(args) -> int:
    from repro.compiler.model import ModelUnsupportedVariant

    request = RunRequest(app=args.app, variant=args.variant,
                         nprocs=args.nprocs, preset=args.preset,
                         mode=args.mode,
                         machine=_parse_machine(args.machine))
    try:
        res = execute(request)
    except ModelUnsupportedVariant:
        from repro.api.registry import MODELED_VARIANTS
        print(f"variant {args.variant!r} has no analytic model "
              f"(modeled variants: {', '.join(MODELED_VARIANTS)}); "
              f"use --mode sim", file=sys.stderr)
        return 2
    print(res.row())
    if res.dsm is not None:
        print("dsm:", res.dsm.summary())
        if args.stats:
            from repro.tmk.diagnostics import fastpath_summary
            print(fastpath_summary(res.dsm))
    paper = PAPER.get(args.app)
    if paper and args.variant in paper.speedups \
            and paper.speedups[args.variant]:
        print(f"paper's 8-processor speedup for this variant: "
              f"{paper.speedups[args.variant]}")
    return 0


def cmd_compare(args) -> int:
    results = run_all_variants(args.app, nprocs=args.nprocs,
                               preset=args.preset, jobs=args.jobs,
                               fleet=args.fleet)
    print(f"{args.app} ({PAPER[args.app].problem_size}), "
          f"{args.nprocs} simulated processors, preset {args.preset!r}\n")
    for variant in ("seq", "spf", "tmk", "xhpf", "pvme"):
        print(results[variant].row())
    return 0


def cmd_figures(args) -> int:
    regular = {app: run_all_variants(app, nprocs=args.nprocs,
                                     preset=args.preset)
               for app in REGULAR_APPS}
    print(format_speedup_figure(
        regular, REGULAR_APPS,
        "Figure 1 — 8-Processor Speedups, Regular Applications"))
    print()
    print(format_traffic_table(regular, REGULAR_APPS,
                               "Table 2 — Messages and Data (KB)"))
    print()
    irregular = {app: run_all_variants(app, nprocs=args.nprocs,
                                       preset=args.preset)
                 for app in IRREGULAR_APPS}
    print(format_speedup_figure(
        irregular, IRREGULAR_APPS,
        "Figure 2 — 8-Processor Speedups, Irregular Applications"))
    print()
    print(format_traffic_table(irregular, IRREGULAR_APPS,
                               "Table 3 — Messages and Data (KB)"))
    return 0


def cmd_sweep(args) -> int:
    import json
    import os

    from repro.eval.sweep import format_sweep_tables, run_sweep

    doc = run_sweep(apps=args.apps or None, variants=args.variants or None,
                    nodes=tuple(args.nodes), preset=args.preset,
                    machine=machine_from_doc(_parse_machine(args.machine)),
                    jobs=args.jobs, fleet=args.fleet,
                    progress=(None if args.quiet else
                              lambda m: print(m, file=sys.stderr)))
    print(format_sweep_tables(doc))
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"results -> {args.out}")
    return 0


def cmd_explain(args) -> int:
    from repro.compiler.report import spf_report, xhpf_report
    from repro.compiler.spf import SpfOptions

    spec = get_app(args.app)
    program = spec.build_program(spec.params(args.preset))
    options = SpfOptions()
    if args.optimized:
        if spec.spf_opt_options is None:
            print(f"note: the paper applies no hand optimization to "
                  f"{args.app}; showing the baseline", file=sys.stderr)
        else:
            options = spec.spf_opt_options()
    print(spf_report(program, nprocs=args.nprocs, options=options))
    print()
    print(xhpf_report(spec.build_program(spec.params(args.preset)),
                      nprocs=args.nprocs))
    return 0


def cmd_racecheck(args) -> int:
    from repro.compiler.report import source_lookup
    from repro.eval.racecheck import cross_check_app, racecheck_app

    if args.cross_check:
        import json
        import os

        report = cross_check_app(args.app, seeds=args.seeds,
                                 nprocs=args.nprocs, preset=args.preset,
                                 mutations=args.mutations)
        print(report.format())
        if args.out:
            os.makedirs(os.path.dirname(os.path.abspath(args.out)),
                        exist_ok=True)
            with open(args.out, "w") as fh:
                json.dump(report.as_doc(), fh, indent=2, sort_keys=True)
            print(f"results -> {args.out}")
        return 0 if report.ok else 1

    report = racecheck_app(args.app, args.variant, seeds=args.seeds,
                           nprocs=args.nprocs, preset=args.preset,
                           jobs=args.jobs, fleet=args.fleet)
    lookup = None
    if args.variant.startswith("spf"):
        spec = get_app(args.app)
        lookup = source_lookup(spec.build_program(spec.params(args.preset)),
                               nprocs=args.nprocs)
    print(report.format(lookup))
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    import json
    import os

    from repro.eval.chaos import chaos_sweep
    from repro.sim.faults import FaultPlan, FaultRates

    plan = FaultPlan.default()
    rates = FaultRates(
        drop=plan.rates.drop if args.drop is None else args.drop,
        dup=plan.rates.dup if args.dup is None else args.dup,
        reorder=plan.rates.reorder if args.reorder is None else args.reorder,
        delay=plan.rates.delay if args.delay is None else args.delay)
    from dataclasses import replace
    plan = replace(plan, rates=rates,
                   stalls=() if args.no_stall else plan.stalls)
    report = chaos_sweep(apps=args.apps, variants=args.variants,
                         seeds=args.seeds, nprocs=args.nprocs,
                         preset=args.preset, plan=plan, jobs=args.jobs,
                         fleet=args.fleet,
                         progress=(None if args.quiet else
                                   lambda m: print(m, file=sys.stderr)))
    print(report.format())
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(report.as_doc(), fh, indent=2, sort_keys=True)
        print(f"results -> {args.out}")
    return 0 if report.ok else 1


def cmd_lint(args) -> int:
    import json
    import os

    from repro.eval.lintreport import lint_registry

    for app in args.apps:
        if app not in APPS:
            print(f"unknown application {app!r} (choose from "
                  f"{', '.join(APPS)})", file=sys.stderr)
            return 2
    if args.explain is not None:
        from repro.compiler import depend

        if len(args.apps) != 1:
            print("lint --explain LOOP needs exactly one APP "
                  "(the loop family to explain lives in one program)",
                  file=sys.stderr)
            return 2
        spec = get_app(args.apps[0])
        program = spec.build_program(spec.params(args.preset))
        report = depend.analyze_program(program, nprocs=args.nprocs)
        print(report.explain(args.explain or None))
        return 0
    summary = lint_registry(apps=args.apps or None, nprocs=args.nprocs,
                            preset=args.preset,
                            backends=tuple(args.backends),
                            shadow=not args.no_shadow,
                            traffic=not args.no_traffic,
                            suppress=tuple(args.suppress),
                            progress=(None if args.quiet else
                                      lambda m: print(m, file=sys.stderr)))
    print(summary.format(verbose=args.verbose or not summary.ok))
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(summary.as_doc(), fh, indent=2, sort_keys=True)
        print(f"results -> {args.out}")
    if not summary.ok:
        return 1
    if args.strict and any(a.report.warnings for a in summary.apps):
        return 1
    return 0


def cmd_report(args) -> int:
    from repro.eval.report import assemble_report
    print(assemble_report(args.results_dir))
    return 0


def cmd_bench(args) -> int:
    from repro.bench import check_regression, load_baseline, run_bench
    from repro.bench.wallclock import write_results

    if args.throughput:
        return _bench_throughput(args)
    doc = run_bench(smoke=args.smoke, nprocs=args.nprocs,
                    only=args.only or None, progress=print)
    path = write_results(doc, args.out) if args.out \
        else write_results(doc)
    print(f"calibration: {doc['calibration_s']:.3f}s; results -> {path}")
    if args.no_gate:
        return 0
    baseline = load_baseline(args.baseline) if args.baseline \
        else load_baseline()
    if baseline is None:
        print("no committed baseline found; gate skipped "
              "(commit this run's JSON as the baseline to enable it)")
        return 0
    if baseline.get("preset") != doc.get("preset"):
        print(f"baseline covers preset {baseline.get('preset')!r}, this run "
              f"used {doc.get('preset')!r}; gate skipped")
        return 0
    failures = check_regression(doc, baseline, tolerance=args.tolerance)
    if failures:
        for f in failures:
            print("REGRESSION:", f, file=sys.stderr)
        return 1
    print(f"regression gate passed ({len(doc['kernels'])} kernel(s) within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


def _bench_throughput(args) -> int:
    """``repro bench --throughput``: pool runs/min vs serial, SLO-gated."""
    from repro.bench.throughput import run_throughput, write_results

    doc = run_throughput(workers=args.workers, repeats=args.repeats,
                         nprocs=args.nprocs,
                         preset="test" if args.smoke else "bench",
                         slo=args.slo, fleet=args.fleet, progress=print)
    path = write_results(doc, args.out) if args.out else write_results(doc)
    print(f"serial:  {doc['serial']['runs_per_min']:8.1f} runs/min "
          f"({doc['serial']['wall_s']:.2f}s for {doc['runs']} run(s))")
    print(f"service: {doc['service']['runs_per_min']:8.1f} runs/min "
          f"({doc['service']['wall_s']:.2f}s, {doc['workers']} worker(s), "
          f"{doc['service']['cache_hits']} cache hit(s))")
    print(f"speedup: {doc['speedup']:.2f}x serial "
          f"(calibrated SLO {doc['slo']:.2f}x on {doc['cpu_count']} "
          f"core(s)); bit-identical: {doc['bit_identical']}")
    aff = doc["affinity"]
    print(f"affinity: {aff['hit_rate']:.0%} hit-rate "
          f"({aff['hits']} hit(s), {aff['steals']} steal(s)) "
          f"on the repeat-key batch")
    sw = doc["sweep"]
    print(f"sweep:   {sw['speedup']:.2f}x serial wall-clock "
          f"({sw['serial_wall_s']:.2f}s -> {sw['service_wall_s']:.2f}s, "
          f"{sw['cells']} cell(s), SLO {sw['slo']:.2f}x); "
          f"bit-identical: {sw['bit_identical']}")
    fl = doc.get("fleet")
    if fl is not None:
        print(f"fleet:   {fl['runs_per_min']:8.1f} runs/min across "
              f"{len(fl['hosts'])} host(s) ({fl['live_workers']} remote "
              f"worker(s), {fl['vs_service']:.2f}x the local pool); "
              f"bit-identical: {fl['bit_identical']}")
        for label, ph in sorted(fl["per_host"].items()):
            print(f"  host {label}: {ph['runs']} run(s), "
                  f"{ph['hit_rate']:.0%} affinity hit-rate")
    print(f"results -> {path}")
    if args.no_gate:
        return 0
    for failure in doc["failures"]:
        print("THROUGHPUT:", failure, file=sys.stderr)
    return 1 if doc["failures"] else 0


def cmd_serve(args) -> int:
    from repro.serve import (DEFAULT_RUNNER, RunService, WireServer,
                             serve_stdio)

    service = RunService(workers=args.workers,
                         runner=args.runner or DEFAULT_RUNNER,
                         cache_entries=args.cache_entries,
                         max_backlog=args.max_backlog)
    try:
        if args.port is None:
            verdict = serve_stdio(service, sys.stdin, sys.stdout)
            print(f"serve: session ended ({verdict})", file=sys.stderr)
        else:
            server = WireServer(service, host=args.host, port=args.port)
            print(f"serve: listening on {server.host}:{server.port} "
                  f"({args.workers} worker(s))", file=sys.stderr)
            try:
                server.serve_forever()
            finally:
                server.close()
    finally:
        service.close()
    return 0


def cmd_fleet(args) -> int:
    from repro.serve import FleetService, WireServer, serve_stdio

    kwargs = {} if args.retries is None else {"retries": args.retries}
    try:
        fleet = FleetService(args.host, **kwargs)
    except (ConnectionError, ValueError) as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    try:
        if args.probe:
            health = fleet.probe()
            for label, info in sorted(health.items()):
                state = "alive" if info["alive"] else "DOWN"
                rtt = (f" rtt {info['last_rtt_ms']:.1f}ms"
                       if info.get("last_rtt_ms") is not None else "")
                print(f"fleet: {label} {state} "
                      f"workers={info.get('workers', 0)}{rtt}")
            return 0 if all(h["alive"] for h in health.values()) else 1
        if args.port is None:
            print(f"fleet: {len(args.host)} host(s), "
                  f"{fleet.live_workers()} remote worker(s); speaking the "
                  f"protocol on stdio", file=sys.stderr)
            verdict = serve_stdio(fleet, sys.stdin, sys.stdout)
            print(f"fleet: session ended ({verdict})", file=sys.stderr)
        else:
            server = WireServer(fleet, host=args.bind, port=args.port)
            print(f"fleet: listening on {server.host}:{server.port} "
                  f"({len(args.host)} host(s), {fleet.live_workers()} "
                  f"remote worker(s))", file=sys.stderr)
            try:
                server.serve_forever()
            finally:
                server.close()
    finally:
        fleet.close()
    return 0


def cmd_list(_args) -> int:
    from repro.api import registry

    print("applications:")
    for card in registry.apps():
        print(f"  {card.name:8s} {card.kind:10s} "
              f"{card.problem_size:35s} "
              f"presets: {', '.join(card.presets)}")
    print("variants:")
    for info in registry.variants():
        badge = " [model]" if info.modeled else ""
        print(f"  {info.name:8s} {info.kind:4s} {info.source:9s} "
              f"{info.description}{badge}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Cox et al. (IPPS 1997): software DSM "
                    "as a target for parallelizing compilers")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="run one application variant")
    p.add_argument("app", choices=APPS)
    p.add_argument("variant", choices=[v for v in VARIANTS if v != "seq"]
                   + ["seq"])
    p.add_argument("--stats", action="store_true",
                   help="print fast-path/coherence counters (DSM variants)")
    p.add_argument("--mode", default="sim", choices=["sim", "model"],
                   help="sim: event simulation (default); model: analytic "
                        "prediction from repro.compiler.model, flagged "
                        "[model] in the output")
    p.add_argument("--machine", nargs="*", default=None, metavar="KEY=VALUE",
                   help="override SP2 machine parameters, e.g. "
                        "latency=5e-5 byte_time=4e-8")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("compare", help="run all variants of an application")
    p.add_argument("app", choices=APPS)
    _add_common(p)
    _add_jobs(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    _add_common(p)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "sweep",
        help="run the analytic model across node counts and emit the "
             "extended speedup/traffic tables (all results are modeled)")
    p.add_argument("--apps", nargs="*", default=None, choices=APPS,
                   help="applications to model (default: all)")
    p.add_argument("--variants", nargs="*", default=None,
                   choices=["spf", "spf_old", "xhpf", "xhpf_ie"],
                   help="modeled variants (default: spf spf_old xhpf "
                        "xhpf_ie)")
    p.add_argument("--nodes", nargs="*", type=int,
                   default=[8, 16, 64, 256, 1024],
                   help="node counts to model (default: 8 16 64 256 1024)")
    p.add_argument("--preset", default="test",
                   choices=list(PRESETS),
                   help="problem size preset (default test; the model is "
                        "validated against the simulator at this size)")
    p.add_argument("--machine", nargs="*", default=None, metavar="KEY=VALUE",
                   help="override SP2 machine parameters (see repro.sim."
                        "machine.MachineModel)")
    p.add_argument("--out", default=None,
                   help="write the sweep document as JSON to this path")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-point progress on stderr")
    _add_jobs(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("explain", help="print the compilers' decisions")
    p.add_argument("app", choices=APPS)
    p.add_argument("--optimized", action="store_true",
                   help="show the hand-optimized SPF configuration")
    _add_common(p)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser(
        "racecheck",
        help="schedule-fuzz a DSM variant and report data races")
    p.add_argument("app", choices=APPS)
    p.add_argument("variant", nargs="?", default="spf",
                   choices=list(RACECHECK_VARIANTS))
    p.add_argument("--seeds", type=int, default=5,
                   help="number of schedule seeds to fuzz (default 5)")
    p.add_argument("-n", "--nprocs", type=int, default=8)
    p.add_argument("--preset", default="test",
                   choices=list(PRESETS),
                   help="problem size preset (default test: the harness "
                        "runs the app once per seed)")
    p.add_argument("--cross-check", action="store_true",
                   help="cross-validate the static depend verdicts "
                        "against the dynamic detector (+ seeded mutation "
                        "flips) instead of a plain fuzz run")
    p.add_argument("--mutations", type=int, default=3,
                   help="seeded dependence injections for --cross-check "
                        "(default 3)")
    p.add_argument("--out", default=None,
                   help="with --cross-check: write the verdict JSON here")
    _add_jobs(p)
    p.set_defaults(fn=cmd_racecheck)

    p = sub.add_parser(
        "chaos",
        help="run app x variant under injected network faults and assert "
             "the numerics match the fault-free run")
    p.add_argument("--seeds", type=int, default=3,
                   help="number of fault seeds per pair (default 3)")
    p.add_argument("--apps", nargs="*", default=None, choices=APPS,
                   help="applications to sweep (default: all)")
    p.add_argument("--variants", nargs="*", default=None,
                   choices=[v for v in VARIANTS if v != "seq"],
                   help="variants to sweep (default: spf tmk xhpf pvme)")
    p.add_argument("--drop", type=float, default=None,
                   help="per-message drop probability (default 0.02)")
    p.add_argument("--dup", type=float, default=None,
                   help="per-message duplication probability (default 0.02)")
    p.add_argument("--reorder", type=float, default=None,
                   help="per-message reordering probability (default 0.05)")
    p.add_argument("--delay", type=float, default=None,
                   help="per-message extra-delay probability (default 0.05)")
    p.add_argument("--no-stall", action="store_true",
                   help="disable the default node-stall window")
    p.add_argument("--out", default=None,
                   help="write the sweep report as JSON to this path")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-run progress on stderr")
    _add_common(p)
    _add_jobs(p)
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="time simulator kernels (wall-clock) and gate regressions")
    p.add_argument("--smoke", action="store_true",
                   help="small problem sizes (CI-friendly)")
    p.add_argument("--only", nargs="*", default=None,
                   help="restrict to these kernel names")
    p.add_argument("--out", default=None,
                   help="result JSON path (default benchmarks/results/"
                        "BENCH_wallclock.json)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON to gate against (default "
                        "benchmarks/results/BENCH_baseline.json)")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed wall-clock regression (default 0.25)")
    p.add_argument("--no-gate", action="store_true",
                   help="write results without checking the baseline "
                        "(or the throughput SLO)")
    p.add_argument("--throughput", action="store_true",
                   help="measure runs/min through the repro.serve worker "
                        "pool vs a serial baseline and gate on the "
                        "host-calibrated SLO")
    p.add_argument("--workers", type=int, default=4,
                   help="service worker processes for --throughput "
                        "(default 4)")
    p.add_argument("--repeats", type=int, default=3,
                   help="bench-matrix repetitions for --throughput "
                        "(default 3)")
    p.add_argument("--slo", type=float, default=None,
                   help="throughput SLO as a multiple of serial runs/min "
                        "(default: 0.75 x min(workers, cpu cores))")
    p.add_argument("--fleet", action="append", default=None,
                   metavar="HOST:PORT",
                   help="with --throughput: also measure the batch across "
                        "these remote `repro serve --tcp` hosts (repeat "
                        "per host) and gate on bit-identity")
    p.add_argument("-n", "--nprocs", type=int, default=8)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="persistent worker-pool run service (JSON lines over stdio "
             "or TCP; see docs/API.md for the protocol)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes in the pool (default 4)")
    p.add_argument("--port", type=int, default=None,
                   help="listen on this TCP port (0 = ephemeral); "
                        "default: speak the protocol over stdio")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --port (default 127.0.0.1)")
    p.add_argument("--runner", default=None,
                   help=argparse.SUPPRESS)   # test hook: module:attr path
    p.add_argument("--cache-entries", type=int, default=64,
                   help="compiled-program cache entries per worker "
                        "(default 64)")
    p.add_argument("--max-backlog", type=int, default=None,
                   help="admission-control cap on queued + in-flight "
                        "requests; beyond it new requests fail fast with "
                        "error_kind=Rejected (default: unbounded)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="front N remote `repro serve --tcp` hosts behind one "
             "service (same wire protocol; cache-affine host routing, "
             "failover with requeue)")
    p.add_argument("--host", action="append", required=True,
                   metavar="HOST:PORT",
                   help="a remote serve endpoint (repeat per host)")
    p.add_argument("--port", type=int, default=None,
                   help="listen on this TCP port (0 = ephemeral); "
                        "default: speak the protocol over stdio")
    p.add_argument("--bind", default="127.0.0.1",
                   help="bind address for --port (default 127.0.0.1)")
    p.add_argument("--retries", type=int, default=None,
                   help="connect/send retries before a host is declared "
                        "lost (default 3)")
    p.add_argument("--probe", action="store_true",
                   help="health-check every host (exit 1 if any is down) "
                        "instead of serving")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser(
        "lint",
        help="statically verify IR programs (footprints, barriers, "
             "false sharing, traffic)")
    p.add_argument("apps", nargs="*", metavar="APP",
                   help=f"applications to lint (default: all of "
                        f"{', '.join(APPS)})")
    p.add_argument("--backends", nargs="*", default=["spf", "xhpf"],
                   choices=["spf", "xhpf"],
                   help="backend-specific rule sets to apply")
    p.add_argument("--no-shadow", action="store_true",
                   help="skip the shadow-execution footprint sanitizer")
    p.add_argument("--no-traffic", action="store_true",
                   help="skip the static DSM traffic estimate")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings, not just errors")
    p.add_argument("--suppress", nargs="*", default=[],
                   help="suppress findings matching 'rule' or "
                        "'rule:stmt' globs (see docs/LINT.md)")
    p.add_argument("--verbose", action="store_true",
                   help="print every finding, not just the badge table")
    p.add_argument("--explain", default=None, metavar="LOOP",
                   help="dump the symbolic dependence evidence for one "
                        "loop family of APP (pass '' for every family); "
                        "see docs/DEPEND.md")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-app progress on stderr")
    p.add_argument("--out", default=None,
                   help="write the lint report as JSON to this path")
    p.add_argument("-n", "--nprocs", type=int, default=8)
    p.add_argument("--preset", default="test",
                   choices=["paper", "bench", "test"],
                   help="problem size preset (default test; the rules "
                        "are size-independent, only the false-sharing "
                        "geometry changes)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("list", help="list applications and variants")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("report",
                       help="assemble archived benchmark results")
    p.add_argument("--results-dir", default=None,
                   help="directory of archived results "
                        "(default: benchmarks/results)")
    p.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())

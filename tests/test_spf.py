"""Tests for the SPF shared-memory backend (repro.compiler.spf)."""

import numpy as np
import pytest

from repro.apps.common import signatures_close
from repro.compiler.seq import run_sequential
from repro.compiler.spf import (REDUCTION_PREFIX, STAGING_PREFIX, SpfOptions,
                                compile_spf, run_spf)
from repro.tmk.pagespace import SharedSpace
from tests.conftest import irregular_program, stencil_program, triangular_program


def scalars_of(prog, nprocs=4, options=None, **kw):
    return run_spf(prog, nprocs=nprocs, options=options, **kw).scalars


def test_matches_sequential_stencil():
    prog = stencil_program()
    _v, seq, _t = run_sequential(stencil_program())
    for n in (1, 2, 3, 4, 7):
        got = scalars_of(stencil_program(), nprocs=n)
        assert got["sum"] == pytest.approx(seq["sum"], rel=1e-6), f"n={n}"


def test_matches_sequential_irregular():
    _v, seq, _t = run_sequential(irregular_program())
    for n in (2, 4, 5):
        got = scalars_of(irregular_program(), nprocs=n)
        assert got["k"] == pytest.approx(seq["k"], rel=1e-9), f"n={n}"


def test_matches_sequential_triangular():
    views, _s, _t = run_sequential(triangular_program())
    expect = float(np.abs(views["v"]).sum(dtype=np.float64))

    def check_kernel_output(n):
        prog = triangular_program()
        from repro.apps.common import append_signature_loops
        append_signature_loops(prog, ["v"])
        got = scalars_of(prog, nprocs=n)
        assert got["sig_v"] == pytest.approx(expect, rel=1e-5), f"n={n}"

    for n in (2, 4):
        check_kernel_output(n)


def test_all_arrays_allocated_shared_and_padded():
    """SPF policy: every array in shared memory, page aligned; reduction
    scalars get their own pages."""
    exe = compile_spf(stencil_program(), nprocs=4)
    space = SharedSpace()
    exe.setup_space(space)
    assert "a" in space and "b" in space
    assert space["a"].offset % 4096 == 0
    assert space["b"].offset % 4096 == 0
    assert (REDUCTION_PREFIX + "sum") in space


def test_accumulate_allocates_staging():
    exe = compile_spf(irregular_program(), nprocs=4)
    space = SharedSpace()
    exe.setup_space(space)
    assert (STAGING_PREFIX + "forces") in space
    assert space[STAGING_PREFIX + "forces"].shape[0] == 4


def test_accumulate_inserts_merge_unit():
    exe = compile_spf(irregular_program(), nprocs=4)
    merge_units = [u for u in exe.units
                   if u.loops and ".merge[" in u.loops[0].name]
    force_units = [u for u in exe.units
                   if u.loops and u.loops[0].name == "forces"]
    assert len(merge_units) == len(force_units) > 0


def test_old_interface_allocates_control_pages():
    exe = compile_spf(stencil_program(),
                      options=SpfOptions(improved_interface=False))
    space = SharedSpace()
    exe.setup_space(space)
    assert "__fj_sub" in space and "__fj_arg" in space
    assert space["__fj_sub"].first_page != space["__fj_arg"].first_page


def test_fusion_planning_obeys_dependence():
    """Stencil/copy must not fuse (anti-dependence); the plan shows it."""
    exe = compile_spf(stencil_program(), nprocs=4,
                      options=SpfOptions(fuse_loops=True))
    for unit in exe.units:
        assert len(unit.loops) <= 1


def test_fusion_merges_independent_loops():
    from repro.compiler.ir import (Access, ArrayDecl, ParallelLoop, Program,
                                   Span, Full)

    def k(v, lo, hi):
        v["a"][lo:hi] += 1

    def k2(v, lo, hi):
        v["b"][lo:hi] += 1

    prog = Program("p", arrays=[ArrayDecl("a", (16, 8)),
                                ArrayDecl("b", (16, 8))],
                   body=[ParallelLoop("l1", 16, k,
                                      writes=[Access("a", (Span(), Full()))]),
                         ParallelLoop("l2", 16, k2,
                                      writes=[Access("b", (Span(), Full()))])])
    fused = compile_spf(prog, nprocs=4, options=SpfOptions(fuse_loops=True))
    assert len([u for u in fused.units if u.loops]) == 1
    plain = compile_spf(prog, nprocs=4)
    assert len([u for u in plain.units if u.loops]) == 2
    # and fusing halves the fork-join messages
    r_fused = run_spf(prog, nprocs=4, options=SpfOptions(fuse_loops=True))
    r_plain = run_spf(prog, nprocs=4)
    assert r_fused.stats.by_category["sync"][0] < \
        r_plain.stats.by_category["sync"][0]


def test_aggregate_reduces_messages_same_answer():
    base = run_spf(stencil_program(), nprocs=4)
    agg = run_spf(stencil_program(), nprocs=4,
                  options=SpfOptions(aggregate=True))
    assert agg.scalars["sum"] == pytest.approx(base.scalars["sum"], rel=1e-6)
    assert agg.messages < base.messages
    assert agg.dsm_stats.aggregated_validates > 0


def test_old_interface_more_messages_same_answer():
    base = run_spf(stencil_program(), nprocs=4)
    old = run_spf(stencil_program(), nprocs=4,
                  options=SpfOptions(improved_interface=False))
    assert old.scalars["sum"] == pytest.approx(base.scalars["sum"], rel=1e-6)
    assert old.messages > base.messages
    assert old.time > base.time


def test_master_holds_final_reduction_values():
    r = run_spf(stencil_program(), nprocs=4)
    assert r.results[0] == r.scalars
    assert all(res == {} for res in r.results[1:])


def test_options_describe():
    assert SpfOptions().describe() == "improved"
    assert "aggregate" in SpfOptions(aggregate=True).describe()
    assert "original" in SpfOptions(improved_interface=False).describe()


def test_deterministic_replay():
    a = run_spf(stencil_program(), nprocs=4)
    b = run_spf(stencil_program(), nprocs=4)
    assert a.time == b.time
    assert a.messages == b.messages
    assert a.kilobytes == b.kilobytes

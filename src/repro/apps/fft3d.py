"""3-D FFT: the NAS benchmark kernel (FT).

Section 5.4 of the paper.  The solver numerically integrates a PDE by
3-dimensional forward/inverse FFTs.  Per iteration: the complex array is
reinitialized (the "evolve" step), 1-D FFTs run along the two contiguous
dimensions on the initial block partition, a **transpose** repartitions the
array for the third dimension's FFTs, the result is normalized, and a
checksum sums 1024 sampled elements.

The transpose is where the variants separate: hand-coded message passing
moves each processor-pair's block in one large message (an all-to-all),
while the shared-memory versions fault the data in "one page at a time",
costing ~30x the messages (the paper's words).  The hand-coded TreadMarks
program uses exactly two barriers per iteration — after the transpose and
after the checksum.

Layout: ``a`` is (n3, n2, n1) C-order, block on dim 0; the transpose fills
``b`` (n2, n3, n1), block on dim 0.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, abs_sum,
                               append_signature_loops, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Mark, ParallelLoop,
                               Program, Reduction, Span, TimeLoop)
from repro.compiler.spf import SpfOptions

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# 37.7 s sequential for 5 timed iterations at 128x128x64 (Table 1).
# Work per iteration: reinit + 3 x (1M points of 1-D FFTs) + normalize +
# checksum; FFT cost modelled as c * L*log2(L) per L-point transform.
# (complex-double FFTs ran at only a few MFLOPS on these machines)
FFT_COST = 320e-9          # per point*log2(L)
INIT_COST = 650e-9         # per point (evolve: exponential factors)
NORM_COST = 60e-9          # per point
CHECKSUM_SAMPLES = 1024

PRESETS = {
    "paper": dict(n1=128, n2=128, n3=64, iters=5, warmup=1),
    "bench": dict(n1=128, n2=128, n3=64, iters=3, warmup=1),
    "test": dict(n1=16, n2=16, n3=8, iters=2, warmup=1),
}


# ---------------------------------------------------------------------- #
# kernels

def evolve_rows(a: np.ndarray, lo: int, hi: int, t: int) -> None:
    """Reinitialize slabs [lo, hi): deterministic pseudo-data evolved by t."""
    n3, n2, n1 = a.shape
    k = np.arange(lo, hi, dtype=np.float64)[:, None, None]
    j = np.arange(n2, dtype=np.float64)[None, :, None]
    i = np.arange(n1, dtype=np.float64)[None, None, :]
    phase = (0.7 * k + 1.3 * j + 2.1 * i) * (1.0 + 0.05 * t)
    decay = np.exp(-1e-4 * t * (k + j + i))
    a[lo:hi] = (decay * (np.cos(phase) + 1j * np.sin(phase))).astype(a.dtype)


def fft_dim2_rows(a: np.ndarray, lo: int, hi: int) -> None:
    """1-D FFT along axis 2 (contiguous) for slabs [lo, hi)."""
    a[lo:hi] = np.fft.fft(a[lo:hi], axis=2).astype(a.dtype)


def fft_dim1_rows(a: np.ndarray, lo: int, hi: int) -> None:
    """1-D FFT along axis 1 for slabs [lo, hi)."""
    a[lo:hi] = np.fft.fft(a[lo:hi], axis=1).astype(a.dtype)


def transpose_rows(a: np.ndarray, b: np.ndarray, lo: int, hi: int) -> None:
    """b[j, k, :] = a[k, j, :] for j in [lo, hi) — the repartition."""
    b[lo:hi] = a[:, lo:hi, :].transpose(1, 0, 2)


def inv_fft_dim1_rows(b: np.ndarray, lo: int, hi: int) -> None:
    """Inverse 1-D FFT along axis 1 (the n3 dimension) for rows [lo, hi)."""
    b[lo:hi] = np.fft.ifft(b[lo:hi], axis=1).astype(b.dtype)


def normalize_rows(b: np.ndarray, lo: int, hi: int) -> None:
    ntotal = b.size
    b[lo:hi] *= 1.0 / ntotal


def checksum_rows(b: np.ndarray, lo: int, hi: int) -> complex:
    """Sum of the sampled elements whose flat index lands in rows [lo, hi)."""
    n2, n3, n1 = b.shape
    total = n2 * n3 * n1
    samples = (np.arange(CHECKSUM_SAMPLES, dtype=np.int64)
               * 1099) % total
    rows = samples // (n3 * n1)
    mine = samples[(rows >= lo) & (rows < hi)]
    if mine.size == 0:
        return 0.0 + 0.0j
    vals = b.reshape(-1)[mine]
    return complex(vals.sum())


def fft_cost(points: int, length: int) -> float:
    return FFT_COST * points * np.log2(max(length, 2))


# ---------------------------------------------------------------------- #
# IR description

def build_program(params: dict) -> Program:
    n1, n2, n3 = params["n1"], params["n2"], params["n3"]
    iters, warmup = params["iters"], params["warmup"]

    def iteration(t: int) -> list:
        def evolve_kernel(views, lo, hi, _t=t):
            evolve_rows(views["a"], lo, hi, _t)

        def fft2_kernel(views, lo, hi):
            fft_dim2_rows(views["a"], lo, hi)

        def fft1_kernel(views, lo, hi):
            fft_dim1_rows(views["a"], lo, hi)

        def transpose_kernel(views, lo, hi):
            transpose_rows(views["a"], views["b"], lo, hi)

        def fft3_kernel(views, lo, hi):
            inv_fft_dim1_rows(views["b"], lo, hi)

        def normalize_kernel(views, lo, hi):
            normalize_rows(views["b"], lo, hi)

        def checksum_kernel(views, lo, hi):
            c = checksum_rows(views["b"], lo, hi)
            return {"checksum_re": c.real, "checksum_im": c.imag}

        return [
            ParallelLoop("evolve", n3, evolve_kernel,
                         writes=[Access("a", (Span(), Full(), Full()))],
                         align=("a", 0), cost_per_iter=INIT_COST * n2 * n1),
            ParallelLoop("fft-n1", n3, fft2_kernel,
                         reads=[Access("a", (Span(), Full(), Full()))],
                         writes=[Access("a", (Span(), Full(), Full()))],
                         align=("a", 0),
                         cost_per_iter=fft_cost(n2 * n1, n1)),
            ParallelLoop("fft-n2", n3, fft1_kernel,
                         reads=[Access("a", (Span(), Full(), Full()))],
                         writes=[Access("a", (Span(), Full(), Full()))],
                         align=("a", 0),
                         cost_per_iter=fft_cost(n2 * n1, n2)),
            ParallelLoop("transpose", n2, transpose_kernel,
                         reads=[Access("a", (Full(), Span(), Full()))],
                         writes=[Access("b", (Span(), Full(), Full()))],
                         align=("b", 0),
                         cost_per_iter=12e-9 * n3 * n1),
            ParallelLoop("fft-n3", n2, fft3_kernel,
                         reads=[Access("b", (Span(), Full(), Full()))],
                         writes=[Access("b", (Span(), Full(), Full()))],
                         align=("b", 0),
                         cost_per_iter=fft_cost(n3 * n1, n3)),
            ParallelLoop("normalize", n2, normalize_kernel,
                         reads=[Access("b", (Span(), Full(), Full()))],
                         writes=[Access("b", (Span(), Full(), Full()))],
                         align=("b", 0), cost_per_iter=NORM_COST * n3 * n1),
            ParallelLoop("checksum", n2, checksum_kernel,
                         reads=[Access("b", (Span(), Full(), Full()))],
                         reductions=[Reduction("checksum_re"),
                                     Reduction("checksum_im")],
                         align=("b", 0), cost_per_iter=3e-9 * n3 * n1),
        ]

    program = Program(
        name="fft3d",
        arrays=[ArrayDecl("a", (n3, n2, n1), np.complex128, distribute=0),
                ArrayDecl("b", (n2, n3, n1), np.complex128, distribute=0)],
        body=[TimeLoop("warmup", warmup, iteration),
              Mark("start"),
              TimeLoop("iterations", iters,
                       lambda t, _w=warmup: iteration(t + _w)),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, ["b"])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks: two barriers per iteration

def hand_tmk_setup(space, params: dict) -> None:
    n1, n2, n3 = params["n1"], params["n2"], params["n3"]
    space.alloc("a", (n3, n2, n1), np.complex128)
    space.alloc("b", (n2, n3, n1), np.complex128)


def hand_tmk(tmk, params: dict) -> dict:
    n1, n2, n3 = params["n1"], params["n2"], params["n3"]
    iters, warmup = params["iters"], params["warmup"]
    a, b = tmk.array("a"), tmk.array("b")
    araw, braw = a.raw(), b.raw()
    alo, ahi = tmk.block_range(n3)
    blo, bhi = tmk.block_range(n2)
    checksum = [0.0, 0.0]

    def one_iteration(t: int):
        a.writable((slice(alo, ahi),))
        evolve_rows(araw, alo, ahi, t)
        tmk.compute(INIT_COST * n2 * n1 * (ahi - alo))
        fft_dim2_rows(araw, alo, ahi)
        tmk.compute(fft_cost(n2 * n1, n1) * (ahi - alo))
        fft_dim1_rows(araw, alo, ahi)
        tmk.compute(fft_cost(n2 * n1, n2) * (ahi - alo))
        tmk.barrier()                        # before reading others' slabs
        a.read((slice(None), slice(blo, bhi), slice(None)))
        b.writable((slice(blo, bhi),))
        transpose_rows(araw, braw, blo, bhi)
        tmk.compute(12e-9 * n3 * n1 * (bhi - blo))
        inv_fft_dim1_rows(braw, blo, bhi)
        tmk.compute(fft_cost(n3 * n1, n3) * (bhi - blo))
        b.writable((slice(blo, bhi),))
        normalize_rows(braw, blo, bhi)
        tmk.compute(NORM_COST * n3 * n1 * (bhi - blo))
        c = checksum_rows(braw, blo, bhi)
        tmk.compute(3e-9 * n3 * n1 * (bhi - blo))
        checksum[0], checksum[1] = c.real, c.imag
        tmk.barrier()                        # after the checksum

    for t in range(warmup):
        one_iteration(t)
    tmk.env.mark("start")
    for t in range(iters):
        one_iteration(t + warmup)
    tmk.env.mark("stop")
    sig = {"sig_b": abs_sum(braw[blo:bhi])}
    sig["checksum_re"] = checksum[0]
    sig["checksum_im"] = checksum[1]
    return sig


# ---------------------------------------------------------------------- #
# hand-coded PVMe: all-to-all transpose in big messages

TAG_TRANSPOSE = 30


def hand_pvme(p, params: dict) -> dict:
    n1, n2, n3 = params["n1"], params["n2"], params["n3"]
    iters, warmup = params["iters"], params["warmup"]
    a = np.zeros((n3, n2, n1), np.complex128)
    b = np.zeros((n2, n3, n1), np.complex128)
    alo, ahi = p.block_range(n3)
    blo, bhi = p.block_range(n2)
    bounds = [None] * p.ntasks
    for q in range(p.ntasks):
        base, rem = divmod(n2, p.ntasks)
        qlo = q * base + min(q, rem)
        bounds[q] = (qlo, qlo + base + (1 if q < rem else 0))
    checksum = [0.0, 0.0]

    def one_iteration(t: int):
        evolve_rows(a, alo, ahi, t)
        p.compute(INIT_COST * n2 * n1 * (ahi - alo))
        fft_dim2_rows(a, alo, ahi)
        p.compute(fft_cost(n2 * n1, n1) * (ahi - alo))
        fft_dim1_rows(a, alo, ahi)
        p.compute(fft_cost(n2 * n1, n2) * (ahi - alo))
        # transpose: one large message per processor pair
        blocks = [np.ascontiguousarray(a[alo:ahi, qlo:qhi, :])
                  for (qlo, qhi) in bounds]
        out = p.alltoall(blocks)
        # out[q] is a[q's slab rows, my b-columns, :]
        k0 = 0
        for q, block in enumerate(out):
            rows = block.shape[0]
            b[blo:bhi, k0:k0 + rows, :] = block.transpose(1, 0, 2)
            k0 += rows
        p.compute(12e-9 * n3 * n1 * (bhi - blo))
        inv_fft_dim1_rows(b, blo, bhi)
        p.compute(fft_cost(n3 * n1, n3) * (bhi - blo))
        normalize_rows(b, blo, bhi)
        p.compute(NORM_COST * n3 * n1 * (bhi - blo))
        c = checksum_rows(b, blo, bhi)
        p.compute(3e-9 * n3 * n1 * (bhi - blo))
        total = p.allreduce(complex(c), lambda x, y: x + y)
        checksum[0], checksum[1] = total.real, total.imag

    for t in range(warmup):
        one_iteration(t)
    p.env.mark("start")
    for t in range(iters):
        one_iteration(t + warmup)
    p.env.mark("stop")
    sig = {"sig_b": abs_sum(b[blo:bhi])}
    if p.tid == 0:
        sig["checksum_re"] = checksum[0]
        sig["checksum_im"] = checksum[1]
    return sig


SPEC = register(AppSpec(
    name="fft3d",
    regular=True,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=["b"],
    spf_opt_options=lambda: SpfOptions(aggregate=True, fuse_loops=True),
    notes="Section 5.4; hand optimization = data aggregation",
))

"""Golden-file test: the `repro sweep` JSON document is schema-stable.

Downstream tooling (the CI artifact, report assembly) keys on this
document's shape.  The golden file pins both the *structure* (keys and
value types, checked shape-normalized) and the *values* for a small
sweep — the model is deterministic, so any drift is a real change and
must be made deliberately by regenerating the golden alongside a schema
bump.  Every result row must carry ``mode: "model"`` so extrapolated
numbers can never be mistaken for simulated DsmStats.
"""

import json
import os

import pytest

from repro.eval.sweep import SWEEP_SCHEMA, run_sweep

GOLDEN = os.path.join(os.path.dirname(__file__), "data",
                      "sweep_schema_golden.json")


@pytest.fixture(scope="module")
def doc():
    return run_sweep(apps=["jacobi"], variants=["spf", "xhpf"],
                     nodes=(8, 16))


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN) as fh:
        return json.load(fh)


def _shape(value):
    """Replace leaves with their type names, recursively."""
    if isinstance(value, dict):
        return {k: _shape(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_shape(v) for v in value]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    return type(value).__name__


def test_schema_tag(doc, golden):
    assert doc["schema"] == SWEEP_SCHEMA == golden["schema"]


def test_shape_matches_golden(doc, golden):
    assert _shape(doc) == _shape(golden)


def test_values_match_golden(doc, golden):
    # JSON round-trip normalizes tuples/ints the same way run_sweep does.
    assert json.loads(json.dumps(doc, sort_keys=True)) == golden


def test_every_row_is_flagged_modeled(doc):
    rows = [row
            for entry in doc["apps"].values()
            for variant_rows in entry["variants"].values()
            for row in variant_rows]
    assert rows
    assert all(row["mode"] == "model" for row in rows)

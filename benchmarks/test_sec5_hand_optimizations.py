"""E7-E10, E13 — Sections 5.1-5.4: "Results of Hand Optimizations".

For each regular application the paper hand-applies optimizations to the
SPF-generated program and reports the recovered speedup:

* Jacobi 6.99 -> 7.23 with data aggregation (PVMe at 7.55),
* Shallow 5.71 -> 5.96 with loop merging + aggregation (hand Tmk 6.21),
* MGS 4.19 -> 5.09 with merged synchronization+data and a broadcast,
* 3-D FFT 2.65 -> 5.05 with data aggregation (PVMe at 5.12).

Here the same optimizations are compiler options (SpfOptions; DESIGN.md),
so ``spf_opt`` is the optimized build.  Asserted: each optimization helps,
and closes most of the gap toward its paper target variant.  E13 (barrier
elimination / loop merging, Tseng [17]) is the fuse_loops component,
checked through Shallow's dispatch count.
"""

import pytest

from repro.compiler.spf import SpfOptions, compile_spf
from repro.eval.constants import PAPER
from repro.eval.tables import format_comparison

from conftest import all_variants, archive, one_variant, runner  # noqa: F401

CASES = ["jacobi", "shallow", "mgs", "fft3d"]


def test_hand_optimizations(runner):
    def experiment():
        out = {}
        for app in CASES:
            base = all_variants(app)
            out[app] = (base["spf"], one_variant(app, "spf_opt"),
                        base["tmk"], base["pvme"])
        return out

    res = runner(experiment)
    lines = ["Sections 5.1-5.4 — hand-applied optimizations on the "
             "SPF-generated programs"]
    for app in CASES:
        spf, opt, tmk, pvme = res[app]
        paper = PAPER[app]
        lines.append(
            f"{app:8s} spf={spf.speedup:5.2f} -> opt={opt.speedup:5.2f} "
            f"(paper {paper.speedups['spf']} -> {paper.hand_opt_speedup}); "
            f"tmk={tmk.speedup:5.2f} pvme={pvme.speedup:5.2f}  "
            f"[{paper.hand_opt_note}]")
    archive("sec5_hand_optimizations", "\n".join(lines))

    for app in CASES:
        spf, opt, tmk, pvme = res[app]
        assert opt.speedup > spf.speedup, (
            f"{app}: optimization must improve the SPF build "
            f"({opt.speedup:.2f} vs {spf.speedup:.2f})")
        assert opt.messages < spf.messages, (
            f"{app}: the optimizations reduce communication")

    # the aggregation cases approach their paper reference points
    for app, reference in [("jacobi", "pvme"), ("fft3d", "pvme"),
                           ("shallow", "tmk")]:
        spf, opt, tmk, pvme = res[app]
        ref = {"pvme": pvme, "tmk": tmk}[reference]
        gap_before = ref.speedup - spf.speedup
        gap_after = ref.speedup - opt.speedup
        assert gap_after < gap_before, app


def test_fft_aggregation_recovers_most_of_the_gap(runner):
    """The paper's most dramatic case: 2.65 -> 5.05 vs PVMe 5.12."""
    def experiment():
        return (one_variant("fft3d", "spf"), one_variant("fft3d", "spf_opt"),
                all_variants("fft3d")["pvme"])

    spf, opt, pvme = runner(experiment)
    recovered = (opt.speedup - spf.speedup) / (pvme.speedup - spf.speedup)
    archive("sec54_fft_aggregation", "\n".join([
        "Section 5.4 — FFT data aggregation",
        format_comparison("SPF speedup", PAPER["fft3d"].speedups["spf"],
                          round(spf.speedup, 2)),
        format_comparison("SPF+aggregation speedup",
                          PAPER["fft3d"].hand_opt_speedup,
                          round(opt.speedup, 2)),
        f"fraction of the PVMe gap recovered: {recovered:.0%} "
        f"(paper: {(5.05 - 2.65) / (5.12 - 2.65):.0%})",
    ]))
    assert recovered > 0.5, f"aggregation should recover most of the gap " \
                            f"({recovered:.0%})"


def test_barrier_elimination_reduces_dispatches(runner):
    """E13 — Tseng-style redundant synchronization removal: fusable
    adjacent loops share one fork-join in the optimized Shallow build."""
    from repro.apps.shallow import SPEC

    prog = SPEC.build_program(SPEC.params("test"))
    plain = runner(lambda: compile_spf(prog, nprocs=8))
    fused = compile_spf(SPEC.build_program(SPEC.params("test")), nprocs=8,
                        options=SpfOptions(fuse_loops=True))
    plain_units = len([u for u in plain.units if u.loops])
    fused_units = len([u for u in fused.units if u.loops])
    archive("sec5_barrier_elimination",
            f"Shallow dispatch units per run: {plain_units} plain, "
            f"{fused_units} with loop fusion "
            f"(each unit saved eliminates one barrier pair)")
    assert fused_units < plain_units

"""E15 (extension) — sensitivity of the conclusions to the machine model.

The paper's caveat: results hold "at least for this environment".  The
cost model here is calibrated, not measured, so this ablation re-runs the
headline comparisons under a 2x-faster and a 2x-slower network+DSM than
the calibration and checks which conclusions are calibration-robust:

* the irregular reversal (DSM beats XHPF on IGrid) holds at every point —
  it is a *data volume* effect, not a latency artifact;
* message passing's regular-code win (PVMe >= SPF/Tmk on Jacobi) also
  holds throughout, and the DSM's deficit widens as messaging gets more
  expensive (the DSM sends several messages where MP sends one).
"""

from repro.apps.common import get_app
from repro.eval.experiments import run_variant
from repro.sim.machine import SP2_MODEL

from conftest import NPROCS, archive, runner  # noqa: F401

get_app("jacobi").presets.setdefault("sweep", dict(n=1024, iters=6,
                                                   warmup=1))
get_app("igrid").presets.setdefault("sweep", dict(n=500, iters=6, warmup=1))

MODELS = {
    "fast (x0.5 costs)": SP2_MODEL.with_(
        latency=SP2_MODEL.latency / 2, byte_time=SP2_MODEL.byte_time / 2,
        send_overhead=SP2_MODEL.send_overhead / 2,
        recv_overhead=SP2_MODEL.recv_overhead / 2,
        fault_overhead=SP2_MODEL.fault_overhead / 2,
        diff_create_overhead=SP2_MODEL.diff_create_overhead / 2,
        diff_apply_overhead=SP2_MODEL.diff_apply_overhead / 2),
    "calibrated SP/2": SP2_MODEL,
    "slow (x2 costs)": SP2_MODEL.with_(
        latency=SP2_MODEL.latency * 2, byte_time=SP2_MODEL.byte_time * 2,
        send_overhead=SP2_MODEL.send_overhead * 2,
        recv_overhead=SP2_MODEL.recv_overhead * 2,
        fault_overhead=SP2_MODEL.fault_overhead * 2,
        diff_create_overhead=SP2_MODEL.diff_create_overhead * 2,
        diff_apply_overhead=SP2_MODEL.diff_apply_overhead * 2),
}


def test_model_sensitivity(runner):
    def experiment():
        out = {}
        for label, model in MODELS.items():
            seq_i = run_variant("igrid", "seq", preset="sweep")
            seq_j = run_variant("jacobi", "seq", preset="sweep")
            out[label] = {
                "igrid_spf": run_variant("igrid", "spf", nprocs=NPROCS,
                                         preset="sweep", model=model,
                                         seq_time=seq_i.time),
                "igrid_xhpf": run_variant("igrid", "xhpf", nprocs=NPROCS,
                                          preset="sweep", model=model,
                                          seq_time=seq_i.time),
                "jacobi_spf": run_variant("jacobi", "spf", nprocs=NPROCS,
                                          preset="sweep", model=model,
                                          seq_time=seq_j.time),
                "jacobi_pvme": run_variant("jacobi", "pvme", nprocs=NPROCS,
                                           preset="sweep", model=model,
                                           seq_time=seq_j.time),
            }
        return out

    res = runner(experiment)
    lines = ["Extension — sensitivity to the machine model (8 processors)"]
    gaps = []
    for label, runs in res.items():
        irr = runs["igrid_spf"].speedup / runs["igrid_xhpf"].speedup
        reg = runs["jacobi_pvme"].speedup / runs["jacobi_spf"].speedup
        gaps.append((label, irr, reg))
        lines.append(
            f"{label:20s} IGrid DSM/XHPF = {irr:5.2f}x   "
            f"Jacobi PVMe/DSM = {reg:5.2f}x")
    archive("ext_sensitivity", "\n".join(lines))

    for label, irr, reg in gaps:
        assert irr > 1.0, f"irregular reversal must survive: {label}"
        assert reg >= 1.0, f"regular MP win must survive: {label}"
    # the DSM's regular-code deficit widens as communication gets dearer
    reg_by_cost = [reg for _label, _irr, reg in gaps]
    assert reg_by_cost[0] <= reg_by_cost[-1]

"""The unified run API: typed, frozen, serializable requests and results.

One schema — ``repro-run/1`` — covers every way a run crosses a boundary
in this codebase: the CLI handing work to the library, the library handing
work to a :class:`~repro.serve.RunService` worker process, the serve wire
protocol (JSON lines over stdio or a socket), and the JSON artifacts the
sweep/bench harnesses archive.  There is exactly one serializer for each
object (``to_json``/``from_json`` here); ``repro.eval.sweep``,
``repro.eval.chaos`` and ``repro.serve.wire`` all reuse it rather than
hand-rolling their own.

* :class:`RunRequest` — everything needed to reproduce one run: the
  ``(app, variant, nprocs, preset)`` coordinates, the execution ``mode``
  (``sim`` event simulation or ``model`` analytic prediction), machine
  parameter overrides, codegen option overrides, the schedule seed, and a
  serialized fault plan.  A request is a *value*: frozen, comparable, and
  the source of the compiled-program cache key.
* :class:`RunResult` — a superset of the historical ``VariantResult``
  (which is now an alias of this class): the paper-facing metrics plus
  service metadata (``ok``/``error``, ``wall_s``, ``worker``,
  ``cache_hit``) and the request correlation ``tag``.
* :class:`BatchResult` — an ordered collection of results with the
  service-level counters (wall time, cache hits/misses, runs/min).

``RunResult.fingerprint()`` is the bit-identity contract used by the
service tests and the throughput gate: two runs of the same request must
produce equal fingerprints no matter which process executed them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Mapping, Optional

__all__ = ["RUN_SCHEMA", "RunRequest", "RunResult", "BatchResult",
           "fault_plan_to_doc", "fault_plan_from_doc",
           "dsm_stats_to_doc", "dsm_stats_from_doc",
           "machine_to_doc", "machine_from_doc", "races_from_doc"]

RUN_SCHEMA = "repro-run/1"

#: RunResult fields that legitimately differ between two executions of the
#: same request (scheduling, placement, wall clock) — excluded from the
#: bit-identity fingerprint.
VOLATILE_RESULT_FIELDS = ("wall_s", "worker", "cache_hit", "races")


# ---------------------------------------------------------------------- #
# shared component serializers (the "one serializer, not three" rule)

def machine_to_doc(machine) -> Optional[dict]:
    """``MachineModel`` (or an overrides mapping) -> plain JSON dict."""
    if machine is None:
        return None
    if isinstance(machine, Mapping):
        return dict(machine)
    return asdict(machine)


def machine_from_doc(doc: Optional[Mapping]):
    """Overrides dict -> concrete ``MachineModel`` (None passes through).

    The document may be partial: unspecified fields keep their SP/2
    defaults, which is what the CLI's ``--machine KEY=VALUE`` emits.
    """
    if doc is None:
        return None
    from repro.sim.machine import SP2_MODEL
    return SP2_MODEL.with_(**dict(doc))


def fault_plan_to_doc(plan) -> Optional[dict]:
    """``FaultPlan`` -> plain JSON dict (also accepts an existing doc)."""
    if plan is None:
        return None
    if isinstance(plan, Mapping):
        return dict(plan)
    return {
        "seed": plan.seed,
        "rates": dict(vars(plan.rates)),
        "overrides": {cat: dict(vars(r))
                      for cat, r in plan.overrides.items()},
        "delay_max": plan.delay_max,
        "reorder_lag": plan.reorder_lag,
        "stalls": [dict(vars(s)) for s in plan.stalls],
        "slow_nodes": {str(k): v for k, v in plan.slow_nodes.items()},
        "reliable": plan.reliable,
        "rto": plan.rto,
        "max_attempts": plan.max_attempts,
    }


def fault_plan_from_doc(doc: Optional[Mapping]):
    """Plain dict -> ``FaultPlan`` (None and FaultPlan pass through)."""
    if doc is None:
        return None
    from repro.sim.faults import FaultPlan, FaultRates, NodeStall
    if isinstance(doc, FaultPlan):
        return doc
    doc = dict(doc)
    return FaultPlan(
        seed=int(doc.get("seed", 0)),
        rates=FaultRates(**doc.get("rates", {})),
        overrides={cat: FaultRates(**r)
                   for cat, r in doc.get("overrides", {}).items()},
        delay_max=doc.get("delay_max", FaultPlan.delay_max),
        reorder_lag=doc.get("reorder_lag", FaultPlan.reorder_lag),
        stalls=tuple(NodeStall(**s) for s in doc.get("stalls", ())),
        slow_nodes={int(k): float(v)
                    for k, v in doc.get("slow_nodes", {}).items()},
        reliable=doc.get("reliable", True),
        rto=doc.get("rto"),
        max_attempts=int(doc.get("max_attempts", FaultPlan.max_attempts)),
    )


def dsm_stats_to_doc(dsm) -> Optional[dict]:
    if dsm is None:
        return None
    if isinstance(dsm, Mapping):
        return dict(dsm)
    return dict(vars(dsm))


def dsm_stats_from_doc(doc: Optional[Mapping]):
    if doc is None:
        return None
    from repro.tmk.stats import DsmStats
    return DsmStats(**dict(doc))


def _fault_stats_to_doc(fs) -> Optional[dict]:
    if fs is None:
        return None
    if isinstance(fs, Mapping):
        return dict(fs)
    return fs.as_dict()


def _fault_stats_from_doc(doc: Optional[Mapping]):
    if doc is None:
        return None
    from repro.sim.faults import FaultStats
    return FaultStats(**dict(doc))


def _races_to_doc(races) -> Optional[dict]:
    """Race verdict as a wire document: summary counts plus findings.

    The findings travel too (as plain ``RaceFinding`` field dicts) so a
    service worker's race-check run is as informative as a local one —
    :func:`races_from_doc` reconstructs the live objects on the far side.
    """
    if races is None:
        return None
    if isinstance(races, Mapping):
        return dict(races)
    return {"ok": bool(races.ok),
            "true_races": len(races.true_races),
            "false_sharing": len(races.false_sharing),
            "n_events": races.n_events,
            "n_dropped": races.n_dropped,
            "findings": [asdict(f) for f in
                         list(races.true_races) + list(races.false_sharing)]}


def races_from_doc(doc):
    """Wire document -> ``RaceCheckResult`` (None and live pass through)."""
    if doc is None:
        return None
    from repro.tmk.racecheck import RaceCheckResult, RaceFinding
    if isinstance(doc, RaceCheckResult):
        return doc
    findings = []
    for f in doc.get("findings", ()):
        f = dict(f)
        if f.get("overlap") is not None:
            f["overlap"] = tuple(f["overlap"])
        findings.append(RaceFinding(**f))
    return RaceCheckResult(
        true_races=[f for f in findings if f.kind == "true-race"],
        false_sharing=[f for f in findings if f.kind != "true-race"],
        n_events=int(doc.get("n_events", 0)),
        n_dropped=int(doc.get("n_dropped", 0)))


def _freeze_mapping(value):
    """Normalize an optional mapping field to a plain dict copy."""
    return None if value is None else dict(value)


def _canonical(value):
    """Deterministic hashable form of a JSON-ish value (for cache keys)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


# ---------------------------------------------------------------------- #
# RunRequest

@dataclass(frozen=True)
class RunRequest:
    """One run, fully specified — the unit of work of the run service.

    ``machine`` holds *overrides* of the SP/2 model's fields (a partial
    dict, as the CLI's ``--machine`` flags produce) or a full field dict
    (as the deprecation shim produces from a ``MachineModel``); ``None``
    means the stock SP/2.  ``options`` overrides codegen switches
    (``SpfOptions`` fields for the spf family, ``XhpfOptions`` fields for
    the xhpf family); the non-serializable ``piggyback`` hook cannot cross
    this boundary — drive :func:`repro.compiler.spf.compile_spf` directly
    for that.  ``fault_plan`` is the :func:`fault_plan_to_doc` form.
    ``readback`` (DSM variants only) appends a barrier-ordered coherent
    readback of every application array and reports their sha256 hashes
    on ``RunResult.array_hashes`` — how the chaos/racecheck harnesses
    judge numeric identity when their runs execute in a remote worker.
    ``tag`` is an opaque client correlation id echoed into the result.
    """

    app: str
    variant: str
    nprocs: int = 8
    preset: str = "bench"
    mode: str = "sim"                       # "sim" | "model"
    machine: Optional[dict] = None          # MachineModel field overrides
    options: Optional[dict] = None          # SpfOptions/XhpfOptions overrides
    gc_epochs: Optional[int] = 8
    schedule_seed: Optional[int] = None
    seq_time: Optional[float] = None
    racecheck: bool = False
    readback: bool = False
    fault_plan: Optional[dict] = None       # fault_plan_to_doc form
    tag: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "machine", _freeze_mapping(self.machine))
        object.__setattr__(self, "options", _freeze_mapping(self.options))
        object.__setattr__(self, "fault_plan",
                           _freeze_mapping(self.fault_plan))
        if self.mode not in ("sim", "model"):
            raise ValueError(f"mode must be 'sim' or 'model', "
                             f"not {self.mode!r}")

    def cache_key(self) -> tuple:
        """Compiled-program identity: everything codegen depends on.

        Seeds, fault plans and ``seq_time`` deliberately do not appear —
        they parameterize a *run* of a compiled program, not the program.
        """
        return (self.app, self.variant, self.preset, self.nprocs,
                self.mode, _canonical(self.machine),
                _canonical(self.options), self.gc_epochs)

    def to_json(self) -> dict:
        doc = {"schema": RUN_SCHEMA, "kind": "request"}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                doc[f.name] = value
        # always pin the coordinates, even when they equal the defaults
        doc["app"], doc["variant"] = self.app, self.variant
        doc["nprocs"], doc["preset"] = self.nprocs, self.preset
        return doc

    @classmethod
    def from_json(cls, doc) -> "RunRequest":
        if isinstance(doc, str):
            doc = json.loads(doc)
        doc = dict(doc)
        schema = doc.pop("schema", RUN_SCHEMA)
        if schema != RUN_SCHEMA:
            raise ValueError(f"unsupported request schema {schema!r} "
                             f"(this build speaks {RUN_SCHEMA})")
        doc.pop("kind", None)
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown RunRequest field(s) "
                             f"{sorted(unknown)}")
        return cls(**doc)


# ---------------------------------------------------------------------- #
# RunResult

@dataclass(frozen=True)
class RunResult:
    """Everything one run reports (the historical ``VariantResult`` is an
    alias of this class; its fields and semantics are unchanged, extended
    with the service metadata at the bottom)."""

    app: str
    variant: str
    nprocs: int
    preset: str
    time: float = 0.0            # measured-window elapsed virtual seconds
    seq_time: float = 0.0        # sequential oracle's window time
    messages: int = 0            # measured-window totals (the paper's
    kilobytes: float = 0.0       # tables cover the timed region: Jacobi
                                 # PVMe's 1400 = 14 x 100 timed iterations)
    signature: dict = field(default_factory=dict)
    dsm: Optional[object] = None
    total_messages: int = 0      # whole run, startup included
    total_kilobytes: float = 0.0
    categories: dict = field(default_factory=dict)   # window, per category
    races: Optional[object] = None   # RaceCheckResult when racecheck=True
    array_hashes: Optional[dict] = None    # name -> sha256 when readback=True
    speculation: Optional[dict] = None     # spf_spec verdict/outcome stats
    events: int = 0              # simulator events processed (whole run)
    retransmissions: int = 0     # reliable-delivery re-sends (fault runs)
    acks: int = 0                # reliable-delivery acknowledgements
    dup_suppressed: int = 0      # duplicate deliveries suppressed
    fault_stats: Optional[object] = None   # FaultStats when faults attached
    mode: str = "sim"            # "sim" (event simulation) or "model"
                                 # (analytic prediction, repro.compiler.model)
    # --- service metadata (absent from the paper-facing surface) --------
    ok: bool = True              # False: structured failure, see .error
    error: Optional[str] = None
    error_kind: Optional[str] = None       # exception class name
    tag: Optional[str] = None    # request correlation id, echoed back
    wall_s: Optional[float] = None         # host seconds this run took
    worker: Optional[int] = None           # serve worker id that ran it
    cache_hit: Optional[bool] = None       # compiled-program cache verdict

    @property
    def speedup(self) -> float:
        return self.seq_time / self.time if self.time > 0 else float("inf")

    def row(self) -> str:
        badge = " [model]" if self.mode == "model" else ""
        if not self.ok:
            return (f"{self.app:8s} {self.variant:8s} n={self.nprocs} "
                    f"ERROR {self.error_kind}: {self.error}")
        return (f"{self.app:8s} {self.variant:8s} n={self.nprocs} "
                f"time={self.time:10.4f}s speedup={self.speedup:5.2f} "
                f"msgs={self.messages:8d} data={self.kilobytes:10.1f}KB"
                f"{badge}")

    def to_json(self) -> dict:
        """One serializer for every surface (sweep, chaos, serve, bench)."""
        doc = {"schema": RUN_SCHEMA, "kind": "result"}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        doc["dsm"] = dsm_stats_to_doc(self.dsm)
        doc["fault_stats"] = _fault_stats_to_doc(self.fault_stats)
        doc["races"] = _races_to_doc(self.races)
        doc["signature"] = {k: float(v) for k, v in self.signature.items()}
        doc["categories"] = {k: [int(v[0]), float(v[1])]
                             for k, v in self.categories.items()}
        doc["speedup"] = self.speedup if self.time > 0 else None
        return doc

    @classmethod
    def from_json(cls, doc) -> "RunResult":
        if isinstance(doc, str):
            doc = json.loads(doc)
        doc = dict(doc)
        schema = doc.pop("schema", RUN_SCHEMA)
        if schema != RUN_SCHEMA:
            raise ValueError(f"unsupported result schema {schema!r} "
                             f"(this build speaks {RUN_SCHEMA})")
        doc.pop("kind", None)
        doc.pop("speedup", None)          # derived, not stored
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown RunResult field(s) {sorted(unknown)}")
        if "dsm" in doc:
            doc["dsm"] = dsm_stats_from_doc(doc["dsm"])
        if "fault_stats" in doc:
            doc["fault_stats"] = _fault_stats_from_doc(doc["fault_stats"])
        if "categories" in doc and doc["categories"] is not None:
            doc["categories"] = {k: (int(v[0]), float(v[1]))
                                 for k, v in doc["categories"].items()}
        return cls(**doc)

    def fingerprint(self) -> dict:
        """Deterministic identity of the run — what "bit-identical" means.

        Equal for two executions of the same request regardless of which
        process/worker performed them or how long they took on the host.
        """
        doc = self.to_json()
        for key in VOLATILE_RESULT_FIELDS:
            doc.pop(key, None)
        return doc

    @classmethod
    def failure(cls, request: RunRequest, error: str,
                error_kind: str = "Error", **extra) -> "RunResult":
        """Structured failure for ``request`` (crash/exception surface)."""
        return cls(app=request.app, variant=request.variant,
                   nprocs=request.nprocs, preset=request.preset,
                   mode=request.mode, ok=False, error=error,
                   error_kind=error_kind, tag=request.tag, **extra)


# ---------------------------------------------------------------------- #
# BatchResult

BATCH_SCHEMA = "repro-batch/1"


@dataclass(frozen=True)
class BatchResult:
    """An ordered batch of results plus the service-level counters."""

    results: tuple                       # RunResult, in request order
    wall_s: float = 0.0                  # host seconds for the whole batch
    workers: int = 0                     # live workers when the batch ended
    cache_hits: int = 0                  # compiled-program cache verdicts,
    cache_misses: int = 0                # summed over the batch's runs
    crashes: int = 0                     # worker deaths surfaced as errors
    affinity_hits: int = 0               # dispatches routed to a warm worker
    steals: int = 0                      # warm-elsewhere work taken by an
                                         # idle worker (queue imbalance)
    rejected: int = 0                    # admissions refused (backlog cap)

    def __post_init__(self):
        object.__setattr__(self, "results", tuple(self.results))

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def runs(self) -> int:
        return len(self.results)

    @property
    def runs_per_min(self) -> float:
        return 60.0 * self.runs / self.wall_s if self.wall_s > 0 else 0.0

    def failures(self) -> list:
        return [r for r in self.results if not r.ok]

    def to_json(self) -> dict:
        return {
            "schema": BATCH_SCHEMA,
            "ok": self.ok,
            "runs": self.runs,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "runs_per_min": self.runs_per_min,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "crashes": self.crashes,
            "affinity_hits": self.affinity_hits,
            "steals": self.steals,
            "rejected": self.rejected,
            "results": [r.to_json() for r in self.results],
        }

    @classmethod
    def from_json(cls, doc) -> "BatchResult":
        if isinstance(doc, str):
            doc = json.loads(doc)
        if doc.get("schema") != BATCH_SCHEMA:
            raise ValueError(f"unsupported batch schema "
                             f"{doc.get('schema')!r}")
        return cls(results=tuple(RunResult.from_json(r)
                                 for r in doc["results"]),
                   wall_s=doc.get("wall_s", 0.0),
                   workers=doc.get("workers", 0),
                   cache_hits=doc.get("cache_hits", 0),
                   cache_misses=doc.get("cache_misses", 0),
                   crashes=doc.get("crashes", 0),
                   affinity_hits=doc.get("affinity_hits", 0),
                   steals=doc.get("steals", 0),
                   rejected=doc.get("rejected", 0))


def _replace(result: RunResult, **changes) -> RunResult:
    """``dataclasses.replace`` re-export (results are frozen)."""
    return replace(result, **changes)

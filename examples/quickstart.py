#!/usr/bin/env python
"""Quickstart: a hand-coded TreadMarks program on the simulated SP/2.

Eight simulated processors cooperatively relax a grid:

* the shared array lives in the DSM's global address space,
* each processor writes its block of rows and reads a one-row halo,
* barriers separate iterations (the lazy-invalidate protocol turns each
  boundary read into a page fault + diff fetch),
* a lock-protected shared scalar accumulates a residual.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import tmk_run

N = 256          # grid rows (= columns)
ITERS = 10
NPROCS = 8


def setup(space):
    """Static shared allocation — every processor sees this layout."""
    space.alloc("grid", (N, N), np.float32)
    space.alloc("residual", (1,), np.float64)


def program(tmk):
    grid = tmk.array("grid")
    residual = tmk.array("residual")
    lo, hi = tmk.block_range(N)

    # processor 0 initializes; the barrier publishes the write notices
    if tmk.pid == 0:
        view = grid.writable()
        view[...] = 0.0
        view[0, :] = 100.0
        view[-1, :] = 100.0
    tmk.barrier()

    for _ in range(ITERS):
        rlo, rhi = max(lo, 1), min(hi, N - 1)
        # reading the halo faults in the neighbours' boundary pages
        src = grid.read((slice(rlo - 1, rhi + 1), slice(None))).copy()
        out = 0.25 * (src[:-2] + src[2:]) + 0.5 * src[1:-1]
        delta = float(np.abs(out - src[1:-1]).sum(dtype=np.float64))
        grid.write((slice(rlo, rhi), slice(None)), out)
        tmk.compute(50e-9 * N * (rhi - rlo))    # charge virtual FLOP time

        # scalar reduction through a TreadMarks lock
        tmk.lock_acquire(0)
        cur = float(residual.read((0,)))
        residual.write((0,), cur + delta)
        tmk.lock_release(0)
        tmk.barrier()

    return float(residual.read((0,)))


def main():
    result = tmk_run(NPROCS, program, setup)
    print(f"simulated time : {result.time * 1e3:9.2f} ms (virtual)")
    print(f"messages       : {result.messages}")
    print(f"data exchanged : {result.kilobytes:.1f} KB")
    print(f"residual       : {result.results[0]:.2f}")
    print(f"DSM events     : {result.dsm_stats.summary()}")
    by_cat = {k: tuple(v) for k, v in result.stats.by_category.items()}
    print(f"per category   : {by_cat}")


if __name__ == "__main__":
    main()

"""Every number the paper reports, as data.

Sources (all from the paper text):

* Table 1 — data set sizes and sequential execution times.  The OCR of the
  paper loses the Jacobi and Shallow rows' seconds; those two are **our
  estimates** (flagged ``estimated``), chosen to be consistent with the
  per-element costs implied by the readable rows and with mid-90s POWER2
  stencil throughput.  They only scale the compute/communication ratio.
* Figure 1 / Figure 2 — 8-processor speedups (the exact values are quoted
  in the running text of Sections 5 and 6).  The hand-coded TreadMarks bar
  for IGrid is visible in Figure 2 but not quoted; ``None`` marks it.
* Tables 2 and 3 — message totals and kilobyte totals per program.
* Sections 5.1–5.4 — speedups after hand-applied optimizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PAPER", "PaperNumbers", "APPS", "REGULAR_APPS", "IRREGULAR_APPS",
           "VARIANT_NAMES"]

APPS = ["jacobi", "shallow", "mgs", "fft3d", "igrid", "nbf"]
REGULAR_APPS = ["jacobi", "shallow", "mgs", "fft3d"]
IRREGULAR_APPS = ["igrid", "nbf"]
VARIANT_NAMES = ["spf", "tmk", "xhpf", "pvme"]


@dataclass(frozen=True)
class PaperNumbers:
    """All reported numbers for one application (8 processors)."""

    problem_size: str
    seq_time: float                  # Table 1, seconds
    seq_time_estimated: bool = False
    speedups: dict = field(default_factory=dict)    # variant -> speedup
    messages: dict = field(default_factory=dict)    # variant -> count
    data_kb: dict = field(default_factory=dict)     # variant -> kilobytes
    hand_opt_speedup: float = 0.0    # Sections 5.1-5.4
    hand_opt_note: str = ""


PAPER: dict = {
    "jacobi": PaperNumbers(
        problem_size="2048 x 2048, 100 iterations",
        seq_time=55.0, seq_time_estimated=True,
        speedups={"spf": 6.99, "tmk": 7.13, "xhpf": 7.39, "pvme": 7.55},
        messages={"spf": 8538, "tmk": 8407, "xhpf": 4207, "pvme": 1400},
        data_kb={"spf": 989, "tmk": 862, "xhpf": 11458, "pvme": 11469},
        hand_opt_speedup=7.23,
        hand_opt_note="data aggregation (vs 7.55 hand-coded PVMe)",
    ),
    "shallow": PaperNumbers(
        problem_size="1024 x 1024, 50 iterations",
        seq_time=40.0, seq_time_estimated=True,
        speedups={"spf": 5.71, "tmk": 6.21, "xhpf": 6.60, "pvme": 6.77},
        messages={"spf": 13034, "tmk": 11767, "xhpf": 7792, "pvme": 1985},
        data_kb={"spf": 10814, "tmk": 10400, "xhpf": 18407, "pvme": 7328},
        hand_opt_speedup=5.96,
        hand_opt_note="loop merging + data aggregation (vs 6.21 hand Tmk)",
    ),
    "mgs": PaperNumbers(
        problem_size="1024 x 1024",
        seq_time=56.4,
        speedups={"spf": 3.35, "tmk": 4.19, "xhpf": 5.06, "pvme": 6.55},
        messages={"spf": 57283, "tmk": 30457, "xhpf": 38905, "pvme": 7168},
        data_kb={"spf": 59724, "tmk": 55681, "xhpf": 29430, "pvme": 29360},
        hand_opt_speedup=5.09,
        hand_opt_note="merge sync+data, broadcast ith vector (from 4.19 "
                      "hand Tmk; applied to the hand-coded program)",
    ),
    "fft3d": PaperNumbers(
        problem_size="128 x 128 x 64, 5 timed iterations",
        seq_time=37.7,
        speedups={"spf": 2.65, "tmk": 3.06, "xhpf": 4.44, "pvme": 5.12},
        messages={"spf": 52818, "tmk": 36477, "xhpf": 33913, "pvme": 1155},
        data_kb={"spf": 103228, "tmk": 74107, "xhpf": 102763, "pvme": 73401},
        hand_opt_speedup=5.05,
        hand_opt_note="data aggregation (vs 5.12 hand-coded PVMe)",
    ),
    "igrid": PaperNumbers(
        problem_size="500 x 500, 19 timed iterations",
        seq_time=42.6,
        speedups={"spf": 7.54, "tmk": None, "xhpf": 3.85, "pvme": 7.88},
        messages={"spf": 3806, "tmk": 1246, "xhpf": 34769, "pvme": 320},
        data_kb={"spf": 7374, "tmk": 131, "xhpf": 140001, "pvme": 640},
    ),
    "nbf": PaperNumbers(
        problem_size="32K molecules, 20 iterations",
        seq_time=63.9,
        speedups={"spf": 5.31, "tmk": 5.86, "xhpf": 3.85, "pvme": 6.18},
        messages={"spf": 14836, "tmk": 13194, "xhpf": 45895, "pvme": 960},
        data_kb={"spf": 1543, "tmk": 228, "xhpf": 163775, "pvme": 31457},
    ),
}

# Summary claims of Section 7 / the abstract, used by the summary bench:
SUMMARY_CLAIMS = {
    # on regular apps, XHPF beats SPF/Tmk by 5.5%..40%
    "regular_xhpf_over_spf": (1.055, 1.40),
    # on regular apps, PVMe beats SPF/Tmk by 7.5%..49%
    "regular_pvme_over_spf": (1.075, 1.49),
    # on irregular apps, SPF/Tmk beats XHPF by 38% and 89%
    "irregular_spf_over_xhpf": (1.38, 1.89),
    # on irregular apps, PVMe beats SPF/Tmk by only 4.4% and 16%
    "irregular_pvme_over_spf": (1.044, 1.16),
    # hand Tmk beats SPF/Tmk by 2%..20%
    "tmk_over_spf": (1.02, 1.20),
}

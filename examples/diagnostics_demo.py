#!/usr/bin/env python
"""Protocol diagnostics: finding false sharing the way the paper talks
about it.

Section 2.2: shared arrays are "padded to page boundaries in order to
reduce false sharing", and the multiple-writer protocol exists to blunt
what remains.  This demo runs the same computation twice — once with rows
matching the 4 KB page size (the paper's layouts) and once with four rows
packed per page — and uses the protocol tracer to show the difference:
multi-writer pages, extra diff traffic, extra invalidations.

Run:  python examples/diagnostics_demo.py
"""

import numpy as np

from repro import tmk_run
from repro.tmk.diagnostics import (false_sharing_report, fault_summary,
                                   hot_pages)

NPROCS = 4
ITERS = 6


def make_setup(cols):
    def setup(space):
        space.alloc("grid", (16, cols), np.float32)
    return setup


def program(tmk):
    grid = tmk.array("grid")
    lo, hi = tmk.block_range(16)
    if tmk.pid == 0:
        grid.write((slice(0, 1),), 100.0)
        grid.write((slice(15, 16),), 100.0)
    tmk.barrier()
    for it in range(ITERS):
        rlo, rhi = max(lo, 1), min(hi, 15)
        src = grid.read((slice(rlo - 1, rhi + 1), slice(None))).copy()
        grid.write((slice(rlo, rhi), slice(None)),
                   0.5 * (src[:-2] + src[2:]))
        tmk.compute(1e-4)
        tmk.barrier()
    return True


def study(label, cols):
    print(f"=== {label} (rows of {cols * 4} bytes, page = 4096) ===")
    result = tmk_run(NPROCS, program, make_setup(cols), trace=True)
    print(f"time {result.time * 1e3:.2f} ms, {result.messages} messages, "
          f"{result.dsm_stats.diffs_applied} diffs applied, "
          f"{result.dsm_stats.invalidations} invalidations")
    print(false_sharing_report(result.trace))
    print(hot_pages(result.trace, top=3))
    print(fault_summary(result.trace))
    print()
    return result


def main():
    aligned = study("page-aligned rows (the paper's layout)", 1024)
    # 320 floats = 1280-byte rows: 3.2 rows per page, so partition
    # boundaries fall mid-page and neighbours write the same pages
    packed = study("packed rows (3.2 rows per page)", 320)
    extra = packed.messages - aligned.messages
    print(f"the packed layout cost {extra} extra messages "
          f"({extra / aligned.messages:.0%} more) — the false sharing the "
          f"SPF compiler's\npage padding avoids, and the multiple-writer "
          f"protocol has to merge.")


if __name__ == "__main__":
    main()

"""IGrid: a 9-point stencil accessed through a run-time indirection map.

Section 6.1 of the paper.  The neighbour elements are reached through a
mapping established at run time, so neither compiler can analyze the access
pattern.  Both are told the main loop's iterations are independent:

* SPF partitions the iterations and brackets the loop with synchronization;
  TreadMarks then fetches *on demand* exactly the pages actually touched
  and caches them — only the partition-boundary lines ever travel, which
  is why the DSM wins big here (speedup 7.54 vs XHPF's 3.85);
* XHPF, not knowing what will be needed, makes each processor broadcast
  its whole block at the end of each step (Table 3: 140 MB vs 131 KB).

The grid starts at all ones with two spikes (middle, lower-right corner);
the final max / min / checksum over the central 40x40 square are
recognized as reductions.  In the hand-coded TreadMarks program the
indirection map is computed locally on every processor (private memory);
SPF places it in shared memory because it is accessed in a parallel loop,
so every worker pages its slice in — accounting for SPF's larger data
total (7,374 KB vs 131 KB in Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import (AppSpec, abs_sum,
                               append_signature_loops, register)
from repro.compiler.ir import (Access, ArrayDecl, Full, Irregular, Mark,
                               ParallelLoop, Program, Reduction, SeqBlock,
                               Span, TimeLoop)

__all__ = ["SPEC", "build_program", "hand_tmk", "hand_pvme"]

# 42.6 s sequential at 500^2 x ~20 iterations (Table 1): indirect gather
# per element is expensive on a POWER2 — ~8.5 us per element-update.
UPDATE_COST = 8.5e-6
REDUCE_COST = 0.2e-6
SQUARE = 40      # the max/min/checksum square in the middle

PRESETS = {
    "paper": dict(n=500, iters=19, warmup=1),
    "bench": dict(n=500, iters=10, warmup=1),
    "test": dict(n=48, iters=3, warmup=1),
}


# ---------------------------------------------------------------------- #
# kernels

def build_map(n: int) -> np.ndarray:
    """The run-time indirection map: flat indices of each cell's 9-point
    neighbourhood (clamped at the borders).  Deterministic but opaque to
    the compiler."""
    i = np.arange(n)
    ii, jj = np.meshgrid(i, i, indexing="ij")
    nbrs = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            ni = np.clip(ii + di, 0, n - 1)
            nj = np.clip(jj + dj, 0, n - 1)
            nbrs.append(ni * n + nj)
    return np.stack(nbrs, axis=-1).astype(np.int32)   # (n, n, 9)


WEIGHTS = np.array([0.05, 0.1, 0.05, 0.1, 0.4, 0.1, 0.05, 0.1, 0.05],
                   dtype=np.float32)


def init_grid(g: np.ndarray, n: int) -> None:
    g[...] = 1.0
    g[n // 2, n // 2] = 100.0
    g[(3 * n) // 4, (3 * n) // 4] = 50.0


def update_rows(old: np.ndarray, new: np.ndarray, imap: np.ndarray,
                lo: int, hi: int) -> None:
    """new[lo:hi] = weighted average of the mapped neighbours of old."""
    idx = imap[lo:hi]                       # (rows, n, 9)
    vals = old.reshape(-1)[idx]             # gather through the indirection
    new[lo:hi] = vals @ WEIGHTS


def square_bounds(n: int) -> tuple:
    half = SQUARE // 2
    lo = max(n // 2 - half, 0)
    return lo, min(lo + SQUARE, n)


def square_stats_rows(g: np.ndarray, n: int, lo: int, hi: int) -> dict:
    """max / min / sum over the central square, restricted to rows [lo, hi)."""
    slo, shi = square_bounds(n)
    rlo, rhi = max(lo, slo), min(hi, shi)
    if rhi <= rlo:
        return {"gmax": -np.inf, "gmin": np.inf, "gsum": 0.0}
    part = g[rlo:rhi, slo:shi]
    return {"gmax": float(part.max()), "gmin": float(part.min()),
            "gsum": float(np.sum(part, dtype=np.float64))}


def touched_indices(imap: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Flat indices the chunk's gathers actually touch (= what would fault)."""
    return np.unique(imap[lo:hi].ravel())


# ---------------------------------------------------------------------- #
# IR description

def build_program(params: dict) -> Program:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]

    def init_kernel(views):
        init_grid(views["g0"], n)
        views["g1"][...] = 1.0
        views["imap"][...] = build_map(n)

    def step(t: int):
        src, dst = ("g0", "g1") if t % 2 == 0 else ("g1", "g0")

        def kernel(views, lo, hi, _s=src, _d=dst):
            update_rows(views[_s], views[_d], views["imap"], lo, hi)

        def footprint(views, lo, hi):
            return touched_indices(views["imap"], lo, hi)

        return [ParallelLoop(
            f"update[{t % 2}]", n, kernel,
            reads=[Access(src, Irregular(footprint)),
                   Access("imap", (Span(), Full(), Full()))],
            writes=[Access(dst, (Span(), Full()))],
            align=(dst, 0), cost_per_iter=UPDATE_COST * n)]

    final = "g1" if (warmup + iters) % 2 == 1 else "g0"

    def stats_kernel(views, lo, hi):
        return square_stats_rows(views[final], n, lo, hi)

    program = Program(
        name="igrid",
        arrays=[ArrayDecl("g0", (n, n), np.float32, distribute=0),
                ArrayDecl("g1", (n, n), np.float32, distribute=0),
                ArrayDecl("imap", (n, n, 9), np.int32, distribute=0)],
        body=[SeqBlock("init", init_kernel,
                       writes=[Access("g0", (Full(), Full())),
                               Access("g1", (Full(), Full())),
                               Access("imap", (Full(), Full(), Full()))],
                       cost=100e-9 * n * n),
              TimeLoop("warmup", warmup, step),
              Mark("start"),
              TimeLoop("iterations", iters,
                       lambda t, _w=warmup: step(t + _w)),
              ParallelLoop("stats", n, stats_kernel,
                           reads=[Access(final, (Span(), Full()))],
                           reductions=[Reduction("gmax", op="max"),
                                       Reduction("gmin", op="min"),
                                       Reduction("gsum")],
                           align=(final, 0),
                           cost_per_iter=REDUCE_COST * n),
              Mark("stop")],
        params=dict(params),
    )
    return append_signature_loops(program, [final])


# ---------------------------------------------------------------------- #
# hand-coded TreadMarks: the map is private; grids are shared

def hand_tmk_setup(space, params: dict) -> None:
    n = params["n"]
    space.alloc("g0", (n, n), np.float32)
    space.alloc("g1", (n, n), np.float32)
    space.alloc("stats", (64, 3), np.float64)  # per-proc (max, min, sum)


def hand_tmk(tmk, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    g = [tmk.array("g0"), tmk.array("g1")]
    raw = [g[0].raw(), g[1].raw()]
    lo, hi = tmk.block_range(n)
    imap = build_map(n)                      # computed locally (private)

    if tmk.pid == 0:
        g[0].writable()
        g[1].writable()
        init_grid(raw[0], n)
        raw[1][...] = 1.0
        tmk.compute(100e-9 * n * n)
    tmk.barrier()

    def one_iteration(t: int):
        s, d = t % 2, 1 - (t % 2)
        idx = touched_indices(imap, lo, hi)
        tmk.node.ensure_read_elements(g[s].handle, idx)
        g[d].writable((slice(lo, hi),))
        update_rows(raw[s], raw[d], imap, lo, hi)
        tmk.compute(UPDATE_COST * n * (hi - lo))
        tmk.barrier()

    for t in range(warmup):
        one_iteration(t)
    tmk.env.mark("start")
    for t in range(iters):
        one_iteration(t + warmup)
    final = (warmup + iters) % 2
    stats = square_stats_rows(raw[final], n, lo, hi)
    tmk.compute(REDUCE_COST * n * (hi - lo))
    # per-processor partials land in a shared array; proc 0 combines
    shared_stats = tmk.array("stats")
    shared_stats.write((slice(tmk.pid, tmk.pid + 1), slice(None)),
                       [stats["gmax"], stats["gmin"], stats["gsum"]])
    tmk.barrier()
    sig = {"sig_" + ("g1" if final else "g0"): abs_sum(raw[final][lo:hi])}
    if tmk.pid == 0:
        rows = shared_stats.read((slice(0, tmk.nprocs), slice(None)))
        sig["gmax"] = float(rows[:, 0].max())
        sig["gmin"] = float(rows[:, 1].min())
        sig["gsum"] = float(rows[:, 2].sum())
    tmk.env.mark("stop")
    return sig


# ---------------------------------------------------------------------- #
# hand-coded PVMe: exchange only the boundary lines the stencil touches

TAG_UP, TAG_DOWN = 40, 41


def hand_pvme(p, params: dict) -> dict:
    n, iters, warmup = params["n"], params["iters"], params["warmup"]
    lo, hi = p.block_range(n)
    grids = [np.zeros((n, n), np.float32), np.zeros((n, n), np.float32)]
    init_grid(grids[0], n)
    grids[1][...] = 1.0
    imap = build_map(n)
    up, down = p.tid - 1, p.tid + 1

    def one_iteration(t: int):
        s = t % 2
        d = 1 - s
        src, dst = grids[s], grids[d]
        if up >= 0:
            p.send(up, src[lo].copy(), tag=TAG_UP)
        if down < p.ntasks:
            p.send(down, src[hi - 1].copy(), tag=TAG_DOWN)
        if up >= 0:
            src[lo - 1] = p.recv(src=up, tag=TAG_DOWN)
        if down < p.ntasks:
            src[hi] = p.recv(src=down, tag=TAG_UP)
        update_rows(src, dst, imap, lo, hi)
        p.compute(UPDATE_COST * n * (hi - lo))

    for t in range(warmup):
        one_iteration(t)
    p.env.mark("start")
    for t in range(iters):
        one_iteration(t + warmup)
    final = (warmup + iters) % 2
    stats = square_stats_rows(grids[final], n, lo, hi)
    p.compute(REDUCE_COST * n * (hi - lo))
    gmax = p.allreduce(stats["gmax"], max)
    gmin = p.allreduce(stats["gmin"], min)
    gsum = p.allreduce(stats["gsum"], lambda a, b: a + b)
    p.env.mark("stop")
    sig = {"sig_" + ("g1" if final else "g0"): abs_sum(grids[final][lo:hi])}
    if p.tid == 0:
        sig.update({"gmax": gmax, "gmin": gmin, "gsum": gsum})
    return sig


SPEC = register(AppSpec(
    name="igrid",
    regular=False,
    build_program=build_program,
    hand_tmk_setup=hand_tmk_setup,
    hand_tmk=hand_tmk,
    hand_pvme=hand_pvme,
    presets=PRESETS,
    signature_arrays=[],     # final-grid signature name depends on parity
    spf_opt_options=None,    # the paper applies no hand optimization here
    notes="Section 6.1; irregular — DSM fetches on demand, XHPF broadcasts",
))

"""Simulated interconnect: mailboxes, tag matching, and traffic accounting.

Semantics follow the user-level MPL/PVMe libraries the paper runs on:

* ``send`` is buffered and asynchronous — the sender is charged its software
  send overhead and continues; the message is delivered to the destination
  mailbox after the modelled wire time.
* ``recv`` blocks until a matching message (by source and tag) is present,
  then charges the receiver's software overhead and returns the payload.

Every message carries an accounting *category* (``"data"``, ``"sync"``,
``"diff"``, ...) and a declared payload size in bytes.  The paper's Tables 2
and 3 report total message counts and total kilobytes per program; the
:class:`NetworkStats` object accumulates exactly those, per category, and the
evaluation harness snapshots it per run.

Reliable delivery
-----------------

By default the wire is perfect, matching the paper's SP/2 switch.  When the
:class:`Network` is built with a :class:`~repro.sim.faults.FaultPlan`, every
wire transmission first passes through the seeded
:class:`~repro.sim.faults.FaultInjector`, which may drop, duplicate, delay,
or reorder it, or defer it through a node-stall window.  A plan with
``reliable=True`` (the default) also arms the recovery sublayer:

* each ``(src, dst)`` pair numbers its messages with consecutive **sequence
  numbers**;
* the receiver buffers out-of-order arrivals and releases them to the
  mailbox strictly in send order (restoring the per-pair FIFO guarantee the
  protocol layers above assume), suppressing duplicates;
* every arrival — including suppressed duplicates, so lost acks heal — is
  answered with a **cumulative ack** ("everything below ``n`` received");
* the sender keeps unacked messages and re-transmits on a timeout of
  *expected remaining flight time* plus an exponentially backed-off slack
  (``rto_slack · 2^(attempt-1)``), giving up with a :class:`SimError` after
  ``max_attempts`` transmissions.

Acks and retransmissions are conductor-level control events: they consume
no link occupancy and are *not* counted in ``messages``/``bytes`` (which
model the application-level traffic of the paper's tables); they are
surfaced separately as ``retransmissions``/``acks``/``dup_suppressed`` on
:class:`NetworkStats`.  With no plan attached the send path is
arithmetically identical to the historical one — virtual times, message
counts, and byte totals are bit-for-bit unchanged.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim.engine import Process, SimError, Simulator
from repro.sim.faults import FaultInjector, FaultPlan, FaultStats
from repro.sim.machine import MachineModel

__all__ = ["Network", "Message", "NetworkStats", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """One in-flight or delivered message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    category: str
    sent_at: float
    delivered_at: float = 0.0
    seq: int = -1           # per-(src, dst) sequence number; -1 = unnumbered


@dataclass
class NetworkStats:
    """Message and byte totals, overall and per category.

    ``messages``/``bytes`` count every network message including protocol
    requests and synchronization, which is how the paper counts (e.g. a
    TreadMarks page fault is *two* messages: request and response).  The
    reliability counters (``retransmissions``, ``acks``, ``dup_suppressed``)
    track recovery-sublayer control traffic separately — they stay zero on a
    perfect wire.
    """

    messages: int = 0
    bytes: int = 0
    retransmissions: int = 0
    acks: int = 0
    dup_suppressed: int = 0
    by_category: dict = field(default_factory=lambda: defaultdict(lambda: [0, 0]))

    def record(self, category: str, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes
        cell = self.by_category[category]
        cell[0] += 1
        cell[1] += nbytes

    def snapshot(self) -> "NetworkStats":
        snap = NetworkStats(self.messages, self.bytes, self.retransmissions,
                            self.acks, self.dup_suppressed)
        snap.by_category = defaultdict(
            lambda: [0, 0], {k: list(v) for k, v in self.by_category.items()})
        return snap

    def delta(self, earlier: "NetworkStats") -> "NetworkStats":
        out = NetworkStats(self.messages - earlier.messages,
                           self.bytes - earlier.bytes,
                           self.retransmissions - earlier.retransmissions,
                           self.acks - earlier.acks,
                           self.dup_suppressed - earlier.dup_suppressed)
        keys = set(self.by_category) | set(earlier.by_category)
        for key in keys:
            a = self.by_category.get(key, [0, 0])
            b = earlier.by_category.get(key, [0, 0])
            out.by_category[key] = [a[0] - b[0], a[1] - b[1]]
        return out

    @property
    def kilobytes(self) -> float:
        return self.bytes / 1024.0


class _PairSend:
    """Sender-side reliability state for one ``(src, dst)`` pair."""

    __slots__ = ("next_seq", "unacked")

    def __init__(self) -> None:
        self.next_seq = 0
        self.unacked: dict[int, Message] = {}


class _PairRecv:
    """Receiver-side reliability state for one ``(src, dst)`` pair."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: dict[int, Message] = {}


class Network:
    """Point-to-point message transport between ``nprocs`` endpoints."""

    def __init__(self, sim: Simulator, nprocs: int, model: MachineModel,
                 faults: Optional[FaultPlan] = None):
        self.sim = sim
        self.nprocs = nprocs
        self.model = model
        self.stats = NetworkStats()
        # mailbox[dst] holds delivered, un-received messages in arrival order
        self._mailbox: list[deque[Message]] = [deque() for _ in range(nprocs)]
        # waiting[dst] -> list of (process, src_filter, tag_filter); a node's
        # main program and its DSM request server may both be blocked in recv
        # on the same endpoint with disjoint tag filters.
        self._waiting: list[list[tuple[Process, int, int]]] = [
            [] for _ in range(nprocs)]
        # cut-through link model: each node has one send link and one
        # receive link; a message occupies the send link for its transfer
        # time starting at `start`, and the receive link for the same
        # duration offset by the wire latency.  Concurrent transfers to or
        # from one node serialize — the effect that makes an all-to-all
        # transpose or a broadcast-everything epilogue pay for its volume.
        self._src_free = [0.0] * nprocs
        self._dst_free = [0.0] * nprocs
        # fault injection + reliable delivery (both off on a perfect wire)
        self.plan = faults
        self._injector = (FaultInjector(faults, nprocs)
                          if faults is not None else None)
        self._pair_send: dict[tuple[int, int], _PairSend] = \
            defaultdict(_PairSend)
        self._pair_recv: dict[tuple[int, int], _PairRecv] = \
            defaultdict(_PairRecv)
        if faults is not None:
            self._rto_slack = (faults.rto if faults.rto is not None
                               else 4.0 * model.latency)
        sim.diagnostics.append(self._deadlock_report)

    @property
    def fault_stats(self) -> Optional[FaultStats]:
        """What the injector did to this run (``None`` on a perfect wire)."""
        return self._injector.stats if self._injector is not None else None

    def in_flight(self) -> int:
        """Unacked reliable messages currently awaiting delivery."""
        return sum(len(ps.unacked) for ps in self._pair_send.values())

    # ------------------------------------------------------------------ #

    def _reserve(self, src: int, dst: int, nbytes: int) -> float:
        """Claim link occupancy for one transfer; returns the arrival time."""
        transfer = (nbytes + self.model.message_header_bytes) \
            * self.model.byte_time
        latency = self.model.latency
        now = self.sim.now
        start = max(now, self._src_free[src], self._dst_free[dst] - latency)
        self._src_free[src] = start + transfer
        arrival = start + latency + transfer
        self._dst_free[dst] = arrival
        return arrival

    def send(self, proc: Process, src: int, dst: int, payload: Any, *,
             tag: int = 0, nbytes: int, category: str = "data",
             charge_sender: bool = True) -> None:
        """Asynchronously send ``payload`` from ``src`` to ``dst``.

        ``nbytes`` is the accounted payload size; callers declare it because
        payloads are Python objects whose wire encoding we model rather than
        perform.  ``charge_sender=False`` supports piggybacked replies whose
        send cost is already folded into a handler's protocol overhead.
        """
        if not (0 <= dst < self.nprocs):
            raise SimError(f"bad destination {dst}")
        if nbytes < 0:
            raise ValueError("negative message size")
        if charge_sender:
            proc.hold(self.model.send_overhead)
        msg = Message(src=src, dst=dst, tag=tag, payload=payload,
                      nbytes=nbytes, category=category, sent_at=self.sim.now)
        self.stats.record(category, nbytes)
        now = self.sim.now
        arrival = self._reserve(src, dst, nbytes)
        if self._injector is None:
            self.sim.schedule_call(arrival - now, lambda: self._deliver(msg))
            return
        if self.plan.reliable:
            ps = self._pair_send[(src, dst)]
            msg.seq = ps.next_seq
            ps.next_seq += 1
            ps.unacked[msg.seq] = msg
        self._transmit(msg, arrival, attempt=1)

    # ------------------------------------------------------------------ #
    # faulty wire + recovery sublayer (active only with a FaultPlan)

    def _transmit(self, msg: Message, arrival: float, attempt: int) -> None:
        """Put one copy of ``msg`` on the faulty wire."""
        inj = self._injector
        verdict = inj.draw(msg.category)
        now = self.sim.now
        # the copy's expected arrival after injected delay and the fault
        # schedule; used for the retransmit timer even when the copy drops
        expected = inj.defer(msg.src, msg.dst, arrival + verdict.delay)
        if not verdict.drop:
            self.sim.schedule_call(expected - now, lambda: self._arrive(msg))
        if verdict.dup:
            dup_at = inj.defer(msg.src, msg.dst, expected + inj.dup_lag())
            self.sim.schedule_call(dup_at - now, lambda: self._arrive(msg))
        if self.plan.reliable:
            slack = self._rto_slack * (2.0 ** (attempt - 1))
            self.sim.schedule_call(
                (expected - now) + slack,
                lambda: self._check_ack(msg, attempt))

    def _arrive(self, msg: Message) -> None:
        """One copy reached ``msg.dst``'s interface."""
        if not self.plan.reliable:
            self._deliver(msg)
            return
        pair = (msg.src, msg.dst)
        pr = self._pair_recv[pair]
        if msg.seq < pr.expected or msg.seq in pr.buffer:
            # retransmission or injected duplicate of something already
            # seen; re-ack so the sender learns even if the first ack died
            self.stats.dup_suppressed += 1
        else:
            pr.buffer[msg.seq] = msg
            # release to the mailbox strictly in send order
            while pr.expected in pr.buffer:
                self._deliver(pr.buffer.pop(pr.expected))
                pr.expected += 1
        self._send_ack(pair, pr.expected)

    def _send_ack(self, pair: tuple[int, int], ackno: int) -> None:
        """Cumulative ack from ``pair[1]`` back to ``pair[0]`` — rides the
        same faulty wire, but as a control event without link occupancy."""
        verdict = self._injector.draw_ack()
        if verdict.drop:
            return
        now = self.sim.now
        at = self._injector.defer(pair[1], pair[0],
                                  now + self.model.latency + verdict.delay)
        self.sim.schedule_call(at - now, lambda: self._ack_arrive(pair, ackno))

    def _ack_arrive(self, pair: tuple[int, int], ackno: int) -> None:
        self.stats.acks += 1
        ps = self._pair_send[pair]
        for seq in [s for s in ps.unacked if s < ackno]:
            del ps.unacked[seq]

    def _check_ack(self, msg: Message, attempt: int) -> None:
        """Retransmit timer: still unacked when the timeout fires?"""
        ps = self._pair_send[(msg.src, msg.dst)]
        if msg.seq not in ps.unacked:
            return
        if attempt >= self.plan.max_attempts:
            raise SimError(
                f"reliable delivery gave up: {msg.category!r} message "
                f"{msg.src}->{msg.dst} seq={msg.seq} still unacked after "
                f"{attempt} transmissions")
        self.stats.retransmissions += 1
        arrival = self._reserve(msg.src, msg.dst, msg.nbytes)
        self._transmit(msg, arrival, attempt + 1)

    # ------------------------------------------------------------------ #

    def _deliver(self, msg: Message) -> None:
        msg.delivered_at = self.sim.now
        self._mailbox[msg.dst].append(msg)
        waiters = self._waiting[msg.dst]
        for i, (proc, src_f, tag_f) in enumerate(waiters):
            if self._match(msg, src_f, tag_f):
                del waiters[i]
                self.sim.unpark(proc)
                break

    @staticmethod
    def _match(msg: Message, src: int, tag: int) -> bool:
        return ((src == ANY_SOURCE or msg.src == src)
                and (tag == ANY_TAG or msg.tag == tag))

    def _take(self, dst: int, src: int, tag: int) -> Optional[Message]:
        box = self._mailbox[dst]
        for i, msg in enumerate(box):
            if self._match(msg, src, tag):
                del box[i]
                return msg
        return None

    def recv(self, proc: Process, dst: int, *, src: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Message:
        """Block until a message matching ``(src, tag)`` arrives at ``dst``."""
        msg = self._take(dst, src, tag)
        while msg is None:
            self._waiting[dst].append((proc, src, tag))
            proc.park(token=("recv", dst, src, tag))
            msg = self._take(dst, src, tag)
        proc.hold(self.model.recv_overhead)
        return msg

    def probe(self, dst: int, *, src: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message already in the mailbox?"""
        return any(self._match(m, src, tag) for m in self._mailbox[dst])

    def pending(self, dst: int) -> int:
        return len(self._mailbox[dst])

    # ------------------------------------------------------------------ #

    def _name(self, filt: int) -> str:
        return "ANY" if filt == -1 else str(filt)

    def _deadlock_report(self) -> str:
        """What every node's endpoint looks like when nothing can progress:
        undelivered mailbox contents vs. the ``(src, tag)`` filters blocked
        receivers are waiting on — usually enough to spot the tag mismatch."""
        lines = ["network state at deadlock:"]
        for node in range(self.nprocs):
            box = self._mailbox[node]
            waits = self._waiting[node]
            if not box and not waits:
                continue
            held = ", ".join(
                f"(src={m.src}, tag={m.tag}, category={m.category!r}, "
                f"nbytes={m.nbytes})" for m in box)
            lines.append(f"  node {node}: mailbox=[{held}]")
            for proc, src_f, tag_f in waits:
                lines.append(f"    {proc.name} waiting on recv(src="
                             f"{self._name(src_f)}, tag={self._name(tag_f)})")
        if self._injector is not None:
            unacked = self.in_flight()
            if unacked:
                lines.append(
                    f"  unacked reliable messages in flight: {unacked}")
        return "\n".join(lines)

"""JSON-lines wire protocol for the run service (stdio and TCP).

One message per line, each a JSON object with an ``"op"`` field.  The
request/result payloads are exactly the documents produced by
:meth:`repro.api.RunRequest.to_json` and
:meth:`repro.api.RunResult.to_json` — the wire format *is* the library
serialization (``repro-run/1``), not a third dialect.

Server -> client::

    {"op": "hello", "schema": "repro-serve/1", "workers": N}
    {"op": "result", "id": ..., "index": i, "result": <run doc>}   # streamed
    {"op": "batch-done", "id": ..., "batch": <batch doc>}
    {"op": "stats", "stats": {...}}
    {"op": "error", "message": "..."}
    {"op": "bye"}

Client -> server::

    {"op": "run", "id": ..., "request": <request doc>}
    {"op": "batch", "id": ..., "requests": [<request doc>, ...]}
    {"op": "stats"}
    {"op": "shutdown"}          # stop the whole service
    {"op": "bye"}               # close just this connection

``repro serve`` speaks this over stdio (``--stdio``) or a TCP socket
(``--port``); :class:`WireClient` is the in-library client the e2e tests
and ``repro bench --throughput`` can point at a remote service.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Iterable, Optional

from repro.api.types import BatchResult, RunResult

WIRE_SCHEMA = "repro-serve/1"

__all__ = ["WIRE_SCHEMA", "serve_stdio", "WireServer", "WireClient",
           "WireConnectionLost"]


class WireConnectionLost(ConnectionError):
    """The peer went away mid-conversation.

    Raised instead of a bare ``JSONDecodeError``/``IndexError`` when the
    socket returns EOF, a partial line, or a garbled line.  Structured so
    callers (the fleet tier above all) can act on it:

    * ``host``/``port`` — the endpoint that was lost;
    * ``in_flight`` — the id (or op) of the request awaiting a reply;
    * ``completed``/``pending`` — for a batch stream, which batch indexes
      had already produced results and which were still in flight when
      the connection died (``completed`` maps index -> RunResult).
    """

    def __init__(self, message: str, host: Optional[str] = None,
                 port: Optional[int] = None,
                 in_flight: Optional[object] = None,
                 completed: Optional[dict] = None,
                 pending: Optional[list] = None):
        super().__init__(message)
        self.host = host
        self.port = port
        self.in_flight = in_flight
        self.completed = dict(completed or {})
        self.pending = list(pending or [])


def _hello(service) -> dict:
    return {"op": "hello", "schema": WIRE_SCHEMA,
            "workers": service.workers}


def _handle(service, msg: dict, emit, lock: threading.Lock) -> str:
    """Dispatch one client message; returns "", "bye" or "shutdown".

    ``emit`` writes one message object back to this client; ``lock``
    serializes access to the (single-consumer) service queues so several
    TCP connections cannot interleave their streams.
    """
    op = msg.get("op")
    if op == "bye":
        emit({"op": "bye"})
        return "bye"
    if op == "shutdown":
        emit({"op": "bye"})
        return "shutdown"
    if op == "stats":
        with lock:
            emit({"op": "stats", "stats": service.stats()})
        return ""
    if op == "run":
        with lock:
            batch = service.run_batch([msg["request"]])
        emit({"op": "result", "id": msg.get("id"), "index": 0,
              "result": batch.results[0].to_json()})
        return ""
    if op == "batch":
        requests = msg.get("requests", [])
        results = [None] * len(requests)
        import time as _time
        t0 = _time.perf_counter()
        with lock:
            before = service.counters()
            for index, result in service.stream(requests):
                results[index] = result
                emit({"op": "result", "id": msg.get("id"), "index": index,
                      "result": result.to_json()})
            delta = {k: v - before[k]
                     for k, v in service.counters().items()}
            live = service.live_workers()
        batch = BatchResult(
            results=tuple(results),
            wall_s=round(_time.perf_counter() - t0, 6),
            workers=live,
            cache_hits=sum(1 for r in results if r and r.cache_hit),
            cache_misses=sum(1 for r in results
                             if r and r.cache_hit is False),
            crashes=delta["crashes"],
            affinity_hits=delta["affinity_hits"],
            steals=delta["steals"],
            rejected=delta["rejections"])
        emit({"op": "batch-done", "id": msg.get("id"),
              "batch": batch.to_json()})
        return ""
    emit({"op": "error", "message": f"unknown op {op!r}"})
    return ""


# ---------------------------------------------------------------------- #
# stdio transport

def serve_stdio(service, stdin, stdout) -> str:
    """Serve one client over text streams; returns why we stopped."""
    lock = threading.Lock()

    def emit(obj: dict) -> None:
        stdout.write(json.dumps(obj, sort_keys=True) + "\n")
        stdout.flush()

    emit(_hello(service))
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            msg = json.loads(line)
        except ValueError as exc:
            emit({"op": "error", "message": f"bad json: {exc}"})
            continue
        try:
            verdict = _handle(service, msg, emit, lock)
        except Exception as exc:  # noqa: BLE001 — keep the session alive
            emit({"op": "error", "message": str(exc)})
            continue
        if verdict:
            return verdict
    return "eof"


# ---------------------------------------------------------------------- #
# TCP transport

class WireServer:
    """Threaded TCP front-end over one shared :class:`RunService`.

    Connections are accepted concurrently but batches are serialized
    through the service lock (the pool is the unit of parallelism, not
    the connection count).  ``shutdown`` from any client stops the
    server.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._started = False
        self._closed = False
        outer = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                stdin = (line.decode("utf-8") for line in self.rfile)

                def emit(obj: dict) -> None:
                    data = json.dumps(obj, sort_keys=True) + "\n"
                    self.wfile.write(data.encode("utf-8"))
                    self.wfile.flush()

                emit(_hello(outer.service))
                for line in stdin:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        msg = json.loads(line)
                    except ValueError as exc:
                        emit({"op": "error", "message": f"bad json: {exc}"})
                        continue
                    try:
                        verdict = _handle(outer.service, msg, emit,
                                          outer._lock)
                    except Exception as exc:  # noqa: BLE001
                        emit({"op": "error", "message": str(exc)})
                        continue
                    if verdict == "bye":
                        return
                    if verdict == "shutdown":
                        outer._shutdown.set()
                        threading.Thread(target=outer._tcp.shutdown,
                                         daemon=True).start()
                        return

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = _Server((host, port), _Handler)
        self.host, self.port = self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._started = True
        self._tcp.serve_forever(poll_interval=0.1)

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve-tcp", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting and release the socket.  Idempotent: a second
        call (or a close after a client-driven ``shutdown``) is a no-op
        instead of raising on the dead listener."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            # shutdown() blocks on serve_forever's exit handshake; if the
            # accept loop never ran there is nothing to stop (and the
            # wait would never return)
            self._tcp.shutdown()
        try:
            self._tcp.server_close()
        except OSError:
            pass


class WireClient:
    """Minimal JSON-lines client for a :class:`WireServer`.

    Connection loss anywhere in a conversation raises the structured
    :class:`WireConnectionLost` (endpoint + in-flight request id), never
    a bare ``JSONDecodeError``/``IndexError`` from an empty or truncated
    read.  ``close()``/``__exit__`` are idempotent and safe after the
    server has already gone away.
    """

    def __init__(self, host: str, port: int, timeout: float = 300.0):
        self.host, self.port = host, int(port)
        self._closed = False
        self._in_flight: object = "hello"
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        self.hello = self._recv()
        if self.hello.get("schema") != WIRE_SCHEMA:
            raise RuntimeError(f"unexpected wire schema: {self.hello}")

    def _lost(self, why: str) -> WireConnectionLost:
        return WireConnectionLost(
            f"connection to {self.host}:{self.port} lost while "
            f"{self._in_flight!r} was in flight: {why}",
            host=self.host, port=self.port, in_flight=self._in_flight)

    def _send(self, obj: dict) -> None:
        if self._closed:
            raise self._lost("client already closed")
        self._in_flight = obj.get("id") or obj.get("op")
        try:
            self._wfile.write(json.dumps(obj, sort_keys=True) + "\n")
            self._wfile.flush()
        except (OSError, ValueError) as exc:
            raise self._lost(f"send failed: {exc}") from exc

    def _recv(self) -> dict:
        try:
            line = self._rfile.readline()
        except (OSError, ValueError) as exc:   # timeout included
            raise self._lost(f"read failed: {exc}") from exc
        if not line:
            raise self._lost("EOF (server closed the connection)")
        if not line.endswith("\n"):
            raise self._lost(f"partial line ({len(line)} byte(s) "
                             f"without a newline)")
        try:
            return json.loads(line)
        except ValueError as exc:
            raise self._lost(f"garbled line: {exc}") from exc

    def run(self, request, id: Optional[object] = None) -> RunResult:
        doc = request.to_json() if hasattr(request, "to_json") else request
        self._send({"op": "run", "id": id, "request": doc})
        msg = self._recv()
        if msg.get("op") == "error":
            raise RuntimeError(msg.get("message"))
        return RunResult.from_json(msg["result"])

    def stream_batch(self, requests: Iterable,
                     id: Optional[object] = None):
        """Send a batch; yield streamed messages, ending in batch-done.

        Yields ``("result", index, RunResult)`` per completion, then
        ``("batch", None, BatchResult)``.  If the connection drops
        mid-stream the raised :class:`WireConnectionLost` fails fast
        (EOF, not the read timeout) and marks the split: ``completed``
        maps the batch indexes that produced results to them, ``pending``
        lists the indexes that were still in flight — a retrying caller
        (the fleet tier) requeues exactly ``pending``, nothing twice.
        """
        docs = [r.to_json() if hasattr(r, "to_json") else r
                for r in requests]
        completed: dict = {}
        try:
            self._send({"op": "batch", "id": id, "requests": docs})
            while True:
                msg = self._recv()
                op = msg.get("op")
                if op == "result":
                    result = RunResult.from_json(msg["result"])
                    completed[msg["index"]] = result
                    yield ("result", msg["index"], result)
                elif op == "batch-done":
                    yield ("batch", None,
                           BatchResult.from_json(msg["batch"]))
                    return
                elif op == "error":
                    raise RuntimeError(msg.get("message"))
        except WireConnectionLost as exc:
            exc.completed = dict(completed)
            exc.pending = [i for i in range(len(docs))
                           if i not in completed]
            raise

    def run_batch(self, requests: Iterable) -> BatchResult:
        batch = None
        for kind, _index, payload in self.stream_batch(requests):
            if kind == "batch":
                batch = payload
        return batch

    def stats(self) -> dict:
        self._send({"op": "stats"})
        msg = self._recv()
        if msg.get("op") == "error":
            raise RuntimeError(msg.get("message"))
        return msg["stats"]

    def shutdown(self) -> None:
        try:
            self._send({"op": "shutdown"})
            self._recv()
        except (ConnectionError, ValueError, OSError):
            pass           # the point was to take the server down

    def close(self) -> None:
        """Idempotent; safe when the server is already gone."""
        if self._closed:
            return
        try:
            self._send({"op": "bye"})
        except (OSError, ValueError, WireConnectionLost):
            pass
        self._closed = True
        for stream in (self._rfile, self._wfile, self._sock):
            try:
                stream.close()
            except (OSError, ValueError):
                pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Structural traffic assertions per application (test-size runs).

These check the *mechanisms* behind the paper's Tables 2 and 3 — which
variant sends what kind of traffic — rather than absolute counts.
"""

import pytest

from repro.apps.common import get_app
from repro.eval.experiments import run_variant

N = 4

# The page-granularity effects of Tables 2/3 need arrays whose rows are at
# least page-sized (as the paper's are); the tiny "test" preset inverts
# them.  These mid-size presets keep rows page-scale while staying fast.
get_app("jacobi").presets.setdefault(
    "traffic", dict(n=1024, iters=3, warmup=1))
get_app("igrid").presets.setdefault(
    "traffic", dict(n=200, iters=3, warmup=1))
get_app("nbf").presets.setdefault(
    "traffic", dict(n=4096, iters=3, warmup=0, P=8, W=128))


def run(app, variant, preset="test", **kw):
    return run_variant(app, variant, nprocs=N, preset=preset, **kw)


def test_jacobi_pvme_exact_message_formula():
    """2 boundary lines per neighbour pair per timed iteration — the
    formula behind Table 2's PVMe count (1400 = 14 x 100)."""
    res = run("jacobi", "pvme")
    from repro.apps.jacobi import PRESETS
    iters = PRESETS["test"]["iters"]            # the measured window
    total_iters = iters + PRESETS["test"]["warmup"]
    assert res.messages == 2 * (N - 1) * iters
    assert res.total_messages == 2 * (N - 1) * total_iters


def test_jacobi_tmk_messages_are_faults_plus_barriers():
    """Every hand-Tmk Jacobi message is synchronization or fault traffic —
    there is no bulk-data category (the DSM has no send primitive)."""
    res = run("jacobi", "tmk")
    assert set(res.categories) <= {"sync", "diff_req", "diff_rep"}
    reqs = res.categories.get("diff_req", (0, 0))[0]
    reps = res.categories.get("diff_rep", (0, 0))[0]
    assert reqs == reps      # every fault is a request/reply pair


def test_jacobi_dsm_moves_less_data_than_mp():
    """Table 2's headline: only modified words travel as diffs, and
    Jacobi's interior stays zero until the boundary wave arrives."""
    tmk = run("jacobi", "tmk", preset="traffic")
    pvme = run("jacobi", "pvme", preset="traffic")
    assert tmk.kilobytes < pvme.kilobytes
    assert tmk.messages > pvme.messages      # ...but needs more messages


def test_igrid_xhpf_broadcasts_dwarf_dsm():
    """Table 3: XHPF ~1000x the data of hand-coded TreadMarks on IGrid."""
    tmk = run("igrid", "tmk", preset="traffic")
    xhpf = run("igrid", "xhpf", preset="traffic")
    # at paper size the ratio is ~1000x (see benchmarks); at this reduced
    # size partition-boundary diffs weigh more, but the gap stays wide
    assert xhpf.kilobytes > 5 * tmk.kilobytes
    assert xhpf.messages > tmk.messages


def test_igrid_spf_pays_for_shared_indirection_map():
    """SPF shares the map; the hand-coded program computes it locally."""
    spf = run("igrid", "spf")
    tmk = run("igrid", "tmk")
    assert spf.kilobytes > tmk.kilobytes


def test_nbf_xhpf_broadcasts_dwarf_dsm():
    tmk = run("nbf", "tmk", preset="traffic")
    xhpf = run("nbf", "xhpf", preset="traffic")
    assert xhpf.kilobytes > 10 * tmk.kilobytes


def test_nbf_dsm_fetches_on_demand():
    """TreadMarks NBF touches only partner-boundary pages."""
    tmk = run("nbf", "tmk")
    assert tmk.dsm.read_faults > 0
    # far fewer faults than molecules: on-demand, not broadcast
    from repro.apps.nbf import PRESETS
    assert tmk.dsm.read_faults < PRESETS["test"]["n"]


def test_mgs_pvme_broadcast_formula():
    """The owner broadcasts vector i each iteration: (n-1) x N messages."""
    res = run("mgs", "pvme")
    from repro.apps.mgs import PRESETS
    n = PRESETS["test"]["n"]
    assert res.messages == (N - 1) * n


def test_fft_transpose_dsm_pays_per_page():
    """The paper's '30x more messages' effect, in miniature."""
    tmk = run("fft3d", "tmk")
    pvme = run("fft3d", "pvme")
    assert tmk.messages > 3 * pvme.messages


def test_spf_vs_tmk_overhead_direction():
    """Compiler-generated shared memory never beats hand-coded on traffic."""
    for app in ("jacobi", "shallow", "igrid"):
        spf = run(app, "spf")
        tmk = run(app, "tmk")
        assert spf.messages >= tmk.messages, app


def test_window_traffic_excludes_warmup():
    res = run("jacobi", "tmk")
    assert res.messages < res.total_messages


def test_sync_and_data_categories_present_for_dsm():
    res = run("jacobi", "tmk")
    # a DSM run has synchronization, requests and replies
    assert res.dsm.barriers > 0
    assert res.dsm.twins_created > 0

"""Tests for the Section 8 future-work features implemented as extensions:
tree reductions, weighted-block load balancing, and halo pushing."""

import numpy as np
import pytest

from repro.apps.common import signatures_close
from repro.compiler.ir import (Access, ArrayDecl, Full, ParallelLoop,
                               Program, Reduction, Span, TimeLoop)
from repro.compiler.seq import run_sequential
from repro.compiler.spf import SpfOptions, compile_spf, run_spf
from repro.tmk.api import tmk_run
from repro.tmk.reduction import tmk_reduce
from tests.conftest import stencil_program


# ---------------------------------------------------------------------- #
# tmk_reduce primitive

def _setup(space):
    space.alloc("x", (4, 1024), np.float32)


def test_tmk_reduce_sum():
    def prog(tmk):
        return tmk_reduce(tmk.node, float(tmk.pid + 1))

    for n in (1, 2, 3, 5, 8):
        r = tmk_run(n, prog, _setup)
        assert r.results == [float(n * (n + 1) // 2)] * n, f"n={n}"


def test_tmk_reduce_max_min():
    def prog(tmk):
        hi = tmk_reduce(tmk.node, tmk.pid, op_name="max")
        lo = tmk_reduce(tmk.node, tmk.pid, op_name="min")
        return (hi, lo)

    r = tmk_run(5, prog, _setup)
    assert r.results == [(4, 0)] * 5


def test_tmk_reduce_message_count():
    """2(n-1) messages: up the combining tree and back down."""

    def prog(tmk):
        tmk_reduce(tmk.node, 1.0)

    for n in (2, 4, 8):
        r = tmk_run(n, prog, _setup)
        assert r.messages == 2 * (n - 1), f"n={n}"


def test_tmk_reduce_carries_consistency():
    """The reduction doubles as a synchronization: writes before it are
    visible after it, with no barrier anywhere."""

    def prog(tmk):
        x = tmk.array("x")
        x.write((slice(tmk.pid, tmk.pid + 1),), float(tmk.pid + 1))
        total = tmk_reduce(tmk.node, 0.0)
        row = (tmk.pid + 1) % tmk.nprocs
        return float(x.read((row, 0)))

    r = tmk_run(4, prog, _setup)
    assert r.results == [2.0, 3.0, 4.0, 1.0]


def test_tmk_reduce_cheaper_than_lock_chain():
    tree = run_spf(stencil_program(iters=5), nprocs=8,
                   options=SpfOptions(tree_reductions=True))
    lock = run_spf(stencil_program(iters=5), nprocs=8)
    assert tree.scalars["sum"] == pytest.approx(lock.scalars["sum"],
                                                rel=1e-6)
    assert tree.time < lock.time
    assert tree.dsm_stats.lock_acquires == 0
    assert tree.dsm_stats.tree_reductions > 0


# ---------------------------------------------------------------------- #
# weighted-block load balancing

def triangular_cost_program(n=64, iters=3):
    """A block-scheduled loop whose iteration i costs ~i units."""

    def kernel(views, lo, hi):
        views["a"][lo:hi] += 1.0
        return {"s": float(views["a"][lo:hi].sum(dtype=np.float64))}

    return Program(
        "triangle",
        arrays=[ArrayDecl("a", (n, 64), np.float64)],
        body=[TimeLoop("t", iters, [ParallelLoop(
            "tri", n, kernel,
            reads=[Access("a", (Span(), Full()))],
            writes=[Access("a", (Span(), Full()))],
            reductions=[Reduction("s")],
            cost_per_iter=lambda i: 1e-4 * (i + 1))])])


def test_balanced_chunks_cover_iteration_space():
    exe = compile_spf(triangular_cost_program(), nprocs=4,
                      options=SpfOptions(balance_loops=True))
    loop = next(iter(exe.program.parallel_loops()))
    chunks = [exe._block_chunk(loop, p, 4) for p in range(4)]
    assert chunks[0][0] == 0 and chunks[-1][1] == 64
    for (a, b), (c, d) in zip(chunks, chunks[1:]):
        assert b == c
    # triangular cost: the first chunk must be the largest
    sizes = [hi - lo for lo, hi in chunks]
    assert sizes[0] > sizes[-1]


def test_balancing_reduces_time_same_answer():
    base = run_spf(triangular_cost_program(), nprocs=4)
    bal = run_spf(triangular_cost_program(), nprocs=4,
                  options=SpfOptions(balance_loops=True))
    assert bal.scalars["s"] == pytest.approx(base.scalars["s"], rel=1e-9)
    assert bal.time < base.time


def test_balancing_ignores_constant_cost_loops():
    exe = compile_spf(stencil_program(), nprocs=4,
                      options=SpfOptions(balance_loops=True))
    loop = next(iter(exe.program.parallel_loops()))
    from repro.compiler.partition import block_range
    assert exe._block_chunk(loop, 1, 4) == block_range(32, 4, 1)


# ---------------------------------------------------------------------- #
# halo pushing

def test_push_halos_same_answer_fewer_faults():
    base = run_spf(stencil_program(iters=5), nprocs=4)
    push = run_spf(stencil_program(iters=5), nprocs=4,
                   options=SpfOptions(push_halos=True))
    assert push.scalars["sum"] == pytest.approx(base.scalars["sum"],
                                                rel=1e-6)
    assert push.dsm_stats.read_faults < base.dsm_stats.read_faults
    assert push.dsm_stats.pushes > 0


def test_push_plan_targets_halo_consumers():
    exe = compile_spf(stencil_program(), nprocs=4,
                      options=SpfOptions(push_halos=True))
    pushed_arrays = {entry[0] for entries in exe.push_plan.values()
                     for entry in entries}
    assert pushed_arrays == {"a"}     # only the halo-read array
    assert exe.expect_plan            # consumers registered


def test_push_plan_empty_without_halos():
    def kernel(views, lo, hi):
        views["a"][lo:hi] += 1

    prog = Program("p", arrays=[ArrayDecl("a", (16, 64))],
                   body=[TimeLoop("t", 2, [ParallelLoop(
                       "l", 16, kernel,
                       reads=[Access("a", (Span(), Full()))],
                       writes=[Access("a", (Span(), Full()))])])])
    exe = compile_spf(prog, nprocs=4, options=SpfOptions(push_halos=True))
    assert not exe.push_plan


@pytest.mark.parametrize("nprocs", [2, 3, 4, 7])
def test_all_extensions_combined_on_every_count(nprocs):
    _v, seq, _t = run_sequential(stencil_program())
    opts = SpfOptions(aggregate=True, fuse_loops=True, tree_reductions=True,
                      balance_loops=True, push_halos=True)
    r = run_spf(stencil_program(), nprocs=nprocs, options=opts)
    assert r.scalars["sum"] == pytest.approx(seq["sum"], rel=1e-6)

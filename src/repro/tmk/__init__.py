"""TreadMarks-style software distributed shared memory.

This package re-implements the DSM substrate of the paper (TreadMarks
0.10.1, Amza et al. [2]) over the simulated cluster:

* lazy invalidate release consistency with vector timestamps, intervals and
  write notices (:mod:`repro.tmk.intervals`, :mod:`repro.tmk.protocol`),
* the multiple-writer protocol with twins and run-length-encoded diffs
  computed from real page contents (:mod:`repro.tmk.diffs`),
* page-granularity access detection (:mod:`repro.tmk.pagespace`,
  :mod:`repro.tmk.shared`) — explicit region hooks stand in for
  mprotect/SIGSEGV, at identical page granularity,
* centralized-manager barriers and statically-managed locks
  (:mod:`repro.tmk.sync`),
* the fork-join compiler interface of Section 2.3, in both the original
  (8(n-1) messages per parallel loop) and improved (2(n-1)) forms
  (:mod:`repro.tmk.forkjoin`),
* the enhanced interface of Dwarkadas et al. [7] — aggregated validate,
  push, and broadcast — used by the hand-optimization experiments
  (:mod:`repro.tmk.enhanced`).

Entry point: :class:`repro.tmk.api.Tmk` (one per simulated processor) and
:func:`repro.tmk.api.tmk_run`.
"""

from repro.tmk.pagespace import SharedSpace, ArrayHandle
from repro.tmk.diffs import make_diff, apply_diff, diff_nbytes
from repro.tmk.api import Tmk, TmkWorld, tmk_run
from repro.tmk.stats import DsmStats
from repro.tmk.reduction import tmk_reduce

__all__ = [
    "SharedSpace",
    "ArrayHandle",
    "make_diff",
    "apply_diff",
    "diff_nbytes",
    "Tmk",
    "TmkWorld",
    "tmk_run",
    "DsmStats",
    "tmk_reduce",
]

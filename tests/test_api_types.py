"""The `repro.api` value types: serialization, identity, the legacy shim.

Pins the ``repro-run/1`` contract that the CLI, the sweep/chaos
harnesses and the serve wire protocol all share:

* ``RunRequest``/``RunResult``/``BatchResult`` round-trip through
  ``to_json()``/``from_json()`` under their schema tags;
* ``RunResult.fingerprint()`` is the bit-identity currency — equal
  fingerprints iff the runs are equivalent, volatile fields excluded;
* the machine/fault-plan doc serializers invert each other;
* the registry is the single source of app/variant truth;
* ``run_variant`` is a deprecation shim over the same execution path.
"""

import dataclasses

import pytest

from repro.api import (DSM_VARIANTS, PRESETS, RACECHECK_VARIANTS, VARIANTS,
                       BatchResult, ProgramCache, RunRequest, RunResult,
                       execute, registry)
from repro.api.types import (RUN_SCHEMA, VOLATILE_RESULT_FIELDS,
                             fault_plan_from_doc, fault_plan_to_doc,
                             machine_from_doc, machine_to_doc)
from repro.eval.experiments import request_from_legacy, run_variant
from repro.sim.faults import FaultPlan
from repro.sim.machine import SP2_MODEL


def test_run_request_round_trips_with_schema_tag():
    req = RunRequest("jacobi", "spf", nprocs=4, preset="test",
                     gc_epochs=4, schedule_seed=7, racecheck=True,
                     options={"improved_interface": False}, tag="t-1")
    doc = req.to_json()
    assert doc["schema"] == RUN_SCHEMA
    assert RunRequest.from_json(doc) == req
    # docs are plain JSON: a dict round-trip must also work
    assert RunRequest.from_json(dict(doc)) == req


def test_run_request_rejects_wrong_schema():
    doc = RunRequest("jacobi", "spf").to_json()
    doc["schema"] = "repro-run/999"
    with pytest.raises(ValueError):
        RunRequest.from_json(doc)


def test_cache_key_tracks_compile_coordinates_only():
    base = RunRequest("jacobi", "spf", nprocs=4, preset="test")
    assert base.cache_key() == RunRequest(
        "jacobi", "spf", nprocs=4, preset="test",
        schedule_seed=3, tag="x").cache_key()
    assert base.cache_key() != dataclasses.replace(
        base, nprocs=8).cache_key()


def test_run_result_round_trips_and_fingerprint_drops_volatiles():
    res = execute(RunRequest("jacobi", "spf", nprocs=2, preset="test",
                             seq_time=1.0))
    doc = res.to_json()
    assert doc["schema"] == RUN_SCHEMA
    assert RunResult.from_json(doc).fingerprint() == res.fingerprint()
    fp = res.fingerprint()
    for field in VOLATILE_RESULT_FIELDS:
        assert field not in fp
    # the volatile fields are exactly what may differ between a direct
    # run and a service run of the same request
    again = dataclasses.replace(res, wall_s=1e9, worker=42,
                                cache_hit=True)
    assert again.fingerprint() == fp


def test_batch_result_round_trips_with_counters():
    results = tuple(execute(RunRequest("jacobi", v, nprocs=2,
                                       preset="test", seq_time=1.0))
                    for v in ("spf", "tmk"))
    batch = BatchResult(results=results, wall_s=1.5, workers=2,
                        cache_hits=1, cache_misses=1, crashes=0)
    doc = batch.to_json()
    back = BatchResult.from_json(doc)
    assert back.ok and back.runs == 2
    assert (back.cache_hits, back.cache_misses) == (1, 1)
    assert [r.fingerprint() for r in back.results] \
        == [r.fingerprint() for r in results]


def test_machine_and_fault_plan_docs_invert():
    assert machine_to_doc(None) is None
    assert machine_from_doc(None) is None
    mach = SP2_MODEL.with_(latency=2e-4)
    assert machine_from_doc(machine_to_doc(mach)) == mach
    assert fault_plan_to_doc(None) is None
    plan = FaultPlan.default(seed=3)
    back = fault_plan_from_doc(fault_plan_to_doc(plan))
    assert back.seed == 3
    assert back.rates == plan.rates
    assert back.stalls == plan.stalls


def test_registry_is_consistent():
    assert set(DSM_VARIANTS) <= set(VARIANTS)
    assert set(RACECHECK_VARIANTS) <= set(DSM_VARIANTS)
    assert set(PRESETS) == {"paper", "bench", "test"}
    listed = {info.name for info in registry.apps()}
    assert listed == set(registry.APPS)
    for info in registry.apps():
        # every app serves at least the canonical presets (extras allowed:
        # other test modules register app-specific ones, e.g. "traffic")
        assert set(PRESETS) <= set(info.presets)
        assert registry.supports(info.name, "spf") is None
        # spf_opt exists only where the paper hand-optimized the app
        reason = registry.supports(info.name, "spf_opt")
        assert (reason is None) == info.has_spf_opt, info.name
    with pytest.raises(ValueError, match="warp"):
        registry.supports("jacobi", "warp")


def test_run_variant_shim_warns_and_matches_unified_path():
    with pytest.warns(DeprecationWarning, match="RunRequest"):
        legacy = run_variant("jacobi", "spf", nprocs=2, preset="test",
                             seq_time=1.0)
    unified = execute(request_from_legacy("jacobi", "spf", nprocs=2,
                                          preset="test", seq_time=1.0))
    assert legacy.fingerprint() == unified.fingerprint()


def test_run_variant_shim_forwards_every_legacy_kwarg():
    req = request_from_legacy(
        "jacobi", "spf", nprocs=4, preset="test",
        model=SP2_MODEL.with_(latency=2e-4), seq_time=2.0,
        gc_epochs=4, schedule_seed=9, racecheck=True,
        faults=FaultPlan.default(seed=1))
    assert (req.nprocs, req.preset, req.seq_time) == (4, "test", 2.0)
    assert (req.gc_epochs, req.schedule_seed, req.racecheck) == (4, 9, True)
    assert req.machine["latency"] == 2e-4
    assert req.fault_plan["seed"] == 1
    # and the request is wire-clean: it survives its own serializer
    assert RunRequest.from_json(req.to_json()) == req


def test_program_cache_counts_hits_and_evicts_lru():
    cache = ProgramCache(max_entries=2)
    builds = []

    def make(key):
        return lambda: builds.append(key) or key

    assert cache.get("a", make("a")) == ("a", False)
    assert cache.get("a", make("a")) == ("a", True)
    cache.get("b", make("b"))
    cache.get("c", make("c"))        # evicts "a" (LRU)
    assert cache.get("a", make("a")) == ("a", False)
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 4

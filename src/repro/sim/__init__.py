"""Deterministic discrete-event simulation substrate.

This package stands in for the paper's physical 8-node IBM SP/2.  It provides

* :mod:`repro.sim.engine` -- a virtual-time event scheduler whose simulated
  "processes" are cooperatively scheduled OS threads (exactly one runs at a
  time, so execution is deterministic and reproducible),
* :mod:`repro.sim.machine` -- the cost model (message latency/bandwidth,
  page-fault handling, twin/diff costs, per-FLOP compute cost) calibrated to
  published SP/2 figures,
* :mod:`repro.sim.network` -- a switched interconnect with mailbox delivery,
  tag matching, and full message/byte accounting (for Tables 2 and 3),
* :mod:`repro.sim.cluster` -- the top-level runner that spawns ``n``
  simulated processors, runs a program on each, and reports virtual times.
"""

from repro.sim.engine import Simulator, Process, SimError, Deadlock
from repro.sim.faults import (FaultInjector, FaultPlan, FaultRates,
                              FaultStats, NodeStall)
from repro.sim.machine import MachineModel, SP2_MODEL
from repro.sim.network import Network, Message, NetworkStats, ANY_SOURCE, ANY_TAG
from repro.sim.cluster import Cluster, ProcEnv, RunResult

__all__ = [
    "Simulator",
    "Process",
    "SimError",
    "Deadlock",
    "FaultInjector",
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "NodeStall",
    "MachineModel",
    "SP2_MODEL",
    "Network",
    "Message",
    "NetworkStats",
    "ANY_SOURCE",
    "ANY_TAG",
    "Cluster",
    "ProcEnv",
    "RunResult",
]

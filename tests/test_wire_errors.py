"""Wire-layer failure semantics (the PR's bugfix sweep).

The contract under test (see docs/API.md):

* a dead/garbled/truncated peer raises the structured
  :class:`~repro.serve.WireConnectionLost` — carrying the endpoint and
  the in-flight request id — never a bare ``JSONDecodeError`` or
  ``IndexError`` out of an empty read;
* a mid-stream connection drop during :meth:`WireClient.stream_batch`
  fails fast and marks the split: ``completed`` maps the indexes that
  already produced results to them, ``pending`` lists the ones still in
  flight (the fleet tier requeues exactly ``pending``);
* ``WireClient.close()``/``__exit__`` are idempotent and safe after the
  server has died, in either order; ``WireServer.close()`` is idempotent
  and safe even when ``serve_forever`` never ran.
"""

import json
import socket
import threading

import pytest

from repro.api import RunRequest, RunResult
from repro.serve import (RunService, WireClient, WireConnectionLost,
                         WireServer)

ECHO = "tests.serve_helpers:echo_runner"

HELLO = json.dumps({"op": "hello", "schema": "repro-serve/1",
                    "workers": 2}) + "\n"

REQ = RunRequest("jacobi", "spf", nprocs=2, preset="test", seq_time=1.0)

RESULT_DOC = RunResult(app="jacobi", variant="spf", nprocs=2,
                       preset="test", time=1.0, seq_time=1.0).to_json()


def scripted_server(handler):
    """One-connection raw TCP peer running ``handler(conn)`` then dying."""
    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    host, port = srv.getsockname()

    def run():
        conn, _ = srv.accept()
        try:
            handler(conn)
        finally:
            try:
                conn.close()
            finally:
                srv.close()

    threading.Thread(target=run, daemon=True).start()
    return host, port


# ---------------------------------------------------------------------- #
# structured connection-lost errors out of _recv

def test_eof_mid_request_is_structured_not_json_error():
    def handler(conn):
        conn.sendall(HELLO.encode())
        conn.makefile("r").readline()          # swallow the run op

    host, port = scripted_server(handler)
    client = WireClient(host, port, timeout=10.0)
    with pytest.raises(WireConnectionLost) as info:
        client.run(REQ, id="req-7")
    exc = info.value
    assert (exc.host, exc.port) == (host, port)
    assert exc.in_flight == "req-7"
    assert "EOF" in str(exc)
    client.close()


def test_partial_line_is_structured():
    def handler(conn):
        conn.sendall(HELLO.encode())
        conn.makefile("r").readline()
        conn.sendall(b'{"op": "result"')       # truncated, no newline

    host, port = scripted_server(handler)
    client = WireClient(host, port, timeout=10.0)
    with pytest.raises(WireConnectionLost, match="partial line"):
        client.run(REQ, id="req-8")
    client.close()


def test_garbled_line_is_structured():
    def handler(conn):
        conn.sendall(HELLO.encode())
        conn.makefile("r").readline()
        conn.sendall(b"!!not json!!\n")

    host, port = scripted_server(handler)
    client = WireClient(host, port, timeout=10.0)
    with pytest.raises(WireConnectionLost, match="garbled"):
        client.run(REQ, id="req-9")
    client.close()


# ---------------------------------------------------------------------- #
# stream_batch fail-fast with the completed/pending split

def test_stream_batch_drop_marks_completed_and_pending():
    def handler(conn):
        conn.sendall(HELLO.encode())
        conn.makefile("r").readline()          # the batch op
        msg = {"op": "result", "id": "b1", "index": 0,
               "result": RESULT_DOC}
        conn.sendall((json.dumps(msg) + "\n").encode())
        # die with indexes 1 and 2 still in flight

    host, port = scripted_server(handler)
    client = WireClient(host, port, timeout=10.0)
    events = []
    with pytest.raises(WireConnectionLost) as info:
        for event in client.stream_batch([REQ, REQ, REQ], id="b1"):
            events.append(event)
    exc = info.value
    assert [e[:2] for e in events] == [("result", 0)]
    assert sorted(exc.completed) == [0]
    assert exc.completed[0].fingerprint() == events[0][2].fingerprint()
    assert exc.pending == [1, 2]
    assert exc.in_flight == "b1"
    client.close()


# ---------------------------------------------------------------------- #
# idempotent close, both orderings

@pytest.fixture(scope="module")
def service():
    with RunService(workers=1, runner=ECHO) as svc:
        yield svc


def test_client_close_after_server_death(service):
    server = WireServer(service)
    server.serve_in_thread()
    client = WireClient(server.host, server.port)
    assert client.run(REQ, id="ok").ok
    client.shutdown()          # takes the server down
    client.close()             # server is gone: must not raise
    client.close()             # and stays a no-op
    server.close()             # after a client-driven shutdown: no-op
    server.close()


def test_client_exit_after_server_death(service):
    server = WireServer(service)
    server.serve_in_thread()
    with WireClient(server.host, server.port) as client:
        assert client.run(REQ, id="ok").ok
        server.close()         # server dies inside the with-block
    server.close()             # double close is a no-op


def test_server_double_close_without_serving(service):
    # close() before serve_forever ever ran must not block on the
    # BaseServer shutdown handshake (there is no accept loop to stop)
    server = WireServer(service)
    server.close()
    server.close()


def test_send_after_close_is_structured(service):
    server = WireServer(service)
    server.serve_in_thread()
    client = WireClient(server.host, server.port)
    client.close()
    with pytest.raises(WireConnectionLost, match="already closed"):
        client.run(REQ)
    server.close()

"""Run any application in any of the paper's variants and collect metrics.

Variants
--------
``seq``      sequential oracle (Table 1 baseline; defines speedup = 1)
``spf``      compiler-generated shared memory (SPF -> TreadMarks)
``tmk``      hand-coded TreadMarks shared memory
``xhpf``     compiler-generated message passing (XHPF)
``pvme``     hand-coded message passing (PVMe)
``spf_opt``  SPF plus the paper's hand optimizations for that application
``spf_old``  SPF over the *original* (8(n-1)-message) fork-join interface
``xhpf_ie``  XHPF with CHAOS-style inspector-executor schedules (extension)

Every run reports the measured-window elapsed virtual time (the paper times
only part of each run), whole-run message/kilobyte totals (what Tables 2
and 3 count), the speedup against the sequential oracle, and the numeric
signature used by the test suite to prove all variants compute the same
answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.common import AppSpec, combine_signatures, get_app
from repro.compiler.seq import run_sequential
from repro.compiler.spf import SpfOptions, run_spf
from repro.compiler.xhpf import run_xhpf
from repro.msg.pvme import Pvme
from repro.sim.cluster import Cluster
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel
from repro.tmk.api import tmk_run

__all__ = ["VariantResult", "run_variant", "run_all_variants", "VARIANTS"]

VARIANTS = ["seq", "spf", "tmk", "xhpf", "pvme", "spf_opt", "spf_old",
            "xhpf_ie"]


@dataclass
class VariantResult:
    app: str
    variant: str
    nprocs: int
    preset: str
    time: float                  # measured-window elapsed virtual seconds
    seq_time: float              # sequential oracle's window time
    messages: int                # measured-window totals (the paper's
    kilobytes: float             # tables cover the timed region: Jacobi
                                 # PVMe's 1400 = 14 x 100 timed iterations)
    signature: dict = field(default_factory=dict)
    dsm: Optional[object] = None
    total_messages: int = 0      # whole run, startup included
    total_kilobytes: float = 0.0
    categories: dict = field(default_factory=dict)   # window, per category
    races: Optional[object] = None   # RaceCheckResult when racecheck=True
    events: int = 0              # simulator events processed (whole run) —
                                 # wall-clock throughput denominator for
                                 # ``python -m repro bench``
    retransmissions: int = 0     # reliable-delivery re-sends (fault runs)
    fault_stats: Optional[object] = None   # FaultStats when faults attached
    mode: str = "sim"            # "sim" (event simulation) or "model"
                                 # (analytic prediction, repro.compiler.model)

    @property
    def speedup(self) -> float:
        return self.seq_time / self.time if self.time > 0 else float("inf")

    def row(self) -> str:
        badge = " [model]" if self.mode == "model" else ""
        return (f"{self.app:8s} {self.variant:8s} n={self.nprocs} "
                f"time={self.time:10.4f}s speedup={self.speedup:5.2f} "
                f"msgs={self.messages:8d} data={self.kilobytes:10.1f}KB"
                f"{badge}")


def _seq_result(spec: AppSpec, params: dict, preset: str) -> VariantResult:
    program = spec.build_program(params)
    _views, scalars, time = run_sequential(program)
    return VariantResult(app=spec.name, variant="seq", nprocs=1,
                         preset=preset, time=time, seq_time=time,
                         messages=0, kilobytes=0.0, signature=dict(scalars))


DSM_VARIANTS = ("spf", "spf_opt", "spf_old", "tmk")


def run_variant(app: str, variant: str, nprocs: int = 8,
                preset: str = "bench",
                model: Optional[MachineModel] = None,
                seq_time: Optional[float] = None,
                spf_options: Optional[SpfOptions] = None,
                gc_epochs: Optional[int] = 8,
                schedule_seed: Optional[int] = None,
                racecheck: bool = False,
                faults: Optional[FaultPlan] = None) -> VariantResult:
    """Run one (application, variant) pair and collect its metrics.

    ``schedule_seed`` perturbs same-timestamp event ordering in the
    simulator (any variant).  ``racecheck=True`` attaches the
    happens-before :class:`~repro.tmk.racecheck.RaceMonitor` and stores
    its verdict in ``.races`` — only meaningful for the DSM variants
    (``spf``/``spf_opt``/``spf_old``/``tmk``); message-passing variants
    share nothing, so asking for it there is an error.  ``faults``
    attaches a seeded :class:`~repro.sim.faults.FaultPlan` to the
    interconnect (any variant); the reliable-delivery sublayer recovers
    transparently and ``.retransmissions``/``.fault_stats`` report what
    it took.
    """
    spec = get_app(app)
    params = spec.params(preset)
    if racecheck and variant not in DSM_VARIANTS:
        raise ValueError(
            f"racecheck applies to the DSM variants {DSM_VARIANTS}, not "
            f"{variant!r} (message-passing variants have no shared memory)")
    if variant == "seq":
        return _seq_result(spec, params, preset)
    if seq_time is None:
        from repro.compiler.seq import sequential_time
        seq_time = sequential_time(spec.build_program(params))

    if variant in ("spf", "spf_opt", "spf_old"):
        if variant == "spf_opt":
            if spec.spf_opt_options is None:
                raise ValueError(f"{app} has no hand-optimized variant in "
                                 f"the paper")
            options = spec.spf_opt_options()
        elif variant == "spf_old":
            options = SpfOptions(improved_interface=False)
        else:
            options = spf_options or SpfOptions()
        program = spec.build_program(params)
        result = run_spf(program, nprocs=nprocs, options=options,
                         model=model, gc_epochs=gc_epochs,
                         schedule_seed=schedule_seed, racecheck=racecheck,
                         faults=faults)
        signature = dict(result.scalars)
        dsm = result.dsm_stats
    elif variant in ("xhpf", "xhpf_ie"):
        from repro.compiler.xhpf import XhpfOptions
        program = spec.build_program(params)
        options = XhpfOptions(inspector_executor=(variant == "xhpf_ie"))
        result = run_xhpf(program, nprocs=nprocs, model=model,
                          options=options, schedule_seed=schedule_seed,
                          faults=faults)
        signature = dict(result.scalars)
        dsm = None
    elif variant == "tmk":
        def setup(space):
            spec.hand_tmk_setup(space, params)

        def main(tmk):
            return spec.hand_tmk(tmk, params)

        result = tmk_run(nprocs, main, setup, model=model,
                         gc_epochs=gc_epochs,
                         schedule_seed=schedule_seed, racecheck=racecheck,
                         faults=faults)
        signature = combine_signatures(result.results)
        dsm = result.dsm_stats
    elif variant == "pvme":
        cluster = Cluster(nprocs=nprocs, model=model,
                          schedule_seed=schedule_seed, faults=faults)

        def pvme_main(env):
            return spec.hand_pvme(Pvme(env), params)

        result = cluster.run(pvme_main)
        result.fault_stats = cluster.net.fault_stats
        signature = combine_signatures(result.results)
        dsm = None
    else:
        raise ValueError(f"unknown variant {variant!r}")

    elapsed, wtraffic = result.window()
    return VariantResult(
        app=app, variant=variant, nprocs=nprocs, preset=preset,
        time=elapsed, seq_time=seq_time,
        messages=wtraffic.messages, kilobytes=wtraffic.kilobytes,
        signature=signature, dsm=dsm,
        total_messages=result.messages,
        total_kilobytes=result.kilobytes,
        categories={k: (v[0], v[1])
                    for k, v in wtraffic.by_category.items()},
        races=getattr(result, "racecheck", None),
        events=getattr(result, "events", 0),
        retransmissions=result.stats.retransmissions,
        fault_stats=getattr(result, "fault_stats", None),
    )


def run_all_variants(app: str, nprocs: int = 8, preset: str = "bench",
                     variants: Optional[list] = None,
                     model: Optional[MachineModel] = None) -> dict:
    """Run ``variants`` (default: the four of Figures 1/2 plus seq)."""
    if variants is None:
        variants = ["seq", "spf", "tmk", "xhpf", "pvme"]
    out: dict = {}
    seq_time = None
    for variant in variants:
        res = run_variant(app, variant, nprocs=nprocs, preset=preset,
                          model=model, seq_time=seq_time)
        out[variant] = res
        if variant == "seq":
            seq_time = res.time
    return out

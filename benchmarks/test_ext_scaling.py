"""E12 (extension) — processor scaling.

Section 8: "we ... expect more gains in performance when scaling to a
large number of processors."  This extension sweeps processor counts for
one regular and one irregular application and records how the variants'
gap evolves: the DSM's irregular-code advantage over XHPF *grows* with
processor count (broadcast volume scales with n, on-demand traffic with
the boundary).
"""

from repro.eval.experiments import run_variant

from conftest import PRESET, archive, runner  # noqa: F401

COUNTS = [2, 4, 8, 16]


def sweep(app, variant, seq_time):
    return {n: run_variant(app, variant, nprocs=n, preset=PRESET,
                           seq_time=seq_time)
            for n in COUNTS}


def test_scaling(runner):
    def experiment():
        out = {}
        for app in ("jacobi", "igrid"):
            seq = run_variant(app, "seq", preset=PRESET)
            out[app] = {v: sweep(app, v, seq.time)
                        for v in ("spf", "xhpf")}
        return out

    res = runner(experiment)
    lines = ["Extension — speedup vs processor count (bench preset)"]
    for app, by_variant in res.items():
        for variant, by_n in by_variant.items():
            row = f"{app:8s} {variant:5s}: " + "  ".join(
                f"n={n}:{by_n[n].speedup:5.2f}" for n in COUNTS)
            lines.append(row)
    archive("ext_scaling", "\n".join(lines))

    for app, by_variant in res.items():
        for variant, by_n in by_variant.items():
            # more processors must not reduce speedup at these sizes
            assert by_n[8].speedup > by_n[2].speedup, (app, variant)

    # the irregular DSM advantage grows with processor count
    gap = {n: res["igrid"]["spf"][n].speedup
           / res["igrid"]["xhpf"][n].speedup for n in COUNTS}
    assert gap[8] > gap[2], f"DSM/XHPF gap should grow: {gap}"

"""The TreadMarks application programming interface.

Mirrors the real library's surface: ``Tmk_startup`` (implicit),
``Tmk_proc_id`` / ``Tmk_nprocs`` (:attr:`Tmk.pid` / :attr:`Tmk.nprocs`),
``Tmk_malloc`` (static allocation through :class:`~repro.tmk.pagespace.
SharedSpace` plus per-node :meth:`Tmk.array` binding), ``Tmk_barrier`` and
``Tmk_lock_acquire`` / ``Tmk_lock_release``.

Run a shared-memory program with :func:`tmk_run`::

    def setup(space):
        space.alloc("grid", (1024, 1024), np.float32)

    def program(tmk):
        grid = tmk.array("grid")
        ...
        tmk.barrier()

    result = tmk_run(nprocs=8, program=program, setup=setup)
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.sim.cluster import Cluster, ProcEnv, RunResult
from repro.sim.faults import FaultPlan
from repro.sim.machine import MachineModel
from repro.tmk.faststate import fastpath_enabled_from_env
from repro.tmk.pagespace import SharedSpace
from repro.tmk.protocol import TmkNode
from repro.tmk.server import start_server
from repro.tmk.shared import SharedArray
from repro.tmk.stats import DsmStats
from repro.tmk import sync as _sync

__all__ = ["TmkWorld", "Tmk", "tmk_run"]


class TmkWorld:
    """Cluster-wide DSM context: address-space layout and manager state.

    ``gc_epochs`` bounds the diff cache: diffs older than that many barriers
    are collected and later requests fall back to whole-page transfers
    (``None`` disables GC — fine for tests and short runs).
    """

    def __init__(self, nprocs: int, space: SharedSpace,
                 gc_epochs: Optional[int] = 8):
        self.nprocs = nprocs
        self.space = space
        self.gc_epochs = gc_epochs
        # coherence fast path (TMK_FASTPATH=0 disables; see tmk.faststate)
        self.fastpath = fastpath_enabled_from_env()
        self.nodes: dict[int, TmkNode] = {}
        self.barrier_mgr = _sync.BarrierManager(nprocs)
        self.lock_table = _sync.LockTable(nprocs)
        self.dsm_stats = DsmStats()
        self.race_monitor = None   # set by racecheck.attach_race_monitor


class Tmk:
    """Per-processor handle to the DSM (what a program receives)."""

    def __init__(self, env: ProcEnv, world: TmkWorld):
        self.env = env
        self.world = world
        self.pid = env.pid
        self.nprocs = env.nprocs
        node_cls = getattr(world, "_node_class", TmkNode)
        self.node = node_cls(world, env)
        start_server(self.node)
        self._arrays: dict[str, SharedArray] = {}

    # ------------------------------------------------------------------ #

    def array(self, name: str) -> SharedArray:
        """Bind (and cache) the local view of a statically allocated array."""
        arr = self._arrays.get(name)
        if arr is None:
            arr = SharedArray(self.node, self.world.space[name])
            self._arrays[name] = arr
        return arr

    def barrier(self) -> None:
        getattr(self.world, "_traced_barrier", _sync.barrier)(self.node)

    def lock_acquire(self, lock: int) -> None:
        _sync.lock_acquire(self.node, lock)

    def lock_release(self, lock: int) -> None:
        _sync.lock_release(self.node, lock)

    def compute(self, seconds: float) -> None:
        """Charge application computation time."""
        self.env.compute(seconds)

    @property
    def now(self) -> float:
        return self.env.now

    # convenience for block distribution (the library offered helpers too)
    def block_range(self, extent: int) -> tuple:
        """This processor's [lo, hi) slice of a block-distributed extent."""
        base, rem = divmod(extent, self.nprocs)
        lo = self.pid * base + min(self.pid, rem)
        hi = lo + base + (1 if self.pid < rem else 0)
        return lo, hi


def tmk_run(nprocs: int,
            program: Callable,
            setup: Callable[[SharedSpace], None],
            args: Sequence = (),
            model: Optional[MachineModel] = None,
            gc_epochs: Optional[int] = 8,
            trace: bool = False,
            schedule_seed: Optional[int] = None,
            racecheck: bool = False,
            faults: Optional[FaultPlan] = None) -> RunResult:
    """Run ``program(tmk, *args)`` on ``nprocs`` simulated processors.

    ``setup(space)`` performs the static shared allocation (every node sees
    the same layout).  The returned :class:`RunResult` additionally carries
    the run's :class:`DsmStats` as ``result.dsm_stats``; with
    ``trace=True`` it also carries a :class:`~repro.tmk.trace.
    ProtocolTrace` as ``result.trace``.

    ``schedule_seed`` perturbs same-timestamp event ordering in the engine
    (each seed is a distinct legal interleaving; ``None`` keeps the
    historical order).  ``racecheck=True`` attaches a
    :class:`~repro.tmk.racecheck.RaceMonitor` and stores its verdict as
    ``result.racecheck`` (a :class:`~repro.tmk.racecheck.RaceCheckResult`).

    ``faults`` attaches a seeded :class:`~repro.sim.faults.FaultPlan` to
    the interconnect (drop/dup/reorder/delay plus node stalls) with the
    reliable-delivery sublayer recovering transparently; retransmission
    counts surface as ``result.dsm_stats.retransmissions`` and the
    injector's tally as ``result.fault_stats``.
    """
    space = SharedSpace()
    setup(space)
    world = TmkWorld(nprocs, space, gc_epochs=gc_epochs)
    if trace:
        from repro.tmk.trace import attach_tracer
        attach_tracer(world)
    if racecheck:
        from repro.tmk.racecheck import attach_race_monitor
        attach_race_monitor(world)
    cluster = Cluster(nprocs=nprocs, model=model, schedule_seed=schedule_seed,
                      faults=faults)

    def wrapper(env: ProcEnv, *rest):
        tmk = Tmk(env, world)
        return program(tmk, *rest)

    result = cluster.run(wrapper, args=args)
    world.dsm_stats.retransmissions = cluster.net.stats.retransmissions
    result.dsm_stats = world.dsm_stats.snapshot()
    result.fault_stats = cluster.net.fault_stats
    if trace:
        result.trace = world.trace
    if racecheck:
        result.race_monitor = world.race_monitor
        result.racecheck = world.race_monitor.finish()
    return result

"""Per-node lazy-invalidate release-consistency protocol engine.

One :class:`TmkNode` lives on each simulated processor.  It owns

* the node's private copy of the whole shared address space (a numpy byte
  buffer; applications compute through views of it),
* per-page coherence metadata (validity, twin, pending write notices,
  per-writer applied watermarks),
* the interval/vector-time machinery of lazy release consistency,
* the request-serving side (diff and page requests arrive at the node's
  server process and are answered out of this state).

Faulting discipline (stands in for mprotect/SIGSEGV at identical points):

* reading an *invalid* page triggers a read fault: diffs are requested from
  every writer with pending notices, applied in interval order, and the page
  becomes valid;
* writing a *clean* page triggers a write trap: a twin (copy) is made and
  the page is marked dirty;
* writing an *invalid* page does both, fetch first.

Diffs are created lazily — only when another node requests them, or when a
write notice arrives for a locally dirty page (the modifications must be
preserved before invalidation).  After a diff is created the twin is
discarded and the page write-protected again (next write re-twins), exactly
as TreadMarks re-protects after diffing.

A bounded diff cache with epoch-based garbage collection keeps memory finite
on long runs; a fetch that needs a collected diff falls back to a full-page
transfer (TreadMarks behaves the same way after its GC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.machine import MachineModel
from repro.tmk.diffs import apply_diff, apply_diffs, diff_nbytes, make_diff
from repro.tmk.faststate import FastState, fastpath_enabled_from_env
from repro.tmk.intervals import IntervalRecord, SeenVector
from repro.tmk.pagespace import ArrayHandle, SharedSpace, normalize_region

if TYPE_CHECKING:
    from repro.sim.cluster import ProcEnv
    from repro.tmk.api import TmkWorld

__all__ = ["TmkNode", "PageMeta", "DiffRequest", "DiffReply",
           "TAG_TMK_REQ", "TAG_FETCH_REP", "TAG_BARRIER_DEP",
           "TAG_LOCK_GRANT", "TAG_FORK", "TAG_JOIN", "TAG_PUSH"]

# ---------------------------------------------------------------------- #
# tag space (application programs use tags < 1_000_000)
#
# Every tag below names a request/reply channel that assumes exactly-once,
# per-pair-FIFO delivery (a duplicated DiffReply would patch a page twice;
# a reordered grant would break lock tenure).  The network provides both —
# natively on the perfect wire, via its reliable-delivery sublayer under
# an attached FaultPlan — so the protocol carries no sequence numbers.

TAG_TMK_REQ = 1_000_000      # all requests bound for a node's server
TAG_FETCH_REP = 1_000_001    # diff / page replies back to a faulting main
TAG_BARRIER_DEP = 1_000_002  # barrier departure, manager -> member
TAG_LOCK_GRANT = 1_100_000   # + lock id
TAG_FORK = 1_000_003         # fork-join: master -> worker (departure)
TAG_JOIN = 1_000_004         # fork-join: worker -> master (arrival)
TAG_PUSH = 1_000_005         # enhanced interface: pushed data at a release


class _CacheEntry(tuple):
    """A cached diff: (top, wm, okey, diff, epoch) — see _create_diff."""

    __slots__ = ()

    def __new__(cls, top, wm, okey, diff, epoch):
        return tuple.__new__(cls, (top, wm, okey, diff, epoch))

    top = property(lambda self: self[0])
    wm = property(lambda self: self[1])
    okey = property(lambda self: self[2])
    diff = property(lambda self: self[3])
    epoch = property(lambda self: self[4])


class PageMeta:
    """Coherence metadata for one page on one node."""

    __slots__ = ("valid", "twin", "pending", "applied", "last_written",
                 "last_closed", "last_okey", "sticky")

    def __init__(self) -> None:
        self.valid = True
        self.twin: Optional[np.ndarray] = None
        # writer pid -> highest interval id named in a notice (needed)
        self.pending: dict[int, int] = {}
        # writer pid -> highest interval id whose content we hold
        self.applied: dict[int, int] = {}
        # own interval id (open included) of the most recent local write
        self.last_written = 0
        # own id of the last *closed* interval that wrote this page —
        # the highest watermark a served diff may let requesters claim
        self.last_closed = 0
        # merge-order key (vtsum, pid) of the last *closed* interval in
        # which this node wrote the page
        self.last_okey: Optional[tuple] = None
        # multi-writer pages are exempt from diff GC (see DESIGN.md)
        self.sticky = False

    @property
    def dirty(self) -> bool:
        return self.twin is not None

    def missing_writers(self) -> list[tuple[int, int]]:
        """(writer, from_id) pairs whose content this node still lacks."""
        out = []
        for w, need in self.pending.items():
            have = self.applied.get(w, 0)
            if need > have:
                out.append((w, have))
        return out


# ---------------------------------------------------------------------- #
# wire payloads

@dataclass
class DiffRequest:
    kind: str = field(default="diff", init=False)
    page: int = 0
    from_id: int = 0          # requester's applied watermark for this writer
    reply_to: int = 0
    # aggregated form (enhanced interface): list of (page, from_id)
    batch: Optional[list] = None

    def nbytes(self) -> int:
        if self.batch is not None:
            return 16 + 8 * len(self.batch)
        return 24


@dataclass
class DiffReply:
    page: int
    diffs: list               # [(top, wm, okey, diff)] in top order
    full_page: Optional[bytes] = None
    full_label: int = 0
    full_applied: Optional[dict] = None   # sender's applied watermarks
    # aggregated form: list of per-page DiffReply-like tuples
    batch: Optional[list] = None          # [(page, diffs, full_page, full_label, full_applied)]

    def nbytes(self) -> int:
        def one(diffs, full_page):
            n = sum(diff_nbytes(entry[-1]) for entry in diffs) + 16
            if full_page is not None:
                n += len(full_page)
            return n
        if self.batch is not None:
            return sum(one(d, fp) for _p, d, fp, _fl, _fa in self.batch)
        return one(self.diffs, self.full_page)


class TmkNode:
    """All DSM state and behaviour of one processor."""

    def __init__(self, world: "TmkWorld", env: "ProcEnv"):
        self.world = world
        self.env = env
        self.pid = env.pid
        self.nprocs = env.nprocs
        self.net = env.net
        self.model: MachineModel = env.model
        self.space: SharedSpace = world.space
        self.page_size = self.model.page_size

        self.mem = np.zeros(self.space.nbytes, dtype=np.uint8)
        self._meta: dict[int, PageMeta] = {}

        # interval machinery
        self.seen = SeenVector(self.nprocs)       # seen[pid] == own closed count
        self.open_writes: set[int] = set()        # pages written this interval
        # interval-record retention is two global-sync windows deep:
        # ``log_current`` holds records created/learned since the last
        # global synchronization (what a barrier arrival or join must
        # carry); ``log_prev`` holds the window before that.  Lock grants
        # serve from both — a grant can be computed after this node passed
        # a join/barrier while the requester is still inside the previous
        # window, and the records it needs must not have been discarded
        # (the receiver-side seen-vector filter makes re-sends harmless).
        self.log_current: list[IntervalRecord] = []
        self.log_prev: list[IntervalRecord] = []
        # diff cache: page -> list of (label, diff, epoch) in label order
        self.diff_cache: dict[int, list] = {}
        # page -> highest label ever garbage-collected; the cache is
        # continuous over (gc_floor, newest label]
        self.gc_floor: dict[int, int] = {}
        self.epoch = 0                            # barrier counter (GC clock)

        # coherence fast path: vectorized page masks + epoch-keyed region
        # verdicts (see repro.tmk.faststate).  Mask *maintenance* is
        # unconditional (the invariants are cheap to keep and always true);
        # only *consulting* the masks is gated on ``enabled``.
        enabled = getattr(world, "fastpath", None)
        if enabled is None:
            enabled = fastpath_enabled_from_env()
        self.fast = FastState(self.space.npages, enabled=enabled)

        world.nodes[self.pid] = self

    # ------------------------------------------------------------------ #
    # views and metadata

    def view(self, handle: ArrayHandle) -> np.ndarray:
        """The node-local ndarray over ``handle``'s bytes (no coherence!)."""
        raw = self.mem[handle.offset:handle.offset + handle.nbytes]
        return raw.view(handle.dtype).reshape(handle.shape)

    def meta(self, page: int) -> PageMeta:
        m = self._meta.get(page)
        if m is None:
            m = PageMeta()
            self._meta[page] = m
        return m

    def page_bytes(self, page: int) -> np.ndarray:
        off = page * self.page_size
        return self.mem[off:off + self.page_size]

    # ------------------------------------------------------------------ #
    # access hooks — the simulated page faults

    def ensure_read(self, handle: ArrayHandle, region, source=None) -> None:
        """Validate every page of ``region`` before a read (read faults).

        Fast path: between acquires ``valid`` bits never regress, so once a
        footprint has been verified this epoch (or its mask check passes) the
        per-page walk is skipped entirely.  Race-monitor reporting happens
        first either way — the fast path elides protocol work, never access
        events.
        """
        self._note_access(handle, False, source, region=region)
        nregion = normalize_region(region, handle.shape)
        fs = self.fast
        stats = self.world.dsm_stats
        if fs.enabled:
            vkey = (handle.name, nregion)
            if fs.read_verdicts.get(vkey) == fs.epoch:
                stats.fastpath_hits += 1
                return
        pages, cached = handle.pages_of(nregion)
        if cached:
            stats.region_cache_hits += 1
        if fs.enabled:
            ok = fs.valid[pages]
            if ok.all():
                stats.fastpath_hits += 1
                fs.remember_read(vkey)
                return
            stats.fastpath_misses += 1
            for page in pages[~ok].tolist():
                self._read_fault_if_needed(page)
            # validity is monotone until the next acquire (invalidations
            # only happen in apply_records, on this same main context), so
            # the whole footprint is now verifiably valid for this epoch
            fs.remember_read(vkey)
            return
        for page in pages.tolist():
            self._read_fault_if_needed(page)

    def ensure_write(self, handle: ArrayHandle, region, source=None) -> None:
        """Validate + twin every page of ``region`` before a write.

        The write fast path must be more careful than the read one: while
        this node's main context is blocked in a fetch, its *server* context
        can serve a remote request and ``_create_diff`` a page — dropping
        the twin and regressing ``write_ok`` mid-loop.  The miss path
        therefore re-checks the mask live for every page rather than
        iterating a stale ``flatnonzero`` snapshot.
        """
        self._note_access(handle, True, source, region=region)
        nregion = normalize_region(region, handle.shape)
        fs = self.fast
        stats = self.world.dsm_stats
        if fs.enabled:
            vkey = (handle.name, nregion)
            if fs.write_verdicts.get(vkey) == fs.write_gen:
                stats.fastpath_hits += 1
                return
        pages, cached = handle.pages_of(nregion)
        if cached:
            stats.region_cache_hits += 1
        if fs.enabled:
            ok = fs.write_ok
            if ok[pages].all():
                stats.fastpath_hits += 1
                fs.remember_write(vkey)
                return
            stats.fastpath_misses += 1
            for page in pages.tolist():
                if not ok[page]:
                    self._write_fault_if_needed(page)
            if ok[pages].all():
                fs.remember_write(vkey)
            return
        for page in pages.tolist():
            self._write_fault_if_needed(page)

    def ensure_read_elements(self, handle: ArrayHandle, flat_indices,
                             elem_span: int = 1, source=None) -> None:
        self._note_access(handle, False, source, flat_indices=flat_indices,
                          elem_span=elem_span)
        pages = handle.element_pages(flat_indices, elem_span)
        fs = self.fast
        if fs.enabled:
            stats = self.world.dsm_stats
            ok = fs.valid[pages]
            if ok.all():
                stats.fastpath_hits += 1
                return
            stats.fastpath_misses += 1
            for page in pages[~ok].tolist():
                self._read_fault_if_needed(page)
            return
        for page in pages.tolist():
            self._read_fault_if_needed(page)

    def ensure_write_elements(self, handle: ArrayHandle, flat_indices,
                              elem_span: int = 1, source=None) -> None:
        self._note_access(handle, True, source, flat_indices=flat_indices,
                          elem_span=elem_span)
        pages = handle.element_pages(flat_indices, elem_span)
        fs = self.fast
        if fs.enabled:
            stats = self.world.dsm_stats
            ok = fs.write_ok
            if ok[pages].all():
                stats.fastpath_hits += 1
                return
            stats.fastpath_misses += 1
            for page in pages.tolist():
                if not ok[page]:
                    self._write_fault_if_needed(page)
            return
        for page in pages.tolist():
            self._write_fault_if_needed(page)

    def _note_access(self, handle: ArrayHandle, write: bool, source,
                     region=None, flat_indices=None, elem_span: int = 1) -> None:
        """Report the exact access footprint to an attached race monitor.

        Every coherent access — :class:`~repro.tmk.shared.SharedArray`
        methods, the compiler backends, the enhanced interface — funnels
        through one of the four ``ensure_*`` hooks above, so this is the
        single point where the detector observes the program."""
        mon = getattr(self.world, "race_monitor", None)
        if mon is None:
            return
        if flat_indices is not None:
            runs = handle.element_byte_runs(flat_indices, elem_span)
        else:
            runs = handle.region_byte_runs(region)
        mon.on_access(self.pid, handle, write=write, runs=runs, source=source)

    def _read_fault_if_needed(self, page: int) -> None:
        m = self.meta(page)
        if m.valid:
            return
        stats = self.world.dsm_stats
        stats.read_faults += 1
        self.env.proc.hold(self.model.fault_overhead)
        self._fetch(page, m)

    def _write_fault_if_needed(self, page: int) -> None:
        m = self.meta(page)
        stats = self.world.dsm_stats
        if not m.valid:
            stats.read_faults += 1
            self.env.proc.hold(self.model.fault_overhead)
            self._fetch(page, m)
        if not m.dirty:
            stats.write_faults += 1
            stats.twins_created += 1
            self.env.proc.hold(self.model.fault_overhead
                               + self.model.twin_overhead)
            m.twin = self.page_bytes(page).copy()
        m.last_written = self.seen[self.pid] + 1   # current open interval id
        self.open_writes.add(page)
        # valid + twinned + noted in the open interval: nothing left for a
        # repeat write access to do until a regression clears this bit
        self.fast.write_ok[page] = True

    # ------------------------------------------------------------------ #
    # fetching (fault service, requester side)

    def _fetch(self, page: int, m: PageMeta) -> None:
        """Bring ``page`` up to date: one diff request per missing writer."""
        missing = m.missing_writers()
        if not missing:  # notices raced with an aggregated fetch; revalidate
            m.valid = True
            self.fast.valid[page] = True
            return
        self.world.dsm_stats.fetches += 1
        proc = self.env.proc
        for w, from_id in missing:
            req = DiffRequest(page=page, from_id=from_id, reply_to=self.pid)
            self.net.send(proc, self.pid, w, req, tag=TAG_TMK_REQ,
                          nbytes=req.nbytes(), category="diff_req")
        replies = []
        for w, _from in missing:
            msg = self.net.recv(proc, self.pid, src=w, tag=TAG_FETCH_REP)
            replies.append((w, msg.payload))
        self._apply_replies(page, m, replies)
        m.valid = True
        self.fast.valid[page] = True

    def _apply_replies(self, page: int, m: PageMeta, replies) -> None:
        """Merge diff/page replies into the local copy.

        ``replies`` is ``[(writer, DiffReply-ish)]`` where the reply objects
        expose ``diffs`` / ``full_page`` / ``full_label`` / ``full_applied``.
        Full pages (GC fallback) are installed first — newest base wins and
        our own preserved modifications are re-applied — then diffs are
        patched in happens-before order via their ``(vtsum, proc)`` keys.
        """
        proc = self.env.sim.current
        stats = self.world.dsm_stats
        base_applied: dict = {}
        fulls = [(w, rep) for w, rep in replies if rep.full_page is not None]
        if fulls:
            w, rep = max(fulls, key=lambda t: t[1].full_label)
            dst = self.page_bytes(page)
            dst[:] = np.frombuffer(rep.full_page, dtype=np.uint8)
            base_applied = dict(rep.full_applied or {})
            base_applied[w] = max(base_applied.get(w, 0), rep.full_label)
            stats.full_page_fetches += 1
            # re-apply our own preserved modifications (disjoint from any
            # concurrent writer's words in a race-free program)
            apply_diffs(dst, [entry.diff
                              for entry in self.diff_cache.get(page, [])])
            for ww, reply in fulls:
                m.applied[ww] = max(m.applied.get(ww, 0),
                                    reply.full_label, m.pending.get(ww, 0))
        patches = []
        for w, rep in replies:
            for top, wm, okey, diff in rep.diffs:
                if top <= base_applied.get(w, 0):
                    # already reflected in the full page we installed
                    m.applied[w] = max(m.applied.get(w, 0), wm)
                    continue
                patches.append((okey, w, wm, diff))
        patches.sort(key=lambda t: t[0])
        dst = self.page_bytes(page)
        for _okey, w, wm, diff in patches:
            apply_diff(dst, diff)
            proc.hold(self.model.diff_apply_time(diff_nbytes(diff)))
            stats.diffs_applied += 1
            stats.diff_bytes_applied += diff_nbytes(diff)
            # claim only through the writer's last *closed* interval: a
            # mid-interval serve's open writes may still grow, and the
            # close notice must be able to trigger a re-fetch
            m.applied[w] = max(m.applied.get(w, 0), wm)
        for w, _from in m.missing_writers():
            # anything still "missing" was answered with content newer than
            # the notices (cumulative diffs) or an empty diff; trust the
            # notices' watermarks
            m.applied[w] = max(m.applied.get(w, 0), m.pending.get(w, 0))

    # ------------------------------------------------------------------ #
    # serving (runs on this node's server process; ``sproc`` is the server)

    def serve_diff_request(self, sproc, requester: int, req: DiffRequest,
                           category: str = "diff_rep") -> None:
        sproc.hold(self.model.protocol_overhead)
        if req.batch is not None:
            batch = []
            for page, from_id in req.batch:
                diffs, full_page, full_label, full_applied = self._collect_for(
                    sproc, page, from_id)
                batch.append((page, diffs, full_page, full_label, full_applied))
            rep = DiffReply(page=-1, diffs=[], batch=batch)
        else:
            diffs, full_page, full_label, full_applied = self._collect_for(
                sproc, req.page, req.from_id)
            rep = DiffReply(page=req.page, diffs=diffs, full_page=full_page,
                            full_label=full_label, full_applied=full_applied)
        self.net.send(sproc, self.pid, requester, rep, tag=TAG_FETCH_REP,
                      nbytes=rep.nbytes(), category=category)

    def _collect_for(self, sproc, page: int, from_id: int):
        """Gather this node's modifications to ``page`` newer than ``from_id``."""
        m = self.meta(page)
        if m.dirty:
            self._create_diff(page, m, charge=sproc)
        floor = self.gc_floor.get(page, 0)
        cached = self.diff_cache.get(page, [])
        if from_id < floor:
            # content in (from_id, floor] was garbage-collected: fall back
            # to a whole-page transfer (as TreadMarks does after its GC)
            top = max([m.last_closed] + [e.top for e in cached])
            return [], self.page_bytes(page).tobytes(), top, dict(m.applied)
        return [(e.top, e.wm, e.okey, e.diff) for e in cached
                if e.top > from_id], None, 0, None

    def _create_diff(self, page: int, m: PageMeta, charge=None) -> None:
        """Compute and cache the diff for a dirty page; drop the twin.

        Cache entries carry two interval ids with different meanings:

        * ``top`` — the newest interval whose writes the entry *contains*
          (the open interval, if a request arrived mid-interval).  Serving
          filters on ``top`` so nothing available is withheld.
        * ``wm`` — the newest interval a requester may *claim* to hold
          after applying the entry: the last **closed** write interval.
          A mid-interval serve over-propagates the open writes (harmless
          for race-free programs), but the requester must not mark the
          open interval applied — the writer may still add to it, and the
          close's write notice has to trigger a re-fetch.

        The merge-order key is likewise the key the open interval's close
        would produce (growth only reorders concurrent, disjoint writes).
        """
        diff = make_diff(self.page_bytes(page), m.twin)
        m.twin = None
        # may run on the node's *server* context while main is blocked in a
        # fetch mid-ensure_write: the live mask check there depends on this
        self.fast.untwin_page(page)
        self.fast.bump_write_gen()
        stats = self.world.dsm_stats
        stats.diffs_created += 1
        stats.diff_bytes_created += diff_nbytes(diff)
        self._cache_entry(page, m, diff)
        # charge the creation time only after the cache is updated: holding
        # yields the processor, and this node's request server must never
        # observe the page twinless *and* uncached (it would serve nothing)
        if charge is not None:
            charge.hold(self.model.diff_create_time(self.page_size))

    def _cache_entry(self, page: int, m: PageMeta, diff) -> None:
        if not diff:
            return
        top = m.last_written
        if page in self.open_writes:
            wm = m.last_closed
            okey = (sum(self.seen.v) + 1, self.pid)
        else:
            wm = m.last_written
            okey = m.last_okey if m.last_okey is not None \
                else (sum(self.seen.v), self.pid)
        lst = self.diff_cache.setdefault(page, [])
        if lst and lst[-1][0] >= top:
            # same-interval re-diff (a second request arrives mid-interval,
            # or the close follows a mid-interval serve): extend the entry —
            # apply order within it preserves later-wins on overlaps
            prev = lst.pop()
            lst.append(_CacheEntry(max(prev.top, top), max(prev.wm, wm),
                                   max(prev.okey, okey), prev.diff + diff,
                                   self.epoch))
        else:
            lst.append(_CacheEntry(top, wm, okey, diff, self.epoch))

    # ------------------------------------------------------------------ #
    # interval machinery

    def close_interval(self) -> Optional[IntervalRecord]:
        """End the open interval (at a release); record its writes."""
        if not self.open_writes:
            return None
        self.fast.close_interval()
        new_id = self.seen[self.pid] + 1
        self.seen.v[self.pid] = new_id
        vtsum = sum(self.seen.v)
        rec = IntervalRecord(proc=self.pid, id=new_id,
                             pages=tuple(sorted(self.open_writes)),
                             vtsum=vtsum)
        okey = (vtsum, self.pid)
        for page in self.open_writes:
            meta = self.meta(page)
            meta.last_okey = okey
            meta.last_closed = new_id
        self.open_writes = set()
        self.log_current.append(rec)
        return rec

    @property
    def retained_log(self) -> list:
        """All interval records still retained (for lock grants)."""
        return self.log_prev + self.log_current

    def apply_records(self, records: list, log: bool = True) -> None:
        """Acquire-side: learn records, invalidate named pages.

        ``log=True`` retains the records for forwarding on later lock grants
        (needed for lock-chain transitivity).  Barrier departures pass
        ``log=False``: the manager has distributed those records to everyone
        already, so re-forwarding them would only duplicate traffic.
        """
        # this is the acquire edge: the one place ``valid`` bits can regress
        self.fast.bump_epoch()
        self.world.dsm_stats.epoch_bumps += 1
        writers_per_page: dict[int, set] = {}
        for rec in records:
            if not self.seen.observe(rec):
                continue
            if log:
                self.log_current.append(rec)
            for page in rec.pages:
                writers_per_page.setdefault(page, set()).add(rec.proc)
                self._apply_notice(rec.proc, rec.id, page)
        for page, writers in writers_per_page.items():
            m = self._meta.get(page)
            if m is None:
                continue
            if len(writers) > 1 or (m.last_written > 0 and writers - {self.pid}):
                m.sticky = True

    def _apply_notice(self, writer: int, interval_id: int, page: int) -> None:
        if writer == self.pid:
            return
        m = self.meta(page)
        prev = m.pending.get(writer, 0)
        if interval_id > prev:
            m.pending[writer] = interval_id
        if interval_id <= m.applied.get(writer, 0):
            return  # content already held (cumulative diff over-propagation)
        if m.dirty:
            # preserve our modifications before losing the right to the page;
            # charge whichever process is executing (main or server — barrier
            # departures may be applied from the server context)
            self._create_diff(page, m, charge=self.env.sim.current)
        if m.valid:
            m.valid = False
            self.fast.invalidate_page(page)
            self.world.dsm_stats.invalidations += 1

    # ------------------------------------------------------------------ #
    # epoch / GC (called at barrier departure)

    def advance_epoch(self) -> None:
        self.epoch += 1
        horizon = self.world.gc_epochs
        if horizon is None:
            return
        cutoff = self.epoch - horizon
        if cutoff <= 0:
            return
        for page, lst in list(self.diff_cache.items()):
            m = self._meta.get(page)
            if m is not None and m.sticky:
                continue
            kept = [e for e in lst if e.epoch >= cutoff]
            if len(kept) < len(lst):
                dropped_top = max(e.top for e in lst if e.epoch < cutoff)
                self.gc_floor[page] = max(self.gc_floor.get(page, 0),
                                          dropped_top)
            if kept:
                self.diff_cache[page] = kept
            else:
                del self.diff_cache[page]

    def prune_log(self) -> None:
        """Advance the retention window at a global synchronization.

        The window just closed becomes ``log_prev`` (still served to lock
        grants); the one before it is discarded — by then every processor
        has passed the intervening global sync and learned those records.
        """
        self.log_prev = self.log_current
        self.log_current = []

"""Per-node coherence fast-path state: vectorized page masks + epoch caches.

Every ``SharedArray`` access funnels through the four ``TmkNode.ensure_*``
hooks.  In the common case — every touched page already valid (reads) or
already twinned and write-noted in the open interval (writes) — those hooks
take no protocol action at all, yet the seed implementation still paid a
Python-level loop over every touched page with a dict lookup each.  Real
TreadMarks only traps on the *first* access after a synchronization point;
this module restores that asymptotic behaviour for the simulation's
wall-clock cost (virtual time is untouched: the fast path elides Python
work, never protocol actions).

Two layers, both exact:

**Page masks** (``valid``, ``write_ok``): numpy boolean vectors over the
whole shared space, one pair per node.  A ``True`` bit is a *guarantee*
that the slow path would no-op on that page:

* ``valid[p]``    ⇒  ``meta(p).valid`` — a read fault cannot trigger;
* ``write_ok[p]`` ⇒  page valid **and** twinned **and** already noted in
  the current open interval (``last_written`` current, in ``open_writes``)
  — a write trap cannot trigger and no metadata update is pending.

A ``False`` bit promises nothing; the slow path re-checks the real metadata
(and flips the bit back on).  Bits are therefore *cleared eagerly at every
state regression* and set lazily by the slow path:

* ``valid`` clears only in ``TmkNode._apply_notice`` (invalidation at an
  acquire);
* ``write_ok`` additionally clears in ``TmkNode._create_diff`` (the twin is
  discarded — possibly from the node's *server* context, mid-epoch, when a
  remote fetch forces a diff of a locally dirty page) and wholesale at
  ``close_interval`` (the open interval ends, so "already noted" expires).

**Epoch-keyed region verdicts**: between acquires, ``valid`` bits cannot
regress, and between {acquire, release, diff-creation} events ``write_ok``
bits cannot regress.  Each node therefore carries an ``epoch`` counter
(bumped at every acquire edge: barrier departure, lock acquire, fork/join
receive, reduction — exactly the edges the race monitor instruments) and a
``write_gen`` counter (bumped at those plus every ``close_interval`` and
``_create_diff``).  A region whose mask check passed is remembered as
``region -> counter``; while the counter is unchanged the next identical
footprint (every time-loop iteration) skips even the page math — one dict
probe and an integer compare.

``TMK_FASTPATH=0`` in the environment disables the fast path entirely
(every access walks the per-page slow path); the equivalence regression
test runs both ways and asserts bit-identical virtual times, traffic and
memory images.
"""

from __future__ import annotations

import numpy as np

from repro.envflags import env_flag

__all__ = ["FastState", "fastpath_enabled_from_env"]

_REGION_VERDICT_LIMIT = 4096   # per-node cap on remembered footprints


def fastpath_enabled_from_env() -> bool:
    """The ``TMK_FASTPATH`` escape hatch (default: enabled).

    ``0 / false / off / no`` (case-insensitive) disable; ``1 / true / on /
    yes`` enable; anything else raises — see :func:`repro.envflags.env_flag`.
    """
    return env_flag("TMK_FASTPATH", default=True)


class FastState:
    """One node's fast-path masks, counters and region-verdict caches."""

    __slots__ = ("enabled", "valid", "write_ok", "epoch", "write_gen",
                 "read_verdicts", "write_verdicts")

    def __init__(self, npages: int, enabled: bool = True):
        self.enabled = enabled
        self.valid = np.ones(npages, dtype=bool)
        self.write_ok = np.zeros(npages, dtype=bool)
        self.epoch = 0
        self.write_gen = 0
        # (handle name, normalized region) -> counter value at verification
        self.read_verdicts: dict = {}
        self.write_verdicts: dict = {}

    # ---- regression events (called from the protocol slow path) -------- #

    def bump_epoch(self) -> None:
        """An acquire edge: ``valid`` bits may have regressed."""
        self.epoch += 1
        self.write_gen += 1
        if self.read_verdicts:
            self.read_verdicts.clear()
        if self.write_verdicts:
            self.write_verdicts.clear()

    def bump_write_gen(self) -> None:
        """A release or twin discard: ``write_ok`` bits may have regressed."""
        self.write_gen += 1
        if self.write_verdicts:
            self.write_verdicts.clear()

    def invalidate_page(self, page: int) -> None:
        self.valid[page] = False
        self.write_ok[page] = False

    def untwin_page(self, page: int) -> None:
        self.write_ok[page] = False

    def close_interval(self) -> None:
        self.write_ok.fill(False)
        self.bump_write_gen()

    # ---- verdict caches ------------------------------------------------ #

    def remember_read(self, key) -> None:
        if len(self.read_verdicts) >= _REGION_VERDICT_LIMIT:
            self.read_verdicts.clear()
        self.read_verdicts[key] = self.epoch

    def remember_write(self, key) -> None:
        if len(self.write_verdicts) >= _REGION_VERDICT_LIMIT:
            self.write_verdicts.clear()
        self.write_verdicts[key] = self.write_gen

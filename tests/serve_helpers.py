"""Injectable worker runners for the serve e2e tests.

These must live in an importable module (not a test function): the
service spawns workers with the ``spawn`` start method and resolves the
runner from its ``"module:attr"`` dotted path inside the child process.
The echo runner answers instantly, so crash/failure plumbing can be
tested without paying for real simulator runs.
"""

import os
import time

from repro.api.types import RunRequest, RunResult


def echo_runner(request_doc, cache):
    """Answer every request instantly with a synthetic result.

    ``tag == "crash"``  -> hard process death (``os._exit``), the one
    failure mode that cannot be converted to a structured result inside
    the worker — exercises the parent's liveness monitor.
    ``tag == "fail"``   -> raises, exercising the structured-failure path.
    ``tag == "slow:S:..."`` -> sleeps ``S`` seconds first, so a test can
    kill a host while requests are verifiably in flight.
    """
    request = RunRequest.from_json(request_doc)
    if request.tag == "crash":
        os._exit(17)
    if request.tag == "fail":
        raise RuntimeError("injected failure")
    if request.tag and request.tag.startswith("slow:"):
        time.sleep(float(request.tag.split(":")[1]))
    cache.get(request.cache_key(), lambda: "compiled")
    return RunResult(app=request.app, variant=request.variant,
                     nprocs=request.nprocs, preset=request.preset,
                     time=1.0, seq_time=float(request.seq_time or 0.0),
                     tag=request.tag).to_json()

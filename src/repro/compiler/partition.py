"""Iteration and data partitioning: BLOCK and CYCLIC distributions.

SPF "uses a simple block or cyclic loop distribution mechanism"; XHPF takes
HPF data-distribution directives and derives loop distributions satisfying
the owner-computes rule.  Both needs reduce to the helpers here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_range", "block_owner", "cyclic_indices", "cyclic_owner",
           "chunk_of"]


def block_range(extent: int, nprocs: int, pid: int) -> tuple:
    """[lo, hi) of a BLOCK distribution (remainder spread over low pids)."""
    base, rem = divmod(extent, nprocs)
    lo = pid * base + min(pid, rem)
    hi = lo + base + (1 if pid < rem else 0)
    return lo, hi


def block_owner(extent: int, nprocs: int, index: int) -> int:
    """Owner pid of ``index`` under BLOCK distribution."""
    base, rem = divmod(extent, nprocs)
    cut = rem * (base + 1)
    if index < cut:
        return index // (base + 1)
    return rem + (index - cut) // base if base else nprocs - 1


def cyclic_indices(extent: int, nprocs: int, pid: int,
                   start: int = 0) -> np.ndarray:
    """Indices owned by ``pid`` under CYCLIC distribution over [start, extent)."""
    first = start + ((pid - start) % nprocs)
    return np.arange(first, extent, nprocs, dtype=np.int64)


def cyclic_owner(index: int, nprocs: int) -> int:
    return index % nprocs


def chunk_of(schedule: str, extent: int, nprocs: int, pid: int):
    """A loop chunk: (lo, hi) for block, an index array for cyclic."""
    if schedule == "block":
        return block_range(extent, nprocs, pid)
    if schedule == "cyclic":
        return cyclic_indices(extent, nprocs, pid)
    raise ValueError(f"unknown schedule {schedule!r}")

"""The compiler–runtime fork-join interface of Section 2.3.

The SPF compiler expects fork-join semantics: a master executes the
sequential program and dispatches encapsulated parallel-loop subroutines to
workers.  Two implementations are provided:

:class:`OldForkJoin`
    The paper's *initial* implementation: plain TreadMarks barriers
    encapsulate each parallel loop, and the loop control variables
    (subroutine index and parameters) travel through two shared-memory
    pages that every worker page-faults in.  Cost per parallel loop:
    two barriers (``4(n-1)`` messages) plus two control-page faults per
    worker (``4(n-1)`` messages) = ``8(n-1)``.

:class:`ImprovedForkJoin`
    The optimized interface the paper's results use: explicit one-to-all
    *departure* (fork) and all-to-one *arrival* (join) messages, with the
    control variables and consistency information piggybacked on the fork.
    Cost per parallel loop: ``2(n-1)`` messages.

Both are proper synchronization operations of the lazy-RC protocol: a fork
is a release by the master and an acquire by each worker; a join is the
reverse.  ``benchmarks/test_sec23_interface.py`` reproduces the 8(n-1) →
2(n-1) reduction and its execution-time effect.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tmk.intervals import notice_payload_nbytes, records_unknown_to, SeenVector
from repro.tmk.pagespace import SharedSpace
from repro.tmk.protocol import TAG_FORK, TAG_JOIN, TmkNode
from repro.tmk.shared import SharedArray
from repro.tmk import sync as _sync

__all__ = ["OldForkJoin", "ImprovedForkJoin", "make_forkjoin",
           "alloc_old_interface_control", "STOP"]

STOP = -1
CTRL_SUB = "__fj_sub"
CTRL_ARG = "__fj_arg"
MAX_ARGS = 32
CONTROL_BYTES = 64    # subroutine index + parameter block on the wire


def alloc_old_interface_control(space: SharedSpace) -> None:
    """Allocate the two control pages the old interface communicates through.

    They are distinct shared pages on purpose — the paper notes "the two
    sets of control variables reside in different shared pages, incurring
    two requests to obtain them for each parallel loop."
    """
    space.alloc(CTRL_SUB, (8,), np.float64)          # one page
    space.alloc(CTRL_ARG, (MAX_ARGS,), np.float64)   # another page


class OldForkJoin:
    """Fork-join built from barriers + shared control pages (initial design)."""

    def __init__(self, node: TmkNode):
        self.node = node
        self.is_master = node.pid == 0
        self.sub = SharedArray(node, node.world.space[CTRL_SUB])
        self.arg = SharedArray(node, node.world.space[CTRL_ARG])

    # ---- master side ---------------------------------------------------

    def fork(self, sub_id: int, params: Sequence[float] = (),
             payload=None) -> None:
        if payload is not None:
            raise ValueError("the old interface cannot piggyback data")
        if len(params) > MAX_ARGS:
            raise ValueError("too many loop parameters")
        self.sub.write((slice(0, 2),), [float(sub_id), float(len(params))])
        if len(params):
            self.arg.write((slice(0, len(params)),),
                           np.asarray(params, dtype=np.float64))
        _sync.barrier(self.node)     # wakes the workers

    def join(self) -> None:
        _sync.barrier(self.node)

    def shutdown(self) -> None:
        self.fork(STOP)

    # ---- worker side ---------------------------------------------------

    def wait_for_work(self):
        """Block until the master forks; returns (sub_id, params) or None."""
        _sync.barrier(self.node)     # departure releases us
        head = self.sub.read((slice(0, 2),))      # page fault #1
        sub_id, nargs = int(head[0]), int(head[1])
        params = tuple(self.arg.read((slice(0, max(nargs, 1)),))[:nargs]
                       .tolist())                  # page fault #2
        if sub_id == STOP:
            return None
        return sub_id, params

    def work_done(self) -> None:
        _sync.barrier(self.node)


class ImprovedForkJoin:
    """Fork-join with dedicated one-to-all / all-to-one messages (Sec 2.3)."""

    def __init__(self, node: TmkNode):
        self.node = node
        self.is_master = node.pid == 0
        if self.is_master:
            self._worker_seen = {w: SeenVector(node.nprocs)
                                 for w in range(1, node.nprocs)}

    # ---- master side ---------------------------------------------------

    def fork(self, sub_id: int, params: Sequence[float] = (),
             payload=None) -> None:
        """One-to-all departure carrying control variables (and optionally a
        piggybacked data payload, used by the hand-optimized MGS)."""
        node = self.node
        proc = node.env.proc
        node.close_interval()
        model = node.model
        mon = getattr(node.world, "race_monitor", None)
        snap = mon.release(node.pid) if mon is not None else None
        for w in range(1, node.nprocs):
            records = records_unknown_to(node.retained_log,
                                         self._worker_seen[w])
            nbytes = CONTROL_BYTES + notice_payload_nbytes(
                records, model.interval_header_bytes, model.write_notice_bytes)
            body = (sub_id, tuple(params), records, payload)
            if payload is not None:
                nbytes += payload.nbytes_on_wire
            node.net.send(proc, node.pid, w, body, tag=TAG_FORK,
                          nbytes=nbytes, category="sync")
            if mon is not None:
                mon.channel_put(node.pid, w, "fork", snap)
            self._worker_seen[w] = node.seen.copy()
        node.prune_log()
        node.advance_epoch()

    def join(self) -> None:
        """All-to-one arrival: collect every worker's records."""
        node = self.node
        proc = node.env.proc
        node.close_interval()
        mon = getattr(node.world, "race_monitor", None)
        for _ in range(node.nprocs - 1):
            msg = node.net.recv(proc, node.pid, tag=TAG_JOIN)
            records, seen = msg.payload
            node.apply_records(records, log=True)
            w = msg.src
            if mon is not None:
                mon.channel_acquire(node.pid, w, "join")
            sv = SeenVector(node.nprocs)
            sv.v = list(seen)
            self._worker_seen[w] = sv

    def shutdown(self) -> None:
        self.fork(STOP)

    # ---- worker side ---------------------------------------------------

    def wait_for_work(self):
        node = self.node
        proc = node.env.proc
        msg = node.net.recv(proc, node.pid, src=0, tag=TAG_FORK)
        sub_id, params, records, payload = msg.payload
        node.apply_records(records, log=False)
        mon = getattr(node.world, "race_monitor", None)
        if mon is not None:
            mon.channel_acquire(node.pid, 0, "fork")
        if payload is not None:
            payload.install(node)
        node.advance_epoch()
        if sub_id == STOP:
            return None
        return sub_id, params

    def work_done(self) -> None:
        node = self.node
        proc = node.env.proc
        node.close_interval()
        records = list(node.log_current)
        node.prune_log()
        mon = getattr(node.world, "race_monitor", None)
        if mon is not None:
            mon.channel_put(node.pid, 0, "join", mon.release(node.pid))
        nbytes = 16 + notice_payload_nbytes(
            records, node.model.interval_header_bytes,
            node.model.write_notice_bytes)
        node.net.send(proc, node.pid, 0, (records, node.seen.as_tuple()),
                      tag=TAG_JOIN, nbytes=nbytes, category="sync")


def make_forkjoin(node: TmkNode, improved: bool = True):
    """Factory: the interface variant under test."""
    return ImprovedForkJoin(node) if improved else OldForkJoin(node)

"""Compilation reports: what each backend decided and why.

A parallelizing compiler's output is only trustworthy if its decisions are
inspectable.  :func:`spf_report` and :func:`xhpf_report` render what the
backends will do with a program — dispatch units and fusion groups, chunk
footprints, reduction strategies, halo-push plans, owner-computes
assignments and irregular fallbacks — without running anything.

    from repro.compiler.report import spf_report
    print(spf_report(program, nprocs=8, options=SpfOptions(fuse_loops=True)))
"""

from __future__ import annotations

from typing import Optional

from repro.compiler import analysis, depend
from repro.compiler.ir import ParallelLoop, Program, SeqBlock
from repro.compiler.spf import SpfOptions, compile_spf
from repro.compiler.xhpf import XhpfOptions, compile_xhpf

__all__ = ["spf_report", "xhpf_report", "footprint_report",
           "source_lookup"]


def _rect_str(rects: Optional[dict]) -> str:
    if rects is None:
        return "irregular (run-time footprint)"
    parts = []
    for array, rlist in sorted(rects.items()):
        spans = ",".join(
            "[" + " ".join(f"{lo}:{hi}" for lo, hi in rect) + "]"
            for rect in rlist)
        parts.append(f"{array}{spans}")
    return " ".join(parts) if parts else "-"


def footprint_report(loop: ParallelLoop, nprocs: int,
                     program: Program) -> str:
    """Per-processor read/write rectangles of one loop."""
    lines = [f"loop {loop.name}: extent [{loop.start}, {loop.extent}), "
             f"{loop.schedule} schedule"]
    for pid in range(nprocs):
        reads = analysis.chunk_rects(loop, "reads", pid, nprocs, program)
        writes = analysis.chunk_rects(loop, "writes", pid, nprocs, program)
        lines.append(f"  p{pid}: reads {_rect_str(reads)}  "
                     f"writes {_rect_str(writes)}")
    return "\n".join(lines)


def source_lookup(program: Program, nprocs: int = 8,
                  options: Optional[SpfOptions] = None) -> dict:
    """IR-level descriptions for the race detector's source tags.

    The SPF backend tags every DSM access it emits with
    ``"<unit name>:<array>"``; this maps each tag back to what the
    compiler knows about the access (statement kind, schedule, extent,
    direction) so a race report can point at source-level constructs
    instead of page numbers.  Hand-coded Tmk programs use the
    :class:`~repro.tmk.shared.SharedArray` default tags
    (``"<array>.read"`` etc.), which need no lookup.
    """
    exe = compile_spf(program, nprocs, options)
    kinds: dict = {}

    def note(tag: str, what: str) -> None:
        kinds.setdefault(tag, []).append(what)

    for unit in exe.units:
        for stmt in ([unit.seq] if unit.seq else []):
            where = f"sequential block {stmt.name!r} (master only)"
            for acc in stmt.reads:
                note(f"{stmt.name}:{acc.array}", f"read in {where}")
            for acc in stmt.writes:
                note(f"{stmt.name}:{acc.array}", f"write in {where}")
        for loop in unit.loops or []:
            where = (f"parallel loop {loop.name!r} "
                     f"[{loop.start}, {loop.extent}) {loop.schedule}")
            for acc in loop.reads:
                note(f"{loop.name}:{acc.array}", f"read in {where}")
            for acc in loop.writes:
                note(f"{loop.name}:{acc.array}", f"write in {where}")
            for name in loop.accumulate:
                note(f"{loop.name}:__acc_{name}",
                     f"staged accumulation of {name!r} in {where}")
            for red in loop.reductions:
                note(f"{loop.name}:__red_{red.name}",
                     f"lock-folded reduction {red.name!r} in {where}")
    return {tag: "; ".join(dict.fromkeys(what))
            for tag, what in kinds.items()}


def spf_report(program: Program, nprocs: int = 8,
               options: Optional[SpfOptions] = None) -> str:
    """Everything the SPF backend decided for ``program``."""
    exe = compile_spf(program, nprocs, options)
    opt = exe.options
    lines = [f"SPF compilation report — {program.name!r}, {nprocs} "
             f"processors, options: {opt.describe()}",
             f"shared allocation: "
             + ", ".join(f"{d.name}{d.shape}" for d in program.arrays)
             + " (all page-padded)"]
    if exe.reductions:
        strategy = ("combining tree (2(n-1) msgs)" if opt.tree_reductions
                    else "lock-protected shared scalar")
        lines.append("reductions: "
                     + ", ".join(exe.reductions) + f" via {strategy}")
    lines.append(f"dispatch units: {len(exe.units)} "
                 f"({sum(1 for u in exe.units if u.seq)} sequential blocks "
                 f"on the master, "
                 f"{sum(1 for u in exe.units if u.loops)} fork-joins)")
    shown = 0
    for idx, unit in enumerate(exe.units):
        if shown >= 12:
            lines.append(f"  ... ({len(exe.units) - idx} more units)")
            break
        shown += 1
        if unit.mark:
            lines.append(f"  unit {idx}: measurement mark {unit.mark!r}")
        elif unit.seq:
            lines.append(f"  unit {idx}: sequential {unit.seq.name!r} "
                         f"(master only)")
        else:
            names = " + ".join(l.name for l in unit.loops)
            fused = " [fused]" if len(unit.loops) > 1 else ""
            irr = " [irregular: on-demand element faults]" \
                if any(l.irregular for l in unit.loops) else ""
            lines.append(f"  unit {idx}: parallel {names}{fused}{irr}")
    if exe.push_plan:
        lines.append("halo-push plan:")
        for j, entries in sorted(exe.push_plan.items()):
            for array, lo_off, hi_off, _e, _s in entries:
                lines.append(f"  after unit {j}: push {array} boundary "
                             f"rows (halo {lo_off:+d}/{hi_off:+d}) to "
                             f"neighbours")
    elif opt.push_halos:
        lines.append("halo-push plan: no eligible producer/consumer pairs")
    dep = depend.analyze_program(program, nprocs, options)
    counts = dep.counts()
    lines.append(
        f"dependence verdicts (repro lint --explain LOOP for evidence): "
        f"{counts[depend.PROVEN_PARALLEL]} proven-parallel, "
        f"{counts[depend.PROVEN_SERIAL]} proven-serial, "
        f"{counts[depend.UNKNOWN]} unknown")
    for fam in sorted(dep.verdicts):
        v = dep.verdicts[fam]
        if v.verdict != depend.PROVEN_PARALLEL:
            why = (v.unknowns[0] if v.unknowns
                   else v.dependences[0].describe() if v.dependences
                   else "")
            lines.append(f"  {fam}: {v.verdict.upper()}"
                         + (f" — {why}" if why else ""))
    return "\n".join(lines)


def xhpf_report(program: Program, nprocs: int = 8,
                options: Optional[XhpfOptions] = None) -> str:
    """Everything the XHPF backend decided for ``program``."""
    exe = compile_xhpf(program, nprocs, options)
    lines = [f"XHPF compilation report — {program.name!r}, {nprocs} "
             f"processors"]
    for decl in program.arrays:
        dist = (f"distributed {decl.dist_kind.upper()} on dim "
                f"{decl.distribute}" if decl.distribute is not None
                else "replicated")
        lines.append(f"  array {decl.name}{decl.shape}: {dist}")
    for stmt in exe.schedule:
        if isinstance(stmt, SeqBlock):
            lines.append(f"  seq {stmt.name!r}: replicated SPMD execution"
                         + ("" if not stmt.reads else
                            "; owners broadcast read regions"))
        elif isinstance(stmt, ParallelLoop):
            if stmt.irregular:
                lines.append(
                    f"  loop {stmt.name!r}: IRREGULAR — communication "
                    f"pattern unknown at compile time; every processor "
                    f"broadcasts its whole partition of the written "
                    f"arrays at loop end"
                    + (f"; accumulation buffers {stmt.accumulate} "
                       f"broadcast-summed" if stmt.accumulate else ""))
            else:
                lines.append(f"  loop {stmt.name!r}: owner-computes "
                             f"(align {stmt.align}), exact pairwise "
                             f"exchange of non-owned footprint")
        if len(lines) > 24:
            lines.append("  ...")
            break
    return "\n".join(lines)

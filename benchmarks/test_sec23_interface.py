"""E6 — Section 2.3: the improved compiler-runtime interface.

The paper: the original fork-join implementation costs 8(n-1) messages per
parallel loop (two barriers plus two control-page faults per worker); the
improved one-to-all/all-to-one interface with piggybacked control variables
costs 2(n-1), "and has a significant effect on execution time".

The data traffic (boundary faults) is identical under either interface, so
per-loop fork-join machinery = (window messages - data messages) / loops
for the improved build, and the original's machinery follows by delta.
"""

from repro.eval.tables import format_comparison

from conftest import NPROCS, PRESET, archive, one_variant, runner  # noqa: F401


def test_interface_ablation(runner):
    def experiment():
        return one_variant("jacobi", "spf"), one_variant("jacobi", "spf_old")

    imp, old = runner(experiment)
    from repro.apps.jacobi import PRESETS
    loops = 2 * PRESETS[PRESET]["iters"]     # timed window dispatches

    def data_msgs(res):
        return sum(count for cat, (count, _b) in res.categories.items()
                   if cat.startswith("diff")) - _ctrl_faults(res)

    def _ctrl_faults(res):
        return 0

    imp_sync = imp.categories.get("sync", (0, 0))[0]
    imp_machinery = imp_sync / loops
    # original = everything beyond the improved build's data traffic
    imp_data = imp.messages - imp_sync
    old_machinery = (old.messages - imp_data) / loops

    lines = [
        "Section 2.3 — fork-join interface ablation (Jacobi, "
        f"{NPROCS} processors, timed window)",
        format_comparison("fork-join msgs per loop (original)",
                          8 * (NPROCS - 1), round(old_machinery, 1)),
        format_comparison("fork-join msgs per loop (improved)",
                          2 * (NPROCS - 1), round(imp_machinery, 1)),
        format_comparison("window time (s), original",
                          None, round(old.time, 3)),
        format_comparison("window time (s), improved",
                          None, round(imp.time, 3)),
        f"speedup: original {old.speedup:.2f} -> improved "
        f"{imp.speedup:.2f}",
    ]
    archive("sec23_interface", "\n".join(lines))

    assert abs(imp_machinery - 2 * (NPROCS - 1)) < 1.0, (
        f"improved interface must cost 2(n-1) per loop, got "
        f"{imp_machinery:.1f}")
    assert abs(old_machinery - 8 * (NPROCS - 1)) < 0.15 * 8 * (NPROCS - 1), (
        f"original interface should cost ~8(n-1) per loop, got "
        f"{old_machinery:.1f}")
    assert old.time > imp.time, "the improvement must show in time"
